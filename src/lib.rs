//! # spectrum-auctions
//!
//! Facade crate for the reproduction of *"Approximation Algorithms for
//! Secondary Spectrum Auctions"* (Hoefer, Kesselheim, Vöcking; SPAA 2011).
//!
//! The workspace implements combinatorial auctions with (edge-weighted)
//! conflict graphs: `n` bidders bid on bundles of `k` channels, a channel can
//! be shared by any independent set of the conflict graph, and the algorithms
//! approximate the social-welfare maximizing allocation within `O(ρ·√k)`
//! (unweighted graphs) resp. `O(ρ·√k·log n)` (edge-weighted graphs), where ρ
//! is the inductive independence number. Interference models (protocol
//! model, disk graphs, distance-2 constraints, SINR physical model) supply
//! conflict graphs with provably small ρ, and the Lavi–Swamy framework turns
//! the approximation algorithms into truthful-in-expectation mechanisms.
//!
//! Each sub-crate is re-exported here under a short module name; see the
//! individual crates for full documentation:
//!
//! * [`conflict_graph`] — conflict graphs, independent sets, inductive
//!   independence number.
//! * [`geometry`] — points, metrics, disks, links.
//! * [`interference`] — protocol / 802.11 / distance-2 / physical (SINR)
//!   models producing conflict graphs with certified ρ.
//! * [`lp`] — the LP solver (two-phase simplex + column generation).
//! * [`auction`] — the combinatorial auction: valuations, demand oracles,
//!   LP relaxations (1)/(4), rounding Algorithms 1–3, baselines, exact
//!   solver, asymmetric channels.
//! * [`mechanism`] — Lavi–Swamy decomposition and the truthful-in-expectation
//!   mechanism.
//! * [`workloads`] — synthetic instance generators used by the examples,
//!   tests and benchmarks.

pub use ssa_conflict_graph as conflict_graph;
pub use ssa_core as auction;
pub use ssa_geometry as geometry;
pub use ssa_interference as interference;
pub use ssa_lp as lp;
pub use ssa_mechanism as mechanism;
pub use ssa_workloads as workloads;
