//! # spectrum-auctions
//!
//! Facade crate for the reproduction of *"Approximation Algorithms for
//! Secondary Spectrum Auctions"* (Hoefer, Kesselheim, Vöcking; SPAA 2011).
//!
//! The workspace implements combinatorial auctions with (edge-weighted)
//! conflict graphs: `n` bidders bid on bundles of `k` channels, a channel can
//! be shared by any independent set of the conflict graph, and the algorithms
//! approximate the social-welfare maximizing allocation within `O(ρ·√k)`
//! (unweighted graphs) resp. `O(ρ·√k·log n)` (edge-weighted graphs), where ρ
//! is the inductive independence number. Interference models (protocol
//! model, disk graphs, distance-2 constraints, SINR physical model) supply
//! conflict graphs with provably small ρ, and the Lavi–Swamy framework turns
//! the approximation algorithms into truthful-in-expectation mechanisms.
//!
//! ## Solving: one-shot and incremental
//!
//! Everything is configured through one builder,
//! [`auction::solver::SolverBuilder`], which produces either a one-shot
//! solver or — because secondary markets are inherently dynamic — a
//! long-lived [`auction::session::AuctionSession`] that accepts mutations
//! (arrivals, departures, re-bids, ρ and channel changes) and reuses the
//! LP state across resolves (warm bases, dual-simplex row absorption,
//! in-place column re-pricing, a persistent column pool):
//!
//! ```no_run
//! use spectrum_auctions::auction::session::BidderConflicts;
//! use spectrum_auctions::auction::solver::SolverBuilder;
//! use spectrum_auctions::auction::{BasisKind, MasterMode, PricingRule};
//! # fn demo(instance: spectrum_auctions::auction::AuctionInstance,
//! #         newcomer: std::sync::Arc<dyn spectrum_auctions::auction::Valuation>) {
//! // one-shot, with typed errors instead of panics:
//! let solver = SolverBuilder::new()
//!     .engine(PricingRule::Devex, BasisKind::SparseLu)
//!     .master_mode(MasterMode::Monolithic)
//!     .rounding(7, 32)
//!     .build();
//! let outcome = solver.try_solve(&instance).expect("solve failed");
//!
//! // incremental: the session owns the instance and the LP state
//! let mut session = SolverBuilder::new().rounding(7, 32).session(instance);
//! let first = session.resolve().expect("solve failed");
//! session.add_bidder(newcomer, BidderConflicts::Binary(vec![0, 3]));
//! let warm = session.resolve().expect("warm resolve failed"); // dual-simplex path
//! # let _ = (outcome, first, warm);
//! # }
//! ```
//!
//! Failures surface as [`auction::solver::SolveError`]
//! (`IterationLimit` with the partial LP attached, `Infeasible`,
//! `InfeasibleRounding`) from the `try_solve` / `resolve` entry points; the
//! legacy `solve` entry points keep their degrade-gracefully behavior with a
//! `debug_assert!`-only feasibility check.
//!
//! ### Migrating from `SolverOptions`
//!
//! `SolverOptions` (and the nested `LpFormulationOptions` /
//! `SimplexOptions` / `RoundingOptions`) remain as thin shims, so existing
//! code keeps compiling. New code should use the builder; the mapping is
//! mechanical:
//!
//! | before | after |
//! |---|---|
//! | `SolverOptions::default().with_engine(p, b)` | `SolverBuilder::new().engine(p, b)` |
//! | `SolverOptions::default().with_master_mode(m)` | `SolverBuilder::new().master_mode(m)` |
//! | `SolverOptions { rounding: RoundingOptions { seed, trials }, .. }` | `SolverBuilder::new().rounding(seed, trials)` |
//! | `SpectrumAuctionSolver::new(options)` | `SolverBuilder::new()…`[`.build()`](auction::solver::SolverBuilder::build) |
//! | n/a (one-shot only) | `SolverBuilder::new()…`[`.session(instance)`](auction::solver::SolverBuilder::session) |
//!
//! Knobs without a builder method (e.g. simplex tolerances) remain
//! reachable through [`auction::solver::SolverBuilder::options`].
//!
//! ## Choosing a master mode and stabilization
//!
//! Two knobs shape the column-generation stage, and the measured guidance
//! (benchmark `e14_decomposition`, snapshot in `BENCH_e14.json`) is:
//!
//! * **Master mode** — leave it on [`auction::MasterMode::Monolithic`].
//!   On auction relaxations the Dantzig–Wolfe master loses to the
//!   monolithic one at every measured `(n, k)` cell from `(50, 8)` to
//!   `(200, 32)` — typically by 3–7× — because the per-bidder blocks are
//!   tiny and the coupling rows dominate. The default
//!   (`auto_master_mode`) consults
//!   [`auction::lp_formulation::select_master_mode`], which encodes
//!   exactly that table; an explicit
//!   [`SolverBuilder::master_mode`](auction::solver::SolverBuilder::master_mode)
//!   always wins. [`auction::MasterMode::DantzigWolfe`] stays fully
//!   supported (and provably exact) for genuinely block-angular uses —
//!   on generic block-structured LPs with ≥ 64 blocks, dual smoothing
//!   consistently shaves its wall time (8–25% across runs).
//! * **Stabilization** — [`lp::Stabilization::Smoothing`] (Neame dual
//!   smoothing, `alpha ≈ 0.3–0.5`) damps the dual oscillation that
//!   degenerate masters induce, generating fewer, better columns; an
//!   exactness guard re-prices at the true duals whenever a smoothed
//!   round finds nothing, so the converged objective is the unstabilized
//!   optimum (property-tested across every pricing × basis
//!   × master-mode combination). [`lp::Stabilization::BoxStep`] (du
//!   Merle soft boxes) is available for research but loses wall-clock on
//!   auction masters. Opt in with
//!   [`SolverBuilder::stabilization`](auction::solver::SolverBuilder::stabilization).
//!
//! The single biggest measured lever is neither: it is the **seed
//! depth**. Seeding each bidder's top *four* zero-price bundles (the
//! default,
//! [`SolverBuilder::seed_top_bundles`](auction::solver::SolverBuilder::seed_top_bundles))
//! puts the optimum's support into the initial master and collapses the
//! pricing loop to a single round at every measured scale — the E12
//! n = 2000 LP stage went from 11.2 s (favorite-only seeding) to 7.9 s.
//!
//! ### The managed column pool
//!
//! Sessions persist generated bundles in a managed pool with per-column
//! age / hit / reduced-cost metadata and usefulness-ranked eviction
//! (capacity via
//! [`SolverBuilder::column_pool_capacity`](auction::solver::SolverBuilder::column_pool_capacity),
//! default 8192). Warm resolves first re-price pooled columns and
//! only fall back to the demand oracles when the pool prices out; with
//! [`SolverBuilder::multi_column_pricing`](auction::solver::SolverBuilder::multi_column_pricing)
//! each oracle call contributes its top-`p` bundles per round instead of
//! one. Code that previously reached into the raw column vectors should
//! read [`auction::lp_formulation::RelaxationInfo`] instead: `pool_hits`
//! / `pool_evictions` count pool traffic, `pricing_rounds`,
//! `stabilization_misprices`, `columns_per_round`, and
//! `per_round_iterations` (capped ring buffers of the last
//! [`lp::ROUND_SERIES_CAP`] rounds) expose the trajectory.
//!
//! ## Sealed bids: commit–reveal with collateral and audit
//!
//! Secondary markets run with an auctioneer nobody has to trust:
//! [`mechanism::sealed_bid`] wraps any session in a commit–reveal
//! front-end. Conflicts are public (they gate feasibility and are declared
//! with the commitment); valuations are sealed — hashed together with the
//! participant id and a nonce into a non-malleable commitment
//! ([`mechanism::sealed_bid::commit_to`]) and posted with collateral
//! scaled to a declared bid cap. At commit close entrants join the market
//! with zero-placeholder bids, so a reveal is an ordinary warm re-price
//! and a non-revealer forfeits and leaves over the warm `remove_bidder`
//! path. Resolution charges first price on the revealed bids and issues a
//! [`mechanism::sealed_bid::SealedTranscript`] — baseline snapshot
//! (serialized via [`auction::snapshot::InstanceSnapshot`]), commitments,
//! published openings, the event log, and the LP dual certificate — which
//! [`mechanism::sealed_bid::audit()`] replays offline to flag shill
//! injection, tampered bids or payments, suppressed reveals, and
//! forfeiture-ledger drift without re-running the solver. The
//! [`exchange`] front-end drives the same protocol per market
//! ([`exchange::SpectrumExchange::open_sealed_round`]), with reveal
//! deadlines keyed to drain cycles; adversarial workloads (shill streams,
//! sniping bursts, colluding cliques) live in [`workloads`]. See
//! `examples/sealed_bid.rs` for the full walkthrough.
//!
//! ## Crate map
//!
//! Each sub-crate is re-exported here under a short module name; see the
//! individual crates for full documentation:
//!
//! * [`conflict_graph`] — conflict graphs, independent sets, inductive
//!   independence number.
//! * [`geometry`] — points, metrics, disks, links.
//! * [`interference`] — protocol / 802.11 / distance-2 / physical (SINR)
//!   models producing conflict graphs with certified ρ.
//! * [`lp`] — the LP engine (sparse revised simplex with pluggable pricing ×
//!   basis factorization, column generation, dual-simplex reoptimization,
//!   Dantzig–Wolfe decomposition).
//! * [`auction`] — the combinatorial auction: valuations, demand oracles,
//!   LP relaxations (1)/(4), rounding Algorithms 1–3, baselines, exact
//!   solver, asymmetric channels, the [`auction::solver`] pipeline and the
//!   incremental [`auction::session`].
//! * [`mechanism`] — Lavi–Swamy decomposition and the truthful-in-expectation
//!   mechanism (its verifier rides one session across pricing rounds), plus
//!   the [`mechanism::sealed_bid`] commit–reveal front-end with collateral
//!   and transcript audit.
//! * [`exchange`] — the multi-market layer: a sharded
//!   [`exchange::SpectrumExchange`] of independent sessions behind a
//!   coalescing event front-end, drained in parallel on the persistent
//!   work-stealing pool.
//! * [`workloads`] — synthetic instance generators, including dynamic-market
//!   arrival/departure/re-bid event streams
//!   ([`workloads::scenarios::dynamic_market_scenario`]), multi-market
//!   Zipf-skewed streams ([`workloads::scenarios::multi_market_scenario`]),
//!   and adversarial sealed-bid markets
//!   ([`workloads::adversarial`]: shill streams, sniping bursts, colluding
//!   cliques).

pub use ssa_conflict_graph as conflict_graph;
pub use ssa_core as auction;
pub use ssa_exchange as exchange;
pub use ssa_geometry as geometry;
pub use ssa_interference as interference;
pub use ssa_lp as lp;
pub use ssa_mechanism as mechanism;
pub use ssa_workloads as workloads;
