//! Column generation (restricted master + pricing oracle), single and
//! batched.
//!
//! The paper's LP relaxations (1) and (4) have one variable `x_{v,T}` per
//! bidder `v` and channel bundle `T ⊆ [k]` — exponentially many. Section 2.2
//! solves them with the ellipsoid method on the dual, separating with demand
//! oracles. This module implements the equivalent primal view: a restricted
//! master LP over the columns generated so far, and a pricing oracle that is
//! handed the current duals and returns columns with improving reduced cost.
//! In the auction crate the pricing oracle is exactly a demand-oracle query
//! at the bidder-specific channel prices `p_{v,j} = Σ_{u : v ∈ Γπ(u)} y_{u,j}`
//! derived from the dual (2) of the paper.
//!
//! Besides the single-master loop ([`ColumnGeneration::run`]) there is a
//! **batched cross-channel context** ([`BatchedMasters`]): a family of
//! related masters — in the auction, one per channel — that share
//!
//! * a **column pool**: every column any oracle generates is offered to the
//!   sibling masters (tested against *their* duals) before their oracles
//!   are queried again, so one channel's discovery saves the others a
//!   pricing round, and
//! * **warm-start seeding**: a master with no recorded basis clones the
//!   basis of an already-solved sibling with identical rows, so only the
//!   first channel pays the cold start (the engine validates the seed and
//!   silently falls back to a cold start when it does not fit).
//!
//! The same machinery drives the Lavi–Swamy decomposition (Section 5), whose
//! master is a covering LP and whose pricing oracle is the approximation
//! algorithm itself.
//!
//! **Row lifecycle.** Masters are no longer append-only:
//! [`MasterProblem::deactivate_rows`] relaxes rows in place (each gains a
//! relief column; the recorded basis stays valid and primal feasible, so
//! the next [`MasterProblem::solve_warm`] is a plain primal resume),
//! [`MasterProblem::fix_columns`] retires columns at zero, and
//! [`MasterProblem::compact`] physically removes the accumulated deadweight
//! once [`MasterProblem::deadweight_fraction`] passes the caller's
//! threshold, remapping the warm basis. This is what turns bidder
//! *departures* into the cheap re-pricing shape instead of a rebuild; see
//! [`crate::problem`] for the state machine and the basis-validity
//! contract at the factorization seam.

use crate::basis::make_factorization;
use crate::dual;
use crate::problem::{LinearProgram, Relation, Sense};
use crate::simplex::{
    solve, solve_with_warm_start, BasisVar, LpSolution, LpStatus, SimplexOptions, WarmStart,
};
use serde::{Deserialize, Serialize};

/// Column-tag address space. Native caller tags (in the auction:
/// `bidder << 32 | bundle`) must stay below [`DEAD_COLUMN_TAG_BASE`]; the
/// upper ranges are reserved for solver-internal columns:
///
/// | range | meaning |
/// |---|---|
/// | `[0, 1<<62)` | native columns (caller tags) |
/// | `[1<<62, 1<<63)` | dead columns — fixed at zero, tag tombstoned so the original native tag can be re-used |
/// | `[1<<63, 3<<62)` | Dantzig–Wolfe block extreme points ([`crate::decomposition`]) |
/// | `[3<<62, 7<<61)` | row-relief columns of deactivated rows |
/// | `[7<<61, 2⁶⁴)` | dual-stabilization penalty columns ([`Stabilization::BoxStep`]) |
pub const DEAD_COLUMN_TAG_BASE: u64 = 1 << 62;

/// First tag of the row-relief range (see [`DEAD_COLUMN_TAG_BASE`]).
pub const ROW_RELIEF_TAG_BASE: u64 = 0xC000_0000_0000_0000;

/// First tag of the dual-stabilization range (see
/// [`DEAD_COLUMN_TAG_BASE`]): box-step penalty columns installed by a
/// stabilized pricing loop live here so extraction and relief-column
/// invariants can tell them apart from row relief.
pub const STABILIZATION_TAG_BASE: u64 = 0xE000_0000_0000_0000;

/// Whether a master column tag is a native caller tag (as opposed to a
/// solver-internal dead / block / relief / stabilization column).
/// Extraction and column scans up the stack must skip non-native tags.
pub fn is_native_tag(tag: u64) -> bool {
    tag < DEAD_COLUMN_TAG_BASE
}

/// Whether a master column tag marks a row-relief column of a deactivated
/// row.
pub fn is_relief_tag(tag: u64) -> bool {
    (ROW_RELIEF_TAG_BASE..STABILIZATION_TAG_BASE).contains(&tag)
}

/// Whether a master column tag marks a box-step stabilization penalty
/// column.
pub fn is_stabilization_tag(tag: u64) -> bool {
    tag >= STABILIZATION_TAG_BASE
}

/// Dual-stabilization policy for the pricing loops
/// ([`ColumnGeneration::run`] and the Dantzig–Wolfe driver in
/// [`crate::decomposition`]).
///
/// Alternate optima in the master make the duals oscillate between pricing
/// rounds, and an oracle chasing the oscillation generates columns that a
/// steadier dual trajectory would never have asked for. Both policies damp
/// the trajectory while keeping the final answer **exact**:
///
/// * [`Smoothing`](Stabilization::Smoothing) prices the oracle at a convex
///   combination of the incumbent stability center and the current duals
///   (Neame-style smoothing): `ŷ ← α·ŷ + (1 − α)·y`. A round whose smoothed
///   duals find nothing is **re-priced at the true duals** before
///   optimality may be declared (the exactness guard); such a round counts
///   as a *misprice* and resets the center to the true duals.
/// * [`BoxStep`](Stabilization::BoxStep) augments the master with paired
///   penalty columns that confine the duals to a soft box
///   `[ŷ − width, ŷ + width]` around the center (du Merle-style, with one
///   shared overflow budget row whose right-hand side is `penalty`). A
///   converged round whose penalty machinery is still active is a
///   misprice: the box **shrinks** (halved width, re-centered on the
///   incumbent duals) and after [`MAX_BOX_SHRINKS`] shrinks it retires
///   entirely, so the final rounds always run — and certify — against the
///   unstabilized master.
///
/// `Off` is bitwise-identical to the historical loop.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub enum Stabilization {
    /// No stabilization: price at the true master duals every round.
    #[default]
    Off,
    /// Neame dual smoothing with factor `alpha` ∈ \[0, 1): 0 is equivalent
    /// to `Off`, values near 1 trust the incumbent center almost entirely.
    Smoothing {
        /// Weight of the incumbent stability center in the convex
        /// combination.
        alpha: f64,
    },
    /// du Merle soft dual boxes: the duals pay to leave
    /// `[center − width, center + width]`, with a shared overflow budget of
    /// `penalty` units.
    BoxStep {
        /// Right-hand side of the shared overflow budget row (how much box
        /// violation the master may buy in total).
        penalty: f64,
        /// Half-width of the dual box around the stability center.
        width: f64,
    },
}

impl Stabilization {
    /// Short label for tables and logs.
    pub fn name(self) -> &'static str {
        match self {
            Stabilization::Off => "off",
            Stabilization::Smoothing { .. } => "smoothing",
            Stabilization::BoxStep { .. } => "box-step",
        }
    }

    /// Whether this policy is [`Stabilization::Off`].
    pub fn is_off(self) -> bool {
        matches!(self, Stabilization::Off)
    }
}

/// Box shrinks a [`Stabilization::BoxStep`] run performs before retiring
/// the box entirely (a hard ceiling: retirement re-establishes the
/// unstabilized loop's termination proof).
pub const MAX_BOX_SHRINKS: usize = 8;

/// Entries kept by a [`RoundSeries`] (the most recent ones win).
pub const ROUND_SERIES_CAP: usize = 512;

/// A capped-length ring of per-round observables (pivots per master
/// re-solve, columns adopted per pricing round, …).
///
/// Long-lived sessions re-solve thousands of times; an unbounded
/// `Vec<usize>` of per-round entries grows without limit across resolves.
/// The series keeps the most recent [`ROUND_SERIES_CAP`] entries (in
/// order) plus the lifetime push count, which is all the diagnostics
/// upstream ever read.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RoundSeries {
    data: Vec<usize>,
    pushes: usize,
}

impl RoundSeries {
    /// An empty series.
    pub fn new() -> Self {
        RoundSeries::default()
    }

    /// A series seeded with one entry.
    pub fn of(value: usize) -> Self {
        let mut s = RoundSeries::new();
        s.push(value);
        s
    }

    /// Appends an entry, dropping the oldest once the cap is reached.
    pub fn push(&mut self, value: usize) {
        self.data.push(value);
        if self.data.len() > ROUND_SERIES_CAP {
            self.data.remove(0);
        }
        self.pushes += 1;
    }

    /// The retained entries, oldest first.
    pub fn recorded(&self) -> &[usize] {
        &self.data
    }

    /// Number of retained entries (≤ [`ROUND_SERIES_CAP`]).
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Lifetime number of pushes (≥ [`len`](Self::len)).
    pub fn pushes(&self) -> usize {
        self.pushes
    }

    /// Iterates the retained entries, oldest first.
    pub fn iter(&self) -> std::slice::Iter<'_, usize> {
        self.data.iter()
    }

    /// Sum of the retained entries.
    pub fn sum(&self) -> usize {
        self.data.iter().sum()
    }
}

impl<'a> IntoIterator for &'a RoundSeries {
    type Item = &'a usize;
    type IntoIter = std::slice::Iter<'a, usize>;
    fn into_iter(self) -> Self::IntoIter {
        self.data.iter()
    }
}

impl From<Vec<usize>> for RoundSeries {
    fn from(values: Vec<usize>) -> Self {
        let mut s = RoundSeries::new();
        for v in values {
            s.push(v);
        }
        s
    }
}

/// A column produced by a pricing oracle.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GeneratedColumn {
    /// Objective coefficient of the column.
    pub objective: f64,
    /// Sparse constraint coefficients as `(row index, coefficient)` pairs.
    pub coeffs: Vec<(usize, f64)>,
    /// Caller-defined identifier (e.g. an index into a bundle table); used to
    /// de-duplicate columns across pricing rounds.
    pub tag: u64,
}

impl GeneratedColumn {
    /// Reduced cost of the column at the given duals (maximization
    /// convention: positive means improving).
    pub fn reduced_cost(&self, duals: &[f64]) -> f64 {
        let priced: f64 = self.coeffs.iter().map(|&(r, a)| duals[r] * a).sum();
        self.objective - priced
    }

    fn is_improving(&self, duals: &[f64], sense: Sense, tolerance: f64) -> bool {
        let rc = self.reduced_cost(duals);
        match sense {
            Sense::Maximize => rc > tolerance,
            Sense::Minimize => rc < -tolerance,
        }
    }
}

/// A pricing oracle: sees the master duals, returns improving columns.
pub trait ColumnSource {
    /// Returns candidate columns for the current duals. Returning an empty
    /// vector (or only columns already present / not improving) terminates
    /// the column-generation loop.
    fn generate(&mut self, duals: &[f64]) -> Vec<GeneratedColumn>;
}

impl<F> ColumnSource for F
where
    F: FnMut(&[f64]) -> Vec<GeneratedColumn>,
{
    fn generate(&mut self, duals: &[f64]) -> Vec<GeneratedColumn> {
        self(duals)
    }
}

/// The restricted master problem: a fixed set of rows plus a growing set of
/// columns.
#[derive(Clone, Debug)]
pub struct MasterProblem {
    rows: Vec<(Relation, f64)>,
    columns: Vec<GeneratedColumn>,
    seen_tags: std::collections::HashSet<u64>,
    /// The master LP, maintained incrementally: [`MasterProblem::add_column`]
    /// appends a variable and its coefficients instead of rebuilding the
    /// whole program on every solve.
    lp: LinearProgram,
    /// Basis of the most recent [`MasterProblem::solve_warm`]: the rows are
    /// fixed and columns only ever get appended (entering nonbasic), so the
    /// previous optimal basis remains valid across re-solves.
    warm: Option<WarmStart>,
    /// Rows appended by [`MasterProblem::add_row`] since the last solve.
    /// While non-zero, the recorded basis covers only a row prefix and the
    /// next [`MasterProblem::solve_warm`] goes through the dual-simplex
    /// reoptimization path instead of the (row-invariant) primal resume.
    pending_rows: usize,
    /// Dual-simplex pivots spent by the most recent solve (0 on the primal
    /// path).
    last_dual_pivots: usize,
    /// Next tag for dead-column tombstones ([`DEAD_COLUMN_TAG_BASE`]).
    next_dead_tag: u64,
    /// Next tag for row-relief columns ([`ROW_RELIEF_TAG_BASE`]).
    next_relief_tag: u64,
    /// Next tag for box-step penalty columns ([`STABILIZATION_TAG_BASE`]).
    next_stab_tag: u64,
    /// Lifetime count of rows deactivated on this master (survives
    /// compaction — it is churn attribution, not a size).
    rows_deactivated: usize,
    /// Lifetime count of [`MasterProblem::compact`] runs.
    compactions: usize,
}

/// Index maps returned by [`MasterProblem::compact`]: `None` marks a
/// removed row / column, `Some(new)` the post-compaction index. Callers
/// that track master row or column indices (the session's row layout, a
/// decomposition's row map) must remap through this.
#[derive(Clone, Debug)]
pub struct CompactionReport {
    /// Old master row index → new master row index.
    pub row_map: Vec<Option<usize>>,
    /// Old master column index → new master column index.
    pub column_map: Vec<Option<usize>>,
    /// Whether the recorded warm-start basis survived the remap (when
    /// `false` the next solve is cold).
    pub kept_basis: bool,
}

impl MasterProblem {
    /// Creates a master problem with the given sense and rows
    /// `(relation, rhs)`; initially it has no columns.
    pub fn new(sense: Sense, rows: Vec<(Relation, f64)>) -> Self {
        let mut lp = LinearProgram::new(sense);
        for &(rel, rhs) in &rows {
            lp.add_constraint(Vec::new(), rel, rhs);
        }
        MasterProblem {
            rows,
            columns: Vec::new(),
            seen_tags: std::collections::HashSet::new(),
            lp,
            warm: None,
            pending_rows: 0,
            last_dual_pivots: 0,
            next_dead_tag: DEAD_COLUMN_TAG_BASE,
            next_relief_tag: ROW_RELIEF_TAG_BASE,
            next_stab_tag: STABILIZATION_TAG_BASE,
            rows_deactivated: 0,
            compactions: 0,
        }
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// The rows `(relation, rhs)` this master was built with.
    pub fn rows(&self) -> &[(Relation, f64)] {
        &self.rows
    }

    /// Number of columns added so far.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// Whether a column with this tag has already been added.
    pub fn contains_tag(&self, tag: u64) -> bool {
        self.seen_tags.contains(&tag)
    }

    /// The columns added so far, in insertion order (their index is the
    /// variable index in the solved LP).
    pub fn columns(&self) -> &[GeneratedColumn] {
        &self.columns
    }

    /// Adds a column unless one with the same tag has already been added.
    /// Returns `true` if the column was added.
    pub fn add_column(&mut self, column: GeneratedColumn) -> bool {
        if !self.seen_tags.insert(column.tag) {
            return false;
        }
        for &(r, _) in &column.coeffs {
            assert!(r < self.rows.len(), "column references unknown row {r}");
        }
        let var = self.lp.add_variable(column.objective);
        for &(r, a) in &column.coeffs {
            self.lp.add_coefficient(r, var, a);
        }
        self.columns.push(column);
        true
    }

    /// Changes the objective coefficient of an existing column (e.g. a
    /// bidder re-bidding in a long-lived session: the column's bundle and
    /// constraint coefficients are unchanged, only its value moves).
    ///
    /// The recorded warm-start basis stays **fully valid**: the constraint
    /// matrix is untouched, so the basis is still primal feasible and its
    /// factorization still factors the same `B`. Only dual feasibility is
    /// lost, which is exactly what the next
    /// [`solve_warm`](Self::solve_warm) repairs with ordinary primal
    /// pivots — no refactorization, no phase 1.
    ///
    /// # Panics
    /// Panics if `index` is not an existing column.
    pub fn set_column_objective(&mut self, index: usize, objective: f64) {
        self.columns[index].objective = objective;
        // column index == variable index by construction
        self.lp.set_objective_coefficient(index, objective);
    }

    /// Appends a constraint row (e.g. a newly discovered conflict, or the
    /// rows of a bidder joining mid-auction). `coeffs` gives the new row's
    /// coefficients on **existing columns** by column index; columns added
    /// later receive their coefficient through
    /// [`GeneratedColumn::coeffs`] as usual.
    ///
    /// The recorded warm-start basis stays valid as a *row prefix*: the next
    /// [`solve_warm`](Self::solve_warm) extends it with the new rows'
    /// logicals and reoptimizes with the **dual simplex**
    /// ([`crate::dual`]) instead of re-solving from scratch. Returns the new
    /// row's index.
    pub fn add_row(&mut self, relation: Relation, rhs: f64, coeffs: Vec<(usize, f64)>) -> usize {
        for &(c, _) in &coeffs {
            assert!(c < self.columns.len(), "row references unknown column {c}");
        }
        // column index == variable index by construction
        let row = self.lp.add_constraint(coeffs, relation, rhs);
        self.rows.push((relation, rhs));
        self.pending_rows += 1;
        row
    }

    // -- row / column lifecycle --------------------------------------------

    /// Relaxes master rows to non-binding **in place** — the
    /// basis-preserving half of a departure. Each row gains a
    /// zero-objective relief column (appended like any other column, so the
    /// `column index == variable index` invariant holds and the recorded
    /// basis stays valid *and primal feasible*); the next
    /// [`solve_warm`](Self::solve_warm) resumes with ordinary primal
    /// pivots, entering the relief columns of rows that were binding. Row
    /// indices never shift — deactivated rows keep their slot until
    /// [`compact`](Self::compact).
    ///
    /// # Panics
    /// Panics if a row does not exist, is already deactivated, or is an
    /// equality row.
    pub fn deactivate_rows(&mut self, rows: &[usize]) {
        let relief = self.lp.deactivate_rows(rows);
        for (&row, var) in rows.iter().zip(relief) {
            debug_assert_eq!(var, self.columns.len(), "column/variable alignment");
            // Mirror the exact coefficient the LP layer just appended (the
            // relief variable has the highest index, so it sorts last)
            // instead of re-deriving the sign convention here.
            let &(relief_var, sign) = self.lp.constraints()[row]
                .coeffs
                .last()
                .expect("the LP layer appended the relief coefficient");
            debug_assert_eq!(relief_var, var, "relief coefficient sorts last");
            let tag = self.next_relief_tag;
            self.next_relief_tag += 1;
            self.seen_tags.insert(tag);
            self.columns.push(GeneratedColumn {
                objective: 0.0,
                coeffs: vec![(row, sign)],
                tag,
            });
        }
        self.rows_deactivated += rows.len();
    }

    /// Fixes master columns at zero — the other half of a departure: the
    /// objective coefficient drops to 0, the engines bar the column from
    /// entering any basis, and its tag is **tombstoned** into the dead
    /// range so the native tag can be re-used later (bidder indices shift
    /// after a departure; see [`set_column_tag`](Self::set_column_tag)).
    /// The constraint matrix is untouched, so the recorded basis stays
    /// primal feasible and the next solve is a plain primal resume.
    ///
    /// # Panics
    /// Panics if a column does not exist, or if it is a **relief column**
    /// of a deactivated row — fixing one would bar it from entering and
    /// silently re-impose the row it exists to relax; that is a caller
    /// indexing bug, not a retirement.
    pub fn fix_columns(&mut self, cols: &[usize]) {
        for &idx in cols {
            assert!(
                !is_relief_tag(self.columns[idx].tag),
                "column {idx} is the relief column of a deactivated row and cannot be fixed"
            );
        }
        self.lp.fix_variables_at_zero(cols);
        // If a freshly fixed, non-harmless column sits in the recorded
        // basis (even at value 0 — basic values drift with later pivots),
        // the basis must not be resumed: the primal engine validates and
        // rejects it, but the dual row-addition repair path trusts the
        // recorded state as-is, so scrub it here.
        if let Some(warm) = &self.warm {
            let poisoned = warm.basis.iter().any(|b| match *b {
                BasisVar::Structural(v) => cols.contains(&v) && !self.lp.fixed_value_is_harmless(v),
                _ => false,
            });
            if poisoned {
                self.warm = None;
            }
        }
        for &idx in cols {
            let col = &mut self.columns[idx];
            if col.tag >= DEAD_COLUMN_TAG_BASE {
                continue; // already tombstoned (or a block column: keep)
            }
            self.seen_tags.remove(&col.tag);
            col.objective = 0.0;
            col.tag = self.next_dead_tag;
            self.next_dead_tag += 1;
            self.seen_tags.insert(col.tag);
        }
    }

    /// Re-tags an existing column (e.g. re-keying surviving bidders'
    /// columns after a departure shifted bidder indices down).
    ///
    /// # Panics
    /// Panics if the column does not exist or the new tag is already held
    /// by a different column.
    pub fn set_column_tag(&mut self, index: usize, tag: u64) {
        let old = self.columns[index].tag;
        if old == tag {
            return;
        }
        assert!(
            !self.seen_tags.contains(&tag),
            "tag {tag} is already held by another column"
        );
        self.seen_tags.remove(&old);
        self.seen_tags.insert(tag);
        self.columns[index].tag = tag;
    }

    /// Whether master row `i` is still active.
    pub fn is_row_active(&self, i: usize) -> bool {
        self.lp.is_row_active(i)
    }

    /// Number of rows still active.
    pub fn num_active_rows(&self) -> usize {
        self.lp.num_active_rows()
    }

    /// Lifetime count of rows deactivated on this master (churn
    /// attribution; survives compaction).
    pub fn rows_deactivated(&self) -> usize {
        self.rows_deactivated
    }

    /// Lifetime count of [`compact`](Self::compact) runs.
    pub fn compactions(&self) -> usize {
        self.compactions
    }

    /// Fraction of the master occupied by deadweight: deactivated rows plus
    /// dead (fixed / relief) columns over all rows + columns.
    pub fn deadweight_fraction(&self) -> f64 {
        let dead_rows = self.rows.len() - self.lp.num_active_rows();
        let dead_cols = self.lp.num_dead_variables();
        let total = self.rows.len() + self.columns.len();
        if total == 0 {
            0.0
        } else {
            (dead_rows + dead_cols) as f64 / total as f64
        }
    }

    /// Physically removes deactivated rows and dead columns, remapping the
    /// surviving columns' coefficients and — when every recorded basis
    /// member survives the remap — the warm-start basis (basis identities
    /// only; the factorization is rebuilt from the compacted matrix on the
    /// next solve, which validates it through the ordinary warm-start
    /// path). Callers that track master row/column indices must remap them
    /// through the returned [`CompactionReport`].
    pub fn compact(&mut self) -> CompactionReport {
        let old_warm = self.warm.take();
        let maps = self.lp.compact();
        let mut new_rows = Vec::with_capacity(self.lp.num_constraints());
        for (i, &row) in self.rows.iter().enumerate() {
            if maps.row_map[i].is_some() {
                new_rows.push(row);
            }
        }
        self.rows = new_rows;
        let mut new_columns = Vec::with_capacity(self.lp.num_variables());
        for (j, col) in self.columns.iter().enumerate() {
            if maps.var_map[j].is_none() {
                continue;
            }
            let coeffs: Vec<(usize, f64)> = col
                .coeffs
                .iter()
                .filter_map(|&(r, a)| maps.row_map[r].map(|nr| (nr, a)))
                .collect();
            new_columns.push(GeneratedColumn {
                objective: col.objective,
                coeffs,
                tag: col.tag,
            });
        }
        self.columns = new_columns;
        self.seen_tags = self.columns.iter().map(|c| c.tag).collect();
        debug_assert_eq!(self.columns.len(), self.lp.num_variables());
        debug_assert_eq!(self.rows.len(), self.lp.num_constraints());

        let mut kept_basis = false;
        if let Some(w) = old_warm {
            let kind = w.basis_kind();
            let mut basis = Vec::with_capacity(self.rows.len());
            for var in w.basis {
                let mapped = match var {
                    BasisVar::Structural(j) => maps
                        .var_map
                        .get(j)
                        .copied()
                        .flatten()
                        .map(BasisVar::Structural),
                    BasisVar::Slack(i) => {
                        maps.row_map.get(i).copied().flatten().map(BasisVar::Slack)
                    }
                    BasisVar::Surplus(i) => maps
                        .row_map
                        .get(i)
                        .copied()
                        .flatten()
                        .map(BasisVar::Surplus),
                    BasisVar::Artificial(i) => maps
                        .row_map
                        .get(i)
                        .copied()
                        .flatten()
                        .map(BasisVar::Artificial),
                };
                if let Some(v) = mapped {
                    basis.push(v);
                }
            }
            if basis.len() == self.rows.len() {
                // Exactly one member vanished per removed row (the typical
                // post-solve state: each deactivated row's relief or slack
                // was basic): the remapped basis is handed back basis-only
                // and refactorized from the compacted matrix on install.
                self.warm = Some(WarmStart::from_parts(basis, make_factorization(kind)));
                kept_basis = true;
            }
        }
        self.pending_rows = 0;
        self.compactions += 1;
        CompactionReport {
            row_map: maps.row_map,
            column_map: maps.var_map,
            kept_basis,
        }
    }

    /// Compacts when the [`deadweight_fraction`](Self::deadweight_fraction)
    /// has reached `threshold` (and there is any deadweight at all);
    /// returns the report when a compaction ran.
    pub fn maybe_compact(&mut self, threshold: f64) -> Option<CompactionReport> {
        let f = self.deadweight_fraction();
        if f > 0.0 && f >= threshold {
            Some(self.compact())
        } else {
            None
        }
    }

    /// Dual-simplex pivots spent by the most recent
    /// [`solve_warm`](Self::solve_warm) (non-zero only right after rows were
    /// added through [`add_row`](Self::add_row)).
    pub fn last_dual_pivots(&self) -> usize {
        self.last_dual_pivots
    }

    /// The restricted master as a [`LinearProgram`] (a clone of the
    /// incrementally maintained program).
    pub fn to_linear_program(&self) -> LinearProgram {
        self.lp.clone()
    }

    /// Solves the current restricted master from a cold start.
    pub fn solve(&self, options: &SimplexOptions) -> LpSolution {
        solve(&self.lp, options)
    }

    /// Solves the current restricted master, resuming from the basis of the
    /// previous `solve_warm` call (if any) and recording the new basis for
    /// the next round. Columns added since the last solve enter nonbasic,
    /// so a re-solve typically needs only the handful of pivots that bring
    /// the new columns in — instead of re-running phase 1 / the all-slack
    /// start from scratch.
    pub fn solve_warm(&mut self, options: &SimplexOptions) -> LpSolution {
        if self.pending_rows > 0 {
            self.pending_rows = 0;
            if let Some(prior) = self.warm.take() {
                // rows grew since the basis was recorded: repair primal
                // feasibility with the dual simplex instead of cold-starting
                let re = dual::reoptimize_after_row_additions(&self.lp, options, prior);
                self.warm = Some(re.warm);
                self.last_dual_pivots = re.solution.stats.dual_pivots;
                return re.solution;
            }
        }
        let (solution, state) = solve_with_warm_start(&self.lp, options, self.warm.take());
        self.warm = Some(state);
        self.last_dual_pivots = 0;
        solution
    }

    /// The warm-start state recorded by the last
    /// [`solve_warm`](Self::solve_warm), if any.
    pub fn warm_start(&self) -> Option<&WarmStart> {
        self.warm.as_ref()
    }

    /// Seeds the next solve with a basis recorded by a *different* master
    /// over the same rows (cross-channel warm-start sharing). Only the
    /// basis carries over — the donor's factorization was computed from a
    /// different column set, so the engine refactorizes from *this*
    /// master's columns. An unsuitable seed is harmless: the engine
    /// validates it and falls back to a cold start.
    pub fn seed_warm_start(&mut self, warm: WarmStart) {
        self.warm = Some(warm.into_basis_only());
    }

    /// Drops the recorded warm-start basis (the next solve is cold).
    pub fn reset_warm_start(&mut self) {
        self.warm = None;
    }

    /// Allocates a fresh tag in the stabilization range (monotone across
    /// installs, so re-stabilizing a long-lived master never collides with
    /// the retired columns of an earlier box).
    fn alloc_stabilization_tag(&mut self) -> u64 {
        let tag = self.next_stab_tag;
        self.next_stab_tag += 1;
        tag
    }
}

/// Neame dual smoothing state: an exponentially smoothed stability center.
/// See [`Stabilization::Smoothing`].
#[derive(Clone, Debug)]
pub(crate) struct DualSmoother {
    alpha: f64,
    center: Option<Vec<f64>>,
}

impl DualSmoother {
    pub(crate) fn new(alpha: f64) -> Self {
        DualSmoother {
            alpha: alpha.clamp(0.0, 0.999),
            center: None,
        }
    }

    /// Advances the center toward `duals` and returns the smoothed pricing
    /// point, or `None` when there is no established center yet (first
    /// round, or the dual dimension changed under us — e.g. rows appended
    /// mid-run): the caller then prices at the true duals.
    pub(crate) fn advance(&mut self, duals: &[f64]) -> Option<Vec<f64>> {
        if self.alpha <= 0.0 {
            return None;
        }
        match &mut self.center {
            Some(c) if c.len() == duals.len() => {
                for (ci, &d) in c.iter_mut().zip(duals) {
                    *ci = self.alpha * *ci + (1.0 - self.alpha) * d;
                }
                Some(c.clone())
            }
            _ => {
                self.center = Some(duals.to_vec());
                None
            }
        }
    }

    /// Resets the center to the given (true) duals — called after a
    /// misprice so the next round starts from reality, not from the stale
    /// trajectory that just mispriced.
    pub(crate) fn reset_to(&mut self, duals: &[f64]) {
        self.center = Some(duals.to_vec());
    }
}

/// du Merle soft dual boxes installed on a master — the
/// [`Stabilization::BoxStep`] machinery. See the enum docs for the model;
/// the implementation detail worth knowing is the **shared overflow
/// budget**: instead of bounding every penalty column individually (which
/// would double the row count), one `Σ(gᵣ + hᵣ) ≤ penalty` row bounds the
/// total box violation the master may buy, so the whole box costs one row
/// and `2·m` columns.
///
/// Only **maximization** masters are stabilized this way (the auction's
/// packing masters and the Dantzig–Wolfe master): on a minimization
/// master the penalty columns would *relax* covering rows, which can make
/// the augmented LP unbounded. `install` on a minimization master returns
/// a retired (no-op) stabilizer.
#[derive(Clone, Debug)]
pub(crate) struct BoxStabilizer {
    budget_row: usize,
    boxed_rows: Vec<usize>,
    lift: Vec<usize>,
    cap: Vec<usize>,
    width: f64,
    shrinks: usize,
    retired: bool,
}

impl BoxStabilizer {
    /// Installs the box on every currently active master row, centered at
    /// `duals` (the incumbent optimal duals). Appends one budget row and
    /// two columns per boxed row; the next `solve_warm` goes through the
    /// row-addition path.
    pub(crate) fn install(
        master: &mut MasterProblem,
        duals: &[f64],
        penalty: f64,
        width: f64,
    ) -> Self {
        if master.lp.sense() != Sense::Maximize {
            return BoxStabilizer {
                budget_row: 0,
                boxed_rows: Vec::new(),
                lift: Vec::new(),
                cap: Vec::new(),
                width,
                shrinks: 0,
                retired: true,
            };
        }
        let rows_before = master.num_rows().min(duals.len());
        let budget_row = master.add_row(Relation::Le, penalty.max(0.0), Vec::new());
        let mut boxed_rows = Vec::new();
        let mut lift = Vec::new();
        let mut cap = Vec::new();
        for (r, &dual) in duals.iter().enumerate().take(rows_before) {
            if !master.is_row_active(r) {
                continue;
            }
            let lo = (dual - width).max(0.0);
            let hi = dual + width;
            let lift_idx = master.num_columns();
            let tag = master.alloc_stabilization_tag();
            master.add_column(GeneratedColumn {
                objective: lo,
                coeffs: vec![(r, 1.0), (budget_row, 1.0)],
                tag,
            });
            let cap_idx = master.num_columns();
            let tag = master.alloc_stabilization_tag();
            master.add_column(GeneratedColumn {
                objective: -hi,
                coeffs: vec![(r, -1.0), (budget_row, 1.0)],
                tag,
            });
            boxed_rows.push(r);
            lift.push(lift_idx);
            cap.push(cap_idx);
        }
        BoxStabilizer {
            budget_row,
            boxed_rows,
            lift,
            cap,
            width,
            shrinks: 0,
            retired: false,
        }
    }

    pub(crate) fn is_active(&self) -> bool {
        !self.retired
    }

    /// Whether the box machinery is inactive in this solution: every
    /// penalty column at (numerical) zero and the budget row's dual at
    /// zero. Only then do the master's duals certify the *unstabilized*
    /// optimum (see the termination argument in the enum docs).
    pub(crate) fn clean(&self, solution: &LpSolution, tolerance: f64) -> bool {
        if self.retired {
            return true;
        }
        let value_of = |idx: usize| solution.x.get(idx).copied().unwrap_or(0.0);
        let columns_clean = self
            .lift
            .iter()
            .chain(self.cap.iter())
            .all(|&idx| value_of(idx).abs() <= tolerance);
        let budget_dual = solution.duals.get(self.budget_row).copied().unwrap_or(0.0);
        columns_clean && budget_dual.abs() <= tolerance
    }

    /// Misprice response: re-center on the incumbent duals with half the
    /// width, or retire entirely after [`MAX_BOX_SHRINKS`] shrinks.
    /// Objective-only updates — the recorded basis stays valid.
    pub(crate) fn shrink(&mut self, master: &mut MasterProblem, duals: &[f64]) {
        if self.retired {
            return;
        }
        self.shrinks += 1;
        if self.shrinks > MAX_BOX_SHRINKS {
            self.retire(master);
            return;
        }
        self.width *= 0.5;
        for (i, &r) in self.boxed_rows.iter().enumerate() {
            let center = duals.get(r).copied().unwrap_or(0.0);
            let lo = (center - self.width).max(0.0);
            let hi = center + self.width;
            master.set_column_objective(self.lift[i], lo);
            master.set_column_objective(self.cap[i], -hi);
        }
    }

    /// Removes the box from play: the penalty columns are fixed at zero
    /// (barred from every future basis). The budget row stays behind but
    /// only ever constrains the fixed columns, so it is permanently slack.
    pub(crate) fn retire(&mut self, master: &mut MasterProblem) {
        if self.retired {
            return;
        }
        let cols: Vec<usize> = self.lift.iter().chain(self.cap.iter()).copied().collect();
        if !cols.is_empty() {
            master.fix_columns(&cols);
        }
        self.retired = true;
    }
}

/// Outcome of a column-generation run.
#[derive(Clone, Debug)]
pub struct ColumnGenerationResult {
    /// Solution of the final restricted master.
    pub solution: LpSolution,
    /// Number of pricing rounds performed.
    pub rounds: usize,
    /// Whether the loop stopped because no improving column was found
    /// (`true`) or because the round limit was hit (`false`).
    pub converged: bool,
    /// Total simplex pivots across every master re-solve of this run.
    pub simplex_iterations: usize,
    /// Pivots of each master re-solve, in order — the warm-start win is the
    /// drop after round 0. Ring-buffered at [`ROUND_SERIES_CAP`] so deep
    /// sessions don't grow it without bound.
    pub per_round_iterations: RoundSeries,
    /// Columns adopted per pricing round (same capping) — the trajectory
    /// observable: a healthy stabilized run adopts steadily and then dries
    /// up, an oscillating one keeps re-discovering.
    pub columns_per_round: RoundSeries,
    /// Rounds in which the pricing oracle was actually queried (the final
    /// confirming round included; master-only rounds such as box-step
    /// shrink re-solves are not).
    pub pricing_rounds: usize,
    /// Total columns adopted by the master during this run.
    pub columns_generated: usize,
    /// Rounds where pricing at the stabilized duals found nothing but the
    /// exactness guard's true-dual re-price (or box-shrink re-solve) kept
    /// the loop going. Always 0 when stabilization is off.
    pub stabilization_misprices: usize,
    /// Basis refactorizations across every master re-solve.
    pub refactorizations: usize,
    /// The subset of [`refactorizations`](Self::refactorizations) forced by
    /// a declined basis update or numerical trouble (rather than scheduled
    /// hygiene) — the observable for factorization-stability regressions.
    pub forced_refactorizations: usize,
    /// Degenerate pivots across every master re-solve.
    pub degenerate_pivots: usize,
    /// Dual-simplex reoptimization pivots across every master re-solve
    /// (non-zero only when rows were added mid-run via
    /// [`MasterProblem::add_row`]).
    pub dual_pivots: usize,
    /// FTRANs answered on the hyper-sparse path across every master
    /// re-solve ([`crate::simplex::SolveStats::ftran_sparse_hits`]).
    pub ftran_sparse_hits: usize,
    /// FTRANs that fell back to the dense kernel across every re-solve.
    pub ftran_dense_fallbacks: usize,
    /// Pivot-row BTRANs answered on the hyper-sparse path.
    pub btran_sparse_hits: usize,
    /// Pivot-row BTRANs that fell back to the dense kernel.
    pub btran_dense_fallbacks: usize,
    /// Tracked-solve-weighted mean result density across every re-solve
    /// (1.0 when nothing was tracked, e.g. sparsity disabled).
    pub avg_result_density: f64,
}

impl ColumnGenerationResult {
    fn from_single(solution: LpSolution, rounds: usize, converged: bool) -> Self {
        let iters = solution.iterations;
        let stats = solution.stats;
        ColumnGenerationResult {
            solution,
            rounds,
            converged,
            simplex_iterations: iters,
            per_round_iterations: RoundSeries::of(iters),
            columns_per_round: RoundSeries::new(),
            pricing_rounds: 0,
            columns_generated: 0,
            stabilization_misprices: 0,
            refactorizations: stats.refactorizations,
            forced_refactorizations: stats.forced_refactorizations,
            degenerate_pivots: stats.degenerate_pivots,
            dual_pivots: stats.dual_pivots,
            ftran_sparse_hits: stats.ftran_sparse_hits,
            ftran_dense_fallbacks: stats.ftran_dense_fallbacks,
            btran_sparse_hits: stats.btran_sparse_hits,
            btran_dense_fallbacks: stats.btran_dense_fallbacks,
            avg_result_density: stats.avg_result_density,
        }
    }

    fn absorb_solve(&mut self, solution: &LpSolution) {
        self.simplex_iterations += solution.iterations;
        self.per_round_iterations.push(solution.iterations);
        self.refactorizations += solution.stats.refactorizations;
        self.forced_refactorizations += solution.stats.forced_refactorizations;
        self.degenerate_pivots += solution.stats.degenerate_pivots;
        self.dual_pivots += solution.stats.dual_pivots;
        // Tracked-solve-weighted density merge (every tracked solve of a
        // run shares the same result length m, so count-weighting is exact).
        let mine = (self.ftran_sparse_hits
            + self.ftran_dense_fallbacks
            + self.btran_sparse_hits
            + self.btran_dense_fallbacks) as f64;
        let s = solution.stats;
        let theirs = (s.ftran_sparse_hits
            + s.ftran_dense_fallbacks
            + s.btran_sparse_hits
            + s.btran_dense_fallbacks) as f64;
        if theirs > 0.0 {
            self.avg_result_density =
                (self.avg_result_density * mine + s.avg_result_density * theirs) / (mine + theirs);
        }
        self.ftran_sparse_hits += s.ftran_sparse_hits;
        self.ftran_dense_fallbacks += s.ftran_dense_fallbacks;
        self.btran_sparse_hits += s.btran_sparse_hits;
        self.btran_dense_fallbacks += s.btran_dense_fallbacks;
    }
}

/// Failure of a column-generation run.
///
/// The seed implementation silently returned the truncated master solution
/// when the simplex hit its pivot budget; callers could not tell a genuine
/// optimum from an arbitrary interrupted basis. The condition is now a
/// proper error carrying the partial result, so callers decide explicitly
/// whether a truncated solution is acceptable.
#[derive(Clone, Debug)]
pub enum ColumnGenerationError {
    /// A master solve stopped at [`LpStatus::IterationLimit`] before proving
    /// optimality; the partial result is attached (boxed: the error path is
    /// cold and the result carries the full master solution).
    IterationLimit {
        /// State at the interrupted solve (solution is *not* optimal).
        partial: Box<ColumnGenerationResult>,
    },
}

impl std::fmt::Display for ColumnGenerationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ColumnGenerationError::IterationLimit { partial } => write!(
                f,
                "restricted master hit the simplex iteration limit after {} rounds \
                 ({} iterations in the last solve)",
                partial.rounds, partial.solution.iterations
            ),
        }
    }
}

impl std::error::Error for ColumnGenerationError {}

/// Driver for the restricted-master / pricing loop.
#[derive(Clone, Debug)]
pub struct ColumnGeneration {
    /// Simplex options used for every master solve.
    pub simplex: SimplexOptions,
    /// Maximum number of pricing rounds.
    pub max_rounds: usize,
    /// Reduced-cost tolerance below which a column is not considered
    /// improving.
    pub reduced_cost_tolerance: f64,
    /// Dual-trajectory stabilization policy (see [`Stabilization`]). The
    /// exactness guard makes every policy reach the same optimum as
    /// [`Stabilization::Off`]; only the trajectory (rounds, columns
    /// generated) differs.
    pub stabilization: Stabilization,
    /// At most this many columns are adopted per pricing round, keeping
    /// the most improving by |reduced cost| (`0` = unbounded). On wide
    /// masters a single round can return one improving column per
    /// subproblem — hundreds at once — and the re-solve then fights
    /// through their mutual degeneracy pivot by pivot; adopting only the
    /// strongest candidates keeps each re-solve cheap. Exactness is
    /// unaffected: a capped round still adopts at least one column, so
    /// convergence is only ever declared on a genuinely empty round.
    pub max_columns_per_round: usize,
}

impl Default for ColumnGeneration {
    fn default() -> Self {
        ColumnGeneration {
            simplex: SimplexOptions::default(),
            max_rounds: 200,
            reduced_cost_tolerance: 1e-7,
            stabilization: Stabilization::default(),
            max_columns_per_round: 0,
        }
    }
}

/// Filters `cols` to the improving ones and adds at most `cap` of them
/// (the most improving by |reduced cost|; `0` = all) to the master.
/// Returns how many the master actually adopted.
fn adopt_improving(
    master: &mut MasterProblem,
    mut cols: Vec<GeneratedColumn>,
    duals: &[f64],
    sense: Sense,
    tolerance: f64,
    cap: usize,
) -> usize {
    cols.retain(|c| c.is_improving(duals, sense, tolerance));
    if cap != 0 && cols.len() > cap {
        cols.sort_by(|a, b| {
            let ra = a.reduced_cost(duals).abs();
            let rb = b.reduced_cost(duals).abs();
            rb.partial_cmp(&ra).unwrap_or(std::cmp::Ordering::Equal)
        });
        cols.truncate(cap);
    }
    let mut added = 0usize;
    for col in cols {
        if master.add_column(col) {
            added += 1;
        }
    }
    added
}

impl ColumnGeneration {
    /// Runs column generation: repeatedly solve the restricted master
    /// (warm-started from the previous round's optimal basis), hand the
    /// duals to `source`, and add every returned column that has improving
    /// reduced cost. Terminates when no new improving column arrives or
    /// `max_rounds` is reached.
    ///
    /// With [`Stabilization`] enabled the oracle is priced at the
    /// stabilized duals instead; a stabilized round that finds nothing is
    /// re-priced at the **true** duals (smoothing) or answered with a box
    /// shrink (box-step) before optimality may be declared, so `Ok` with
    /// `converged == true` means the genuine optimum under every policy.
    ///
    /// # Errors
    /// Returns [`ColumnGenerationError::IterationLimit`] when a master
    /// solve exhausts its pivot budget: the attached partial solution is a
    /// feasible but non-optimal basis whose duals cannot be trusted for
    /// pricing.
    pub fn run(
        &self,
        master: &mut MasterProblem,
        source: &mut dyn ColumnSource,
    ) -> Result<ColumnGenerationResult, ColumnGenerationError> {
        let sense = master.lp.sense();
        let mut rounds = 0usize;
        let mut pricing_rounds = 0usize;
        let mut columns_generated = 0usize;
        let mut misprices = 0usize;
        let mut columns_per_round = RoundSeries::new();
        let mut tally: Option<ColumnGenerationResult> = None;
        let mut smoother = match self.stabilization {
            Stabilization::Smoothing { alpha } => Some(DualSmoother::new(alpha)),
            _ => None,
        };
        let mut boxer: Option<BoxStabilizer> = None;
        // `Ok(converged)` breaks the loop; the tally is finished (and the
        // box retired) on the single exit path below.
        let outcome: Result<bool, ()> = loop {
            let solution = master.solve_warm(&self.simplex);
            rounds += 1;
            match &mut tally {
                None => {
                    tally = Some(ColumnGenerationResult::from_single(
                        solution.clone(),
                        0,
                        false,
                    ))
                }
                Some(t) => {
                    t.absorb_solve(&solution);
                    t.solution = solution.clone();
                }
            }
            if solution.status == LpStatus::IterationLimit {
                break Err(());
            }
            if rounds > self.max_rounds {
                // `rounds` counts master solves actually performed, so the
                // per-round iteration list stays one entry per round even on
                // the truncated path.
                break Ok(false);
            }
            // An infeasible or unbounded master cannot be priced further.
            if solution.status != LpStatus::Optimal {
                break Ok(false);
            }
            // Box-step: the first optimal solve of a non-empty master
            // centers and installs the box; the appended rows/columns
            // re-solve on the next round (pricing this round still sees
            // the true, unboxed duals). An empty master's duals are all
            // zero — no trajectory worth boxing yet.
            if let Stabilization::BoxStep { penalty, width } = self.stabilization {
                if boxer.is_none() && master.num_columns() > 0 {
                    boxer = Some(BoxStabilizer::install(
                        master,
                        &solution.duals,
                        penalty,
                        width,
                    ));
                }
            }
            // Price at the stabilized duals when a trajectory is
            // established; the very first round (and any round after a
            // dimension change) prices at the true duals.
            let smoothed = smoother.as_mut().and_then(|s| s.advance(&solution.duals));
            let pricing_duals: &[f64] = smoothed.as_deref().unwrap_or(&solution.duals);
            pricing_rounds += 1;
            let mut added = adopt_improving(
                master,
                source.generate(pricing_duals),
                pricing_duals,
                sense,
                self.reduced_cost_tolerance,
                self.max_columns_per_round,
            );
            if added == 0 && smoothed.is_some() {
                // Exactness guard: the smoothed round found nothing, which
                // proves nothing about the true duals. Re-price at them
                // before convergence may be declared.
                added = adopt_improving(
                    master,
                    source.generate(&solution.duals),
                    &solution.duals,
                    sense,
                    self.reduced_cost_tolerance,
                    self.max_columns_per_round,
                );
                if added > 0 {
                    misprices += 1;
                    if let Some(s) = &mut smoother {
                        s.reset_to(&solution.duals);
                    }
                }
            }
            columns_per_round.push(added);
            columns_generated += added;
            if added > 0 {
                continue;
            }
            // Nothing prices out. Under box-step the duals only certify
            // optimality once the box machinery is inactive; otherwise
            // this is a misprice and the box shrinks (retiring after
            // MAX_BOX_SHRINKS), forcing another master round.
            if let Some(b) = &mut boxer {
                if b.is_active() && !b.clean(&solution, self.reduced_cost_tolerance.max(1e-9)) {
                    misprices += 1;
                    b.shrink(master, &solution.duals);
                    continue;
                }
            }
            break Ok(true);
        };
        // Leave the master unstabilized for whoever reuses it (sessions):
        // penalty columns are fixed at zero, which keeps the recorded
        // basis valid and never disturbs the final solution (their values
        // are zero in any converged answer by the guard above).
        if let Some(b) = &mut boxer {
            b.retire(master);
        }
        let mut t = tally.take().expect("at least one master solve ran");
        t.rounds = rounds;
        t.pricing_rounds = pricing_rounds;
        t.columns_per_round = columns_per_round;
        t.columns_generated = columns_generated;
        t.stabilization_misprices = misprices;
        match outcome {
            Ok(converged) => {
                t.converged = converged;
                Ok(t)
            }
            Err(()) => {
                t.converged = false;
                Err(ColumnGenerationError::IterationLimit {
                    partial: Box::new(t),
                })
            }
        }
    }
}

/// Default capacity of a [`ColumnPool`] when the caller does not size it.
pub const DEFAULT_POOL_CAPACITY: usize = 4096;

/// A pooled column plus its usefulness bookkeeping. See [`ColumnPool`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PooledColumn {
    /// The column itself (its coefficients are meaningful only relative to
    /// the origin master's rows).
    pub column: GeneratedColumn,
    /// Caller-defined origin id (in [`BatchedMasters`]: the index of the
    /// master whose oracle produced it; pool sharing only offers a column
    /// to masters whose rows equal the origin's).
    pub origin: usize,
    /// Pool scan clock at insertion.
    pub born_scan: u64,
    /// Pool scan clock of the last recorded hit (insertion counts as the
    /// zeroth hit so fresh columns aren't instant eviction bait).
    pub last_hit_scan: u64,
    /// Times this column was adopted / re-used after insertion.
    pub hits: usize,
    /// Reduced cost observed at the most recent scan that priced it
    /// (`NaN` until a scan reaches it).
    pub last_reduced_cost: f64,
}

/// First-class managed column pool: every column any oracle discovers,
/// with per-column age / hit / last-reduced-cost metadata, a bounded size,
/// and LRU-by-usefulness eviction (fewest hits first, least-recently-hit
/// among ties).
///
/// This promotes what used to be three parallel `Vec`/`HashSet` fields
/// inside [`BatchedMasters`] (and the ad-hoc `(bidder, bundle)` list in
/// the auction session) into one reusable structure with observable
/// counters: [`hits`](Self::hits), [`evictions`](Self::evictions),
/// [`insertions`](Self::insertions).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ColumnPool {
    entries: Vec<PooledColumn>,
    capacity: usize,
    clock: u64,
    insertions: usize,
    hits: usize,
    evictions: usize,
}

impl ColumnPool {
    /// An empty pool holding at most `capacity` columns (0 is treated as
    /// unbounded, matching the historical behavior).
    pub fn with_capacity(capacity: usize) -> Self {
        ColumnPool {
            entries: Vec::new(),
            capacity,
            clock: 0,
            insertions: 0,
            hits: 0,
            evictions: 0,
        }
    }

    /// An unbounded pool.
    pub fn unbounded() -> Self {
        Self::with_capacity(0)
    }

    /// Current number of pooled columns.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Configured capacity (0 = unbounded).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lifetime number of columns accepted (monotone — unlike
    /// [`len`](Self::len), which eviction can shrink; use this as the
    /// "has the pool grown since I last looked" signal).
    pub fn insertions(&self) -> usize {
        self.insertions
    }

    /// Lifetime number of recorded hits (adoptions / re-uses).
    pub fn hits(&self) -> usize {
        self.hits
    }

    /// Lifetime number of evictions.
    pub fn evictions(&self) -> usize {
        self.evictions
    }

    /// The pooled columns in insertion order (eviction may leave gaps in
    /// seniority, never in the order).
    pub fn entries(&self) -> &[PooledColumn] {
        &self.entries
    }

    /// Whether a column with this tag is pooled.
    pub fn contains_tag(&self, tag: u64) -> bool {
        self.entries.iter().any(|e| e.column.tag == tag)
    }

    /// Offers a column; returns `true` if it was new (by tag) and
    /// accepted. Accepting past capacity evicts the least useful column:
    /// fewest hits, then least recently hit, then oldest.
    pub fn offer(&mut self, column: GeneratedColumn, origin: usize) -> bool {
        if self.contains_tag(column.tag) {
            return false;
        }
        self.entries.push(PooledColumn {
            column,
            origin,
            born_scan: self.clock,
            last_hit_scan: self.clock,
            hits: 0,
            last_reduced_cost: f64::NAN,
        });
        self.insertions += 1;
        if self.capacity > 0 && self.entries.len() > self.capacity {
            self.evict_least_useful();
        }
        true
    }

    fn evict_least_useful(&mut self) {
        // Never evict the newest entry (it was just offered for a reason).
        let candidates = self.entries.len().saturating_sub(1);
        let victim = (0..candidates).min_by_key(|&i| {
            let e = &self.entries[i];
            (e.hits, e.last_hit_scan, e.born_scan)
        });
        if let Some(i) = victim {
            self.entries.remove(i);
            self.evictions += 1;
        }
    }

    /// Records an adoption / re-use of the tagged column.
    pub fn note_hit(&mut self, tag: u64) {
        let clock = self.clock;
        if let Some(e) = self.entries.iter_mut().find(|e| e.column.tag == tag) {
            e.hits += 1;
            e.last_hit_scan = clock;
            self.hits += 1;
        }
    }

    /// Scans the pool at the given duals and returns clones of the
    /// improving columns among those `eligible` admits (callers gate on
    /// row-set identity — a coefficient on "row i" only means something
    /// under the origin master's rows). Advances the scan clock and stamps
    /// every priced entry's [`PooledColumn::last_reduced_cost`]. The
    /// **whole** pool is rescanned every call: a column rejected at one
    /// round's duals can become improving after other columns pivot in,
    /// so a forward-only cursor would silently withhold it.
    pub fn scan(
        &mut self,
        duals: &[f64],
        sense: Sense,
        tolerance: f64,
        mut eligible: impl FnMut(&PooledColumn) -> bool,
    ) -> Vec<GeneratedColumn> {
        self.clock += 1;
        let mut improving = Vec::new();
        for e in self.entries.iter_mut() {
            if !eligible(e) || e.column.coeffs.iter().any(|&(r, _)| r >= duals.len()) {
                continue;
            }
            let rc = e.column.reduced_cost(duals);
            e.last_reduced_cost = rc;
            let is_improving = match sense {
                Sense::Maximize => rc > tolerance,
                Sense::Minimize => rc < -tolerance,
            };
            if is_improving {
                improving.push(e.column.clone());
            }
        }
        improving
    }

    /// Retains / re-keys entries: `f` returns the (possibly new) tag to
    /// keep an entry under, or `None` to drop it (dropping this way is
    /// **not** counted as an eviction — it is caller-driven retirement,
    /// e.g. a departed bidder's columns). Used by long-lived sessions
    /// whose native tags embed indices that shift on departure.
    pub fn retain_map(&mut self, mut f: impl FnMut(&PooledColumn) -> Option<u64>) {
        let mut kept = Vec::with_capacity(self.entries.len());
        for mut e in std::mem::take(&mut self.entries) {
            if let Some(tag) = f(&e) {
                e.column.tag = tag;
                kept.push(e);
            }
        }
        self.entries = kept;
    }
}

/// Per-channel statistics of a [`BatchedMasters`] run.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ChannelRunStats {
    /// Pricing rounds this channel's master was re-solved.
    pub rounds: usize,
    /// Simplex pivots across this channel's master re-solves.
    pub simplex_iterations: usize,
    /// Columns this channel adopted from the shared pool (discovered by a
    /// sibling's oracle).
    pub columns_from_pool: usize,
    /// Columns this channel's own oracle contributed.
    pub columns_from_oracle: usize,
    /// Whether this channel reached proven optimality.
    pub converged: bool,
}

/// Result of a batched cross-channel column-generation run.
#[derive(Clone, Debug)]
pub struct BatchedResult {
    /// Per-channel results (same order as the masters).
    pub channels: Vec<ColumnGenerationResult>,
    /// Per-channel iteration/adoption statistics — the measurable batching
    /// win (satellite: per-channel counts instead of a single global total).
    pub per_channel: Vec<ChannelRunStats>,
    /// Size of the shared column pool at the end of the run.
    pub pool_size: usize,
    /// Pool adoptions recorded across the run ([`ColumnPool::hits`]).
    pub pool_hits: usize,
    /// Pool evictions across the run ([`ColumnPool::evictions`]).
    pub pool_evictions: usize,
    /// Round-robin sweeps performed.
    pub sweeps: usize,
}

/// A family of related restricted masters (in the auction: one per channel)
/// sharing one batched solve context — a common column pool and cross-seeded
/// basis warm starts — instead of independent re-solves.
#[derive(Clone, Debug)]
pub struct BatchedMasters {
    masters: Vec<MasterProblem>,
    /// The managed shared pool: every column any oracle has generated,
    /// with usefulness metadata and bounded LRU-by-usefulness eviction.
    /// A pooled column records the master whose oracle produced it as its
    /// origin and is only offered to masters whose rows equal the
    /// origin's — row *indices* alone are not identity (a coefficient on
    /// "row 0" means something else under a different rhs or relation).
    pool: ColumnPool,
    /// Per master: [`ColumnPool::insertions`] watermark at its last visit
    /// (the has-the-pool-grown-since signal; `len` would regress under
    /// eviction).
    offered: Vec<usize>,
}

impl BatchedMasters {
    /// Wraps the given masters in a shared context with a
    /// [`DEFAULT_POOL_CAPACITY`]-bounded pool. The masters may have
    /// different rows — both pool sharing and warm-start seeding then only
    /// happen between masters with identical rows.
    pub fn new(masters: Vec<MasterProblem>) -> Self {
        Self::with_pool_capacity(masters, DEFAULT_POOL_CAPACITY)
    }

    /// Like [`new`](Self::new) with an explicit pool capacity
    /// (0 = unbounded).
    pub fn with_pool_capacity(masters: Vec<MasterProblem>, capacity: usize) -> Self {
        let offered = vec![0; masters.len()];
        BatchedMasters {
            masters,
            pool: ColumnPool::with_capacity(capacity),
            offered,
        }
    }

    /// The shared column pool (read-only; adds go through
    /// [`add_column`](Self::add_column)).
    pub fn pool(&self) -> &ColumnPool {
        &self.pool
    }

    /// Number of masters in the context.
    pub fn num_masters(&self) -> usize {
        self.masters.len()
    }

    /// The masters (channel order preserved).
    pub fn masters(&self) -> &[MasterProblem] {
        &self.masters
    }

    /// Mutable access to one master (e.g. to seed initial columns).
    pub fn master_mut(&mut self, c: usize) -> &mut MasterProblem {
        &mut self.masters[c]
    }

    /// Adds a column to master `c` **and** publishes it to the shared pool
    /// (for siblings whose rows equal `c`'s).
    pub fn add_column(&mut self, c: usize, column: GeneratedColumn) -> bool {
        let added = self.masters[c].add_column(column.clone());
        self.pool.offer(column, c);
        added
    }

    /// Seeds master `c`'s warm start from an already-solved sibling with
    /// identical rows, so only the first channel of a family pays the cold
    /// start. No-op when `c` already has a basis or no sibling fits.
    fn seed_from_sibling(&mut self, c: usize) {
        if self.masters[c].warm_start().is_some() {
            return;
        }
        let rows = self.masters[c].rows().to_vec();
        let seed = self
            .masters
            .iter()
            .enumerate()
            .filter(|&(s, m)| s != c && m.rows() == rows.as_slice())
            .find_map(|(_, m)| m.warm_start().cloned());
        if let Some(warm) = seed {
            self.masters[c].seed_warm_start(warm);
        }
    }

    /// Offers pool columns to master `c` at the given duals; returns how
    /// many were adopted.
    ///
    /// The **whole** pool is rescanned every time (tag de-duplication skips
    /// columns the master already holds): a column rejected at one round's
    /// duals can become improving after other columns pivot in, so a
    /// forward-only cursor would silently withhold it and the channel would
    /// settle on a non-optimal master. Only columns whose *origin master
    /// has identical rows* are offered — a coefficient on "row i" is only
    /// meaningful under the same relation and right-hand side, so matching
    /// row counts alone would adopt semantically foreign columns.
    fn offer_pool(&mut self, c: usize, duals: &[f64], tolerance: f64) -> usize {
        let sense = self.masters[c].lp.sense();
        let masters = &self.masters;
        let rows_c = masters[c].rows();
        let improving = self.pool.scan(duals, sense, tolerance, |e| {
            (e.origin == c || masters[e.origin].rows() == rows_c)
                && !masters[c].contains_tag(e.column.tag)
        });
        let mut adopted = 0usize;
        for col in improving {
            let tag = col.tag;
            if self.masters[c].add_column(col) {
                self.pool.note_hit(tag);
                adopted += 1;
            }
        }
        // `offered` is only the has-the-pool-grown-since-my-last-visit
        // signal for the outer sweep loop; adoption no longer consumes it.
        self.offered[c] = self.pool.insertions();
        adopted
    }

    /// Runs the batched column-generation loop. Channels are **drained in
    /// sequence**: each channel's master is re-solved (warm-started, seeding
    /// from a sibling on the first visit), adopts every improving pool
    /// column in bulk, then queries its own oracle — until a visit adds
    /// nothing. Draining (rather than round-robin) is what makes the pool
    /// pay: the first channel's oracle discovers the column set one pricing
    /// round at a time, and every later channel absorbs it in a handful of
    /// bulk re-solves instead of re-running the same discovery. Outer
    /// sweeps repeat until no channel has pending pool columns or oracle
    /// progress.
    ///
    /// # Errors
    /// Propagates the first channel whose master hits the simplex pivot
    /// budget, as [`ColumnGenerationError::IterationLimit`].
    pub fn run(
        &mut self,
        cg: &ColumnGeneration,
        sources: &mut [&mut dyn ColumnSource],
    ) -> Result<BatchedResult, ColumnGenerationError> {
        assert_eq!(sources.len(), self.masters.len(), "one oracle per master");
        let k = self.masters.len();
        let mut stats: Vec<ChannelRunStats> = vec![ChannelRunStats::default(); k];
        let mut results: Vec<Option<ColumnGenerationResult>> = (0..k).map(|_| None).collect();
        // a channel is revisited while it has pending pool columns or its
        // own oracle keeps producing
        let mut settled = vec![false; k];
        let mut sweeps = 0usize;
        loop {
            let mut visited_any = false;
            for c in 0..k {
                while !(settled[c] && self.offered[c] == self.pool.insertions()) {
                    if stats[c].rounds >= cg.max_rounds {
                        settled[c] = true;
                        self.offered[c] = self.pool.insertions();
                        break;
                    }
                    visited_any = true;
                    self.seed_from_sibling(c);
                    let solution = self.masters[c].solve_warm(&cg.simplex);
                    stats[c].rounds += 1;
                    stats[c].simplex_iterations += solution.iterations;
                    match &mut results[c] {
                        None => {
                            results[c] = Some(ColumnGenerationResult::from_single(
                                solution.clone(),
                                0,
                                false,
                            ))
                        }
                        Some(t) => {
                            t.absorb_solve(&solution);
                            t.solution = solution.clone();
                        }
                    }
                    if solution.status == LpStatus::IterationLimit {
                        let mut partial = results[c].take().expect("tallied above");
                        partial.rounds = stats[c].rounds;
                        return Err(ColumnGenerationError::IterationLimit {
                            partial: Box::new(partial),
                        });
                    }
                    if solution.status != LpStatus::Optimal {
                        settled[c] = true;
                        self.offered[c] = self.pool.insertions(); // cannot price further
                        break;
                    }
                    let adopted = self.offer_pool(c, &solution.duals, cg.reduced_cost_tolerance);
                    stats[c].columns_from_pool += adopted;
                    let sense = self.masters[c].lp.sense();
                    let mut oracle_added = false;
                    for col in sources[c].generate(&solution.duals) {
                        if col.is_improving(&solution.duals, sense, cg.reduced_cost_tolerance) {
                            let tag_is_new = !self.pool.contains_tag(col.tag);
                            if self.add_column(c, col) {
                                // Any successful add is progress (the master
                                // must re-solve), even when the tag was
                                // already pooled by a sibling — only genuinely
                                // new tags count toward the oracle stat.
                                oracle_added = true;
                                if tag_is_new {
                                    stats[c].columns_from_oracle += 1;
                                }
                            }
                        }
                    }
                    if adopted == 0 && !oracle_added {
                        settled[c] = true;
                        stats[c].converged = true;
                    } else {
                        settled[c] = false;
                        stats[c].converged = false;
                    }
                }
            }
            if !visited_any {
                break;
            }
            sweeps += 1;
        }
        let channels: Vec<ColumnGenerationResult> = results
            .into_iter()
            .zip(stats.iter())
            .map(|(r, s)| {
                let mut r = r.expect("every channel is visited at least once");
                r.rounds = s.rounds;
                r.converged = s.converged;
                r
            })
            .collect();
        Ok(BatchedResult {
            channels,
            per_channel: stats,
            pool_size: self.pool.len(),
            pool_hits: self.pool.hits(),
            pool_evictions: self.pool.evictions(),
            sweeps,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A knapsack-style LP solved by column generation over single-item
    /// columns: max Σ value_i x_i s.t. Σ weight_i x_i <= capacity, x_i <= 1.
    /// The pricing oracle proposes the item with the best reduced cost.
    #[test]
    fn knapsack_lp_via_column_generation() {
        let values = [6.0, 10.0, 12.0];
        let weights = [1.0, 2.0, 3.0];
        let capacity = 5.0;
        // rows: 0 = capacity, 1..=3 = per-item upper bounds
        let mut rows = vec![(Relation::Le, capacity)];
        for _ in 0..3 {
            rows.push((Relation::Le, 1.0));
        }
        let mut master = MasterProblem::new(Sense::Maximize, rows);

        let mut source = |duals: &[f64]| -> Vec<GeneratedColumn> {
            let mut best: Option<GeneratedColumn> = None;
            for i in 0..3 {
                let col = GeneratedColumn {
                    objective: values[i],
                    coeffs: vec![(0, weights[i]), (i + 1, 1.0)],
                    tag: i as u64,
                };
                let rc = col.reduced_cost(duals);
                if rc > 1e-7 {
                    match &best {
                        None => best = Some(col),
                        Some(b) => {
                            if rc > b.reduced_cost(duals) {
                                best = Some(col);
                            }
                        }
                    }
                }
            }
            best.into_iter().collect()
        };

        let cg = ColumnGeneration::default();
        let result = cg
            .run(&mut master, &mut source)
            .expect("column generation failed");
        assert!(result.converged);
        assert_eq!(result.solution.status, LpStatus::Optimal);
        // LP optimum: take items 1, 2, 3 fully (total weight 6 > 5), so the
        // fractional optimum is x = (1, 1, 2/3): 6 + 10 + 8 = 24.
        assert!((result.solution.objective - 24.0).abs() < 1e-5);
        // stats: one entry per master re-solve, totals add up
        assert_eq!(result.per_round_iterations.len(), result.rounds);
        assert_eq!(
            result.per_round_iterations.iter().sum::<usize>(),
            result.simplex_iterations
        );
    }

    #[test]
    fn empty_master_with_no_columns_is_fine() {
        let mut master = MasterProblem::new(Sense::Maximize, vec![(Relation::Le, 1.0)]);
        let mut source = |_: &[f64]| Vec::<GeneratedColumn>::new();
        let cg = ColumnGeneration::default();
        let result = cg
            .run(&mut master, &mut source)
            .expect("column generation failed");
        assert!(result.converged);
        assert_eq!(result.solution.objective, 0.0);
        assert_eq!(result.rounds, 1);
    }

    #[test]
    fn duplicate_tags_are_rejected() {
        let mut master = MasterProblem::new(Sense::Maximize, vec![(Relation::Le, 1.0)]);
        let col = GeneratedColumn {
            objective: 1.0,
            coeffs: vec![(0, 1.0)],
            tag: 7,
        };
        assert!(master.add_column(col.clone()));
        assert!(!master.add_column(col));
        assert_eq!(master.num_columns(), 1);
    }

    #[test]
    fn loop_terminates_when_oracle_keeps_repeating_columns() {
        // The oracle always proposes the same column; after the first round
        // the de-duplication must stop the loop.
        let mut master = MasterProblem::new(Sense::Maximize, vec![(Relation::Le, 2.0)]);
        let mut calls = 0usize;
        let mut source = |_duals: &[f64]| {
            calls += 1;
            vec![GeneratedColumn {
                objective: 1.0,
                coeffs: vec![(0, 1.0)],
                tag: 0,
            }]
        };
        let cg = ColumnGeneration::default();
        let result = cg
            .run(&mut master, &mut source)
            .expect("column generation failed");
        assert!(result.converged);
        assert!(result.rounds <= 3);
        assert!((result.solution.objective - 2.0).abs() < 1e-6);
    }

    /// Warm-started and cold-started column generation must agree: the warm
    /// path only changes the starting basis of each re-solve, never the
    /// optimum. Uses seeded knapsack-style masters of growing size.
    #[test]
    fn warm_and_cold_column_generation_reach_the_same_objective() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        for seed in 0..10u64 {
            let mut rng = StdRng::seed_from_u64(1000 + seed);
            let num_items = 4 + (seed as usize % 6);
            let values: Vec<f64> = (0..num_items)
                .map(|_| rng.random_range(1.0..10.0))
                .collect();
            let weights: Vec<f64> = (0..num_items).map(|_| rng.random_range(0.5..4.0)).collect();
            let capacity = rng.random_range(3.0..8.0);

            let build_master = || {
                let mut rows = vec![(Relation::Le, capacity)];
                for _ in 0..num_items {
                    rows.push((Relation::Le, 1.0));
                }
                MasterProblem::new(Sense::Maximize, rows)
            };
            let make_source = |values: Vec<f64>, weights: Vec<f64>| {
                move |duals: &[f64]| -> Vec<GeneratedColumn> {
                    let mut best: Option<(f64, GeneratedColumn)> = None;
                    for i in 0..values.len() {
                        let col = GeneratedColumn {
                            objective: values[i],
                            coeffs: vec![(0, weights[i]), (i + 1, 1.0)],
                            tag: i as u64,
                        };
                        let rc = col.reduced_cost(duals);
                        if rc > 1e-7 && best.as_ref().map(|(b, _)| rc > *b).unwrap_or(true) {
                            best = Some((rc, col));
                        }
                    }
                    best.map(|(_, c)| c).into_iter().collect()
                }
            };

            // warm (the default run loop)
            let cg = ColumnGeneration::default();
            let mut warm_master = build_master();
            let mut warm_source = make_source(values.clone(), weights.clone());
            let warm = cg
                .run(&mut warm_master, &mut warm_source)
                .expect("warm run failed");

            // cold: identical pricing loop but every master solve from scratch
            let mut cold_master = build_master();
            let cold_source = make_source(values.clone(), weights.clone());
            let cold_solution = loop {
                let solution = cold_master.solve(&cg.simplex);
                assert_eq!(solution.status, LpStatus::Optimal);
                let candidates = cold_source(&solution.duals);
                let mut added = false;
                for col in candidates {
                    if col.reduced_cost(&solution.duals) > cg.reduced_cost_tolerance
                        && cold_master.add_column(col)
                    {
                        added = true;
                    }
                }
                if !added {
                    break solution;
                }
            };

            assert!(warm.converged);
            assert!(
                (warm.solution.objective - cold_solution.objective).abs() < 1e-6,
                "seed {seed}: warm {} vs cold {}",
                warm.solution.objective,
                cold_solution.objective
            );
        }
    }

    /// Rows added through `add_row` must be absorbed by the dual-simplex
    /// path on the next warm solve — matching a cold solve of the grown
    /// master exactly, and reporting the repair pivots.
    #[test]
    fn row_additions_reoptimize_through_the_dual_simplex() {
        let mut master = MasterProblem::new(
            Sense::Maximize,
            vec![
                (Relation::Le, 4.0),
                (Relation::Le, 1.0),
                (Relation::Le, 1.0),
            ],
        );
        for i in 0..2 {
            master.add_column(GeneratedColumn {
                objective: 3.0 - i as f64,
                coeffs: vec![(0, 1.0), (i + 1, 1.0)],
                tag: i as u64,
            });
        }
        let options = SimplexOptions::default();
        let first = master.solve_warm(&options);
        assert_eq!(first.status, LpStatus::Optimal);
        assert!((first.objective - 5.0).abs() < 1e-7); // both columns at 1
        assert_eq!(master.last_dual_pivots(), 0);

        // a joint cap that cuts the optimum off
        master.add_row(Relation::Le, 1.0, vec![(0, 1.0), (1, 1.0)]);
        let second = master.solve_warm(&options);
        assert_eq!(second.status, LpStatus::Optimal);
        assert!((second.objective - 3.0).abs() < 1e-7); // only column 0
        assert!(master.last_dual_pivots() > 0, "dual repair must have run");

        // a cold solve of the same grown master agrees
        let cold = master.solve(&options);
        assert!((cold.objective - second.objective).abs() < 1e-9);

        // and the master keeps working for further column growth
        master.add_column(GeneratedColumn {
            objective: 10.0,
            coeffs: vec![(0, 1.0)],
            tag: 99,
        });
        let third = master.solve_warm(&options);
        assert_eq!(third.status, LpStatus::Optimal);
        assert!(third.objective > 3.0);
        assert_eq!(master.last_dual_pivots(), 0);
    }

    /// Re-pricing a column keeps the recorded basis usable: the next warm
    /// solve must reach the optimum of the re-priced LP (matching a cold
    /// solve) with plain primal pivots.
    #[test]
    fn repriced_columns_resume_from_the_recorded_basis() {
        let mut master = MasterProblem::new(
            Sense::Maximize,
            vec![
                (Relation::Le, 2.0),
                (Relation::Le, 1.0),
                (Relation::Le, 1.0),
            ],
        );
        for i in 0..2 {
            master.add_column(GeneratedColumn {
                objective: if i == 0 { 5.0 } else { 1.0 },
                coeffs: vec![(0, 1.0), (i + 1, 1.0)],
                tag: i as u64,
            });
        }
        let options = SimplexOptions::default();
        let first = master.solve_warm(&options);
        assert_eq!(first.status, LpStatus::Optimal);
        assert!((first.objective - 6.0).abs() < 1e-7);

        // the cheap column becomes the valuable one and vice versa
        master.set_column_objective(0, 0.5);
        master.set_column_objective(1, 7.0);
        let second = master.solve_warm(&options);
        assert_eq!(second.status, LpStatus::Optimal);
        assert!(
            (second.objective - 7.5).abs() < 1e-7,
            "{}",
            second.objective
        );
        let cold = master.solve(&options);
        assert!((cold.objective - second.objective).abs() < 1e-9);
        assert_eq!(master.columns()[1].objective, 7.0);
    }

    #[test]
    fn iteration_limit_is_surfaced_as_an_error() {
        // A pivot budget of 1 cannot optimize a 3-column master: the run
        // must fail loudly instead of returning the truncated solution.
        let mut master = MasterProblem::new(
            Sense::Maximize,
            vec![
                (Relation::Le, 4.0),
                (Relation::Le, 1.0),
                (Relation::Le, 1.0),
                (Relation::Le, 1.0),
            ],
        );
        for i in 0..3 {
            master.add_column(GeneratedColumn {
                objective: (i + 1) as f64,
                coeffs: vec![(0, 1.0), (i + 1, 1.0)],
                tag: i as u64,
            });
        }
        let cg = ColumnGeneration {
            simplex: SimplexOptions {
                max_iterations: 1,
                ..Default::default()
            },
            ..Default::default()
        };
        let mut source = |_: &[f64]| Vec::<GeneratedColumn>::new();
        match cg.run(&mut master, &mut source) {
            Err(ColumnGenerationError::IterationLimit { partial }) => {
                assert_eq!(partial.solution.status, LpStatus::IterationLimit);
            }
            other => panic!("expected IterationLimit error, got {other:?}"),
        }
    }

    #[test]
    fn per_round_adoption_cap_ranks_by_reduced_cost_and_stays_exact() {
        // Three unit-capacity rows; the source proposes one singleton
        // column per uncovered row every round. With a cap of 1 the driver
        // must adopt the most improving candidate first (largest
        // objective at zero duals) and still reach the full optimum of 6.
        let rows = vec![
            (Relation::Le, 1.0),
            (Relation::Le, 1.0),
            (Relation::Le, 1.0),
        ];
        let mut master = MasterProblem::new(Sense::Maximize, rows);
        let mut source = |duals: &[f64]| {
            (0..3usize)
                .filter_map(|r| {
                    let col = GeneratedColumn {
                        objective: (r + 1) as f64,
                        coeffs: vec![(r, 1.0)],
                        tag: r as u64,
                    };
                    (col.reduced_cost(duals) > 1e-7).then_some(col)
                })
                .collect::<Vec<_>>()
        };
        let cg = ColumnGeneration {
            max_columns_per_round: 1,
            ..Default::default()
        };
        let result = cg.run(&mut master, &mut source).expect("capped run");
        assert!(result.converged);
        assert!((result.solution.objective - 6.0).abs() < 1e-7);
        assert_eq!(result.columns_generated, 3);
        assert!(result.columns_per_round.iter().all(|&c| c <= 1));
        // Adoption order is strongest-first: tags 2, 1, 0.
        let adopted: Vec<u64> = master.columns().iter().map(|c| c.tag).collect();
        assert_eq!(adopted, vec![2, 1, 0]);
    }

    #[test]
    fn covering_master_in_minimization_sense() {
        // min Σ λ_l s.t. coverage >= demand; columns are "patterns".
        // Two rows with demand 1 each; pattern A covers row 0, pattern B
        // covers row 1, pattern C covers both. Optimum: take C once.
        let rows = vec![(Relation::Ge, 1.0), (Relation::Ge, 1.0)];
        let mut master = MasterProblem::new(Sense::Minimize, rows);
        // seed with the two singleton patterns so the master is feasible
        master.add_column(GeneratedColumn {
            objective: 1.0,
            coeffs: vec![(0, 1.0)],
            tag: 0,
        });
        master.add_column(GeneratedColumn {
            objective: 1.0,
            coeffs: vec![(1, 1.0)],
            tag: 1,
        });
        let mut source = |duals: &[f64]| {
            // propose the combined pattern when its reduced cost is negative
            let col = GeneratedColumn {
                objective: 1.0,
                coeffs: vec![(0, 1.0), (1, 1.0)],
                tag: 2,
            };
            if col.reduced_cost(duals) < -1e-7 {
                vec![col]
            } else {
                Vec::new()
            }
        };
        let cg = ColumnGeneration::default();
        let result = cg
            .run(&mut master, &mut source)
            .expect("column generation failed");
        assert!(result.converged);
        assert!((result.solution.objective - 1.0).abs() < 1e-6);
        assert_eq!(master.num_columns(), 3);
    }

    /// A family of k knapsack channels over the same items: batched and
    /// independent runs must reach the same per-channel optima, and the
    /// batched run must source most columns from the pool.
    #[test]
    fn batched_masters_match_independent_runs() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        let k = 4;
        let n = 12;
        let mut rng = StdRng::seed_from_u64(777);
        let weights: Vec<f64> = (0..n).map(|_| rng.random_range(0.5..3.0)).collect();
        let capacity = 6.0;
        // The pool shares columns *by tag*, so all channels must price a tag
        // identically: the channels here are the same knapsack (the paper's
        // symmetric-channel situation), which is exactly when batching pays.
        let base: Vec<f64> = (0..n).map(|_| rng.random_range(1.0..10.0)).collect();

        let build_rows = || {
            let mut rows = vec![(Relation::Le, capacity)];
            for _ in 0..n {
                rows.push((Relation::Le, 1.0));
            }
            rows
        };
        let make_source = |values: Vec<f64>, weights: Vec<f64>| {
            move |duals: &[f64]| -> Vec<GeneratedColumn> {
                let mut best: Option<(f64, GeneratedColumn)> = None;
                for i in 0..values.len() {
                    let col = GeneratedColumn {
                        objective: values[i],
                        coeffs: vec![(0, weights[i]), (i + 1, 1.0)],
                        tag: i as u64,
                    };
                    let rc = col.reduced_cost(duals);
                    if rc > 1e-7 && best.as_ref().map(|(b, _)| rc > *b).unwrap_or(true) {
                        best = Some((rc, col));
                    }
                }
                best.map(|(_, c)| c).into_iter().collect()
            }
        };

        let shared_values = base.clone();

        let cg = ColumnGeneration::default();

        // independent (the PR 1 baseline): one warm-started run per channel
        let mut independent = Vec::new();
        for _ in 0..k {
            let mut master = MasterProblem::new(Sense::Maximize, build_rows());
            let mut src = make_source(shared_values.clone(), weights.clone());
            let r = cg
                .run(&mut master, &mut src)
                .expect("independent run failed");
            independent.push(r);
        }

        // batched: same masters, shared context
        let masters: Vec<MasterProblem> = (0..k)
            .map(|_| MasterProblem::new(Sense::Maximize, build_rows()))
            .collect();
        let mut batched = BatchedMasters::new(masters);
        let result = {
            let mut srcs: Vec<_> = (0..k)
                .map(|_| make_source(shared_values.clone(), weights.clone()))
                .collect();
            let mut src_refs: Vec<&mut dyn ColumnSource> = srcs
                .iter_mut()
                .map(|s| s as &mut dyn ColumnSource)
                .collect();
            batched.run(&cg, &mut src_refs).expect("batched run failed")
        };

        assert_eq!(result.channels.len(), k);
        let mut pool_adoptions = 0usize;
        for (c, ind) in independent.iter().enumerate() {
            assert!(result.per_channel[c].converged, "channel {c} must converge");
            assert!(
                (result.channels[c].solution.objective - ind.solution.objective).abs() < 1e-6,
                "channel {c}: batched {} vs independent {}",
                result.channels[c].solution.objective,
                ind.solution.objective
            );
            pool_adoptions += result.per_channel[c].columns_from_pool;
        }
        assert!(
            pool_adoptions > 0,
            "identical channels must adopt columns from the shared pool"
        );
        // the batching win: strictly fewer total master re-solves than the
        // independent per-channel loops
        let batched_rounds: usize = result.per_channel.iter().map(|s| s.rounds).sum();
        let independent_rounds: usize = independent.iter().map(|r| r.rounds).sum();
        assert!(
            batched_rounds < independent_rounds,
            "batched {batched_rounds} rounds vs independent {independent_rounds}"
        );
    }

    #[test]
    fn batched_masters_with_mismatched_rows_stay_correct() {
        // The channels have different rows, so NO pool column may cross
        // between them (a coefficient on "row 0" means different things
        // under different rhs) and each must converge to its own optimum.
        let rows0 = vec![(Relation::Le, 2.0), (Relation::Le, 1.0)];
        let rows1 = vec![(Relation::Le, 2.0)];
        let m0 = MasterProblem::new(Sense::Maximize, rows0);
        let m1 = MasterProblem::new(Sense::Maximize, rows1);
        let mut batched = BatchedMasters::new(vec![m0, m1]);
        let mut s0 = |duals: &[f64]| {
            let col = GeneratedColumn {
                objective: 3.0,
                coeffs: vec![(0, 1.0), (1, 1.0)],
                tag: 100,
            };
            if col.reduced_cost(duals) > 1e-7 {
                vec![col]
            } else {
                Vec::new()
            }
        };
        let mut s1 = |duals: &[f64]| {
            let col = GeneratedColumn {
                objective: 1.0,
                coeffs: vec![(0, 1.0)],
                tag: 200,
            };
            if col.reduced_cost(duals) > 1e-7 {
                vec![col]
            } else {
                Vec::new()
            }
        };
        let mut refs: Vec<&mut dyn ColumnSource> = vec![&mut s0, &mut s1];
        let cg = ColumnGeneration::default();
        let result = batched.run(&cg, &mut refs).expect("batched run failed");
        assert!(result.per_channel.iter().all(|s| s.converged));
        // own optima, no cross-contamination
        assert!((result.channels[0].solution.objective - 3.0).abs() < 1e-6);
        assert!((result.channels[1].solution.objective - 2.0).abs() < 1e-6);
        assert_eq!(result.per_channel[0].columns_from_pool, 0);
        assert_eq!(result.per_channel[1].columns_from_pool, 0);
    }

    #[test]
    fn pool_columns_rejected_once_are_reoffered_at_later_duals() {
        // Channel 0 pools X (obj 4, row 0) and V (obj 9, row 1). Channel 1
        // starts from a pre-seeded column A (obj 10, both rows): at A's
        // duals one of X/V prices out, but after the other pivots in the
        // duals shift and the rejected one becomes improving. A forward-only
        // offer cursor would withhold it forever and channel 1 would settle
        // at 10; the rescanning pool must deliver both and reach 13 even
        // though channel 1's own oracle produces nothing.
        let rows = || vec![(Relation::Le, 1.0), (Relation::Le, 1.0)];
        let m0 = MasterProblem::new(Sense::Maximize, rows());
        let mut m1 = MasterProblem::new(Sense::Maximize, rows());
        m1.add_column(GeneratedColumn {
            objective: 10.0,
            coeffs: vec![(0, 1.0), (1, 1.0)],
            tag: 0,
        });
        let mut batched = BatchedMasters::new(vec![m0, m1]);
        let mut s0 = |duals: &[f64]| {
            let candidates = [
                GeneratedColumn {
                    objective: 4.0,
                    coeffs: vec![(0, 1.0)],
                    tag: 1,
                },
                GeneratedColumn {
                    objective: 9.0,
                    coeffs: vec![(1, 1.0)],
                    tag: 2,
                },
            ];
            candidates
                .into_iter()
                .filter(|c| c.reduced_cost(duals) > 1e-7)
                .collect()
        };
        let mut s1 = |_: &[f64]| Vec::<GeneratedColumn>::new();
        let mut refs: Vec<&mut dyn ColumnSource> = vec![&mut s0, &mut s1];
        let cg = ColumnGeneration::default();
        let result = batched.run(&cg, &mut refs).expect("batched run failed");
        assert!(result.per_channel.iter().all(|s| s.converged));
        assert!((result.channels[0].solution.objective - 13.0).abs() < 1e-6);
        assert!(
            (result.channels[1].solution.objective - 13.0).abs() < 1e-6,
            "channel 1 settled at {} — a once-rejected pool column was never re-offered",
            result.channels[1].solution.objective
        );
        assert_eq!(result.per_channel[1].columns_from_pool, 2);
    }

    /// Deactivating the binding capacity row must free the optimum through
    /// the relief column on a plain warm resume — no rebuild, no row
    /// renumbering — and a later compaction must physically remove the row
    /// while preserving the optimum.
    #[test]
    fn deactivating_a_binding_row_relaxes_the_master_in_place() {
        let mut master = MasterProblem::new(
            Sense::Maximize,
            vec![
                (Relation::Le, 1.0), // shared capacity (binding)
                (Relation::Le, 1.0),
                (Relation::Le, 1.0),
            ],
        );
        for i in 0..2 {
            master.add_column(GeneratedColumn {
                objective: 3.0 - i as f64,
                coeffs: vec![(0, 1.0), (i + 1, 1.0)],
                tag: i as u64,
            });
        }
        let options = SimplexOptions::default();
        let first = master.solve_warm(&options);
        assert_eq!(first.status, LpStatus::Optimal);
        assert!((first.objective - 3.0).abs() < 1e-7); // capacity binds

        master.deactivate_rows(&[0]);
        assert_eq!(master.rows_deactivated(), 1);
        assert_eq!(master.num_active_rows(), 2);
        assert!(!master.is_row_active(0));
        let second = master.solve_warm(&options);
        assert_eq!(second.status, LpStatus::Optimal);
        assert!(
            (second.objective - 5.0).abs() < 1e-7,
            "both columns fully served once the capacity row is relaxed, got {}",
            second.objective
        );
        // the relaxed row's dual is (numerically) zero at the new optimum
        assert!(second.duals[0].abs() < 1e-6);

        let report = master.compact();
        assert_eq!(master.compactions(), 1);
        assert_eq!(report.row_map, vec![None, Some(0), Some(1)]);
        assert_eq!(master.num_rows(), 2);
        assert_eq!(master.num_columns(), 2); // relief column removed
        let third = master.solve_warm(&options);
        assert_eq!(third.status, LpStatus::Optimal);
        assert!((third.objective - 5.0).abs() < 1e-7);
    }

    /// Fixing a column at zero retires it even when it was basic at a
    /// positive value, tombstones its tag so the native tag can be re-used,
    /// and compaction removes it physically.
    #[test]
    fn fixed_columns_are_retired_and_their_tags_freed() {
        let mut master = MasterProblem::new(
            Sense::Maximize,
            vec![(Relation::Le, 2.0), (Relation::Le, 1.0)],
        );
        master.add_column(GeneratedColumn {
            objective: 5.0,
            coeffs: vec![(0, 1.0), (1, 1.0)],
            tag: 7,
        });
        let options = SimplexOptions::default();
        let first = master.solve_warm(&options);
        assert!((first.objective - 5.0).abs() < 1e-7);

        master.fix_columns(&[0]);
        assert!(!master.contains_tag(7), "the native tag must be freed");
        // the freed tag can be re-used by a different column
        assert!(master.add_column(GeneratedColumn {
            objective: 2.0,
            coeffs: vec![(0, 1.0)],
            tag: 7,
        }));
        let second = master.solve_warm(&options);
        assert_eq!(second.status, LpStatus::Optimal);
        assert!(
            (second.objective - 4.0).abs() < 1e-7,
            "only the replacement column may carry value, got {}",
            second.objective
        );
        let report = master.compact();
        assert_eq!(report.column_map, vec![None, Some(0)]);
        assert_eq!(master.num_columns(), 1);
        let third = master.solve_warm(&options);
        assert!((third.objective - 4.0).abs() < 1e-7);
    }

    /// The full lifecycle — deactivate → re-solve → compact → re-solve →
    /// grow — must match `lp::dense` on the independently built survivor LP
    /// at every step, across all pricing × basis engine combinations,
    /// including duplicated (degenerate / rank-deficient) rows.
    #[test]
    fn lifecycle_matches_dense_on_the_survivor_lp_across_engines() {
        use crate::basis::BasisKind;
        use crate::dense;
        use crate::pricing::PricingRule;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        let engines: Vec<SimplexOptions> = {
            let mut out = Vec::new();
            for pricing in [PricingRule::Dantzig, PricingRule::Bland, PricingRule::Devex] {
                for basis in [BasisKind::ProductForm, BasisKind::SparseLu] {
                    out.push(SimplexOptions::default().with_engine(pricing, basis));
                }
            }
            out
        };

        for seed in 0..5u64 {
            let mut rng = StdRng::seed_from_u64(5200 + seed);
            let n_cols = 5 + (seed as usize % 4);
            let n_shared = 3 + (seed as usize % 2);
            // shared packing rows; row n_shared duplicates row 0 verbatim
            // (deactivating one of the pair leaves a degenerate twin, and
            // deactivating both leaves a rank-deficient history)
            let mut rows: Vec<(Relation, f64)> = (0..n_shared)
                .map(|_| (Relation::Le, rng.random_range(1.0..5.0)))
                .collect();
            rows.push(rows[0]);
            let bound_base = rows.len();
            for _ in 0..n_cols {
                rows.push((Relation::Le, rng.random_range(0.5..2.0)));
            }
            // column data: coefficients on shared rows (the duplicate row
            // copies row 0's coefficient) + its own bound row
            let objectives: Vec<f64> = (0..n_cols).map(|_| rng.random_range(1.0..8.0)).collect();
            let shared: Vec<Vec<f64>> = (0..n_cols)
                .map(|_| {
                    (0..n_shared)
                        .map(|_| {
                            if rng.random_range(0.0..1.0) < 0.7 {
                                rng.random_range(0.2..2.0)
                            } else {
                                0.0
                            }
                        })
                        .collect()
                })
                .collect();
            let column = |c: usize| -> GeneratedColumn {
                let mut coeffs: Vec<(usize, f64)> = Vec::new();
                for (r, &a) in shared[c].iter().enumerate() {
                    if a != 0.0 {
                        coeffs.push((r, a));
                    }
                }
                if shared[c][0] != 0.0 {
                    coeffs.push((n_shared, shared[c][0])); // the duplicate row
                }
                coeffs.push((bound_base + c, 1.0));
                GeneratedColumn {
                    objective: objectives[c],
                    coeffs,
                    tag: c as u64,
                }
            };

            // deactivate the duplicate pair's second copy plus one more
            // shared row; fix one column that the first solve likely serves
            let kill_rows = vec![n_shared, 1usize];
            let kill_cols = vec![0usize];

            // the survivor LP, built independently for the dense oracle
            let dense_survivor = |extra: Option<(f64, Vec<(usize, f64)>)>| -> LinearProgram {
                let mut lp = LinearProgram::new(Sense::Maximize);
                let mut var_of = vec![None; n_cols + 1];
                for c in 0..n_cols {
                    if !kill_cols.contains(&c) {
                        var_of[c] = Some(lp.add_variable(objectives[c]));
                    }
                }
                if let Some((obj, _)) = &extra {
                    var_of[n_cols] = Some(lp.add_variable(*obj));
                }
                let survives = |r: usize| !kill_rows.contains(&r);
                for (r, &(rel, rhs)) in rows.iter().enumerate() {
                    if !survives(r) {
                        continue;
                    }
                    let mut coeffs: Vec<(usize, f64)> = Vec::new();
                    for c in 0..n_cols {
                        let Some(v) = var_of[c] else { continue };
                        let a = if r < n_shared {
                            shared[c][r]
                        } else if r == n_shared {
                            shared[c][0]
                        } else if r == bound_base + c {
                            1.0
                        } else {
                            0.0
                        };
                        if a != 0.0 {
                            coeffs.push((v, a));
                        }
                    }
                    if let Some((_, extra_coeffs)) = &extra {
                        if let Some(v) = var_of[n_cols] {
                            for &(er, a) in extra_coeffs {
                                if er == r {
                                    coeffs.push((v, a));
                                }
                            }
                        }
                    }
                    lp.add_constraint(coeffs, rel, rhs);
                }
                lp
            };

            for options in &engines {
                let label = format!(
                    "seed {seed} engine {}x{}",
                    options.pricing.name(),
                    options.basis.name()
                );
                let mut master = MasterProblem::new(Sense::Maximize, rows.clone());
                for c in 0..n_cols {
                    master.add_column(column(c));
                }
                let first = master.solve_warm(options);
                assert_eq!(first.status, LpStatus::Optimal, "{label}");

                // deactivate + fix, then a warm primal resume
                master.fix_columns(&kill_cols);
                master.deactivate_rows(&kill_rows);
                let warm = master.solve_warm(options);
                assert_eq!(warm.status, LpStatus::Optimal, "{label}");
                let oracle = dense::solve(&dense_survivor(None), &SimplexOptions::default());
                assert_eq!(oracle.status, LpStatus::Optimal, "{label}");
                assert!(
                    (warm.objective - oracle.objective).abs() < 1e-6,
                    "{label}: warm-after-deactivation {} vs dense survivor {}",
                    warm.objective,
                    oracle.objective
                );

                // compact, re-solve, and compare again
                let report = master.compact();
                for &r in &kill_rows {
                    assert!(report.row_map[r].is_none(), "{label}");
                }
                for &c in &kill_cols {
                    assert!(report.column_map[c].is_none(), "{label}");
                }
                let compacted = master.solve_warm(options);
                assert_eq!(compacted.status, LpStatus::Optimal, "{label}");
                assert!(
                    (compacted.objective - oracle.objective).abs() < 1e-6,
                    "{label}: post-compaction {} vs dense survivor {}",
                    compacted.objective,
                    oracle.objective
                );

                // the master keeps working: grow a column on remapped rows
                let new_row = report.row_map[2].expect("row 2 survives");
                let extra_obj = 6.0;
                assert!(master.add_column(GeneratedColumn {
                    objective: extra_obj,
                    coeffs: vec![(new_row, 1.0)],
                    tag: 4096,
                }));
                let grown = master.solve_warm(options);
                assert_eq!(grown.status, LpStatus::Optimal, "{label}");
                let oracle_grown = dense::solve(
                    &dense_survivor(Some((extra_obj, vec![(2, 1.0)]))),
                    &SimplexOptions::default(),
                );
                assert!(
                    (grown.objective - oracle_grown.objective).abs() < 1e-6,
                    "{label}: grown {} vs dense {}",
                    grown.objective,
                    oracle_grown.objective
                );
            }
        }
    }

    /// Deactivation composes with the dual-simplex row-addition path: rows
    /// added after a deactivation are still absorbed warm, and the optimum
    /// matches a cold solve.
    #[test]
    fn deactivation_composes_with_row_additions() {
        let mut master = MasterProblem::new(
            Sense::Maximize,
            vec![
                (Relation::Le, 2.0),
                (Relation::Le, 1.0),
                (Relation::Le, 1.0),
            ],
        );
        for i in 0..2 {
            master.add_column(GeneratedColumn {
                objective: 2.0 + i as f64,
                coeffs: vec![(0, 1.0), (i + 1, 1.0)],
                tag: i as u64,
            });
        }
        let options = SimplexOptions::default();
        let first = master.solve_warm(&options);
        assert_eq!(first.status, LpStatus::Optimal);

        // relax the shared capacity, resume, then tighten with a new row
        master.deactivate_rows(&[0]);
        let relaxed = master.solve_warm(&options);
        assert!((relaxed.objective - 5.0).abs() < 1e-7);
        master.add_row(Relation::Le, 0.5, vec![(1, 1.0)]);
        let tightened = master.solve_warm(&options);
        assert_eq!(tightened.status, LpStatus::Optimal);
        let cold = master.solve(&options);
        assert!(
            (tightened.objective - cold.objective).abs() < 1e-9,
            "warm {} vs cold {}",
            tightened.objective,
            cold.objective
        );
        assert!((tightened.objective - 3.5).abs() < 1e-7);
    }

    #[test]
    fn pool_sharing_requires_identical_rows_not_just_counts() {
        // Same row COUNT but different rhs: a capacity-10 column must not
        // leak into the capacity-5 channel even though its row indices fit.
        let m0 = MasterProblem::new(Sense::Maximize, vec![(Relation::Le, 5.0)]);
        let m1 = MasterProblem::new(Sense::Maximize, vec![(Relation::Le, 10.0)]);
        let mut batched = BatchedMasters::new(vec![m0, m1]);
        let mut s0 = |duals: &[f64]| {
            let col = GeneratedColumn {
                objective: 1.0,
                coeffs: vec![(0, 1.0)],
                tag: 1,
            };
            if col.reduced_cost(duals) > 1e-7 {
                vec![col]
            } else {
                Vec::new()
            }
        };
        let mut s1 = |duals: &[f64]| {
            let col = GeneratedColumn {
                objective: 3.0,
                coeffs: vec![(0, 8.0)],
                tag: 2,
            };
            if col.reduced_cost(duals) > 1e-7 {
                vec![col]
            } else {
                Vec::new()
            }
        };
        let mut refs: Vec<&mut dyn ColumnSource> = vec![&mut s0, &mut s1];
        let cg = ColumnGeneration::default();
        let result = batched.run(&cg, &mut refs).expect("batched run failed");
        assert!(result.per_channel.iter().all(|s| s.converged));
        // channel 0: x <= 5 with its own column only -> 5; adopting the
        // foreign (obj 3, weight 8) column would report 5/8*3 + ... a
        // different support
        assert!((result.channels[0].solution.objective - 5.0).abs() < 1e-6);
        assert_eq!(result.per_channel[0].columns_from_pool, 0);
        assert_eq!(result.per_channel[1].columns_from_pool, 0);
        assert_eq!(batched.masters()[0].num_columns(), 1);
        assert_eq!(batched.masters()[1].num_columns(), 1);
    }

    /// The knapsack LP of [`knapsack_lp_via_column_generation`] as a
    /// reusable fixture for the stabilization tests.
    fn knapsack_fixture() -> (MasterProblem, impl FnMut(&[f64]) -> Vec<GeneratedColumn>) {
        let values = [6.0, 10.0, 12.0];
        let weights = [1.0, 2.0, 3.0];
        let mut rows = vec![(Relation::Le, 5.0)];
        for _ in 0..3 {
            rows.push((Relation::Le, 1.0));
        }
        let master = MasterProblem::new(Sense::Maximize, rows);
        let source = move |duals: &[f64]| -> Vec<GeneratedColumn> {
            let mut best: Option<GeneratedColumn> = None;
            for i in 0..3 {
                let col = GeneratedColumn {
                    objective: values[i],
                    coeffs: vec![(0, weights[i]), (i + 1, 1.0)],
                    tag: i as u64,
                };
                let rc = col.reduced_cost(duals);
                if rc > 1e-7 {
                    match &best {
                        None => best = Some(col),
                        Some(b) => {
                            if rc > b.reduced_cost(duals) {
                                best = Some(col);
                            }
                        }
                    }
                }
            }
            best.into_iter().collect()
        };
        (master, source)
    }

    #[test]
    fn smoothing_reaches_the_unstabilized_optimum() {
        for &alpha in &[0.1, 0.5, 0.9, 0.99] {
            let (mut master, mut source) = knapsack_fixture();
            let cg = ColumnGeneration {
                stabilization: Stabilization::Smoothing { alpha },
                ..Default::default()
            };
            let result = cg.run(&mut master, &mut source).expect("stabilized run");
            assert!(result.converged, "alpha={alpha}");
            assert!(
                (result.solution.objective - 24.0).abs() < 1e-5,
                "alpha={alpha}: objective {}",
                result.solution.objective
            );
            assert_eq!(result.columns_per_round.len(), result.pricing_rounds);
            assert_eq!(
                result.columns_per_round.iter().sum::<usize>(),
                result.columns_generated
            );
        }
    }

    #[test]
    fn box_step_reaches_the_unstabilized_optimum_and_retires_its_columns() {
        let (mut master, mut source) = knapsack_fixture();
        let cg = ColumnGeneration {
            stabilization: Stabilization::BoxStep {
                penalty: 5.0,
                width: 1.0,
            },
            ..Default::default()
        };
        let result = cg.run(&mut master, &mut source).expect("box-step run");
        assert!(result.converged);
        assert!(
            (result.solution.objective - 24.0).abs() < 1e-5,
            "objective {}",
            result.solution.objective
        );
        // The box machinery is always dismantled before run() returns:
        // every penalty column is fixed (zero objective, barred from
        // entering), so a later warm re-solve on the same master
        // reproduces the unstabilized optimum. A *lift* column (all-
        // positive coefficients) may linger basic in pure row slack —
        // provably harmless (`fixed_value_is_harmless`) — but any *cap*
        // column (its negative row coefficient could relax a constraint)
        // must be at zero: the warm-start validator rejects those, forcing
        // a clean cold start.
        let warm = master.solve_warm(&SimplexOptions::default());
        assert_eq!(warm.status, LpStatus::Optimal);
        assert!((warm.objective - 24.0).abs() < 1e-5);
        for (idx, col) in master.columns().iter().enumerate() {
            let is_cap = col.coeffs.iter().any(|&(_, a)| a < 0.0);
            if is_stabilization_tag(col.tag) && is_cap {
                assert!(
                    warm.x.get(idx).copied().unwrap_or(0.0).abs() < 1e-9,
                    "retired cap column {idx} still active"
                );
            }
        }
    }

    /// Regression: a column with a negative row coefficient that sits in
    /// the recorded basis — even at value 0 — must poison the warm start
    /// when fixed, because later pivots of *other* columns can grow a
    /// basic variable the enterable mask no longer protects. A retired
    /// box cap left basic this way silently relaxed its row and reported
    /// an objective above the true optimum.
    #[test]
    fn fixing_a_basic_nonharmless_column_scrubs_the_warm_start() {
        let rows = vec![(Relation::Le, 1.0), (Relation::Le, 1.0)];
        let mut master = MasterProblem::new(Sense::Maximize, rows);
        master.add_column(GeneratedColumn {
            objective: 1.0,
            coeffs: vec![(0, 1.0)],
            tag: 0,
        });
        master.add_column(GeneratedColumn {
            objective: 0.5,
            coeffs: vec![(0, -1.0), (1, 1.0)],
            tag: 1,
        });
        let first = master.solve_warm(&SimplexOptions::default());
        assert_eq!(first.status, LpStatus::Optimal);
        assert!((first.objective - 2.5).abs() < 1e-6, "{}", first.objective);
        assert!(master.warm_start().is_some());
        master.fix_columns(&[1]);
        assert!(
            master.warm_start().is_none(),
            "a basic non-harmless column must poison the recorded basis"
        );
        let refixed = master.solve_warm(&SimplexOptions::default());
        assert_eq!(refixed.status, LpStatus::Optimal);
        assert!(
            (refixed.objective - 1.0).abs() < 1e-6,
            "{}",
            refixed.objective
        );
        assert!(refixed.x[1].abs() < 1e-9, "fixed column active");
    }

    #[test]
    fn box_step_on_minimize_masters_is_a_no_op() {
        // Penalty columns would *relax* covering rows under Minimize, so
        // the installer declines; the run must match the unstabilized one.
        let run = |stabilization: Stabilization| {
            let rows = vec![(Relation::Ge, 4.0), (Relation::Ge, 3.0)];
            let mut master = MasterProblem::new(Sense::Minimize, rows);
            // Seed the singleton patterns so the covering master is
            // feasible before pricing starts (as in
            // `covering_master_in_minimization_sense`).
            master.add_column(GeneratedColumn {
                objective: 2.0,
                coeffs: vec![(0, 1.0)],
                tag: 0,
            });
            master.add_column(GeneratedColumn {
                objective: 2.0,
                coeffs: vec![(1, 1.0)],
                tag: 1,
            });
            let mut source = |duals: &[f64]| -> Vec<GeneratedColumn> {
                let col = GeneratedColumn {
                    objective: 3.0,
                    coeffs: vec![(0, 1.0), (1, 1.0)],
                    tag: 2,
                };
                if col.reduced_cost(duals) < -1e-7 {
                    vec![col]
                } else {
                    Vec::new()
                }
            };
            let cg = ColumnGeneration {
                stabilization,
                ..Default::default()
            };
            cg.run(&mut master, &mut source).expect("covering run")
        };
        let plain = run(Stabilization::Off);
        let boxed = run(Stabilization::BoxStep {
            penalty: 5.0,
            width: 1.0,
        });
        assert!(plain.converged && boxed.converged);
        assert!((plain.solution.objective - boxed.solution.objective).abs() < 1e-9);
        assert_eq!(boxed.stabilization_misprices, 0);
    }

    #[test]
    fn mispriced_smoothed_round_guard_fires() {
        // An oracle keyed on the exact duals: column 1 is only proposed at
        // the TRUE post-round-1 duals (y = 2), never at the smoothed point
        // the stabilized loop prices first — so convergence depends on the
        // exactness guard re-pricing at the true duals.
        let mut master = MasterProblem::new(Sense::Maximize, vec![(Relation::Le, 1.0)]);
        let mut source = |duals: &[f64]| -> Vec<GeneratedColumn> {
            let y = duals[0];
            if y.abs() < 1e-9 {
                vec![GeneratedColumn {
                    objective: 2.0,
                    coeffs: vec![(0, 1.0)],
                    tag: 0,
                }]
            } else if (y - 2.0).abs() < 1e-9 {
                vec![GeneratedColumn {
                    objective: 3.0,
                    coeffs: vec![(0, 1.0)],
                    tag: 1,
                }]
            } else {
                Vec::new()
            }
        };
        let cg = ColumnGeneration {
            stabilization: Stabilization::Smoothing { alpha: 0.9 },
            ..Default::default()
        };
        let result = cg.run(&mut master, &mut source).expect("guarded run");
        assert!(result.converged);
        // Without the guard the loop would stop at 2.0 (the smoothed round
        // found nothing); the true optimum takes column 1.
        assert!(
            (result.solution.objective - 3.0).abs() < 1e-6,
            "objective {}",
            result.solution.objective
        );
        assert!(
            result.stabilization_misprices >= 1,
            "guard never fired: {result:?}"
        );
    }

    #[test]
    fn round_series_is_a_capped_ring_buffer() {
        let mut series = RoundSeries::default();
        for i in 0..ROUND_SERIES_CAP + 10 {
            series.push(i);
        }
        assert_eq!(series.pushes(), ROUND_SERIES_CAP + 10);
        assert_eq!(series.len(), ROUND_SERIES_CAP);
        assert_eq!(series.recorded().first().copied(), Some(10));
        assert_eq!(
            series.recorded().last().copied(),
            Some(ROUND_SERIES_CAP + 9)
        );
    }

    #[test]
    fn column_pool_evicts_the_least_useful_entry() {
        let col = |tag: u64| GeneratedColumn {
            objective: tag as f64,
            coeffs: vec![(0, 1.0)],
            tag,
        };
        let mut pool = ColumnPool::with_capacity(2);
        assert!(pool.offer(col(0), 0));
        assert!(!pool.offer(col(0), 0), "duplicate tags are rejected");
        assert!(pool.offer(col(1), 0));
        pool.note_hit(0);
        // Over capacity: the un-hit entry 1 is the least useful (fewest
        // hits), so it goes — not the just-inserted entry 2.
        assert!(pool.offer(col(2), 1));
        assert_eq!(pool.len(), 2);
        assert!(pool.contains_tag(0) && pool.contains_tag(2) && !pool.contains_tag(1));
        assert_eq!(pool.insertions(), 3);
        assert_eq!(pool.hits(), 1);
        assert_eq!(pool.evictions(), 1);
    }

    #[test]
    fn column_pool_scan_stamps_reduced_costs_and_returns_improving_clones() {
        let mut pool = ColumnPool::unbounded();
        pool.offer(
            GeneratedColumn {
                objective: 5.0,
                coeffs: vec![(0, 1.0)],
                tag: 7,
            },
            0,
        );
        pool.offer(
            GeneratedColumn {
                objective: 1.0,
                coeffs: vec![(0, 1.0)],
                tag: 8,
            },
            0,
        );
        let improving = pool.scan(&[2.0], Sense::Maximize, 1e-7, |_| true);
        assert_eq!(improving.len(), 1);
        assert_eq!(improving[0].tag, 7);
        for e in pool.entries() {
            let expected = e.column.objective - 2.0;
            assert!((e.last_reduced_cost - expected).abs() < 1e-12);
        }
        // Ineligible entries are skipped without a reduced-cost stamp.
        let none = pool.scan(&[0.0], Sense::Maximize, 1e-7, |_| false);
        assert!(none.is_empty());
    }
}
