//! Column generation (restricted master + pricing oracle).
//!
//! The paper's LP relaxations (1) and (4) have one variable `x_{v,T}` per
//! bidder `v` and channel bundle `T ⊆ [k]` — exponentially many. Section 2.2
//! solves them with the ellipsoid method on the dual, separating with demand
//! oracles. This module implements the equivalent primal view: a restricted
//! master LP over the columns generated so far, and a pricing oracle that is
//! handed the current duals and returns columns with improving reduced cost.
//! In the auction crate the pricing oracle is exactly a demand-oracle query
//! at the bidder-specific channel prices `p_{v,j} = Σ_{u : v ∈ Γπ(u)} y_{u,j}`
//! derived from the dual (2) of the paper.
//!
//! The same machinery drives the Lavi–Swamy decomposition (Section 5), whose
//! master is a covering LP and whose pricing oracle is the approximation
//! algorithm itself.

use crate::problem::{LinearProgram, Relation, Sense};
use crate::simplex::{solve, LpSolution, LpStatus, SimplexOptions};
use serde::{Deserialize, Serialize};

/// A column produced by a pricing oracle.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GeneratedColumn {
    /// Objective coefficient of the column.
    pub objective: f64,
    /// Sparse constraint coefficients as `(row index, coefficient)` pairs.
    pub coeffs: Vec<(usize, f64)>,
    /// Caller-defined identifier (e.g. an index into a bundle table); used to
    /// de-duplicate columns across pricing rounds.
    pub tag: u64,
}

impl GeneratedColumn {
    /// Reduced cost of the column at the given duals (maximization
    /// convention: positive means improving).
    pub fn reduced_cost(&self, duals: &[f64]) -> f64 {
        let priced: f64 = self.coeffs.iter().map(|&(r, a)| duals[r] * a).sum();
        self.objective - priced
    }
}

/// A pricing oracle: sees the master duals, returns improving columns.
pub trait ColumnSource {
    /// Returns candidate columns for the current duals. Returning an empty
    /// vector (or only columns already present / not improving) terminates
    /// the column-generation loop.
    fn generate(&mut self, duals: &[f64]) -> Vec<GeneratedColumn>;
}

impl<F> ColumnSource for F
where
    F: FnMut(&[f64]) -> Vec<GeneratedColumn>,
{
    fn generate(&mut self, duals: &[f64]) -> Vec<GeneratedColumn> {
        self(duals)
    }
}

/// The restricted master problem: a fixed set of rows plus a growing set of
/// columns.
#[derive(Clone, Debug)]
pub struct MasterProblem {
    sense: Sense,
    rows: Vec<(Relation, f64)>,
    columns: Vec<GeneratedColumn>,
    seen_tags: std::collections::HashSet<u64>,
}

impl MasterProblem {
    /// Creates a master problem with the given sense and rows
    /// `(relation, rhs)`; initially it has no columns.
    pub fn new(sense: Sense, rows: Vec<(Relation, f64)>) -> Self {
        MasterProblem {
            sense,
            rows,
            columns: Vec::new(),
            seen_tags: std::collections::HashSet::new(),
        }
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of columns added so far.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// The columns added so far, in insertion order (their index is the
    /// variable index in the solved LP).
    pub fn columns(&self) -> &[GeneratedColumn] {
        &self.columns
    }

    /// Adds a column unless one with the same tag has already been added.
    /// Returns `true` if the column was added.
    pub fn add_column(&mut self, column: GeneratedColumn) -> bool {
        if !self.seen_tags.insert(column.tag) {
            return false;
        }
        for &(r, _) in &column.coeffs {
            assert!(r < self.rows.len(), "column references unknown row {r}");
        }
        self.columns.push(column);
        true
    }

    /// Materializes the restricted master as a [`LinearProgram`].
    pub fn to_linear_program(&self) -> LinearProgram {
        let mut lp = LinearProgram::new(self.sense);
        for col in &self.columns {
            lp.add_variable(col.objective);
        }
        // rows: gather coefficients per row
        let mut row_coeffs: Vec<Vec<(usize, f64)>> = vec![Vec::new(); self.rows.len()];
        for (var, col) in self.columns.iter().enumerate() {
            for &(r, a) in &col.coeffs {
                row_coeffs[r].push((var, a));
            }
        }
        for (i, &(rel, rhs)) in self.rows.iter().enumerate() {
            lp.add_constraint(row_coeffs[i].clone(), rel, rhs);
        }
        lp
    }

    /// Solves the current restricted master.
    pub fn solve(&self, options: &SimplexOptions) -> LpSolution {
        solve(&self.to_linear_program(), options)
    }
}

/// Outcome of a column-generation run.
#[derive(Clone, Debug)]
pub struct ColumnGenerationResult {
    /// Solution of the final restricted master.
    pub solution: LpSolution,
    /// Number of pricing rounds performed.
    pub rounds: usize,
    /// Whether the loop stopped because no improving column was found
    /// (`true`) or because the round limit was hit (`false`).
    pub converged: bool,
}

/// Driver for the restricted-master / pricing loop.
#[derive(Clone, Debug)]
pub struct ColumnGeneration {
    /// Simplex options used for every master solve.
    pub simplex: SimplexOptions,
    /// Maximum number of pricing rounds.
    pub max_rounds: usize,
    /// Reduced-cost tolerance below which a column is not considered
    /// improving.
    pub reduced_cost_tolerance: f64,
}

impl Default for ColumnGeneration {
    fn default() -> Self {
        ColumnGeneration {
            simplex: SimplexOptions::default(),
            max_rounds: 200,
            reduced_cost_tolerance: 1e-7,
        }
    }
}

impl ColumnGeneration {
    /// Runs column generation: repeatedly solve the restricted master, hand
    /// the duals to `source`, and add every returned column that has
    /// improving reduced cost. Terminates when no new improving column
    /// arrives or `max_rounds` is reached.
    pub fn run(
        &self,
        master: &mut MasterProblem,
        source: &mut dyn ColumnSource,
    ) -> ColumnGenerationResult {
        let mut rounds = 0usize;
        loop {
            let solution = master.solve(&self.simplex);
            rounds += 1;
            if rounds > self.max_rounds {
                return ColumnGenerationResult {
                    solution,
                    rounds: rounds - 1,
                    converged: false,
                };
            }
            // An infeasible or unbounded master cannot be priced further.
            if solution.status != LpStatus::Optimal {
                return ColumnGenerationResult {
                    solution,
                    rounds,
                    converged: false,
                };
            }
            let candidates = source.generate(&solution.duals);
            let mut added_improving = false;
            for col in candidates {
                let rc = col.reduced_cost(&solution.duals);
                let improving = match master.sense {
                    Sense::Maximize => rc > self.reduced_cost_tolerance,
                    Sense::Minimize => rc < -self.reduced_cost_tolerance,
                };
                if improving && master.add_column(col) {
                    added_improving = true;
                }
            }
            if !added_improving {
                return ColumnGenerationResult {
                    solution,
                    rounds,
                    converged: true,
                };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A knapsack-style LP solved by column generation over single-item
    /// columns: max Σ value_i x_i s.t. Σ weight_i x_i <= capacity, x_i <= 1.
    /// The pricing oracle proposes the item with the best reduced cost.
    #[test]
    fn knapsack_lp_via_column_generation() {
        let values = [6.0, 10.0, 12.0];
        let weights = [1.0, 2.0, 3.0];
        let capacity = 5.0;
        // rows: 0 = capacity, 1..=3 = per-item upper bounds
        let mut rows = vec![(Relation::Le, capacity)];
        for _ in 0..3 {
            rows.push((Relation::Le, 1.0));
        }
        let mut master = MasterProblem::new(Sense::Maximize, rows);

        let mut source = |duals: &[f64]| -> Vec<GeneratedColumn> {
            let mut best: Option<GeneratedColumn> = None;
            for i in 0..3 {
                let col = GeneratedColumn {
                    objective: values[i],
                    coeffs: vec![(0, weights[i]), (i + 1, 1.0)],
                    tag: i as u64,
                };
                let rc = col.reduced_cost(duals);
                if rc > 1e-7 {
                    match &best {
                        None => best = Some(col),
                        Some(b) => {
                            if rc > b.reduced_cost(duals) {
                                best = Some(col);
                            }
                        }
                    }
                }
            }
            best.into_iter().collect()
        };

        let cg = ColumnGeneration::default();
        let result = cg.run(&mut master, &mut source);
        assert!(result.converged);
        assert_eq!(result.solution.status, LpStatus::Optimal);
        // LP optimum: take items 1, 2, 3 fully (total weight 6 > 5), so the
        // fractional optimum is x = (1, 1, 2/3): 6 + 10 + 8 = 24.
        assert!((result.solution.objective - 24.0).abs() < 1e-5);
    }

    #[test]
    fn empty_master_with_no_columns_is_fine() {
        let mut master = MasterProblem::new(Sense::Maximize, vec![(Relation::Le, 1.0)]);
        let mut source = |_: &[f64]| Vec::<GeneratedColumn>::new();
        let cg = ColumnGeneration::default();
        let result = cg.run(&mut master, &mut source);
        assert!(result.converged);
        assert_eq!(result.solution.objective, 0.0);
        assert_eq!(result.rounds, 1);
    }

    #[test]
    fn duplicate_tags_are_rejected() {
        let mut master = MasterProblem::new(Sense::Maximize, vec![(Relation::Le, 1.0)]);
        let col = GeneratedColumn {
            objective: 1.0,
            coeffs: vec![(0, 1.0)],
            tag: 7,
        };
        assert!(master.add_column(col.clone()));
        assert!(!master.add_column(col));
        assert_eq!(master.num_columns(), 1);
    }

    #[test]
    fn loop_terminates_when_oracle_keeps_repeating_columns() {
        // The oracle always proposes the same column; after the first round
        // the de-duplication must stop the loop.
        let mut master = MasterProblem::new(Sense::Maximize, vec![(Relation::Le, 2.0)]);
        let mut calls = 0usize;
        let mut source = |_duals: &[f64]| {
            calls += 1;
            vec![GeneratedColumn {
                objective: 1.0,
                coeffs: vec![(0, 1.0)],
                tag: 0,
            }]
        };
        let cg = ColumnGeneration::default();
        let result = cg.run(&mut master, &mut source);
        assert!(result.converged);
        assert!(result.rounds <= 3);
        assert!((result.solution.objective - 2.0).abs() < 1e-6);
    }

    #[test]
    fn covering_master_in_minimization_sense() {
        // min Σ λ_l s.t. coverage >= demand; columns are "patterns".
        // Two rows with demand 1 each; pattern A covers row 0, pattern B
        // covers row 1, pattern C covers both. Optimum: take C once.
        let rows = vec![(Relation::Ge, 1.0), (Relation::Ge, 1.0)];
        let mut master = MasterProblem::new(Sense::Minimize, rows);
        // seed with the two singleton patterns so the master is feasible
        master.add_column(GeneratedColumn {
            objective: 1.0,
            coeffs: vec![(0, 1.0)],
            tag: 0,
        });
        master.add_column(GeneratedColumn {
            objective: 1.0,
            coeffs: vec![(1, 1.0)],
            tag: 1,
        });
        let mut source = |duals: &[f64]| {
            // propose the combined pattern when its reduced cost is negative
            let col = GeneratedColumn {
                objective: 1.0,
                coeffs: vec![(0, 1.0), (1, 1.0)],
                tag: 2,
            };
            if col.reduced_cost(duals) < -1e-7 {
                vec![col]
            } else {
                Vec::new()
            }
        };
        let cg = ColumnGeneration::default();
        let result = cg.run(&mut master, &mut source);
        assert!(result.converged);
        assert!((result.solution.objective - 1.0).abs() < 1e-6);
        assert_eq!(master.num_columns(), 3);
    }
}
