//! Column generation (restricted master + pricing oracle).
//!
//! The paper's LP relaxations (1) and (4) have one variable `x_{v,T}` per
//! bidder `v` and channel bundle `T ⊆ [k]` — exponentially many. Section 2.2
//! solves them with the ellipsoid method on the dual, separating with demand
//! oracles. This module implements the equivalent primal view: a restricted
//! master LP over the columns generated so far, and a pricing oracle that is
//! handed the current duals and returns columns with improving reduced cost.
//! In the auction crate the pricing oracle is exactly a demand-oracle query
//! at the bidder-specific channel prices `p_{v,j} = Σ_{u : v ∈ Γπ(u)} y_{u,j}`
//! derived from the dual (2) of the paper.
//!
//! The same machinery drives the Lavi–Swamy decomposition (Section 5), whose
//! master is a covering LP and whose pricing oracle is the approximation
//! algorithm itself.

use crate::problem::{LinearProgram, Relation, Sense};
use crate::simplex::{solve, solve_with_warm_start, LpSolution, LpStatus, SimplexOptions, WarmStart};
use serde::{Deserialize, Serialize};

/// A column produced by a pricing oracle.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GeneratedColumn {
    /// Objective coefficient of the column.
    pub objective: f64,
    /// Sparse constraint coefficients as `(row index, coefficient)` pairs.
    pub coeffs: Vec<(usize, f64)>,
    /// Caller-defined identifier (e.g. an index into a bundle table); used to
    /// de-duplicate columns across pricing rounds.
    pub tag: u64,
}

impl GeneratedColumn {
    /// Reduced cost of the column at the given duals (maximization
    /// convention: positive means improving).
    pub fn reduced_cost(&self, duals: &[f64]) -> f64 {
        let priced: f64 = self.coeffs.iter().map(|&(r, a)| duals[r] * a).sum();
        self.objective - priced
    }
}

/// A pricing oracle: sees the master duals, returns improving columns.
pub trait ColumnSource {
    /// Returns candidate columns for the current duals. Returning an empty
    /// vector (or only columns already present / not improving) terminates
    /// the column-generation loop.
    fn generate(&mut self, duals: &[f64]) -> Vec<GeneratedColumn>;
}

impl<F> ColumnSource for F
where
    F: FnMut(&[f64]) -> Vec<GeneratedColumn>,
{
    fn generate(&mut self, duals: &[f64]) -> Vec<GeneratedColumn> {
        self(duals)
    }
}

/// The restricted master problem: a fixed set of rows plus a growing set of
/// columns.
#[derive(Clone, Debug)]
pub struct MasterProblem {
    rows: Vec<(Relation, f64)>,
    columns: Vec<GeneratedColumn>,
    seen_tags: std::collections::HashSet<u64>,
    /// The master LP, maintained incrementally: [`MasterProblem::add_column`]
    /// appends a variable and its coefficients instead of rebuilding the
    /// whole program on every solve.
    lp: LinearProgram,
    /// Basis of the most recent [`MasterProblem::solve_warm`]: the rows are
    /// fixed and columns only ever get appended (entering nonbasic), so the
    /// previous optimal basis remains valid across re-solves.
    warm: Option<WarmStart>,
}

impl MasterProblem {
    /// Creates a master problem with the given sense and rows
    /// `(relation, rhs)`; initially it has no columns.
    pub fn new(sense: Sense, rows: Vec<(Relation, f64)>) -> Self {
        let mut lp = LinearProgram::new(sense);
        for &(rel, rhs) in &rows {
            lp.add_constraint(Vec::new(), rel, rhs);
        }
        MasterProblem {
            rows,
            columns: Vec::new(),
            seen_tags: std::collections::HashSet::new(),
            lp,
            warm: None,
        }
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of columns added so far.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// The columns added so far, in insertion order (their index is the
    /// variable index in the solved LP).
    pub fn columns(&self) -> &[GeneratedColumn] {
        &self.columns
    }

    /// Adds a column unless one with the same tag has already been added.
    /// Returns `true` if the column was added.
    pub fn add_column(&mut self, column: GeneratedColumn) -> bool {
        if !self.seen_tags.insert(column.tag) {
            return false;
        }
        for &(r, _) in &column.coeffs {
            assert!(r < self.rows.len(), "column references unknown row {r}");
        }
        let var = self.lp.add_variable(column.objective);
        for &(r, a) in &column.coeffs {
            self.lp.add_coefficient(r, var, a);
        }
        self.columns.push(column);
        true
    }

    /// The restricted master as a [`LinearProgram`] (a clone of the
    /// incrementally maintained program).
    pub fn to_linear_program(&self) -> LinearProgram {
        self.lp.clone()
    }

    /// Solves the current restricted master from a cold start.
    pub fn solve(&self, options: &SimplexOptions) -> LpSolution {
        solve(&self.lp, options)
    }

    /// Solves the current restricted master, resuming from the basis of the
    /// previous `solve_warm` call (if any) and recording the new basis for
    /// the next round. Columns added since the last solve enter nonbasic,
    /// so a re-solve typically needs only the handful of pivots that bring
    /// the new columns in — instead of re-running phase 1 / the all-slack
    /// start from scratch.
    pub fn solve_warm(&mut self, options: &SimplexOptions) -> LpSolution {
        let (solution, state) = solve_with_warm_start(&self.lp, options, self.warm.take());
        self.warm = Some(state);
        solution
    }

    /// Drops the recorded warm-start basis (the next solve is cold).
    pub fn reset_warm_start(&mut self) {
        self.warm = None;
    }
}

/// Outcome of a column-generation run.
#[derive(Clone, Debug)]
pub struct ColumnGenerationResult {
    /// Solution of the final restricted master.
    pub solution: LpSolution,
    /// Number of pricing rounds performed.
    pub rounds: usize,
    /// Whether the loop stopped because no improving column was found
    /// (`true`) or because the round limit was hit (`false`).
    pub converged: bool,
}

/// Failure of a column-generation run.
///
/// The seed implementation silently returned the truncated master solution
/// when the simplex hit its pivot budget; callers could not tell a genuine
/// optimum from an arbitrary interrupted basis. The condition is now a
/// proper error carrying the partial result, so callers decide explicitly
/// whether a truncated solution is acceptable.
#[derive(Clone, Debug)]
pub enum ColumnGenerationError {
    /// A master solve stopped at [`LpStatus::IterationLimit`] before proving
    /// optimality; the partial result is attached.
    IterationLimit {
        /// State at the interrupted solve (solution is *not* optimal).
        partial: ColumnGenerationResult,
    },
}

impl std::fmt::Display for ColumnGenerationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ColumnGenerationError::IterationLimit { partial } => write!(
                f,
                "restricted master hit the simplex iteration limit after {} rounds \
                 ({} iterations in the last solve)",
                partial.rounds, partial.solution.iterations
            ),
        }
    }
}

impl std::error::Error for ColumnGenerationError {}

/// Driver for the restricted-master / pricing loop.
#[derive(Clone, Debug)]
pub struct ColumnGeneration {
    /// Simplex options used for every master solve.
    pub simplex: SimplexOptions,
    /// Maximum number of pricing rounds.
    pub max_rounds: usize,
    /// Reduced-cost tolerance below which a column is not considered
    /// improving.
    pub reduced_cost_tolerance: f64,
}

impl Default for ColumnGeneration {
    fn default() -> Self {
        ColumnGeneration {
            simplex: SimplexOptions::default(),
            max_rounds: 200,
            reduced_cost_tolerance: 1e-7,
        }
    }
}

impl ColumnGeneration {
    /// Runs column generation: repeatedly solve the restricted master
    /// (warm-started from the previous round's optimal basis), hand the
    /// duals to `source`, and add every returned column that has improving
    /// reduced cost. Terminates when no new improving column arrives or
    /// `max_rounds` is reached.
    ///
    /// # Errors
    /// Returns [`ColumnGenerationError::IterationLimit`] when a master
    /// solve exhausts its pivot budget: the attached partial solution is a
    /// feasible but non-optimal basis whose duals cannot be trusted for
    /// pricing.
    pub fn run(
        &self,
        master: &mut MasterProblem,
        source: &mut dyn ColumnSource,
    ) -> Result<ColumnGenerationResult, ColumnGenerationError> {
        let mut rounds = 0usize;
        loop {
            let solution = master.solve_warm(&self.simplex);
            rounds += 1;
            if solution.status == LpStatus::IterationLimit {
                return Err(ColumnGenerationError::IterationLimit {
                    partial: ColumnGenerationResult {
                        solution,
                        rounds,
                        converged: false,
                    },
                });
            }
            if rounds > self.max_rounds {
                return Ok(ColumnGenerationResult {
                    solution,
                    rounds: rounds - 1,
                    converged: false,
                });
            }
            // An infeasible or unbounded master cannot be priced further.
            if solution.status != LpStatus::Optimal {
                return Ok(ColumnGenerationResult {
                    solution,
                    rounds,
                    converged: false,
                });
            }
            let candidates = source.generate(&solution.duals);
            let mut added_improving = false;
            for col in candidates {
                let rc = col.reduced_cost(&solution.duals);
                let improving = match master.lp.sense() {
                    Sense::Maximize => rc > self.reduced_cost_tolerance,
                    Sense::Minimize => rc < -self.reduced_cost_tolerance,
                };
                if improving && master.add_column(col) {
                    added_improving = true;
                }
            }
            if !added_improving {
                return Ok(ColumnGenerationResult {
                    solution,
                    rounds,
                    converged: true,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A knapsack-style LP solved by column generation over single-item
    /// columns: max Σ value_i x_i s.t. Σ weight_i x_i <= capacity, x_i <= 1.
    /// The pricing oracle proposes the item with the best reduced cost.
    #[test]
    fn knapsack_lp_via_column_generation() {
        let values = [6.0, 10.0, 12.0];
        let weights = [1.0, 2.0, 3.0];
        let capacity = 5.0;
        // rows: 0 = capacity, 1..=3 = per-item upper bounds
        let mut rows = vec![(Relation::Le, capacity)];
        for _ in 0..3 {
            rows.push((Relation::Le, 1.0));
        }
        let mut master = MasterProblem::new(Sense::Maximize, rows);

        let mut source = |duals: &[f64]| -> Vec<GeneratedColumn> {
            let mut best: Option<GeneratedColumn> = None;
            for i in 0..3 {
                let col = GeneratedColumn {
                    objective: values[i],
                    coeffs: vec![(0, weights[i]), (i + 1, 1.0)],
                    tag: i as u64,
                };
                let rc = col.reduced_cost(duals);
                if rc > 1e-7 {
                    match &best {
                        None => best = Some(col),
                        Some(b) => {
                            if rc > b.reduced_cost(duals) {
                                best = Some(col);
                            }
                        }
                    }
                }
            }
            best.into_iter().collect()
        };

        let cg = ColumnGeneration::default();
        let result = cg.run(&mut master, &mut source).expect("column generation failed");
        assert!(result.converged);
        assert_eq!(result.solution.status, LpStatus::Optimal);
        // LP optimum: take items 1, 2, 3 fully (total weight 6 > 5), so the
        // fractional optimum is x = (1, 1, 2/3): 6 + 10 + 8 = 24.
        assert!((result.solution.objective - 24.0).abs() < 1e-5);
    }

    #[test]
    fn empty_master_with_no_columns_is_fine() {
        let mut master = MasterProblem::new(Sense::Maximize, vec![(Relation::Le, 1.0)]);
        let mut source = |_: &[f64]| Vec::<GeneratedColumn>::new();
        let cg = ColumnGeneration::default();
        let result = cg.run(&mut master, &mut source).expect("column generation failed");
        assert!(result.converged);
        assert_eq!(result.solution.objective, 0.0);
        assert_eq!(result.rounds, 1);
    }

    #[test]
    fn duplicate_tags_are_rejected() {
        let mut master = MasterProblem::new(Sense::Maximize, vec![(Relation::Le, 1.0)]);
        let col = GeneratedColumn {
            objective: 1.0,
            coeffs: vec![(0, 1.0)],
            tag: 7,
        };
        assert!(master.add_column(col.clone()));
        assert!(!master.add_column(col));
        assert_eq!(master.num_columns(), 1);
    }

    #[test]
    fn loop_terminates_when_oracle_keeps_repeating_columns() {
        // The oracle always proposes the same column; after the first round
        // the de-duplication must stop the loop.
        let mut master = MasterProblem::new(Sense::Maximize, vec![(Relation::Le, 2.0)]);
        let mut calls = 0usize;
        let mut source = |_duals: &[f64]| {
            calls += 1;
            vec![GeneratedColumn {
                objective: 1.0,
                coeffs: vec![(0, 1.0)],
                tag: 0,
            }]
        };
        let cg = ColumnGeneration::default();
        let result = cg.run(&mut master, &mut source).expect("column generation failed");
        assert!(result.converged);
        assert!(result.rounds <= 3);
        assert!((result.solution.objective - 2.0).abs() < 1e-6);
    }

    /// Warm-started and cold-started column generation must agree: the warm
    /// path only changes the starting basis of each re-solve, never the
    /// optimum. Uses seeded knapsack-style masters of growing size.
    #[test]
    fn warm_and_cold_column_generation_reach_the_same_objective() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        for seed in 0..10u64 {
            let mut rng = StdRng::seed_from_u64(1000 + seed);
            let num_items = 4 + (seed as usize % 6);
            let values: Vec<f64> = (0..num_items).map(|_| rng.random_range(1.0..10.0)).collect();
            let weights: Vec<f64> = (0..num_items).map(|_| rng.random_range(0.5..4.0)).collect();
            let capacity = rng.random_range(3.0..8.0);

            let build_master = || {
                let mut rows = vec![(Relation::Le, capacity)];
                for _ in 0..num_items {
                    rows.push((Relation::Le, 1.0));
                }
                MasterProblem::new(Sense::Maximize, rows)
            };
            let make_source = |values: Vec<f64>, weights: Vec<f64>| {
                move |duals: &[f64]| -> Vec<GeneratedColumn> {
                    let mut best: Option<(f64, GeneratedColumn)> = None;
                    for i in 0..values.len() {
                        let col = GeneratedColumn {
                            objective: values[i],
                            coeffs: vec![(0, weights[i]), (i + 1, 1.0)],
                            tag: i as u64,
                        };
                        let rc = col.reduced_cost(duals);
                        if rc > 1e-7 && best.as_ref().map(|(b, _)| rc > *b).unwrap_or(true) {
                            best = Some((rc, col));
                        }
                    }
                    best.map(|(_, c)| c).into_iter().collect()
                }
            };

            // warm (the default run loop)
            let cg = ColumnGeneration::default();
            let mut warm_master = build_master();
            let mut warm_source = make_source(values.clone(), weights.clone());
            let warm = cg
                .run(&mut warm_master, &mut warm_source)
                .expect("warm run failed");

            // cold: identical pricing loop but every master solve from scratch
            let mut cold_master = build_master();
            let cold_source = make_source(values.clone(), weights.clone());
            let cold_solution = loop {
                let solution = cold_master.solve(&cg.simplex);
                assert_eq!(solution.status, LpStatus::Optimal);
                let candidates = cold_source(&solution.duals);
                let mut added = false;
                for col in candidates {
                    if col.reduced_cost(&solution.duals) > cg.reduced_cost_tolerance
                        && cold_master.add_column(col)
                    {
                        added = true;
                    }
                }
                if !added {
                    break solution;
                }
            };

            assert!(warm.converged);
            assert!(
                (warm.solution.objective - cold_solution.objective).abs() < 1e-6,
                "seed {seed}: warm {} vs cold {}",
                warm.solution.objective,
                cold_solution.objective
            );
        }
    }

    #[test]
    fn iteration_limit_is_surfaced_as_an_error() {
        // A pivot budget of 1 cannot optimize a 3-column master: the run
        // must fail loudly instead of returning the truncated solution.
        let mut master = MasterProblem::new(
            Sense::Maximize,
            vec![(Relation::Le, 4.0), (Relation::Le, 1.0), (Relation::Le, 1.0), (Relation::Le, 1.0)],
        );
        for i in 0..3 {
            master.add_column(GeneratedColumn {
                objective: (i + 1) as f64,
                coeffs: vec![(0, 1.0), (i + 1, 1.0)],
                tag: i as u64,
            });
        }
        let cg = ColumnGeneration {
            simplex: SimplexOptions {
                max_iterations: 1,
                ..Default::default()
            },
            ..Default::default()
        };
        let mut source = |_: &[f64]| Vec::<GeneratedColumn>::new();
        match cg.run(&mut master, &mut source) {
            Err(ColumnGenerationError::IterationLimit { partial }) => {
                assert_eq!(partial.solution.status, LpStatus::IterationLimit);
            }
            other => panic!("expected IterationLimit error, got {other:?}"),
        }
    }

    #[test]
    fn covering_master_in_minimization_sense() {
        // min Σ λ_l s.t. coverage >= demand; columns are "patterns".
        // Two rows with demand 1 each; pattern A covers row 0, pattern B
        // covers row 1, pattern C covers both. Optimum: take C once.
        let rows = vec![(Relation::Ge, 1.0), (Relation::Ge, 1.0)];
        let mut master = MasterProblem::new(Sense::Minimize, rows);
        // seed with the two singleton patterns so the master is feasible
        master.add_column(GeneratedColumn {
            objective: 1.0,
            coeffs: vec![(0, 1.0)],
            tag: 0,
        });
        master.add_column(GeneratedColumn {
            objective: 1.0,
            coeffs: vec![(1, 1.0)],
            tag: 1,
        });
        let mut source = |duals: &[f64]| {
            // propose the combined pattern when its reduced cost is negative
            let col = GeneratedColumn {
                objective: 1.0,
                coeffs: vec![(0, 1.0), (1, 1.0)],
                tag: 2,
            };
            if col.reduced_cost(duals) < -1e-7 {
                vec![col]
            } else {
                Vec::new()
            }
        };
        let cg = ColumnGeneration::default();
        let result = cg.run(&mut master, &mut source).expect("column generation failed");
        assert!(result.converged);
        assert!((result.solution.objective - 1.0).abs() < 1e-6);
        assert_eq!(master.num_columns(), 3);
    }
}
