//! Pluggable basis factorizations for the revised simplex.
//!
//! The revised method needs four linear-algebra primitives per iteration —
//! FTRAN (`w = B⁻¹ a`), BTRAN (`y = cᵦ B⁻¹`), a single row of `B⁻¹` (for
//! Devex pivot rows and for driving artificials out), and a rank-one pivot
//! update — plus a periodic rebuild from the basis columns. This module
//! abstracts them behind the [`BasisFactorization`] trait so the simplex
//! core ([`crate::simplex`]) is independent of *how* the basis is
//! represented:
//!
//! * [`ProductFormInverse`] — the PR 1 representation: an explicit dense
//!   row-major `m × m` inverse updated in product form. Every primitive is
//!   `O(m²)` (FTRAN `O(m · nnz)`), which is fine for small masters but is
//!   the documented bottleneck at `m ≳ 5·10³` rows.
//! * [`SparseLu`] — a sparse LU factorization (`B = Pᵀ L U`, partial
//!   pivoting, left-looking elimination with a dense scratch column) with
//!   product-form **eta updates** between periodic refactorizations: each
//!   pivot appends a sparse eta matrix to the inverse representation instead
//!   of touching `O(m²)` entries, so FTRAN / BTRAN cost
//!   `O(nnz(L) + nnz(U) + nnz(etas))` and a pivot costs `O(nnz(w))`. The
//!   eta file is bounded (and the update refuses unstable pivots), which
//!   forces a refactorization through the simplex core's existing hygiene
//!   path — but between refactorizations the file still *grows* by one eta
//!   per pivot, so solve cost creeps up with the pivot count.
//! * [`ForrestTomlinLu`] — a **Markowitz-ordered** LU (choose the pivot
//!   minimizing the fill bound `(r−1)(c−1)` among entries passing the
//!   relative threshold `|B_pq| ≥ 0.1 · max_p |B_pq|`, with explicit row
//!   *and* column permutations) combined with genuine **Forrest–Tomlin
//!   updates of `U`**: a basis change replaces one column of `U` by the
//!   spike `s = U·w` (free from the pivot FTRAN image `w = B⁻¹ a_e`), moves
//!   that column last in the triangular order, and eliminates the displaced
//!   row of `U` with a short **row eta** of multipliers. `U` itself stays
//!   triangular with bounded fill (only the spike column is added), so
//!   FTRAN/BTRAN stay `O(nnz(L) + nnz(U) + nnz(row etas))` with row etas
//!   that are typically far sparser than product-form etas: the update cost
//!   tracks the *row* structure of `U`, not the full FTRAN image. Unstable
//!   replacements (tiny new diagonal relative to the spike) are declined,
//!   which routes through the same forced-refactorization path as
//!   [`SparseLu`].
//!
//! Which factorization runs is chosen by [`BasisKind`] in
//! [`crate::simplex::SimplexOptions`]; the property tests solve every
//! pricing × basis combination against the dense oracle ([`crate::dense`]).
//!
//! ## The Forrest–Tomlin update in formulas
//!
//! Write the factorized basis as `B = L_eff · U` (all prior row etas folded
//! into `L_eff⁻¹ = Rₖ ⋯ R₁ L⁻¹`). Replacing the basis column with stable
//! id `t` by the entering column `a` gives `B' = L_eff (U + (s − U e_t) e_tᵀ)`
//! with spike `s = L_eff⁻¹ a = U w`, where `w = B⁻¹ a` is the FTRAN image
//! the simplex pivot already computed. Moving column/row `t` to the last
//! position leaves `U` upper triangular except for the displaced row `t`,
//! whose entries are eliminated left to right by multipliers
//! `μ_j = rowval_j / U_jj`; those multipliers form the new row eta
//! `R = I − e_t μᵀ`, the new diagonal is `d = s_t − Σ_j μ_j s_j`, and the
//! spike entries become column `t` of the updated `U`.

use serde::{Deserialize, Serialize};

/// Selects the basis representation used by the revised simplex.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum BasisKind {
    /// Explicit dense `B⁻¹` maintained in product form (`O(m²)` per pivot).
    ProductForm,
    /// Sparse LU factors with product-form eta updates and periodic
    /// refactorization.
    SparseLu,
    /// Markowitz-ordered sparse LU with Forrest–Tomlin updates of `U`
    /// (bounded fill per pivot; the default at scale).
    ForrestTomlin,
}

impl BasisKind {
    /// Short stable name used in bench labels and stats tables.
    pub fn name(self) -> &'static str {
        match self {
            BasisKind::ProductForm => "product-form",
            BasisKind::SparseLu => "sparse-lu",
            BasisKind::ForrestTomlin => "ft-lu",
        }
    }
}

/// A sparse column of the basis matrix: `(row index, value)` pairs.
pub type SparseColumn = Vec<(usize, f64)>;

/// The linear-algebra kernel behind the revised simplex.
///
/// All vectors indexed "by basis position" refer to the slot `r` of the
/// simplex basis (`basis[r]` is the member whose column occupies position
/// `r`); vectors indexed "by row" refer to original constraint rows. The
/// two spaces have the same length `m` but are permuted relative to each
/// other inside the LU representation.
pub trait BasisFactorization: std::fmt::Debug + Send {
    /// Which representation this is (reported in solve stats).
    fn kind(&self) -> BasisKind;

    /// Number of rows of the factorized basis (0 before the first
    /// [`refactor`](Self::refactor)).
    fn num_rows(&self) -> usize;

    /// Rebuilds the factorization from scratch. `cols[c]` is the sparse
    /// column (by original row index) of the basis member at position `c`.
    /// Returns `false` when the basis matrix is numerically singular; the
    /// factorization is then left **empty** (`num_rows()` returns 0, solves
    /// write zeros) until the next successful refactor. Callers that keep
    /// going after a failure therefore get well-defined garbage (zero duals
    /// under a non-optimal status), never a partially-built factor.
    fn refactor(&mut self, m: usize, cols: &[SparseColumn]) -> bool;

    /// FTRAN with a sparse right-hand side: `w = B⁻¹ a` where `a` is given
    /// as `(row, value)` entries. `w` (length `m`) is indexed by basis
    /// position.
    fn ftran_sparse(&self, entries: &[(usize, f64)], w: &mut [f64]);

    /// FTRAN with a dense right-hand side (used to recompute `x_B = B⁻¹ b`).
    fn ftran_dense(&self, rhs: &[f64], w: &mut [f64]);

    /// BTRAN: `y = cᵦ B⁻¹` for the basic cost vector `cb` (indexed by basis
    /// position); `y` (length `m`) is indexed by original row.
    fn btran(&self, cb: &[f64], y: &mut [f64]);

    /// Row `r` of `B⁻¹` (`rho = eᵣᵀ B⁻¹`, indexed by original row): the
    /// pivot row used by Devex weight updates and by the artificial
    /// drive-out pass.
    fn btran_unit(&self, r: usize, rho: &mut [f64]);

    /// Applies the pivot that replaces the basis column at position `l` by
    /// the column whose FTRAN image is `w` (so the new `B⁻¹` is
    /// `E · B⁻¹_old` with the eta matrix built from `(l, w)`).
    ///
    /// Returns `false` when the representation declines the update for
    /// stability or capacity reasons — the caller must then refactor from
    /// the (already updated) basis columns; the factorization state is
    /// unspecified until it does.
    fn update(&mut self, l: usize, w: &[f64]) -> bool;

    /// Number of successful [`update`](Self::update)s since the last
    /// [`refactor`](Self::refactor).
    fn updates_since_refactor(&self) -> usize;

    /// Clones the factorization state (used by [`crate::simplex::WarmStart`],
    /// which must stay `Clone` for the column-generation master).
    fn box_clone(&self) -> Box<dyn BasisFactorization>;
}

impl Clone for Box<dyn BasisFactorization> {
    fn clone(&self) -> Self {
        self.box_clone()
    }
}

/// Creates an empty factorization of the requested kind.
pub fn make_factorization(kind: BasisKind) -> Box<dyn BasisFactorization> {
    match kind {
        BasisKind::ProductForm => Box::new(ProductFormInverse::default()),
        BasisKind::SparseLu => Box::new(SparseLu::default()),
        BasisKind::ForrestTomlin => Box::new(ForrestTomlinLu::default()),
    }
}

// ---------------------------------------------------------------------------
// Product-form inverse (the PR 1 representation)
// ---------------------------------------------------------------------------

/// Explicit dense `B⁻¹`, row-major, updated in product form.
#[derive(Clone, Debug, Default)]
pub struct ProductFormInverse {
    m: usize,
    /// row-major `m × m`: `binv[r * m + i]` maps row `i` to basis position `r`
    binv: Vec<f64>,
    updates: usize,
}

impl ProductFormInverse {
    /// Wraps an existing dense inverse (used when migrating a pre-seam warm
    /// start and by tests).
    pub fn from_dense(m: usize, binv: Vec<f64>) -> Self {
        assert_eq!(binv.len(), m * m, "inverse must be m × m");
        ProductFormInverse {
            m,
            binv,
            updates: 0,
        }
    }
}

impl BasisFactorization for ProductFormInverse {
    fn kind(&self) -> BasisKind {
        BasisKind::ProductForm
    }

    fn num_rows(&self) -> usize {
        self.m
    }

    fn refactor(&mut self, m: usize, cols: &[SparseColumn]) -> bool {
        assert_eq!(cols.len(), m, "one column per basis position");
        self.m = m;
        self.updates = 0;
        // Dense B (column per basis position), then Gauss–Jordan with
        // partial pivoting applied to [B | I].
        let mut bmat = vec![0.0f64; m * m];
        for (c, col) in cols.iter().enumerate() {
            for &(r, v) in col {
                bmat[r * m + c] += v;
            }
        }
        let mut inv = vec![0.0f64; m * m];
        for i in 0..m {
            inv[i * m + i] = 1.0;
        }
        for k in 0..m {
            let mut p = k;
            let mut best = bmat[k * m + k].abs();
            for r in (k + 1)..m {
                let cand = bmat[r * m + k].abs();
                if cand > best {
                    best = cand;
                    p = r;
                }
            }
            if best <= 1e-12 {
                // singular: leave the empty state, not a stale inverse
                self.m = 0;
                self.binv.clear();
                return false;
            }
            if p != k {
                for j in 0..m {
                    bmat.swap(k * m + j, p * m + j);
                    inv.swap(k * m + j, p * m + j);
                }
            }
            let inv_piv = 1.0 / bmat[k * m + k];
            for j in 0..m {
                bmat[k * m + j] *= inv_piv;
                inv[k * m + j] *= inv_piv;
            }
            for r in 0..m {
                if r == k {
                    continue;
                }
                let f = bmat[r * m + k];
                if f != 0.0 {
                    for j in 0..m {
                        bmat[r * m + j] -= f * bmat[k * m + j];
                        inv[r * m + j] -= f * inv[k * m + j];
                    }
                }
            }
        }
        self.binv = inv;
        true
    }

    fn ftran_sparse(&self, entries: &[(usize, f64)], w: &mut [f64]) {
        let m = self.m;
        for v in w.iter_mut() {
            *v = 0.0;
        }
        if m == 0 {
            return; // empty state (failed refactor): solves write zeros
        }
        for &(i, a) in entries {
            if a != 0.0 {
                for (r, wr) in w.iter_mut().enumerate() {
                    *wr += self.binv[r * m + i] * a;
                }
            }
        }
    }

    fn ftran_dense(&self, rhs: &[f64], w: &mut [f64]) {
        let m = self.m;
        for (r, wr) in w.iter_mut().enumerate() {
            let row = &self.binv[r * m..(r + 1) * m];
            *wr = row.iter().zip(rhs.iter()).map(|(a, b)| a * b).sum();
        }
    }

    fn btran(&self, cb: &[f64], y: &mut [f64]) {
        let m = self.m;
        for v in y.iter_mut() {
            *v = 0.0;
        }
        for (r, &c) in cb.iter().enumerate() {
            if c != 0.0 {
                let row = &self.binv[r * m..(r + 1) * m];
                for (yk, &bk) in y.iter_mut().zip(row.iter()) {
                    *yk += c * bk;
                }
            }
        }
    }

    fn btran_unit(&self, r: usize, rho: &mut [f64]) {
        let m = self.m;
        if m == 0 {
            rho.fill(0.0);
            return;
        }
        rho.copy_from_slice(&self.binv[r * m..(r + 1) * m]);
    }

    fn update(&mut self, l: usize, w: &[f64]) -> bool {
        let m = self.m;
        let wl = w[l];
        if wl.abs() <= 1e-12 {
            return false;
        }
        let inv_wl = 1.0 / wl;
        for j in 0..m {
            self.binv[l * m + j] *= inv_wl;
        }
        let pivot_row: Vec<f64> = self.binv[l * m..(l + 1) * m].to_vec();
        for (r, &f) in w.iter().enumerate().take(m) {
            if r == l || f == 0.0 {
                continue;
            }
            let row = &mut self.binv[r * m..(r + 1) * m];
            for (dst, &p) in row.iter_mut().zip(pivot_row.iter()) {
                *dst -= f * p;
            }
        }
        self.updates += 1;
        true
    }

    fn updates_since_refactor(&self) -> usize {
        self.updates
    }

    fn box_clone(&self) -> Box<dyn BasisFactorization> {
        Box::new(self.clone())
    }
}

// ---------------------------------------------------------------------------
// Sparse LU with eta updates
// ---------------------------------------------------------------------------

/// One eta matrix of the update file: `B⁻¹_new = E · B⁻¹_old` with
/// `E = I + (e_l − w) e_lᵀ / w_l` built from the pivot `(l, w = B⁻¹ a_e)`.
#[derive(Clone, Debug)]
struct Eta {
    /// Pivot position (basis slot).
    l: usize,
    /// Pivot element `w_l`.
    wl: f64,
    /// Off-pivot entries `(r, w_r)` with `r ≠ l`.
    entries: Vec<(usize, f64)>,
}

/// Sparse LU factors of the basis with a product-form eta file.
///
/// `B = Pᵀ L U` with row permutation `P` chosen by partial pivoting during
/// a left-looking elimination; pivots append eta matrices instead of
/// re-factorizing. See the module docs for the cost model.
#[derive(Clone, Debug, Default)]
pub struct SparseLu {
    m: usize,
    /// Columns of unit-lower-triangular `L`: entries `(original row, value)`
    /// for rows pivoted *after* step `k`.
    l_cols: Vec<Vec<(usize, f64)>>,
    /// Off-diagonal columns of `U`: entries `(step i < k, value)`.
    u_cols: Vec<Vec<(usize, f64)>>,
    /// Diagonal of `U` per step.
    u_diag: Vec<f64>,
    /// `prow[k]` = original row chosen as pivot at elimination step `k`.
    prow: Vec<usize>,
    /// Eta file, in application (creation) order.
    etas: Vec<Eta>,
    /// Total entries across the eta file (bounds FTRAN/BTRAN cost).
    eta_entries: usize,
    /// Reusable solve workspaces (FTRAN rhs / BTRAN cost / BTRAN permuted
    /// solution / unit-cost vector): the trait's solve methods take `&self`
    /// and run once per pivot, so these avoid a heap allocation per call.
    /// `scratch_unit` is separate because `btran_unit` calls `btran`, which
    /// borrows the other two.
    scratch_x: std::cell::RefCell<Vec<f64>>,
    scratch_c: std::cell::RefCell<Vec<f64>>,
    scratch_s: std::cell::RefCell<Vec<f64>>,
    scratch_unit: std::cell::RefCell<Vec<f64>>,
}

impl SparseLu {
    /// Tiny pivots below this are treated as singular.
    const SINGULAR_TOL: f64 = 1e-12;
    /// Pivot elements below this refuse the eta update (forces refactor).
    const UPDATE_TOL: f64 = 1e-9;

    /// Eta-file capacity: once the file holds more than `4m + 64` entries
    /// the update declines and the core refactorizes, keeping the marginal
    /// FTRAN/BTRAN cost linear in the factor size.
    fn eta_capacity(&self) -> usize {
        4 * self.m + 64
    }

    /// Forward elimination (`L⁻¹` with the row permutation folded in)
    /// applied to the dense scratch `x` (indexed by original row). After the
    /// call, `x[prow[k]]` holds the permuted solution component `z_k`.
    fn forward(&self, x: &mut [f64]) {
        for k in 0..self.m {
            let z = x[self.prow[k]];
            if z != 0.0 {
                for &(r, lv) in &self.l_cols[k] {
                    x[r] -= z * lv;
                }
            }
        }
    }

    /// Backward substitution `U w = z` where `z_k = x[prow[k]]`; writes the
    /// solution (indexed by basis position) into `w`.
    fn backward(&self, x: &mut [f64], w: &mut [f64]) {
        for k in (0..self.m).rev() {
            let wk = x[self.prow[k]] / self.u_diag[k];
            w[k] = wk;
            if wk != 0.0 {
                for &(i, uv) in &self.u_cols[k] {
                    x[self.prow[i]] -= uv * wk;
                }
            }
        }
    }

    /// Applies the eta file (column action, creation order) to `w`.
    fn apply_etas_ftran(&self, w: &mut [f64]) {
        for eta in &self.etas {
            let vl = w[eta.l] / eta.wl;
            w[eta.l] = vl;
            if vl != 0.0 {
                for &(r, wr) in &eta.entries {
                    w[r] -= wr * vl;
                }
            }
        }
    }

    /// Applies the eta file (row action, reverse order) to `c`.
    fn apply_etas_btran(&self, c: &mut [f64]) {
        for eta in self.etas.iter().rev() {
            let mut dot = c[eta.l] * eta.wl;
            for &(r, wr) in &eta.entries {
                dot += c[r] * wr;
            }
            c[eta.l] += (c[eta.l] - dot) / eta.wl;
        }
    }

    fn lu_solve_into(&self, x: &mut [f64], w: &mut [f64]) {
        if self.m == 0 {
            // empty state (failed refactor): solves write zeros
            w.fill(0.0);
            return;
        }
        self.forward(x);
        self.backward(x, w);
        self.apply_etas_ftran(w);
    }
}

impl BasisFactorization for SparseLu {
    fn kind(&self) -> BasisKind {
        BasisKind::SparseLu
    }

    fn num_rows(&self) -> usize {
        self.m
    }

    fn refactor(&mut self, m: usize, cols: &[SparseColumn]) -> bool {
        assert_eq!(cols.len(), m, "one column per basis position");
        self.m = m;
        self.etas.clear();
        self.eta_entries = 0;
        self.l_cols.clear();
        self.u_cols.clear();
        self.u_diag.clear();
        self.prow.clear();
        self.l_cols.reserve(m);
        self.u_cols.reserve(m);
        self.u_diag.reserve(m);
        self.prow.reserve(m);

        // pos[r] = elimination step of original row r (MAX while unpivoted)
        let mut pos = vec![usize::MAX; m];
        let mut x = vec![0.0f64; m];
        let mut touched: Vec<usize> = Vec::with_capacity(m);

        for col in cols.iter() {
            // scatter the basis column into the scratch
            for &(r, v) in col {
                if x[r] == 0.0 && v != 0.0 {
                    touched.push(r);
                }
                x[r] += v;
            }
            // left-looking: apply the L columns computed so far (step order)
            let k = self.u_diag.len();
            for j in 0..k {
                let xj = x[self.prow[j]];
                if xj != 0.0 {
                    for &(r, lv) in &self.l_cols[j] {
                        if x[r] == 0.0 {
                            touched.push(r);
                        }
                        x[r] -= xj * lv;
                    }
                }
            }
            // partial pivot among unpivoted rows
            let mut p = usize::MAX;
            let mut best = Self::SINGULAR_TOL;
            for &r in &touched {
                if pos[r] == usize::MAX {
                    let cand = x[r].abs();
                    if cand > best {
                        best = cand;
                        p = r;
                    }
                }
            }
            if p == usize::MAX {
                // no usable pivot: singular — leave the empty state, not a
                // partially built factor
                self.m = 0;
                self.l_cols.clear();
                self.u_cols.clear();
                self.u_diag.clear();
                self.prow.clear();
                return false;
            }
            let piv = x[p];
            pos[p] = k;
            self.prow.push(p);
            self.u_diag.push(piv);
            let mut ucol: Vec<(usize, f64)> = Vec::new();
            let mut lcol: Vec<(usize, f64)> = Vec::new();
            for &r in &touched {
                let v = x[r];
                x[r] = 0.0;
                if v == 0.0 || r == p {
                    continue;
                }
                match pos[r] {
                    usize::MAX => lcol.push((r, v / piv)),
                    step => ucol.push((step, v)),
                }
            }
            touched.clear();
            self.u_cols.push(ucol);
            self.l_cols.push(lcol);
        }
        true
    }

    fn ftran_sparse(&self, entries: &[(usize, f64)], w: &mut [f64]) {
        if self.m == 0 {
            w.fill(0.0);
            return;
        }
        let mut x = self.scratch_x.borrow_mut();
        x.clear();
        x.resize(self.m, 0.0);
        for &(i, a) in entries {
            x[i] += a;
        }
        self.lu_solve_into(&mut x, w);
    }

    fn ftran_dense(&self, rhs: &[f64], w: &mut [f64]) {
        let mut x = self.scratch_x.borrow_mut();
        x.clear();
        x.extend_from_slice(rhs);
        self.lu_solve_into(&mut x, w);
    }

    fn btran(&self, cb: &[f64], y: &mut [f64]) {
        // y = cᵦ B⁻¹ with B⁻¹ = Eₖ…E₁ · U⁻¹ ∘ read ∘ forward:
        // apply the eta file to cᵦ (row action, reverse order), then solve
        // Uᵀ s = c (ascending steps), scatter s through the permutation and
        // apply the transposed forward elimination in reverse.
        let m = self.m;
        let mut c = self.scratch_c.borrow_mut();
        c.clear();
        c.extend_from_slice(cb);
        self.apply_etas_btran(&mut c);
        let mut s = self.scratch_s.borrow_mut();
        s.clear();
        s.resize(m, 0.0);
        for k in 0..m {
            let mut v = c[k];
            for &(i, uv) in &self.u_cols[k] {
                v -= uv * s[i];
            }
            s[k] = v / self.u_diag[k];
        }
        for v in y.iter_mut() {
            *v = 0.0;
        }
        for k in 0..m {
            y[self.prow[k]] = s[k];
        }
        for k in (0..m).rev() {
            let mut acc = y[self.prow[k]];
            for &(r, lv) in &self.l_cols[k] {
                acc -= lv * y[r];
            }
            y[self.prow[k]] = acc;
        }
    }

    fn btran_unit(&self, r: usize, rho: &mut [f64]) {
        if self.m == 0 {
            rho.fill(0.0);
            return;
        }
        // `scratch_unit` is distinct from btran's own workspaces, so the
        // nested call cannot double-borrow.
        let mut cb = self.scratch_unit.borrow_mut();
        cb.clear();
        cb.resize(self.m, 0.0);
        cb[r] = 1.0;
        self.btran(&cb, rho);
    }

    fn update(&mut self, l: usize, w: &[f64]) -> bool {
        let wl = w[l];
        if wl.abs() <= Self::UPDATE_TOL || self.eta_entries >= self.eta_capacity() {
            return false;
        }
        let entries: Vec<(usize, f64)> = w
            .iter()
            .enumerate()
            .filter(|&(r, &v)| r != l && v.abs() > 1e-12)
            .map(|(r, &v)| (r, v))
            .collect();
        self.eta_entries += entries.len() + 1;
        self.etas.push(Eta { l, wl, entries });
        true
    }

    fn updates_since_refactor(&self) -> usize {
        self.etas.len()
    }

    fn box_clone(&self) -> Box<dyn BasisFactorization> {
        Box::new(self.clone())
    }
}

// ---------------------------------------------------------------------------
// Markowitz-ordered LU with Forrest–Tomlin updates
// ---------------------------------------------------------------------------

/// One Forrest–Tomlin row eta: the multipliers `μ` that eliminated the
/// displaced row `t` of `U` after its column moved to the last triangular
/// position (`R = I − e_t μᵀ`, entries in column-uid space). FTRAN applies
/// `x_t ← x_t − Σ_j μ_j x_j`; BTRAN applies `x_j ← x_j − μ_j x_t`.
#[derive(Clone, Debug)]
struct RowEta {
    t: usize,
    entries: Vec<(usize, f64)>,
}

/// Markowitz-ordered sparse LU factors with Forrest–Tomlin `U`-updates.
///
/// The factorization pivots on `(row, column)` pairs chosen to minimize the
/// Markowitz fill bound `(r−1)(c−1)` among entries passing a relative
/// stability threshold, storing the row permutation in `prow` and the
/// column permutation in `slot_of_uid` (`uid` = factorization step, the
/// *stable* identity of a `U` column across updates). Updates follow the
/// classic Forrest–Tomlin scheme (see the module docs): the spike column
/// `s = U·w` replaces column `t`, the displaced row is eliminated by a
/// short row eta, and `U` stays triangular in the explicit `order` / `pos`
/// column ordering.
#[derive(Clone, Debug, Default)]
pub struct ForrestTomlinLu {
    m: usize,
    /// Columns of unit-lower-triangular `L` per step: `(original row, mult)`
    /// for rows pivoted *after* that step.
    l_cols: Vec<Vec<(usize, f64)>>,
    /// `prow[k]` = original row pivoted at step `k`.
    prow: Vec<usize>,
    /// Diagonal of `U` per column uid.
    diag: Vec<f64>,
    /// Off-diagonal entries of `U`, column-wise: `ucols[j]` = `(row uid, value)`.
    ucols: Vec<Vec<(usize, f64)>>,
    /// The same entries row-wise: `urows[i]` = `(column uid, value)`.
    urows: Vec<Vec<(usize, f64)>>,
    /// Column uids in triangular order (entry `(i, j)` of `U` requires
    /// `pos[i] ≤ pos[j]`).
    order: Vec<usize>,
    /// `pos[uid]` = position of that column in `order`.
    pos: Vec<usize>,
    /// Basis slot occupied by each `U` column uid (the column permutation).
    slot_of_uid: Vec<usize>,
    /// Inverse of `slot_of_uid`.
    uid_of_slot: Vec<usize>,
    /// Forrest–Tomlin row etas, in creation order.
    etas: Vec<RowEta>,
    /// Total entries across the row etas (bounds FTRAN/BTRAN cost).
    eta_entries: usize,
    /// Reusable solve workspaces (see [`SparseLu`] for the aliasing rules).
    scratch_x: std::cell::RefCell<Vec<f64>>,
    scratch_c: std::cell::RefCell<Vec<f64>>,
    scratch_s: std::cell::RefCell<Vec<f64>>,
    scratch_unit: std::cell::RefCell<Vec<f64>>,
}

impl ForrestTomlinLu {
    /// Tiny pivots below this are treated as singular.
    const SINGULAR_TOL: f64 = 1e-12;
    /// New diagonals below this refuse the FT update (forces refactor).
    const UPDATE_TOL: f64 = 1e-9;
    /// Relative stability floor: the new diagonal must not be smaller than
    /// this fraction of the spike's largest entry.
    const UPDATE_REL_TOL: f64 = 1e-9;
    /// Entries below this are dropped from stored factors.
    const DROP_TOL: f64 = 1e-12;
    /// Markowitz relative pivot threshold: a pivot must reach this fraction
    /// of the largest entry in its column.
    const PIVOT_THRESHOLD: f64 = 0.1;
    /// How many minimum-count candidate columns one pivot search examines
    /// before settling.
    const SEARCH_COLS: usize = 8;

    /// Row-eta capacity: once the file holds more than `4m + 64` entries the
    /// update declines and the core refactorizes (same budget as the
    /// [`SparseLu`] eta file, though FT row etas are typically much smaller).
    fn eta_capacity(&self) -> usize {
        4 * self.m + 64
    }

    /// Forward elimination `L⁻¹` (row permutation folded in) on the dense
    /// scratch `x` indexed by original row; afterwards `x[prow[k]]` holds the
    /// step-space value `z_k`.
    fn forward(&self, x: &mut [f64]) {
        for k in 0..self.m {
            let z = x[self.prow[k]];
            if z != 0.0 {
                for &(r, lv) in &self.l_cols[k] {
                    x[r] -= z * lv;
                }
            }
        }
    }

    /// Applies the row etas (FTRAN direction, creation order) to the
    /// uid-indexed vector `z`.
    fn apply_etas_ftran(&self, z: &mut [f64]) {
        for eta in &self.etas {
            let mut acc = z[eta.t];
            for &(j, mu) in &eta.entries {
                acc -= mu * z[j];
            }
            z[eta.t] = acc;
        }
    }

    /// Applies the transposed row etas (BTRAN direction, reverse order) to
    /// the uid-indexed vector `s`.
    fn apply_etas_btran(&self, s: &mut [f64]) {
        for eta in self.etas.iter().rev() {
            let st = s[eta.t];
            if st != 0.0 {
                for &(j, mu) in &eta.entries {
                    s[j] -= mu * st;
                }
            }
        }
    }

    /// Backward substitution `U ŵ = z` over the triangular order; writes the
    /// solution into `w` indexed by basis slot.
    fn backward(&self, z: &mut [f64], w: &mut [f64]) {
        for v in w.iter_mut() {
            *v = 0.0;
        }
        for p in (0..self.m).rev() {
            let j = self.order[p];
            let v = z[j] / self.diag[j];
            w[self.slot_of_uid[j]] = v;
            if v != 0.0 {
                for &(i, uv) in &self.ucols[j] {
                    z[i] -= uv * v;
                }
            }
        }
    }

    fn lu_solve_into(&self, x: &mut [f64], w: &mut [f64]) {
        if self.m == 0 {
            // empty state (failed refactor): solves write zeros
            w.fill(0.0);
            return;
        }
        self.forward(x);
        // move to uid (= step) space: z_k lives at x[prow[k]]
        let mut z = self.scratch_s.borrow_mut();
        z.clear();
        z.extend(self.prow.iter().map(|&r| x[r]));
        self.apply_etas_ftran(&mut z);
        self.backward(&mut z, w);
    }

    /// Clears every factor structure: the state promised by a failed
    /// [`BasisFactorization::refactor`] (`num_rows() == 0`, solves write
    /// zeros). `order`/`pos`/`uid_of_slot` are cleared too — they are the
    /// only vectors `refactor` does not rebuild-or-clear up front, and a
    /// stale `order` over empty `ucols` is exactly the shape that turns a
    /// post-failure BTRAN into an out-of-bounds index.
    fn reset_to_empty(&mut self) {
        self.m = 0;
        self.l_cols.clear();
        self.prow.clear();
        self.diag.clear();
        self.ucols.clear();
        self.urows.clear();
        self.order.clear();
        self.pos.clear();
        self.slot_of_uid.clear();
        self.uid_of_slot.clear();
        self.etas.clear();
        self.eta_entries = 0;
    }
}

impl BasisFactorization for ForrestTomlinLu {
    fn kind(&self) -> BasisKind {
        BasisKind::ForrestTomlin
    }

    fn num_rows(&self) -> usize {
        self.m
    }

    fn refactor(&mut self, m: usize, cols: &[SparseColumn]) -> bool {
        assert_eq!(cols.len(), m, "one column per basis position");
        self.m = m;
        self.etas.clear();
        self.eta_entries = 0;
        self.l_cols.clear();
        self.prow.clear();
        self.diag.clear();
        self.ucols.clear();
        self.urows.clear();
        self.slot_of_uid.clear();

        // Active-submatrix storage: rows hold (column, value) sorted by
        // column; columns hold candidate row lists with lazy deletion
        // (entries are validated against the row storage before use).
        let mut rows: Vec<Vec<(usize, f64)>> = vec![Vec::new(); m];
        for (c, col) in cols.iter().enumerate() {
            for &(r, v) in col {
                if v != 0.0 {
                    rows[r].push((c, v));
                }
            }
        }
        let mut col_rows: Vec<Vec<usize>> = vec![Vec::new(); m];
        let mut col_count = vec![0usize; m];
        let mut row_count = vec![0usize; m];
        for (r, row) in rows.iter_mut().enumerate() {
            row.sort_unstable_by_key(|e| e.0);
            // collapse duplicate column entries
            let mut out: Vec<(usize, f64)> = Vec::with_capacity(row.len());
            for &(c, v) in row.iter() {
                match out.last_mut() {
                    Some(last) if last.0 == c => last.1 += v,
                    _ => out.push((c, v)),
                }
            }
            out.retain(|&(_, v)| v != 0.0);
            for &(c, _) in &out {
                col_rows[c].push(r);
                col_count[c] += 1;
            }
            row_count[r] = out.len();
            *row = out;
        }
        let mut active_row = vec![true; m];
        let mut active_col = vec![true; m];
        let mut active_cols: Vec<usize> = (0..m).collect();

        // Looks up the value of column `c` in row `r` (rows stay sorted).
        let value_in = |rows: &[Vec<(usize, f64)>], r: usize, c: usize| -> Option<f64> {
            rows[r]
                .binary_search_by_key(&c, |e| e.0)
                .ok()
                .map(|idx| rows[r][idx].1)
        };

        // Best stable pivot inside column `c`: minimize (r−1)(c−1) among
        // entries within PIVOT_THRESHOLD of the column max.
        let best_in_col = |rows: &[Vec<(usize, f64)>],
                           col_rows: &[Vec<usize>],
                           active_row: &[bool],
                           row_count: &[usize],
                           col_count: &[usize],
                           c: usize|
         -> Option<(usize, f64, usize)> {
            let mut colmax = 0.0f64;
            for &r in &col_rows[c] {
                if active_row[r] {
                    if let Some(v) = value_in(rows, r, c) {
                        colmax = colmax.max(v.abs());
                    }
                }
            }
            if colmax <= Self::SINGULAR_TOL {
                return None;
            }
            let floor = (Self::PIVOT_THRESHOLD * colmax).max(Self::SINGULAR_TOL);
            let mut best: Option<(usize, f64, usize)> = None;
            for &r in &col_rows[c] {
                if !active_row[r] {
                    continue;
                }
                let Some(v) = value_in(rows, r, c) else {
                    continue;
                };
                if v.abs() < floor {
                    continue;
                }
                let cost = (row_count[r] - 1) * (col_count[c] - 1);
                let better = match best {
                    None => true,
                    Some((_, bv, bc)) => cost < bc || (cost == bc && v.abs() > bv.abs()),
                };
                if better {
                    best = Some((r, v, cost));
                }
            }
            best
        };

        let mut pending_urows: Vec<Vec<(usize, f64)>> = Vec::with_capacity(m);
        for _ in 0..m {
            // --- Markowitz pivot search ---
            active_cols.retain(|&c| active_col[c]);
            let mut min_cnt = usize::MAX;
            let mut cand: Vec<usize> = Vec::with_capacity(Self::SEARCH_COLS);
            for &c in &active_cols {
                let cc = col_count[c];
                if cc == 0 {
                    self.reset_to_empty();
                    return false; // numerically empty column: singular
                }
                if cc < min_cnt {
                    min_cnt = cc;
                    cand.clear();
                }
                if cc == min_cnt && cand.len() < Self::SEARCH_COLS {
                    cand.push(c);
                }
                if min_cnt == 1 && cand.len() >= Self::SEARCH_COLS {
                    break;
                }
            }
            let mut best: Option<(usize, usize, f64, usize)> = None; // (r, c, v, cost)
            for &c in &cand {
                if let Some((r, v, cost)) =
                    best_in_col(&rows, &col_rows, &active_row, &row_count, &col_count, c)
                {
                    let better = match best {
                        None => true,
                        Some((_, _, bv, bc)) => cost < bc || (cost == bc && v.abs() > bv.abs()),
                    };
                    if better {
                        best = Some((r, c, v, cost));
                    }
                }
            }
            if best.is_none() {
                // the minimum-count columns had no stable entry: widen the
                // search to every active column before declaring failure
                for &c in &active_cols {
                    if let Some((r, v, cost)) =
                        best_in_col(&rows, &col_rows, &active_row, &row_count, &col_count, c)
                    {
                        let better = match best {
                            None => true,
                            Some((_, _, bv, bc)) => cost < bc || (cost == bc && v.abs() > bv.abs()),
                        };
                        if better {
                            best = Some((r, c, v, cost));
                        }
                    }
                }
            }
            let Some((p, q, piv, _)) = best else {
                self.reset_to_empty();
                return false; // no stable pivot anywhere: singular
            };

            // --- elimination step ---
            self.prow.push(p);
            self.slot_of_uid.push(q);
            self.diag.push(piv);
            active_row[p] = false;
            active_col[q] = false;
            // the pivot row's remaining active entries become row k of U
            let prow_entries: Vec<(usize, f64)> = rows[p]
                .iter()
                .filter(|&&(c, _)| active_col[c])
                .copied()
                .collect();
            for &(c, _) in &prow_entries {
                col_count[c] -= 1;
            }
            // eliminate column q from every active row; self-deduping: the
            // merge removes the q entry, so stale duplicates in col_rows[q]
            // simply fail the lookup
            let mut lcol: Vec<(usize, f64)> = Vec::new();
            let rlist = std::mem::take(&mut col_rows[q]);
            for r in rlist {
                if !active_row[r] {
                    continue;
                }
                let Some(v) = value_in(&rows, r, q) else {
                    continue;
                };
                let mult = v / piv;
                lcol.push((r, mult));
                // rows[r] ← rows[r] − mult · pivot_row, dropping the q entry
                let old = std::mem::take(&mut rows[r]);
                let mut out: Vec<(usize, f64)> = Vec::with_capacity(old.len() + prow_entries.len());
                let (mut a, mut bb) = (0usize, 0usize);
                while a < old.len() || bb < prow_entries.len() {
                    let ac = old.get(a).map(|e| e.0).unwrap_or(usize::MAX);
                    let bc = prow_entries.get(bb).map(|e| e.0).unwrap_or(usize::MAX);
                    if ac < bc {
                        if ac != q {
                            out.push(old[a]);
                        }
                        a += 1;
                    } else if bc < ac {
                        let nv = -mult * prow_entries[bb].1;
                        if nv.abs() > 1e-14 {
                            out.push((bc, nv));
                            col_count[bc] += 1;
                            col_rows[bc].push(r);
                        }
                        bb += 1;
                    } else {
                        let nv = old[a].1 - mult * prow_entries[bb].1;
                        if nv.abs() > 1e-14 {
                            out.push((ac, nv));
                        } else {
                            col_count[ac] -= 1;
                        }
                        a += 1;
                        bb += 1;
                    }
                }
                row_count[r] = out.len();
                rows[r] = out;
            }
            self.l_cols.push(lcol);
            pending_urows.push(prow_entries);
        }

        // finalize: map pending U rows (slot-indexed columns) to uid space
        self.uid_of_slot = vec![0usize; m];
        for (uid, &slot) in self.slot_of_uid.iter().enumerate() {
            self.uid_of_slot[slot] = uid;
        }
        self.ucols = vec![Vec::new(); m];
        self.urows = vec![Vec::new(); m];
        for (i, entries) in pending_urows.into_iter().enumerate() {
            for (slot, v) in entries {
                let j = self.uid_of_slot[slot];
                self.urows[i].push((j, v));
                self.ucols[j].push((i, v));
            }
        }
        self.order = (0..m).collect();
        self.pos = (0..m).collect();
        true
    }

    fn ftran_sparse(&self, entries: &[(usize, f64)], w: &mut [f64]) {
        if self.m == 0 {
            w.fill(0.0);
            return;
        }
        let mut x = self.scratch_x.borrow_mut();
        x.clear();
        x.resize(self.m, 0.0);
        for &(i, a) in entries {
            x[i] += a;
        }
        self.lu_solve_into(&mut x, w);
    }

    fn ftran_dense(&self, rhs: &[f64], w: &mut [f64]) {
        let mut x = self.scratch_x.borrow_mut();
        x.clear();
        x.extend_from_slice(rhs);
        self.lu_solve_into(&mut x, w);
    }

    fn btran(&self, cb: &[f64], y: &mut [f64]) {
        // y = cᵦ B⁻¹ in uid space: solve Uᵀ s = ĉ over ascending positions,
        // apply the transposed row etas in reverse, then the transposed
        // forward elimination back in original-row space.
        let m = self.m;
        let mut c = self.scratch_c.borrow_mut();
        c.clear();
        c.extend(self.slot_of_uid.iter().map(|&slot| cb[slot]));
        let mut s = self.scratch_s.borrow_mut();
        s.clear();
        s.resize(m, 0.0);
        for p in 0..m {
            let j = self.order[p];
            let mut v = c[j];
            for &(i, uv) in &self.ucols[j] {
                v -= uv * s[i];
            }
            s[j] = v / self.diag[j];
        }
        self.apply_etas_btran(&mut s);
        for v in y.iter_mut() {
            *v = 0.0;
        }
        for k in 0..m {
            y[self.prow[k]] = s[k];
        }
        for k in (0..m).rev() {
            let mut acc = y[self.prow[k]];
            for &(r, lv) in &self.l_cols[k] {
                acc -= lv * y[r];
            }
            y[self.prow[k]] = acc;
        }
    }

    fn btran_unit(&self, r: usize, rho: &mut [f64]) {
        if self.m == 0 {
            rho.fill(0.0);
            return;
        }
        let mut cb = self.scratch_unit.borrow_mut();
        cb.clear();
        cb.resize(self.m, 0.0);
        cb[r] = 1.0;
        self.btran(&cb, rho);
    }

    fn update(&mut self, l: usize, w: &[f64]) -> bool {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let m = self.m;
        if m == 0 {
            return false;
        }
        let t = self.uid_of_slot[l];

        // spike s = U ŵ, where ŵ is the FTRAN image mapped to uid space
        let mut s = vec![0.0f64; m];
        let mut s_inf = 0.0f64;
        for j in 0..m {
            let v = w[self.slot_of_uid[j]];
            if v != 0.0 {
                s[j] += self.diag[j] * v;
                for &(i, uv) in &self.ucols[j] {
                    s[i] += uv * v;
                }
            }
        }
        for &v in &s {
            s_inf = s_inf.max(v.abs());
        }

        // Eliminate the displaced row t left to right (ascending triangular
        // position); fill only spreads rightward, so each column is popped
        // at most once after its value is final.
        let mut rowval = vec![0.0f64; m];
        let mut heap: BinaryHeap<Reverse<(usize, usize)>> = BinaryHeap::new();
        for &(j, v) in &self.urows[t] {
            rowval[j] = v;
            heap.push(Reverse((self.pos[j], j)));
        }
        let mut mus: Vec<(usize, f64)> = Vec::new();
        let mut d = s[t];
        while let Some(Reverse((_, j))) = heap.pop() {
            let v = rowval[j];
            rowval[j] = 0.0;
            if v.abs() <= Self::DROP_TOL {
                continue;
            }
            let mu = v / self.diag[j];
            mus.push((j, mu));
            d -= mu * s[j];
            for &(j2, v2) in &self.urows[j] {
                if j2 == t || v2 == 0.0 {
                    continue;
                }
                if rowval[j2] == 0.0 {
                    heap.push(Reverse((self.pos[j2], j2)));
                }
                rowval[j2] -= mu * v2;
            }
        }

        // stability / capacity gate — nothing has been mutated yet
        if d.abs() <= Self::UPDATE_TOL
            || d.abs() < Self::UPDATE_REL_TOL * s_inf
            || self.eta_entries + mus.len() > self.eta_capacity()
        {
            return false;
        }

        // commit: drop the old row/column t from both mirrors, install the
        // spike as the new column t, move t to the back of the order
        let old_row = std::mem::take(&mut self.urows[t]);
        for &(j, _) in &old_row {
            self.ucols[j].retain(|&(i, _)| i != t);
        }
        let old_col = std::mem::take(&mut self.ucols[t]);
        for &(i, _) in &old_col {
            self.urows[i].retain(|&(j, _)| j != t);
        }
        let mut newcol: Vec<(usize, f64)> = Vec::new();
        for (i, &v) in s.iter().enumerate() {
            if i != t && v.abs() > Self::DROP_TOL {
                newcol.push((i, v));
                self.urows[i].push((t, v));
            }
        }
        self.ucols[t] = newcol;
        self.diag[t] = d;
        let p = self.pos[t];
        self.order.remove(p);
        self.order.push(t);
        for (idx, &u) in self.order.iter().enumerate().skip(p) {
            self.pos[u] = idx;
        }
        self.eta_entries += mus.len();
        self.etas.push(RowEta { t, entries: mus });
        true
    }

    fn updates_since_refactor(&self) -> usize {
        self.etas.len()
    }

    fn box_clone(&self) -> Box<dyn BasisFactorization> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Dense m × m reference multiply: B w for basis columns `cols`.
    fn apply_b(m: usize, cols: &[SparseColumn], w: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0f64; m];
        for (c, col) in cols.iter().enumerate() {
            for &(r, v) in col {
                out[r] += v * w[c];
            }
        }
        out
    }

    fn random_basis(seed: u64, m: usize) -> Vec<SparseColumn> {
        let mut rng = StdRng::seed_from_u64(seed);
        // diagonally-dominant so the basis is comfortably nonsingular
        (0..m)
            .map(|c| {
                let mut col: SparseColumn = vec![(c, 2.0 + rng.random_range(0.0..3.0))];
                for _ in 0..3 {
                    let r = rng.random_range(0..m);
                    if r != c {
                        col.push((r, rng.random_range(-0.4..0.4)));
                    }
                }
                col
            })
            .collect()
    }

    fn check_roundtrip(factor: &mut dyn BasisFactorization, seed: u64, m: usize) {
        let cols = random_basis(seed, m);
        assert!(factor.refactor(m, &cols), "random basis must factorize");
        let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);

        // FTRAN: B w = a
        let mut a: Vec<(usize, f64)> = Vec::new();
        for r in 0..m {
            if rng.random_range(0.0..1.0) < 0.5 {
                a.push((r, rng.random_range(-2.0..2.0)));
            }
        }
        let mut w = vec![0.0f64; m];
        factor.ftran_sparse(&a, &mut w);
        let bw = apply_b(m, &cols, &w);
        let mut dense_a = vec![0.0f64; m];
        for &(r, v) in &a {
            dense_a[r] += v;
        }
        for r in 0..m {
            assert!(
                (bw[r] - dense_a[r]).abs() < 1e-8,
                "ftran row {r}: {} vs {}",
                bw[r],
                dense_a[r]
            );
        }

        // BTRAN: y B = cb, i.e. y · (column c) = cb[c]
        let cb: Vec<f64> = (0..m).map(|_| rng.random_range(-3.0..3.0)).collect();
        let mut y = vec![0.0f64; m];
        factor.btran(&cb, &mut y);
        for (c, col) in cols.iter().enumerate() {
            let dot: f64 = col.iter().map(|&(r, v)| y[r] * v).sum();
            assert!(
                (dot - cb[c]).abs() < 1e-8,
                "btran col {c}: {dot} vs {}",
                cb[c]
            );
        }

        // btran_unit row r agrees with btran on e_r
        let r = m / 2;
        let mut rho = vec![0.0f64; m];
        factor.btran_unit(r, &mut rho);
        let mut er = vec![0.0f64; m];
        er[r] = 1.0;
        let mut yr = vec![0.0f64; m];
        factor.btran(&er, &mut yr);
        for i in 0..m {
            assert!((rho[i] - yr[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn product_form_roundtrips() {
        for seed in 0..6u64 {
            let m = 3 + (seed as usize % 8);
            check_roundtrip(&mut ProductFormInverse::default(), seed, m);
        }
    }

    #[test]
    fn sparse_lu_roundtrips() {
        for seed in 0..6u64 {
            let m = 3 + (seed as usize % 8);
            check_roundtrip(&mut SparseLu::default(), seed, m);
        }
    }

    #[test]
    fn forrest_tomlin_roundtrips() {
        for seed in 0..6u64 {
            let m = 3 + (seed as usize % 8);
            check_roundtrip(&mut ForrestTomlinLu::default(), seed, m);
        }
    }

    #[test]
    fn all_kinds_agree_after_updates() {
        let m = 12;
        let cols = random_basis(99, m);
        let mut pf = ProductFormInverse::default();
        let mut lu = SparseLu::default();
        let mut ft = ForrestTomlinLu::default();
        assert!(pf.refactor(m, &cols));
        assert!(lu.refactor(m, &cols));
        assert!(ft.refactor(m, &cols));
        let mut rng = StdRng::seed_from_u64(4242);
        let mut cols = cols;
        for _ in 0..8 {
            // a random replacement column
            let mut e: SparseColumn = Vec::new();
            for r in 0..m {
                if rng.random_range(0.0..1.0) < 0.4 {
                    e.push((r, rng.random_range(-2.0..2.0)));
                }
            }
            e.push((rng.random_range(0..m), 3.0));
            let mut w_pf = vec![0.0f64; m];
            let mut w_lu = vec![0.0f64; m];
            let mut w_ft = vec![0.0f64; m];
            pf.ftran_sparse(&e, &mut w_pf);
            lu.ftran_sparse(&e, &mut w_lu);
            ft.ftran_sparse(&e, &mut w_ft);
            for r in 0..m {
                assert!((w_pf[r] - w_lu[r]).abs() < 1e-7, "lu ftran mismatch at {r}");
                assert!((w_pf[r] - w_ft[r]).abs() < 1e-7, "ft ftran mismatch at {r}");
            }
            // choose a pivot position with a healthy element
            let l = (0..m)
                .max_by(|&a, &b| w_pf[a].abs().partial_cmp(&w_pf[b].abs()).unwrap())
                .unwrap();
            if w_pf[l].abs() < 1e-6 {
                continue;
            }
            assert!(pf.update(l, &w_pf));
            assert!(lu.update(l, &w_lu));
            assert!(ft.update(l, &w_ft));
            cols[l] = e;
            // duals must agree afterwards
            let cb: Vec<f64> = (0..m).map(|_| rng.random_range(-1.0..1.0)).collect();
            let mut y_pf = vec![0.0f64; m];
            let mut y_lu = vec![0.0f64; m];
            let mut y_ft = vec![0.0f64; m];
            pf.btran(&cb, &mut y_pf);
            lu.btran(&cb, &mut y_lu);
            ft.btran(&cb, &mut y_ft);
            for i in 0..m {
                assert!((y_pf[i] - y_lu[i]).abs() < 1e-6, "lu btran mismatch at {i}");
                assert!((y_pf[i] - y_ft[i]).abs() < 1e-6, "ft btran mismatch at {i}");
            }
        }
        assert_eq!(pf.updates_since_refactor(), lu.updates_since_refactor());
        assert_eq!(pf.updates_since_refactor(), ft.updates_since_refactor());
    }

    #[test]
    fn singular_basis_is_rejected_by_all() {
        let m = 4;
        // two identical columns
        let mut cols = random_basis(7, m);
        cols[2] = cols[1].clone();
        for factor in [
            &mut ProductFormInverse::default() as &mut dyn BasisFactorization,
            &mut SparseLu::default(),
            &mut ForrestTomlinLu::default(),
        ] {
            assert!(!factor.refactor(m, &cols), "{:?}", factor.kind());
        }
    }

    /// A failed refactor must leave the factorization *empty*, not partially
    /// built: `num_rows() == 0` and every solve writes zeros. The crash this
    /// pins down came from the session's deep-arrival path — a singular
    /// rebuild mid-solve left stale `order` over cleared `ucols`, and the
    /// next BTRAN (extracting duals for the failed solve) indexed out of
    /// bounds.
    #[test]
    fn failed_refactor_leaves_a_safe_empty_state() {
        let m = 6;
        let good = random_basis(11, m);
        let mut singular = random_basis(11, m);
        singular[3] = singular[4].clone();
        for factor in [
            &mut ProductFormInverse::default() as &mut dyn BasisFactorization,
            &mut SparseLu::default(),
            &mut ForrestTomlinLu::default(),
        ] {
            let kind = factor.kind();
            // a prior *successful* factorization populates every structure,
            // so this exercises failure-after-success, not the fresh state
            assert!(factor.refactor(m, &good), "{kind:?}: good basis");
            assert!(!factor.refactor(m, &singular), "{kind:?}: singular");
            assert_eq!(factor.num_rows(), 0, "{kind:?}: empty after failure");

            // every solve entry point is callable and writes zeros
            let cb = vec![1.0f64; m];
            let mut y = vec![f64::NAN; m];
            factor.btran(&cb, &mut y);
            assert!(y.iter().all(|&v| v == 0.0), "{kind:?}: btran zeros");
            let mut rho = vec![f64::NAN; m];
            factor.btran_unit(2, &mut rho);
            assert!(rho.iter().all(|&v| v == 0.0), "{kind:?}: btran_unit zeros");
            let mut w = vec![f64::NAN; m];
            factor.ftran_dense(&cb, &mut w);
            assert!(w.iter().all(|&v| v == 0.0), "{kind:?}: ftran_dense zeros");
            let mut w2 = vec![f64::NAN; m];
            factor.ftran_sparse(&[(1, 1.0)], &mut w2);
            assert!(w2.iter().all(|&v| v == 0.0), "{kind:?}: ftran_sparse zeros");

            // and the factorization recovers on the next successful refactor
            assert!(factor.refactor(m, &good), "{kind:?}: recovers");
            assert_eq!(factor.num_rows(), m);
            let mut w3 = vec![0.0f64; m];
            factor.ftran_dense(&cb, &mut w3);
            let bw = apply_b(m, &good, &w3);
            for r in 0..m {
                assert!((bw[r] - cb[r]).abs() < 1e-8, "{kind:?}: row {r}");
            }
        }
    }

    /// FT-updated factors must agree with a from-scratch refactorization of
    /// the same (updated) basis columns through a *long* pivot sequence —
    /// the invariant the debug-assertions check in the simplex core also
    /// enforces per scheduled refactor.
    #[test]
    fn forrest_tomlin_long_sequence_matches_fresh_refactor() {
        for seed in [5u64, 17, 23] {
            let m = 24;
            let mut cols = random_basis(seed, m);
            let mut ft = ForrestTomlinLu::default();
            assert!(ft.refactor(m, &cols));
            let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED);
            let mut applied = 0usize;
            let mut w = vec![0.0f64; m];
            while applied < 40 {
                let mut e: SparseColumn = Vec::new();
                for r in 0..m {
                    if rng.random_range(0.0..1.0) < 0.3 {
                        e.push((r, rng.random_range(-2.0..2.0)));
                    }
                }
                e.push((rng.random_range(0..m), 2.5));
                ft.ftran_sparse(&e, &mut w);
                let l = (0..m)
                    .max_by(|&a, &b| w[a].abs().partial_cmp(&w[b].abs()).unwrap())
                    .unwrap();
                if w[l].abs() < 1e-4 || !ft.update(l, &w) {
                    continue;
                }
                cols[l] = e;
                applied += 1;
                if applied.is_multiple_of(10) {
                    // compare the updated factors against a fresh refactor
                    let mut fresh = ForrestTomlinLu::default();
                    assert!(fresh.refactor(m, &cols));
                    let rhs: Vec<f64> = (0..m).map(|_| rng.random_range(-2.0..2.0)).collect();
                    let mut w_upd = vec![0.0f64; m];
                    let mut w_fresh = vec![0.0f64; m];
                    ft.ftran_dense(&rhs, &mut w_upd);
                    fresh.ftran_dense(&rhs, &mut w_fresh);
                    for i in 0..m {
                        assert!(
                            (w_upd[i] - w_fresh[i]).abs() < 1e-6,
                            "seed {seed}: ftran drift {} at {i} after {applied} updates",
                            (w_upd[i] - w_fresh[i]).abs()
                        );
                    }
                    let mut y_upd = vec![0.0f64; m];
                    let mut y_fresh = vec![0.0f64; m];
                    ft.btran(&rhs, &mut y_upd);
                    fresh.btran(&rhs, &mut y_fresh);
                    for i in 0..m {
                        assert!(
                            (y_upd[i] - y_fresh[i]).abs() < 1e-6,
                            "seed {seed}: btran drift at {i} after {applied} updates"
                        );
                    }
                }
            }
            assert_eq!(ft.updates_since_refactor(), 40);
        }
    }

    #[test]
    fn eta_capacity_forces_refactor() {
        let m = 4;
        let cols = random_basis(11, m);
        let mut lu = SparseLu::default();
        assert!(lu.refactor(m, &cols));
        // dense updates: each eta holds ~m entries; the capacity 4m + 64
        // must trip in bounded time
        let w: Vec<f64> = (0..m).map(|r| 1.0 + r as f64 * 0.1).collect();
        let mut declined = false;
        for _ in 0..200 {
            if !lu.update(0, &w) {
                declined = true;
                break;
            }
        }
        assert!(declined, "eta file must eventually decline updates");
    }
}
