//! Pluggable basis factorizations for the revised simplex.
//!
//! The revised method needs four linear-algebra primitives per iteration —
//! FTRAN (`w = B⁻¹ a`), BTRAN (`y = cᵦ B⁻¹`), a single row of `B⁻¹` (for
//! Devex pivot rows and for driving artificials out), and a rank-one pivot
//! update — plus a periodic rebuild from the basis columns. This module
//! abstracts them behind the [`BasisFactorization`] trait so the simplex
//! core ([`crate::simplex`]) is independent of *how* the basis is
//! represented:
//!
//! * [`ProductFormInverse`] — the PR 1 representation: an explicit dense
//!   row-major `m × m` inverse updated in product form. Every primitive is
//!   `O(m²)` (FTRAN `O(m · nnz)`), which is fine for small masters but is
//!   the documented bottleneck at `m ≳ 5·10³` rows.
//! * [`SparseLu`] — a sparse LU factorization (`B = Pᵀ L U`, partial
//!   pivoting, left-looking elimination with a dense scratch column) with
//!   product-form **eta updates** between periodic refactorizations: each
//!   pivot appends a sparse eta matrix to the inverse representation instead
//!   of touching `O(m²)` entries, so FTRAN / BTRAN cost
//!   `O(nnz(L) + nnz(U) + nnz(etas))` and a pivot costs `O(nnz(w))`. The
//!   eta file is bounded (and the update refuses unstable pivots), which
//!   forces a refactorization through the simplex core's existing hygiene
//!   path — but between refactorizations the file still *grows* by one eta
//!   per pivot, so solve cost creeps up with the pivot count.
//! * [`ForrestTomlinLu`] — a **Markowitz-ordered** LU (choose the pivot
//!   minimizing the fill bound `(r−1)(c−1)` among entries passing the
//!   relative threshold `|B_pq| ≥ 0.1 · max_p |B_pq|`, with explicit row
//!   *and* column permutations) combined with genuine **Forrest–Tomlin
//!   updates of `U`**: a basis change replaces one column of `U` by the
//!   spike `s = U·w` (free from the pivot FTRAN image `w = B⁻¹ a_e`), moves
//!   that column last in the triangular order, and eliminates the displaced
//!   row of `U` with a short **row eta** of multipliers. `U` itself stays
//!   triangular with bounded fill (only the spike column is added), so
//!   FTRAN/BTRAN stay `O(nnz(L) + nnz(U) + nnz(row etas))` with row etas
//!   that are typically far sparser than product-form etas: the update cost
//!   tracks the *row* structure of `U`, not the full FTRAN image. Unstable
//!   replacements (tiny new diagonal relative to the spike) are declined,
//!   which routes through the same forced-refactorization path as
//!   [`SparseLu`].
//!
//! Which factorization runs is chosen by [`BasisKind`] in
//! [`crate::simplex::SimplexOptions`]; the property tests solve every
//! pricing × basis combination against the dense oracle ([`crate::dense`]).
//!
//! ## The Forrest–Tomlin update in formulas
//!
//! Write the factorized basis as `B = L_eff · U` (all prior row etas folded
//! into `L_eff⁻¹ = Rₖ ⋯ R₁ L⁻¹`). Replacing the basis column with stable
//! id `t` by the entering column `a` gives `B' = L_eff (U + (s − U e_t) e_tᵀ)`
//! with spike `s = L_eff⁻¹ a = U w`, where `w = B⁻¹ a` is the FTRAN image
//! the simplex pivot already computed. Moving column/row `t` to the last
//! position leaves `U` upper triangular except for the displaced row `t`,
//! whose entries are eliminated left to right by multipliers
//! `μ_j = rowval_j / U_jj`; those multipliers form the new row eta
//! `R = I − e_t μᵀ`, the new diagonal is `d = s_t − Σ_j μ_j s_j`, and the
//! spike entries become column `t` of the updated `U`.

use serde::{Deserialize, Serialize};

/// Selects the basis representation used by the revised simplex.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum BasisKind {
    /// Explicit dense `B⁻¹` maintained in product form (`O(m²)` per pivot).
    ProductForm,
    /// Sparse LU factors with product-form eta updates and periodic
    /// refactorization.
    SparseLu,
    /// Markowitz-ordered sparse LU with Forrest–Tomlin updates of `U`
    /// (bounded fill per pivot; the default at scale).
    ForrestTomlin,
}

impl BasisKind {
    /// Short stable name used in bench labels and stats tables.
    pub fn name(self) -> &'static str {
        match self {
            BasisKind::ProductForm => "product-form",
            BasisKind::SparseLu => "sparse-lu",
            BasisKind::ForrestTomlin => "ft-lu",
        }
    }
}

/// A sparse column of the basis matrix: `(row index, value)` pairs.
pub type SparseColumn = Vec<(usize, f64)>;

/// A solve result that is **indexed when sparse, plain when dense**.
///
/// The dense `values` array (length `m`) is always authoritative: `value(i)`
/// and [`values`](Self::values) are valid in both representations. When
/// [`is_sparse`](Self::is_sparse) is `true`, `pattern` lists every index
/// that *may* be non-zero (a superset — entries can cancel to exact zero),
/// so consumers iterate [`for_each_nonzero`](Self::for_each_nonzero) in
/// `O(nnz)` instead of `O(m)`. When it is `false` the result came from a
/// dense kernel (fallback above the density cutoff, or sparsity disabled)
/// and iteration scans the full array.
#[derive(Clone, Debug, Default)]
pub struct SparseVector {
    values: Vec<f64>,
    pattern: Vec<usize>,
    sparse: bool,
}

impl SparseVector {
    /// An all-zero sparse vector of length `m`.
    pub fn zeros(m: usize) -> Self {
        SparseVector {
            values: vec![0.0; m],
            pattern: Vec::new(),
            sparse: true,
        }
    }

    /// Length of the dense view.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the vector has length zero.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Whether the indexed pattern is valid (`false` means the result was
    /// produced by a dense kernel and only the dense view is meaningful).
    pub fn is_sparse(&self) -> bool {
        self.sparse
    }

    /// Upper bound on the number of non-zeros: the pattern length when
    /// sparse, `m` when dense.
    pub fn nnz_upper_bound(&self) -> usize {
        if self.sparse {
            self.pattern.len()
        } else {
            self.values.len()
        }
    }

    /// The dense view (always valid, length `m`).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Entry `i` of the dense view.
    #[inline]
    pub fn value(&self, i: usize) -> f64 {
        self.values[i]
    }

    /// The index pattern (meaningful only when [`is_sparse`](Self::is_sparse)).
    pub fn pattern(&self) -> &[usize] {
        &self.pattern
    }

    /// Visits every non-zero entry as `(index, value)` — over the pattern
    /// when sparse, over the full array when dense.
    #[inline]
    pub fn for_each_nonzero(&self, mut f: impl FnMut(usize, f64)) {
        if self.sparse {
            for &i in &self.pattern {
                let v = self.values[i];
                if v != 0.0 {
                    f(i, v);
                }
            }
        } else {
            for (i, &v) in self.values.iter().enumerate() {
                if v != 0.0 {
                    f(i, v);
                }
            }
        }
    }

    /// Resets to an all-zero **sparse** vector of length `m`, clearing the
    /// previous contents in `O(previous nnz)` when possible.
    pub fn begin(&mut self, m: usize) {
        if self.values.len() == m {
            if self.sparse {
                for &i in &self.pattern {
                    self.values[i] = 0.0;
                }
            } else {
                self.values.fill(0.0);
            }
        } else {
            self.values.clear();
            self.values.resize(m, 0.0);
        }
        self.pattern.clear();
        self.sparse = true;
    }

    /// Resets to an all-zero **dense** vector of length `m` (for results
    /// produced by dense kernels).
    pub fn begin_dense(&mut self, m: usize) {
        self.begin(m);
        self.sparse = false;
    }

    /// Mutable dense view; marks the vector dense (the pattern can no
    /// longer be trusted once a caller writes arbitrary entries).
    pub fn values_mut(&mut self) -> &mut [f64] {
        self.sparse = false;
        self.pattern.clear();
        &mut self.values
    }
}

/// Cumulative hyper-sparse solve counters of one factorization (monotone
/// over its lifetime; take deltas across a solve to attribute per-solve
/// work). Only the sparse-capable entry points
/// ([`BasisFactorization::ftran_sparse_into`] /
/// [`BasisFactorization::btran_unit_into`]) are tracked: `*_sparse +
/// *_dense` is the number of tracked solves, and the density sums cover
/// both (a dense fallback counts `m / m`).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SparsityStats {
    /// FTRAN solves answered by the hyper-sparse (Gilbert–Peierls) path.
    pub ftran_sparse: u64,
    /// FTRAN solves that fell back to the dense kernel (reach exceeded the
    /// density cutoff, or the representation has no sparse path).
    pub ftran_dense: u64,
    /// Pivot-row BTRANs answered by the hyper-sparse path.
    pub btran_sparse: u64,
    /// Pivot-row BTRANs that fell back to the dense kernel.
    pub btran_dense: u64,
    /// Summed result pattern sizes over all tracked solves.
    pub result_nnz: u64,
    /// Summed result lengths (`m`) over all tracked solves.
    pub result_len: u64,
}

impl SparsityStats {
    /// Field-wise difference against an earlier snapshot of the same
    /// factorization (saturating, so a factorization swap never underflows).
    pub fn delta_since(self, baseline: SparsityStats) -> SparsityStats {
        SparsityStats {
            ftran_sparse: self.ftran_sparse.saturating_sub(baseline.ftran_sparse),
            ftran_dense: self.ftran_dense.saturating_sub(baseline.ftran_dense),
            btran_sparse: self.btran_sparse.saturating_sub(baseline.btran_sparse),
            btran_dense: self.btran_dense.saturating_sub(baseline.btran_dense),
            result_nnz: self.result_nnz.saturating_sub(baseline.result_nnz),
            result_len: self.result_len.saturating_sub(baseline.result_len),
        }
    }

    /// Number of tracked solves.
    pub fn tracked_solves(self) -> u64 {
        self.ftran_sparse + self.ftran_dense + self.btran_sparse + self.btran_dense
    }

    /// Average result density (`nnz / m`) over the tracked solves, `1.0`
    /// when nothing was tracked.
    pub fn avg_density(self) -> f64 {
        if self.result_len > 0 {
            self.result_nnz as f64 / self.result_len as f64
        } else {
            1.0
        }
    }
}

/// Interior-mutability counters behind [`SparsityStats`]: the solve methods
/// take `&self`, so the factorizations count through `Cell`s.
#[derive(Clone, Debug, Default)]
struct SparsityCounters {
    ftran_sparse: std::cell::Cell<u64>,
    ftran_dense: std::cell::Cell<u64>,
    btran_sparse: std::cell::Cell<u64>,
    btran_dense: std::cell::Cell<u64>,
    result_nnz: std::cell::Cell<u64>,
    result_len: std::cell::Cell<u64>,
}

impl SparsityCounters {
    fn record_ftran(&self, sparse: bool, nnz: usize, m: usize) {
        if sparse {
            self.ftran_sparse.set(self.ftran_sparse.get() + 1);
        } else {
            self.ftran_dense.set(self.ftran_dense.get() + 1);
        }
        self.result_nnz.set(self.result_nnz.get() + nnz as u64);
        self.result_len.set(self.result_len.get() + m as u64);
    }

    fn record_btran(&self, sparse: bool, nnz: usize, m: usize) {
        if sparse {
            self.btran_sparse.set(self.btran_sparse.get() + 1);
        } else {
            self.btran_dense.set(self.btran_dense.get() + 1);
        }
        self.result_nnz.set(self.result_nnz.get() + nnz as u64);
        self.result_len.set(self.result_len.get() + m as u64);
    }

    fn snapshot(&self) -> SparsityStats {
        SparsityStats {
            ftran_sparse: self.ftran_sparse.get(),
            ftran_dense: self.ftran_dense.get(),
            btran_sparse: self.btran_sparse.get(),
            btran_dense: self.btran_dense.get(),
            result_nnz: self.result_nnz.get(),
            result_len: self.result_len.get(),
        }
    }
}

/// Gilbert–Peierls symbolic phase: an iterative DFS over the solve graph
/// from the right-hand side's support. `child(node, k)` returns the `k`-th
/// out-neighbor of `node` (or `None` past the end). On success, `post`
/// holds the reached nodes in **postorder** — iterate it in reverse for a
/// topological order of the numeric updates — and `visited` is marked for
/// every reached node (callers clear the marks via `post` when done).
/// Returns `false` (with `post` emptied and all marks unwound) as soon as
/// more than `cap` nodes are reached: the result would be too dense for
/// the sparse kernel to pay, and the caller falls back to the dense one.
fn symbolic_reach(
    support: impl IntoIterator<Item = usize>,
    child: impl Fn(usize, usize) -> Option<usize>,
    visited: &mut [bool],
    stack: &mut Vec<(usize, usize)>,
    post: &mut Vec<usize>,
    cap: usize,
) -> bool {
    post.clear();
    stack.clear();
    for s0 in support {
        if visited[s0] {
            continue;
        }
        if post.len() + 1 > cap {
            for &(n, _) in stack.iter() {
                visited[n] = false;
            }
            for &n in post.iter() {
                visited[n] = false;
            }
            post.clear();
            stack.clear();
            return false;
        }
        visited[s0] = true;
        stack.push((s0, 0));
        while let Some(&(node, cursor)) = stack.last() {
            stack.last_mut().expect("stack is non-empty").1 += 1;
            match child(node, cursor) {
                Some(c) if !visited[c] => {
                    if post.len() + stack.len() + 1 > cap {
                        for &(n, _) in stack.iter() {
                            visited[n] = false;
                        }
                        for &n in post.iter() {
                            visited[n] = false;
                        }
                        post.clear();
                        stack.clear();
                        return false;
                    }
                    visited[c] = true;
                    stack.push((c, 0));
                }
                Some(_) => {}
                None => {
                    stack.pop();
                    post.push(node);
                }
            }
        }
    }
    true
}

/// The linear-algebra kernel behind the revised simplex.
///
/// All vectors indexed "by basis position" refer to the slot `r` of the
/// simplex basis (`basis[r]` is the member whose column occupies position
/// `r`); vectors indexed "by row" refer to original constraint rows. The
/// two spaces have the same length `m` but are permuted relative to each
/// other inside the LU representation.
pub trait BasisFactorization: std::fmt::Debug + Send {
    /// Which representation this is (reported in solve stats).
    fn kind(&self) -> BasisKind;

    /// Number of rows of the factorized basis (0 before the first
    /// [`refactor`](Self::refactor)).
    fn num_rows(&self) -> usize;

    /// Rebuilds the factorization from scratch. `cols[c]` is the sparse
    /// column (by original row index) of the basis member at position `c`.
    /// Returns `false` when the basis matrix is numerically singular; the
    /// factorization is then left **empty** (`num_rows()` returns 0, solves
    /// write zeros) until the next successful refactor. Callers that keep
    /// going after a failure therefore get well-defined garbage (zero duals
    /// under a non-optimal status), never a partially-built factor.
    fn refactor(&mut self, m: usize, cols: &[SparseColumn]) -> bool;

    /// FTRAN with a sparse right-hand side: `w = B⁻¹ a` where `a` is given
    /// as `(row, value)` entries. `w` (length `m`) is indexed by basis
    /// position.
    fn ftran_sparse(&self, entries: &[(usize, f64)], w: &mut [f64]);

    /// FTRAN with a dense right-hand side (used to recompute `x_B = B⁻¹ b`).
    fn ftran_dense(&self, rhs: &[f64], w: &mut [f64]);

    /// BTRAN: `y = cᵦ B⁻¹` for the basic cost vector `cb` (indexed by basis
    /// position); `y` (length `m`) is indexed by original row.
    fn btran(&self, cb: &[f64], y: &mut [f64]);

    /// Row `r` of `B⁻¹` (`rho = eᵣᵀ B⁻¹`, indexed by original row): the
    /// pivot row used by Devex weight updates and by the artificial
    /// drive-out pass.
    fn btran_unit(&self, r: usize, rho: &mut [f64]);

    /// Applies the pivot that replaces the basis column at position `l` by
    /// the column whose FTRAN image is `w` (so the new `B⁻¹` is
    /// `E · B⁻¹_old` with the eta matrix built from `(l, w)`).
    ///
    /// Returns `false` when the representation declines the update for
    /// stability or capacity reasons — the caller must then refactor from
    /// the (already updated) basis columns; the factorization state is
    /// unspecified until it does.
    fn update(&mut self, l: usize, w: &[f64]) -> bool;

    /// Number of successful [`update`](Self::update)s since the last
    /// [`refactor`](Self::refactor).
    fn updates_since_refactor(&self) -> usize;

    /// Clones the factorization state (used by [`crate::simplex::WarmStart`],
    /// which must stay `Clone` for the column-generation master).
    fn box_clone(&self) -> Box<dyn BasisFactorization>;

    /// FTRAN with a sparse right-hand side into an indexed result: the
    /// hyper-sparse (Gilbert–Peierls) path when the representation supports
    /// one and the reach stays below the density cutoff, the dense kernel
    /// (with `w` marked dense) otherwise. The default implementation is the
    /// dense kernel; `w` keeps its current length when the factorization is
    /// empty.
    fn ftran_sparse_into(&self, entries: &[(usize, f64)], w: &mut SparseVector) {
        let m = self.num_rows();
        if m == 0 {
            let keep = w.len();
            w.begin(keep);
            return;
        }
        w.begin_dense(m);
        self.ftran_sparse(entries, w.values_mut());
    }

    /// Pivot-row BTRAN (`rho = eᵣᵀ B⁻¹`) into an indexed result; same
    /// sparse-or-dense contract as
    /// [`ftran_sparse_into`](Self::ftran_sparse_into).
    fn btran_unit_into(&self, r: usize, rho: &mut SparseVector) {
        let m = self.num_rows();
        if m == 0 {
            let keep = rho.len();
            rho.begin(keep);
            return;
        }
        rho.begin_dense(m);
        self.btran_unit(r, rho.values_mut());
    }

    /// [`update`](Self::update) from an indexed FTRAN image; representations
    /// override this to build the eta/spike from the pattern instead of an
    /// `O(m)` scan.
    fn update_sparse(&mut self, l: usize, w: &SparseVector) -> bool {
        self.update(l, w.values())
    }

    /// Cumulative hyper-sparse solve counters over this factorization's
    /// lifetime (all zeros for representations without a sparse path).
    fn sparsity_stats(&self) -> SparsityStats {
        SparsityStats::default()
    }
}

impl Clone for Box<dyn BasisFactorization> {
    fn clone(&self) -> Self {
        self.box_clone()
    }
}

/// Creates an empty factorization of the requested kind.
pub fn make_factorization(kind: BasisKind) -> Box<dyn BasisFactorization> {
    match kind {
        BasisKind::ProductForm => Box::new(ProductFormInverse::default()),
        BasisKind::SparseLu => Box::new(SparseLu::default()),
        BasisKind::ForrestTomlin => Box::new(ForrestTomlinLu::default()),
    }
}

// ---------------------------------------------------------------------------
// Product-form inverse (the PR 1 representation)
// ---------------------------------------------------------------------------

/// Explicit dense `B⁻¹`, row-major, updated in product form.
#[derive(Clone, Debug, Default)]
pub struct ProductFormInverse {
    m: usize,
    /// row-major `m × m`: `binv[r * m + i]` maps row `i` to basis position `r`
    binv: Vec<f64>,
    updates: usize,
}

impl ProductFormInverse {
    /// Wraps an existing dense inverse (used when migrating a pre-seam warm
    /// start and by tests).
    pub fn from_dense(m: usize, binv: Vec<f64>) -> Self {
        assert_eq!(binv.len(), m * m, "inverse must be m × m");
        ProductFormInverse {
            m,
            binv,
            updates: 0,
        }
    }
}

impl BasisFactorization for ProductFormInverse {
    fn kind(&self) -> BasisKind {
        BasisKind::ProductForm
    }

    fn num_rows(&self) -> usize {
        self.m
    }

    fn refactor(&mut self, m: usize, cols: &[SparseColumn]) -> bool {
        assert_eq!(cols.len(), m, "one column per basis position");
        self.m = m;
        self.updates = 0;
        // Dense B (column per basis position), then Gauss–Jordan with
        // partial pivoting applied to [B | I].
        let mut bmat = vec![0.0f64; m * m];
        for (c, col) in cols.iter().enumerate() {
            for &(r, v) in col {
                bmat[r * m + c] += v;
            }
        }
        let mut inv = vec![0.0f64; m * m];
        for i in 0..m {
            inv[i * m + i] = 1.0;
        }
        for k in 0..m {
            let mut p = k;
            let mut best = bmat[k * m + k].abs();
            for r in (k + 1)..m {
                let cand = bmat[r * m + k].abs();
                if cand > best {
                    best = cand;
                    p = r;
                }
            }
            if best <= 1e-12 {
                // singular: leave the empty state, not a stale inverse
                self.m = 0;
                self.binv.clear();
                return false;
            }
            if p != k {
                for j in 0..m {
                    bmat.swap(k * m + j, p * m + j);
                    inv.swap(k * m + j, p * m + j);
                }
            }
            let inv_piv = 1.0 / bmat[k * m + k];
            for j in 0..m {
                bmat[k * m + j] *= inv_piv;
                inv[k * m + j] *= inv_piv;
            }
            for r in 0..m {
                if r == k {
                    continue;
                }
                let f = bmat[r * m + k];
                if f != 0.0 {
                    for j in 0..m {
                        bmat[r * m + j] -= f * bmat[k * m + j];
                        inv[r * m + j] -= f * inv[k * m + j];
                    }
                }
            }
        }
        self.binv = inv;
        true
    }

    fn ftran_sparse(&self, entries: &[(usize, f64)], w: &mut [f64]) {
        let m = self.m;
        for v in w.iter_mut() {
            *v = 0.0;
        }
        if m == 0 {
            return; // empty state (failed refactor): solves write zeros
        }
        for &(i, a) in entries {
            if a != 0.0 {
                for (r, wr) in w.iter_mut().enumerate() {
                    *wr += self.binv[r * m + i] * a;
                }
            }
        }
    }

    fn ftran_dense(&self, rhs: &[f64], w: &mut [f64]) {
        let m = self.m;
        for (r, wr) in w.iter_mut().enumerate() {
            let row = &self.binv[r * m..(r + 1) * m];
            *wr = row.iter().zip(rhs.iter()).map(|(a, b)| a * b).sum();
        }
    }

    fn btran(&self, cb: &[f64], y: &mut [f64]) {
        let m = self.m;
        for v in y.iter_mut() {
            *v = 0.0;
        }
        for (r, &c) in cb.iter().enumerate() {
            if c != 0.0 {
                let row = &self.binv[r * m..(r + 1) * m];
                for (yk, &bk) in y.iter_mut().zip(row.iter()) {
                    *yk += c * bk;
                }
            }
        }
    }

    fn btran_unit(&self, r: usize, rho: &mut [f64]) {
        let m = self.m;
        if m == 0 {
            rho.fill(0.0);
            return;
        }
        rho.copy_from_slice(&self.binv[r * m..(r + 1) * m]);
    }

    fn update(&mut self, l: usize, w: &[f64]) -> bool {
        let m = self.m;
        let wl = w[l];
        if wl.abs() <= 1e-12 {
            return false;
        }
        let inv_wl = 1.0 / wl;
        for j in 0..m {
            self.binv[l * m + j] *= inv_wl;
        }
        let pivot_row: Vec<f64> = self.binv[l * m..(l + 1) * m].to_vec();
        for (r, &f) in w.iter().enumerate().take(m) {
            if r == l || f == 0.0 {
                continue;
            }
            let row = &mut self.binv[r * m..(r + 1) * m];
            for (dst, &p) in row.iter_mut().zip(pivot_row.iter()) {
                *dst -= f * p;
            }
        }
        self.updates += 1;
        true
    }

    fn updates_since_refactor(&self) -> usize {
        self.updates
    }

    fn box_clone(&self) -> Box<dyn BasisFactorization> {
        Box::new(self.clone())
    }
}

// ---------------------------------------------------------------------------
// Sparse LU with eta updates
// ---------------------------------------------------------------------------

/// One eta matrix of the update file: `B⁻¹_new = E · B⁻¹_old` with
/// `E = I + (e_l − w) e_lᵀ / w_l` built from the pivot `(l, w = B⁻¹ a_e)`.
#[derive(Clone, Debug)]
struct Eta {
    /// Pivot position (basis slot).
    l: usize,
    /// Pivot element `w_l`.
    wl: f64,
    /// Off-pivot entries `(r, w_r)` with `r ≠ l`.
    entries: Vec<(usize, f64)>,
}

/// Sparse LU factors of the basis with a product-form eta file.
///
/// `B = Pᵀ L U` with row permutation `P` chosen by partial pivoting during
/// a left-looking elimination; pivots append eta matrices instead of
/// re-factorizing. See the module docs for the cost model.
#[derive(Clone, Debug, Default)]
pub struct SparseLu {
    m: usize,
    /// Columns of unit-lower-triangular `L`: entries `(original row, value)`
    /// for rows pivoted *after* step `k`.
    l_cols: Vec<Vec<(usize, f64)>>,
    /// Off-diagonal columns of `U`: entries `(step i < k, value)`.
    u_cols: Vec<Vec<(usize, f64)>>,
    /// Diagonal of `U` per step.
    u_diag: Vec<f64>,
    /// `prow[k]` = original row chosen as pivot at elimination step `k`.
    prow: Vec<usize>,
    /// Eta file, in application (creation) order.
    etas: Vec<Eta>,
    /// Total entries across the eta file (bounds FTRAN/BTRAN cost).
    eta_entries: usize,
    /// Reusable solve workspaces (FTRAN rhs / BTRAN cost / BTRAN permuted
    /// solution / unit-cost vector): the trait's solve methods take `&self`
    /// and run once per pivot, so these avoid a heap allocation per call.
    /// `scratch_unit` is separate because `btran_unit` calls `btran`, which
    /// borrows the other two.
    scratch_x: std::cell::RefCell<Vec<f64>>,
    scratch_c: std::cell::RefCell<Vec<f64>>,
    scratch_s: std::cell::RefCell<Vec<f64>>,
    scratch_unit: std::cell::RefCell<Vec<f64>>,
    /// `step_of_row[r]` = elimination step that pivoted original row `r`
    /// (inverse of `prow`); drives the hyper-sparse L-phase reachability.
    step_of_row: Vec<usize>,
    /// Row-wise mirror of `l_cols`: `l_rows[r]` = `(step k, value)` for every
    /// entry of row `r` in `L` (the transposed-solve adjacency for BTRAN).
    l_rows: Vec<Vec<(usize, f64)>>,
    /// Row-wise mirror of `u_cols`: `u_rows[i]` = `(step k, value)` for every
    /// off-diagonal entry of row `i` in `U`.
    u_rows: Vec<Vec<(usize, f64)>>,
    /// Hyper-sparse solve workspaces: two value scratches with an all-zero
    /// invariant between calls, DFS marks/stack, per-phase reach lists, and
    /// a support buffer.
    sp_x: std::cell::RefCell<Vec<f64>>,
    sp_z: std::cell::RefCell<Vec<f64>>,
    sp_mark: std::cell::RefCell<Vec<bool>>,
    sp_stack: std::cell::RefCell<Vec<(usize, usize)>>,
    sp_reach_a: std::cell::RefCell<Vec<usize>>,
    sp_reach_b: std::cell::RefCell<Vec<usize>>,
    sp_support: std::cell::RefCell<Vec<usize>>,
    /// Hyper-sparse solve counters (monotone over the lifetime).
    counters: SparsityCounters,
}

impl SparseLu {
    /// Tiny pivots below this are treated as singular.
    const SINGULAR_TOL: f64 = 1e-12;
    /// Pivot elements below this refuse the eta update (forces refactor).
    const UPDATE_TOL: f64 = 1e-9;

    /// Density cutoff for the hyper-sparse solves: once a symbolic reach
    /// exceeds this many nodes the result is dense enough that the plain
    /// kernels win, so the solve bails and re-runs densely.
    fn sparse_cap(&self) -> usize {
        (self.m / 4).max(4)
    }

    /// Gilbert–Peierls FTRAN into an indexed result. Returns `false` (with
    /// all scratch state restored) when any phase's reach exceeds the
    /// density cutoff; the caller then falls back to the dense kernel.
    fn ftran_hyper_sparse(&self, entries: &[(usize, f64)], w: &mut SparseVector) -> bool {
        let m = self.m;
        let cap = self.sparse_cap();
        if entries.len() > cap {
            return false;
        }
        let mut x = self.sp_x.borrow_mut();
        if x.len() < m {
            x.resize(m, 0.0);
        }
        let mut mark = self.sp_mark.borrow_mut();
        if mark.len() < m {
            mark.resize(m, false);
        }
        let mut stack = self.sp_stack.borrow_mut();
        let mut reach_l = self.sp_reach_a.borrow_mut();
        let mut reach_u = self.sp_reach_b.borrow_mut();

        // --- L phase (original-row space): DFS from the rhs support along
        // the L column pattern, then the numeric forward elimination over
        // the reach in topological (reverse postorder) order.
        let ok = symbolic_reach(
            entries.iter().filter(|e| e.1 != 0.0).map(|e| e.0),
            |r, i| self.l_cols[self.step_of_row[r]].get(i).map(|e| e.0),
            &mut mark,
            &mut stack,
            &mut reach_l,
            cap,
        );
        if !ok {
            return false;
        }
        for &(r, a) in entries {
            x[r] += a;
        }
        for &r in reach_l.iter().rev() {
            let z = x[r];
            if z != 0.0 {
                for &(rr, lv) in &self.l_cols[self.step_of_row[r]] {
                    x[rr] -= z * lv;
                }
            }
        }
        for &r in reach_l.iter() {
            mark[r] = false;
        }

        // --- U phase (step space): support = steps of the reached rows.
        let ok = symbolic_reach(
            reach_l.iter().map(|&r| self.step_of_row[r]),
            |k, i| self.u_cols[k].get(i).map(|e| e.0),
            &mut mark,
            &mut stack,
            &mut reach_u,
            cap,
        );
        if !ok {
            for &r in reach_l.iter() {
                x[r] = 0.0;
            }
            return false;
        }
        w.begin(m);
        for &k in reach_u.iter().rev() {
            let wk = x[self.prow[k]] / self.u_diag[k];
            w.values[k] = wk;
            w.pattern.push(k);
            if wk != 0.0 {
                for &(i, uv) in &self.u_cols[k] {
                    x[self.prow[i]] -= uv * wk;
                }
            }
        }
        // restore the all-zero invariant: phase-L rows plus every backward
        // propagation target
        for &r in reach_l.iter() {
            x[r] = 0.0;
        }
        for &k in reach_u.iter() {
            x[self.prow[k]] = 0.0;
        }

        // --- eta file (basis-position space); the U-phase DFS marks double
        // as the pattern guard for fill the etas introduce.
        for eta in &self.etas {
            let vl = w.values[eta.l] / eta.wl;
            if vl != 0.0 {
                w.values[eta.l] = vl;
                for &(r, wr) in &eta.entries {
                    if !mark[r] {
                        mark[r] = true;
                        w.pattern.push(r);
                    }
                    w.values[r] -= wr * vl;
                }
            }
        }
        for &k in w.pattern.iter() {
            mark[k] = false;
        }
        true
    }

    /// Gilbert–Peierls pivot-row BTRAN (`y = eᵣᵀ B⁻¹`) into an indexed
    /// result; same bail-to-dense contract as
    /// [`ftran_hyper_sparse`](Self::ftran_hyper_sparse).
    fn btran_unit_hyper_sparse(&self, r: usize, y: &mut SparseVector) -> bool {
        let m = self.m;
        let cap = self.sparse_cap();
        let mut c = self.sp_x.borrow_mut(); // basis-position space
        if c.len() < m {
            c.resize(m, 0.0);
        }
        let mut s = self.sp_z.borrow_mut(); // step space
        if s.len() < m {
            s.resize(m, 0.0);
        }
        let mut mark = self.sp_mark.borrow_mut();
        if mark.len() < m {
            mark.resize(m, false);
        }
        let mut stack = self.sp_stack.borrow_mut();
        let mut reach_u = self.sp_reach_a.borrow_mut();
        let mut reach_lt = self.sp_reach_b.borrow_mut();
        let mut cpat = self.sp_support.borrow_mut();

        // --- eta file (row action, reverse order) on the unit cost vector.
        // The pattern is tracked by value transitions; a duplicate push after
        // an exact cancellation is tolerated (the DFS dedups below).
        cpat.clear();
        c[r] = 1.0;
        cpat.push(r);
        for eta in self.etas.iter().rev() {
            let cl = c[eta.l];
            let mut dot = cl * eta.wl;
            for &(rr, wr) in &eta.entries {
                dot += c[rr] * wr;
            }
            if cl != 0.0 || dot != 0.0 {
                let ncl = cl + (cl - dot) / eta.wl;
                if cl == 0.0 && ncl != 0.0 {
                    cpat.push(eta.l);
                }
                c[eta.l] = ncl;
            }
        }
        if cpat.len() > cap {
            for &k in cpat.iter() {
                c[k] = 0.0;
            }
            return false;
        }

        // --- Uᵀ phase (step space): value flows from step i to step k along
        // u_rows[i]; pull-based numeric over the reach.
        let ok = symbolic_reach(
            cpat.iter().copied(),
            |i, idx| self.u_rows[i].get(idx).map(|e| e.0),
            &mut mark,
            &mut stack,
            &mut reach_u,
            cap,
        );
        if !ok {
            for &k in cpat.iter() {
                c[k] = 0.0;
            }
            return false;
        }
        for &k in reach_u.iter().rev() {
            let mut v = c[k];
            for &(i, uv) in &self.u_cols[k] {
                v -= uv * s[i];
            }
            s[k] = v / self.u_diag[k];
        }
        for &k in cpat.iter() {
            c[k] = 0.0;
        }
        for &k in reach_u.iter() {
            mark[k] = false;
        }

        // --- Lᵀ phase (step space): value flows from step j to the steps
        // whose L column contains row prow[j].
        let ok = symbolic_reach(
            reach_u.iter().copied(),
            |j, idx| self.l_rows[self.prow[j]].get(idx).map(|e| e.0),
            &mut mark,
            &mut stack,
            &mut reach_lt,
            cap,
        );
        if !ok {
            for &k in reach_u.iter() {
                s[k] = 0.0;
            }
            return false;
        }
        y.begin(m);
        for &k in reach_u.iter() {
            y.values[self.prow[k]] = s[k];
            s[k] = 0.0;
        }
        for &k in reach_lt.iter().rev() {
            let pr = self.prow[k];
            let mut acc = y.values[pr];
            for &(rr, lv) in &self.l_cols[k] {
                acc -= lv * y.values[rr];
            }
            y.values[pr] = acc;
            y.pattern.push(pr);
        }
        for &k in reach_lt.iter() {
            mark[k] = false;
        }
        true
    }

    /// Eta-file capacity: once the file holds more than `4m + 64` entries
    /// the update declines and the core refactorizes, keeping the marginal
    /// FTRAN/BTRAN cost linear in the factor size.
    fn eta_capacity(&self) -> usize {
        4 * self.m + 64
    }

    /// Forward elimination (`L⁻¹` with the row permutation folded in)
    /// applied to the dense scratch `x` (indexed by original row). After the
    /// call, `x[prow[k]]` holds the permuted solution component `z_k`.
    fn forward(&self, x: &mut [f64]) {
        for k in 0..self.m {
            let z = x[self.prow[k]];
            if z != 0.0 {
                for &(r, lv) in &self.l_cols[k] {
                    x[r] -= z * lv;
                }
            }
        }
    }

    /// Backward substitution `U w = z` where `z_k = x[prow[k]]`; writes the
    /// solution (indexed by basis position) into `w`.
    fn backward(&self, x: &mut [f64], w: &mut [f64]) {
        for k in (0..self.m).rev() {
            let wk = x[self.prow[k]] / self.u_diag[k];
            w[k] = wk;
            if wk != 0.0 {
                for &(i, uv) in &self.u_cols[k] {
                    x[self.prow[i]] -= uv * wk;
                }
            }
        }
    }

    /// Applies the eta file (column action, creation order) to `w`.
    fn apply_etas_ftran(&self, w: &mut [f64]) {
        for eta in &self.etas {
            let vl = w[eta.l] / eta.wl;
            w[eta.l] = vl;
            if vl != 0.0 {
                for &(r, wr) in &eta.entries {
                    w[r] -= wr * vl;
                }
            }
        }
    }

    /// Applies the eta file (row action, reverse order) to `c`.
    fn apply_etas_btran(&self, c: &mut [f64]) {
        for eta in self.etas.iter().rev() {
            let mut dot = c[eta.l] * eta.wl;
            for &(r, wr) in &eta.entries {
                dot += c[r] * wr;
            }
            c[eta.l] += (c[eta.l] - dot) / eta.wl;
        }
    }

    fn lu_solve_into(&self, x: &mut [f64], w: &mut [f64]) {
        if self.m == 0 {
            // empty state (failed refactor): solves write zeros
            w.fill(0.0);
            return;
        }
        self.forward(x);
        self.backward(x, w);
        self.apply_etas_ftran(w);
    }
}

impl BasisFactorization for SparseLu {
    fn kind(&self) -> BasisKind {
        BasisKind::SparseLu
    }

    fn num_rows(&self) -> usize {
        self.m
    }

    fn refactor(&mut self, m: usize, cols: &[SparseColumn]) -> bool {
        assert_eq!(cols.len(), m, "one column per basis position");
        self.m = m;
        self.etas.clear();
        self.eta_entries = 0;
        self.l_cols.clear();
        self.u_cols.clear();
        self.u_diag.clear();
        self.prow.clear();
        self.l_cols.reserve(m);
        self.u_cols.reserve(m);
        self.u_diag.reserve(m);
        self.prow.reserve(m);

        // pos[r] = elimination step of original row r (MAX while unpivoted)
        let mut pos = vec![usize::MAX; m];
        let mut x = vec![0.0f64; m];
        let mut touched: Vec<usize> = Vec::with_capacity(m);

        for col in cols.iter() {
            // scatter the basis column into the scratch
            for &(r, v) in col {
                if x[r] == 0.0 && v != 0.0 {
                    touched.push(r);
                }
                x[r] += v;
            }
            // left-looking: apply the L columns computed so far (step order)
            let k = self.u_diag.len();
            for j in 0..k {
                let xj = x[self.prow[j]];
                if xj != 0.0 {
                    for &(r, lv) in &self.l_cols[j] {
                        if x[r] == 0.0 {
                            touched.push(r);
                        }
                        x[r] -= xj * lv;
                    }
                }
            }
            // partial pivot among unpivoted rows
            let mut p = usize::MAX;
            let mut best = Self::SINGULAR_TOL;
            for &r in &touched {
                if pos[r] == usize::MAX {
                    let cand = x[r].abs();
                    if cand > best {
                        best = cand;
                        p = r;
                    }
                }
            }
            if p == usize::MAX {
                // no usable pivot: singular — leave the empty state, not a
                // partially built factor
                self.m = 0;
                self.l_cols.clear();
                self.u_cols.clear();
                self.u_diag.clear();
                self.prow.clear();
                self.step_of_row.clear();
                self.l_rows.clear();
                self.u_rows.clear();
                return false;
            }
            let piv = x[p];
            pos[p] = k;
            self.prow.push(p);
            self.u_diag.push(piv);
            let mut ucol: Vec<(usize, f64)> = Vec::new();
            let mut lcol: Vec<(usize, f64)> = Vec::new();
            for &r in &touched {
                let v = x[r];
                x[r] = 0.0;
                if v == 0.0 || r == p {
                    continue;
                }
                match pos[r] {
                    usize::MAX => lcol.push((r, v / piv)),
                    step => ucol.push((step, v)),
                }
            }
            touched.clear();
            self.u_cols.push(ucol);
            self.l_cols.push(lcol);
        }

        // row-wise mirrors + permutation inverse for the hyper-sparse solves
        self.step_of_row.clear();
        self.step_of_row.resize(m, 0);
        for (k, &r) in self.prow.iter().enumerate() {
            self.step_of_row[r] = k;
        }
        self.l_rows.clear();
        self.l_rows.resize(m, Vec::new());
        for (k, lcol) in self.l_cols.iter().enumerate() {
            for &(r, lv) in lcol {
                self.l_rows[r].push((k, lv));
            }
        }
        self.u_rows.clear();
        self.u_rows.resize(m, Vec::new());
        for (k, ucol) in self.u_cols.iter().enumerate() {
            for &(i, uv) in ucol {
                self.u_rows[i].push((k, uv));
            }
        }
        true
    }

    fn ftran_sparse(&self, entries: &[(usize, f64)], w: &mut [f64]) {
        if self.m == 0 {
            w.fill(0.0);
            return;
        }
        let mut x = self.scratch_x.borrow_mut();
        x.clear();
        x.resize(self.m, 0.0);
        for &(i, a) in entries {
            x[i] += a;
        }
        self.lu_solve_into(&mut x, w);
    }

    fn ftran_sparse_into(&self, entries: &[(usize, f64)], w: &mut SparseVector) {
        let m = self.m;
        if m == 0 {
            let keep = w.len();
            w.begin(keep);
            return;
        }
        if self.ftran_hyper_sparse(entries, w) {
            self.counters.record_ftran(true, w.pattern.len(), m);
        } else {
            w.begin_dense(m);
            self.ftran_sparse(entries, &mut w.values);
            self.counters.record_ftran(false, m, m);
        }
    }

    fn btran_unit_into(&self, r: usize, rho: &mut SparseVector) {
        let m = self.m;
        if m == 0 {
            let keep = rho.len();
            rho.begin(keep);
            return;
        }
        if self.btran_unit_hyper_sparse(r, rho) {
            self.counters.record_btran(true, rho.pattern.len(), m);
        } else {
            rho.begin_dense(m);
            self.btran_unit(r, &mut rho.values);
            self.counters.record_btran(false, m, m);
        }
    }

    fn update_sparse(&mut self, l: usize, w: &SparseVector) -> bool {
        if !w.is_sparse() {
            return self.update(l, w.values());
        }
        let wl = w.value(l);
        if wl.abs() <= Self::UPDATE_TOL || self.eta_entries >= self.eta_capacity() {
            return false;
        }
        let mut entries: Vec<(usize, f64)> = Vec::with_capacity(w.pattern.len());
        w.for_each_nonzero(|r, v| {
            if r != l && v.abs() > 1e-12 {
                entries.push((r, v));
            }
        });
        // same entry order as the dense scan, so both paths apply the eta
        // in the identical floating-point sequence
        entries.sort_unstable_by_key(|e| e.0);
        self.eta_entries += entries.len() + 1;
        self.etas.push(Eta { l, wl, entries });
        true
    }

    fn sparsity_stats(&self) -> SparsityStats {
        self.counters.snapshot()
    }

    fn ftran_dense(&self, rhs: &[f64], w: &mut [f64]) {
        let mut x = self.scratch_x.borrow_mut();
        x.clear();
        x.extend_from_slice(rhs);
        self.lu_solve_into(&mut x, w);
    }

    fn btran(&self, cb: &[f64], y: &mut [f64]) {
        // y = cᵦ B⁻¹ with B⁻¹ = Eₖ…E₁ · U⁻¹ ∘ read ∘ forward:
        // apply the eta file to cᵦ (row action, reverse order), then solve
        // Uᵀ s = c (ascending steps), scatter s through the permutation and
        // apply the transposed forward elimination in reverse.
        let m = self.m;
        let mut c = self.scratch_c.borrow_mut();
        c.clear();
        c.extend_from_slice(cb);
        self.apply_etas_btran(&mut c);
        let mut s = self.scratch_s.borrow_mut();
        s.clear();
        s.resize(m, 0.0);
        for k in 0..m {
            let mut v = c[k];
            for &(i, uv) in &self.u_cols[k] {
                v -= uv * s[i];
            }
            s[k] = v / self.u_diag[k];
        }
        for v in y.iter_mut() {
            *v = 0.0;
        }
        for k in 0..m {
            y[self.prow[k]] = s[k];
        }
        for k in (0..m).rev() {
            let mut acc = y[self.prow[k]];
            for &(r, lv) in &self.l_cols[k] {
                acc -= lv * y[r];
            }
            y[self.prow[k]] = acc;
        }
    }

    fn btran_unit(&self, r: usize, rho: &mut [f64]) {
        if self.m == 0 {
            rho.fill(0.0);
            return;
        }
        // `scratch_unit` is distinct from btran's own workspaces, so the
        // nested call cannot double-borrow.
        let mut cb = self.scratch_unit.borrow_mut();
        cb.clear();
        cb.resize(self.m, 0.0);
        cb[r] = 1.0;
        self.btran(&cb, rho);
    }

    fn update(&mut self, l: usize, w: &[f64]) -> bool {
        let wl = w[l];
        if wl.abs() <= Self::UPDATE_TOL || self.eta_entries >= self.eta_capacity() {
            return false;
        }
        let entries: Vec<(usize, f64)> = w
            .iter()
            .enumerate()
            .filter(|&(r, &v)| r != l && v.abs() > 1e-12)
            .map(|(r, &v)| (r, v))
            .collect();
        self.eta_entries += entries.len() + 1;
        self.etas.push(Eta { l, wl, entries });
        true
    }

    fn updates_since_refactor(&self) -> usize {
        self.etas.len()
    }

    fn box_clone(&self) -> Box<dyn BasisFactorization> {
        Box::new(self.clone())
    }
}

// ---------------------------------------------------------------------------
// Markowitz-ordered LU with Forrest–Tomlin updates
// ---------------------------------------------------------------------------

/// One Forrest–Tomlin row eta: the multipliers `μ` that eliminated the
/// displaced row `t` of `U` after its column moved to the last triangular
/// position (`R = I − e_t μᵀ`, entries in column-uid space). FTRAN applies
/// `x_t ← x_t − Σ_j μ_j x_j`; BTRAN applies `x_j ← x_j − μ_j x_t`.
#[derive(Clone, Debug)]
struct RowEta {
    t: usize,
    entries: Vec<(usize, f64)>,
}

/// Markowitz-ordered sparse LU factors with Forrest–Tomlin `U`-updates.
///
/// The factorization pivots on `(row, column)` pairs chosen to minimize the
/// Markowitz fill bound `(r−1)(c−1)` among entries passing a relative
/// stability threshold, storing the row permutation in `prow` and the
/// column permutation in `slot_of_uid` (`uid` = factorization step, the
/// *stable* identity of a `U` column across updates). Updates follow the
/// classic Forrest–Tomlin scheme (see the module docs): the spike column
/// `s = U·w` replaces column `t`, the displaced row is eliminated by a
/// short row eta, and `U` stays triangular in the explicit `order` / `pos`
/// column ordering.
#[derive(Clone, Debug, Default)]
pub struct ForrestTomlinLu {
    m: usize,
    /// Columns of unit-lower-triangular `L` per step: `(original row, mult)`
    /// for rows pivoted *after* that step.
    l_cols: Vec<Vec<(usize, f64)>>,
    /// `prow[k]` = original row pivoted at step `k`.
    prow: Vec<usize>,
    /// Diagonal of `U` per column uid.
    diag: Vec<f64>,
    /// Off-diagonal entries of `U`, column-wise: `ucols[j]` = `(row uid, value)`.
    ucols: Vec<Vec<(usize, f64)>>,
    /// The same entries row-wise: `urows[i]` = `(column uid, value)`.
    urows: Vec<Vec<(usize, f64)>>,
    /// Column uids in triangular order (entry `(i, j)` of `U` requires
    /// `pos[i] ≤ pos[j]`).
    order: Vec<usize>,
    /// `pos[uid]` = position of that column in `order`.
    pos: Vec<usize>,
    /// Basis slot occupied by each `U` column uid (the column permutation).
    slot_of_uid: Vec<usize>,
    /// Inverse of `slot_of_uid`.
    uid_of_slot: Vec<usize>,
    /// Forrest–Tomlin row etas, in creation order.
    etas: Vec<RowEta>,
    /// Total entries across the row etas (bounds FTRAN/BTRAN cost).
    eta_entries: usize,
    /// Reusable solve workspaces (see [`SparseLu`] for the aliasing rules).
    scratch_x: std::cell::RefCell<Vec<f64>>,
    scratch_c: std::cell::RefCell<Vec<f64>>,
    scratch_s: std::cell::RefCell<Vec<f64>>,
    scratch_unit: std::cell::RefCell<Vec<f64>>,
    /// `step_of_row[r]` = step (= uid) that pivoted original row `r`
    /// (inverse of `prow`); drives the hyper-sparse L-phase reachability.
    step_of_row: Vec<usize>,
    /// Row-wise mirror of `l_cols`: `l_rows[r]` = `(step k, value)` for every
    /// entry of row `r` in `L` (the transposed-solve adjacency for BTRAN).
    l_rows: Vec<Vec<(usize, f64)>>,
    /// Hyper-sparse solve workspaces (see [`SparseLu`] for the invariants).
    sp_x: std::cell::RefCell<Vec<f64>>,
    sp_z: std::cell::RefCell<Vec<f64>>,
    sp_mark: std::cell::RefCell<Vec<bool>>,
    sp_stack: std::cell::RefCell<Vec<(usize, usize)>>,
    sp_reach_a: std::cell::RefCell<Vec<usize>>,
    sp_reach_b: std::cell::RefCell<Vec<usize>>,
    sp_support: std::cell::RefCell<Vec<usize>>,
    /// Hyper-sparse solve counters (monotone over the lifetime).
    counters: SparsityCounters,
}

impl ForrestTomlinLu {
    /// Tiny pivots below this are treated as singular.
    const SINGULAR_TOL: f64 = 1e-12;
    /// New diagonals below this refuse the FT update (forces refactor).
    const UPDATE_TOL: f64 = 1e-9;
    /// Relative stability floor: the new diagonal must not be smaller than
    /// this fraction of the spike's largest entry.
    const UPDATE_REL_TOL: f64 = 1e-9;
    /// Entries below this are dropped from stored factors.
    const DROP_TOL: f64 = 1e-12;
    /// Markowitz relative pivot threshold: a pivot must reach this fraction
    /// of the largest entry in its column.
    const PIVOT_THRESHOLD: f64 = 0.1;
    /// How many minimum-count candidate columns one pivot search examines
    /// before settling.
    const SEARCH_COLS: usize = 8;

    /// Row-eta capacity: once the file holds more than `4m + 64` entries the
    /// update declines and the core refactorizes (same budget as the
    /// [`SparseLu`] eta file, though FT row etas are typically much smaller).
    fn eta_capacity(&self) -> usize {
        4 * self.m + 64
    }

    /// Forward elimination `L⁻¹` (row permutation folded in) on the dense
    /// scratch `x` indexed by original row; afterwards `x[prow[k]]` holds the
    /// step-space value `z_k`.
    fn forward(&self, x: &mut [f64]) {
        for k in 0..self.m {
            let z = x[self.prow[k]];
            if z != 0.0 {
                for &(r, lv) in &self.l_cols[k] {
                    x[r] -= z * lv;
                }
            }
        }
    }

    /// Applies the row etas (FTRAN direction, creation order) to the
    /// uid-indexed vector `z`.
    fn apply_etas_ftran(&self, z: &mut [f64]) {
        for eta in &self.etas {
            let mut acc = z[eta.t];
            for &(j, mu) in &eta.entries {
                acc -= mu * z[j];
            }
            z[eta.t] = acc;
        }
    }

    /// Applies the transposed row etas (BTRAN direction, reverse order) to
    /// the uid-indexed vector `s`.
    fn apply_etas_btran(&self, s: &mut [f64]) {
        for eta in self.etas.iter().rev() {
            let st = s[eta.t];
            if st != 0.0 {
                for &(j, mu) in &eta.entries {
                    s[j] -= mu * st;
                }
            }
        }
    }

    /// Backward substitution `U ŵ = z` over the triangular order; writes the
    /// solution into `w` indexed by basis slot.
    fn backward(&self, z: &mut [f64], w: &mut [f64]) {
        for v in w.iter_mut() {
            *v = 0.0;
        }
        for p in (0..self.m).rev() {
            let j = self.order[p];
            let v = z[j] / self.diag[j];
            w[self.slot_of_uid[j]] = v;
            if v != 0.0 {
                for &(i, uv) in &self.ucols[j] {
                    z[i] -= uv * v;
                }
            }
        }
    }

    fn lu_solve_into(&self, x: &mut [f64], w: &mut [f64]) {
        if self.m == 0 {
            // empty state (failed refactor): solves write zeros
            w.fill(0.0);
            return;
        }
        self.forward(x);
        // move to uid (= step) space: z_k lives at x[prow[k]]
        let mut z = self.scratch_s.borrow_mut();
        z.clear();
        z.extend(self.prow.iter().map(|&r| x[r]));
        self.apply_etas_ftran(&mut z);
        self.backward(&mut z, w);
    }

    /// Clears every factor structure: the state promised by a failed
    /// [`BasisFactorization::refactor`] (`num_rows() == 0`, solves write
    /// zeros). `order`/`pos`/`uid_of_slot` are cleared too — they are the
    /// only vectors `refactor` does not rebuild-or-clear up front, and a
    /// stale `order` over empty `ucols` is exactly the shape that turns a
    /// post-failure BTRAN into an out-of-bounds index.
    fn reset_to_empty(&mut self) {
        self.m = 0;
        self.l_cols.clear();
        self.prow.clear();
        self.diag.clear();
        self.ucols.clear();
        self.urows.clear();
        self.order.clear();
        self.pos.clear();
        self.slot_of_uid.clear();
        self.uid_of_slot.clear();
        self.etas.clear();
        self.eta_entries = 0;
        self.step_of_row.clear();
        self.l_rows.clear();
    }

    /// Density cutoff for the hyper-sparse solves (see
    /// [`SparseLu::sparse_cap`]).
    fn sparse_cap(&self) -> usize {
        (self.m / 4).max(4)
    }

    /// Gilbert–Peierls FTRAN into an indexed result; `false` means the
    /// reach exceeded the density cutoff and the caller should run the
    /// dense kernel instead.
    fn ftran_hyper_sparse(&self, entries: &[(usize, f64)], w: &mut SparseVector) -> bool {
        let m = self.m;
        let cap = self.sparse_cap();
        if entries.len() > cap {
            return false;
        }
        let mut x = self.sp_x.borrow_mut(); // original-row space
        if x.len() < m {
            x.resize(m, 0.0);
        }
        let mut z = self.sp_z.borrow_mut(); // uid space
        if z.len() < m {
            z.resize(m, 0.0);
        }
        let mut mark = self.sp_mark.borrow_mut();
        if mark.len() < m {
            mark.resize(m, false);
        }
        let mut stack = self.sp_stack.borrow_mut();
        let mut reach_l = self.sp_reach_a.borrow_mut();
        let mut reach_u = self.sp_reach_b.borrow_mut();
        let mut zpat = self.sp_support.borrow_mut();

        // --- L phase (original-row space) ---
        let ok = symbolic_reach(
            entries.iter().filter(|e| e.1 != 0.0).map(|e| e.0),
            |r, i| self.l_cols[self.step_of_row[r]].get(i).map(|e| e.0),
            &mut mark,
            &mut stack,
            &mut reach_l,
            cap,
        );
        if !ok {
            return false;
        }
        for &(r, a) in entries {
            x[r] += a;
        }
        for &r in reach_l.iter().rev() {
            let v = x[r];
            if v != 0.0 {
                for &(rr, lv) in &self.l_cols[self.step_of_row[r]] {
                    x[rr] -= v * lv;
                }
            }
        }
        // move to uid (= step) space, restoring x and the L marks as we go
        zpat.clear();
        for &r in reach_l.iter() {
            mark[r] = false;
            let v = x[r];
            x[r] = 0.0;
            if v != 0.0 {
                let k = self.step_of_row[r];
                z[k] = v;
                zpat.push(k);
            }
        }

        // --- row etas (uid space), value-transition pattern pushes; a
        // duplicate push after an exact cancellation is tolerated (the DFS
        // below dedups, and the cleanup loops are idempotent).
        for eta in &self.etas {
            let old = z[eta.t];
            let mut acc = old;
            for &(j, mu) in &eta.entries {
                acc -= mu * z[j];
            }
            if acc != old {
                if old == 0.0 {
                    zpat.push(eta.t);
                }
                z[eta.t] = acc;
            }
        }
        if zpat.len() > cap {
            for &k in zpat.iter() {
                z[k] = 0.0;
            }
            return false;
        }

        // --- U backward (uid space): edges j → i along ucols[j] ---
        let ok = symbolic_reach(
            zpat.iter().copied(),
            |j, idx| self.ucols[j].get(idx).map(|e| e.0),
            &mut mark,
            &mut stack,
            &mut reach_u,
            cap,
        );
        if !ok {
            for &k in zpat.iter() {
                z[k] = 0.0;
            }
            return false;
        }
        w.begin(m);
        for &j in reach_u.iter().rev() {
            let v = z[j] / self.diag[j];
            let slot = self.slot_of_uid[j];
            w.values[slot] = v;
            w.pattern.push(slot);
            if v != 0.0 {
                for &(i, uv) in &self.ucols[j] {
                    z[i] -= uv * v;
                }
            }
        }
        // zpat ⊆ reach_u, so this restores the all-zero invariant on z
        for &j in reach_u.iter() {
            z[j] = 0.0;
            mark[j] = false;
        }
        true
    }

    /// Gilbert–Peierls pivot-row BTRAN into an indexed result; same
    /// bail-to-dense contract as
    /// [`ftran_hyper_sparse`](Self::ftran_hyper_sparse).
    fn btran_unit_hyper_sparse(&self, r: usize, y: &mut SparseVector) -> bool {
        let m = self.m;
        let cap = self.sparse_cap();
        let mut c = self.sp_x.borrow_mut(); // uid space (cost image)
        if c.len() < m {
            c.resize(m, 0.0);
        }
        let mut s = self.sp_z.borrow_mut(); // uid space (Uᵀ solution)
        if s.len() < m {
            s.resize(m, 0.0);
        }
        let mut mark = self.sp_mark.borrow_mut();
        if mark.len() < m {
            mark.resize(m, false);
        }
        let mut stack = self.sp_stack.borrow_mut();
        let mut reach_u = self.sp_reach_a.borrow_mut();
        let mut reach_lt = self.sp_reach_b.borrow_mut();
        let mut spat = self.sp_support.borrow_mut();

        // --- Uᵀ phase (uid space): the unit cost vector has a single
        // nonzero at the uid occupying slot r; value flows i → j along
        // urows[i]; pull-based numeric over the reach.
        let t0 = self.uid_of_slot[r];
        c[t0] = 1.0;
        let ok = symbolic_reach(
            std::iter::once(t0),
            |i, idx| self.urows[i].get(idx).map(|e| e.0),
            &mut mark,
            &mut stack,
            &mut reach_u,
            cap,
        );
        if !ok {
            c[t0] = 0.0;
            return false;
        }
        for &j in reach_u.iter().rev() {
            let mut v = c[j];
            for &(i, uv) in &self.ucols[j] {
                v -= uv * s[i];
            }
            s[j] = v / self.diag[j];
        }
        c[t0] = 0.0;
        spat.clear();
        spat.extend(reach_u.iter().copied());
        for &j in reach_u.iter() {
            mark[j] = false;
        }

        // --- transposed row etas (reverse order), value-transition pushes
        for eta in self.etas.iter().rev() {
            let st = s[eta.t];
            if st != 0.0 {
                for &(j, mu) in &eta.entries {
                    if s[j] == 0.0 {
                        spat.push(j);
                    }
                    s[j] -= mu * st;
                }
            }
        }
        if spat.len() > cap {
            for &j in spat.iter() {
                s[j] = 0.0;
            }
            return false;
        }

        // --- Lᵀ phase (step space; uid = step) ---
        let ok = symbolic_reach(
            spat.iter().copied(),
            |j, idx| self.l_rows[self.prow[j]].get(idx).map(|e| e.0),
            &mut mark,
            &mut stack,
            &mut reach_lt,
            cap,
        );
        if !ok {
            for &j in spat.iter() {
                s[j] = 0.0;
            }
            return false;
        }
        y.begin(m);
        // scatter first, then clear: spat may hold duplicates, so the two
        // loops must not be fused (a fused loop would re-read a cleared 0.0)
        for &k in spat.iter() {
            y.values[self.prow[k]] = s[k];
        }
        for &k in spat.iter() {
            s[k] = 0.0;
        }
        for &k in reach_lt.iter().rev() {
            let pr = self.prow[k];
            let mut acc = y.values[pr];
            for &(rr, lv) in &self.l_cols[k] {
                acc -= lv * y.values[rr];
            }
            y.values[pr] = acc;
            y.pattern.push(pr);
        }
        for &k in reach_lt.iter() {
            mark[k] = false;
        }
        true
    }
}

impl BasisFactorization for ForrestTomlinLu {
    fn kind(&self) -> BasisKind {
        BasisKind::ForrestTomlin
    }

    fn num_rows(&self) -> usize {
        self.m
    }

    fn refactor(&mut self, m: usize, cols: &[SparseColumn]) -> bool {
        assert_eq!(cols.len(), m, "one column per basis position");
        self.m = m;
        self.etas.clear();
        self.eta_entries = 0;
        self.l_cols.clear();
        self.prow.clear();
        self.diag.clear();
        self.ucols.clear();
        self.urows.clear();
        self.slot_of_uid.clear();

        // Active-submatrix storage: rows hold (column, value) sorted by
        // column; columns hold candidate row lists with lazy deletion
        // (entries are validated against the row storage before use).
        let mut rows: Vec<Vec<(usize, f64)>> = vec![Vec::new(); m];
        for (c, col) in cols.iter().enumerate() {
            for &(r, v) in col {
                if v != 0.0 {
                    rows[r].push((c, v));
                }
            }
        }
        let mut col_rows: Vec<Vec<usize>> = vec![Vec::new(); m];
        let mut col_count = vec![0usize; m];
        let mut row_count = vec![0usize; m];
        for (r, row) in rows.iter_mut().enumerate() {
            row.sort_unstable_by_key(|e| e.0);
            // collapse duplicate column entries
            let mut out: Vec<(usize, f64)> = Vec::with_capacity(row.len());
            for &(c, v) in row.iter() {
                match out.last_mut() {
                    Some(last) if last.0 == c => last.1 += v,
                    _ => out.push((c, v)),
                }
            }
            out.retain(|&(_, v)| v != 0.0);
            for &(c, _) in &out {
                col_rows[c].push(r);
                col_count[c] += 1;
            }
            row_count[r] = out.len();
            *row = out;
        }
        let mut active_row = vec![true; m];
        let mut active_col = vec![true; m];
        let mut active_cols: Vec<usize> = (0..m).collect();

        // Looks up the value of column `c` in row `r` (rows stay sorted).
        let value_in = |rows: &[Vec<(usize, f64)>], r: usize, c: usize| -> Option<f64> {
            rows[r]
                .binary_search_by_key(&c, |e| e.0)
                .ok()
                .map(|idx| rows[r][idx].1)
        };

        // Best stable pivot inside column `c`: minimize (r−1)(c−1) among
        // entries within PIVOT_THRESHOLD of the column max.
        let best_in_col = |rows: &[Vec<(usize, f64)>],
                           col_rows: &[Vec<usize>],
                           active_row: &[bool],
                           row_count: &[usize],
                           col_count: &[usize],
                           c: usize|
         -> Option<(usize, f64, usize)> {
            let mut colmax = 0.0f64;
            for &r in &col_rows[c] {
                if active_row[r] {
                    if let Some(v) = value_in(rows, r, c) {
                        colmax = colmax.max(v.abs());
                    }
                }
            }
            if colmax <= Self::SINGULAR_TOL {
                return None;
            }
            let floor = (Self::PIVOT_THRESHOLD * colmax).max(Self::SINGULAR_TOL);
            let mut best: Option<(usize, f64, usize)> = None;
            for &r in &col_rows[c] {
                if !active_row[r] {
                    continue;
                }
                let Some(v) = value_in(rows, r, c) else {
                    continue;
                };
                if v.abs() < floor {
                    continue;
                }
                let cost = (row_count[r] - 1) * (col_count[c] - 1);
                let better = match best {
                    None => true,
                    Some((_, bv, bc)) => cost < bc || (cost == bc && v.abs() > bv.abs()),
                };
                if better {
                    best = Some((r, v, cost));
                }
            }
            best
        };

        let mut pending_urows: Vec<Vec<(usize, f64)>> = Vec::with_capacity(m);
        for _ in 0..m {
            // --- Markowitz pivot search ---
            active_cols.retain(|&c| active_col[c]);
            let mut min_cnt = usize::MAX;
            let mut cand: Vec<usize> = Vec::with_capacity(Self::SEARCH_COLS);
            for &c in &active_cols {
                let cc = col_count[c];
                if cc == 0 {
                    self.reset_to_empty();
                    return false; // numerically empty column: singular
                }
                if cc < min_cnt {
                    min_cnt = cc;
                    cand.clear();
                }
                if cc == min_cnt && cand.len() < Self::SEARCH_COLS {
                    cand.push(c);
                }
                if min_cnt == 1 && cand.len() >= Self::SEARCH_COLS {
                    break;
                }
            }
            let mut best: Option<(usize, usize, f64, usize)> = None; // (r, c, v, cost)
            for &c in &cand {
                if let Some((r, v, cost)) =
                    best_in_col(&rows, &col_rows, &active_row, &row_count, &col_count, c)
                {
                    let better = match best {
                        None => true,
                        Some((_, _, bv, bc)) => cost < bc || (cost == bc && v.abs() > bv.abs()),
                    };
                    if better {
                        best = Some((r, c, v, cost));
                    }
                }
            }
            if best.is_none() {
                // the minimum-count columns had no stable entry: widen the
                // search to every active column before declaring failure
                for &c in &active_cols {
                    if let Some((r, v, cost)) =
                        best_in_col(&rows, &col_rows, &active_row, &row_count, &col_count, c)
                    {
                        let better = match best {
                            None => true,
                            Some((_, _, bv, bc)) => cost < bc || (cost == bc && v.abs() > bv.abs()),
                        };
                        if better {
                            best = Some((r, c, v, cost));
                        }
                    }
                }
            }
            let Some((p, q, piv, _)) = best else {
                self.reset_to_empty();
                return false; // no stable pivot anywhere: singular
            };

            // --- elimination step ---
            self.prow.push(p);
            self.slot_of_uid.push(q);
            self.diag.push(piv);
            active_row[p] = false;
            active_col[q] = false;
            // the pivot row's remaining active entries become row k of U
            let prow_entries: Vec<(usize, f64)> = rows[p]
                .iter()
                .filter(|&&(c, _)| active_col[c])
                .copied()
                .collect();
            for &(c, _) in &prow_entries {
                col_count[c] -= 1;
            }
            // eliminate column q from every active row; self-deduping: the
            // merge removes the q entry, so stale duplicates in col_rows[q]
            // simply fail the lookup
            let mut lcol: Vec<(usize, f64)> = Vec::new();
            let rlist = std::mem::take(&mut col_rows[q]);
            for r in rlist {
                if !active_row[r] {
                    continue;
                }
                let Some(v) = value_in(&rows, r, q) else {
                    continue;
                };
                let mult = v / piv;
                lcol.push((r, mult));
                // rows[r] ← rows[r] − mult · pivot_row, dropping the q entry
                let old = std::mem::take(&mut rows[r]);
                let mut out: Vec<(usize, f64)> = Vec::with_capacity(old.len() + prow_entries.len());
                let (mut a, mut bb) = (0usize, 0usize);
                while a < old.len() || bb < prow_entries.len() {
                    let ac = old.get(a).map(|e| e.0).unwrap_or(usize::MAX);
                    let bc = prow_entries.get(bb).map(|e| e.0).unwrap_or(usize::MAX);
                    if ac < bc {
                        if ac != q {
                            out.push(old[a]);
                        }
                        a += 1;
                    } else if bc < ac {
                        let nv = -mult * prow_entries[bb].1;
                        if nv.abs() > 1e-14 {
                            out.push((bc, nv));
                            col_count[bc] += 1;
                            col_rows[bc].push(r);
                        }
                        bb += 1;
                    } else {
                        let nv = old[a].1 - mult * prow_entries[bb].1;
                        if nv.abs() > 1e-14 {
                            out.push((ac, nv));
                        } else {
                            col_count[ac] -= 1;
                        }
                        a += 1;
                        bb += 1;
                    }
                }
                row_count[r] = out.len();
                rows[r] = out;
            }
            self.l_cols.push(lcol);
            pending_urows.push(prow_entries);
        }

        // finalize: map pending U rows (slot-indexed columns) to uid space
        self.uid_of_slot = vec![0usize; m];
        for (uid, &slot) in self.slot_of_uid.iter().enumerate() {
            self.uid_of_slot[slot] = uid;
        }
        self.ucols = vec![Vec::new(); m];
        self.urows = vec![Vec::new(); m];
        for (i, entries) in pending_urows.into_iter().enumerate() {
            for (slot, v) in entries {
                let j = self.uid_of_slot[slot];
                self.urows[i].push((j, v));
                self.ucols[j].push((i, v));
            }
        }
        self.order = (0..m).collect();
        self.pos = (0..m).collect();

        // row-wise L mirror + permutation inverse for the hyper-sparse solves
        self.step_of_row.clear();
        self.step_of_row.resize(m, 0);
        for (k, &r) in self.prow.iter().enumerate() {
            self.step_of_row[r] = k;
        }
        self.l_rows.clear();
        self.l_rows.resize(m, Vec::new());
        for (k, lcol) in self.l_cols.iter().enumerate() {
            for &(r, lv) in lcol {
                self.l_rows[r].push((k, lv));
            }
        }
        true
    }

    fn ftran_sparse(&self, entries: &[(usize, f64)], w: &mut [f64]) {
        if self.m == 0 {
            w.fill(0.0);
            return;
        }
        let mut x = self.scratch_x.borrow_mut();
        x.clear();
        x.resize(self.m, 0.0);
        for &(i, a) in entries {
            x[i] += a;
        }
        self.lu_solve_into(&mut x, w);
    }

    fn ftran_dense(&self, rhs: &[f64], w: &mut [f64]) {
        let mut x = self.scratch_x.borrow_mut();
        x.clear();
        x.extend_from_slice(rhs);
        self.lu_solve_into(&mut x, w);
    }

    fn btran(&self, cb: &[f64], y: &mut [f64]) {
        // y = cᵦ B⁻¹ in uid space: solve Uᵀ s = ĉ over ascending positions,
        // apply the transposed row etas in reverse, then the transposed
        // forward elimination back in original-row space.
        let m = self.m;
        let mut c = self.scratch_c.borrow_mut();
        c.clear();
        c.extend(self.slot_of_uid.iter().map(|&slot| cb[slot]));
        let mut s = self.scratch_s.borrow_mut();
        s.clear();
        s.resize(m, 0.0);
        for p in 0..m {
            let j = self.order[p];
            let mut v = c[j];
            for &(i, uv) in &self.ucols[j] {
                v -= uv * s[i];
            }
            s[j] = v / self.diag[j];
        }
        self.apply_etas_btran(&mut s);
        for v in y.iter_mut() {
            *v = 0.0;
        }
        for k in 0..m {
            y[self.prow[k]] = s[k];
        }
        for k in (0..m).rev() {
            let mut acc = y[self.prow[k]];
            for &(r, lv) in &self.l_cols[k] {
                acc -= lv * y[r];
            }
            y[self.prow[k]] = acc;
        }
    }

    fn btran_unit(&self, r: usize, rho: &mut [f64]) {
        if self.m == 0 {
            rho.fill(0.0);
            return;
        }
        let mut cb = self.scratch_unit.borrow_mut();
        cb.clear();
        cb.resize(self.m, 0.0);
        cb[r] = 1.0;
        self.btran(&cb, rho);
    }

    fn ftran_sparse_into(&self, entries: &[(usize, f64)], w: &mut SparseVector) {
        let m = self.m;
        if m == 0 {
            let keep = w.len();
            w.begin(keep);
            return;
        }
        if self.ftran_hyper_sparse(entries, w) {
            self.counters.record_ftran(true, w.pattern.len(), m);
        } else {
            w.begin_dense(m);
            self.ftran_sparse(entries, &mut w.values);
            self.counters.record_ftran(false, m, m);
        }
    }

    fn btran_unit_into(&self, r: usize, rho: &mut SparseVector) {
        let m = self.m;
        if m == 0 {
            let keep = rho.len();
            rho.begin(keep);
            return;
        }
        if self.btran_unit_hyper_sparse(r, rho) {
            self.counters.record_btran(true, rho.pattern.len(), m);
        } else {
            rho.begin_dense(m);
            self.btran_unit(r, &mut rho.values);
            self.counters.record_btran(false, m, m);
        }
    }

    fn update_sparse(&mut self, l: usize, w: &SparseVector) -> bool {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        if !w.is_sparse() {
            return self.update(l, w.values());
        }
        let m = self.m;
        if m == 0 {
            return false;
        }
        let t = self.uid_of_slot[l];

        // sparse spike FTRAN: s = U ŵ accumulated over the image's support
        // only; the pattern is collected by value transitions and deduped by
        // the sort (which also matches the dense scan's ascending-index
        // floating-point order exactly).
        let mut s = vec![0.0f64; m];
        let mut spat: Vec<usize> = Vec::with_capacity(2 * w.pattern.len() + 8);
        w.for_each_nonzero(|slot, v| {
            let j = self.uid_of_slot[slot];
            if s[j] == 0.0 {
                spat.push(j);
            }
            s[j] += self.diag[j] * v;
            for &(i, uv) in &self.ucols[j] {
                if s[i] == 0.0 {
                    spat.push(i);
                }
                s[i] += uv * v;
            }
        });
        spat.sort_unstable();
        spat.dedup();
        let mut s_inf = 0.0f64;
        for &j in &spat {
            s_inf = s_inf.max(s[j].abs());
        }

        // row-t elimination and commit are identical to the dense update
        let mut rowval = vec![0.0f64; m];
        let mut heap: BinaryHeap<Reverse<(usize, usize)>> = BinaryHeap::new();
        for &(j, v) in &self.urows[t] {
            rowval[j] = v;
            heap.push(Reverse((self.pos[j], j)));
        }
        let mut mus: Vec<(usize, f64)> = Vec::new();
        let mut d = s[t];
        while let Some(Reverse((_, j))) = heap.pop() {
            let v = rowval[j];
            rowval[j] = 0.0;
            if v.abs() <= Self::DROP_TOL {
                continue;
            }
            let mu = v / self.diag[j];
            mus.push((j, mu));
            d -= mu * s[j];
            for &(j2, v2) in &self.urows[j] {
                if j2 == t || v2 == 0.0 {
                    continue;
                }
                if rowval[j2] == 0.0 {
                    heap.push(Reverse((self.pos[j2], j2)));
                }
                rowval[j2] -= mu * v2;
            }
        }

        if d.abs() <= Self::UPDATE_TOL
            || d.abs() < Self::UPDATE_REL_TOL * s_inf
            || self.eta_entries + mus.len() > self.eta_capacity()
        {
            return false;
        }

        let old_row = std::mem::take(&mut self.urows[t]);
        for &(j, _) in &old_row {
            self.ucols[j].retain(|&(i, _)| i != t);
        }
        let old_col = std::mem::take(&mut self.ucols[t]);
        for &(i, _) in &old_col {
            self.urows[i].retain(|&(j, _)| j != t);
        }
        let mut newcol: Vec<(usize, f64)> = Vec::new();
        for &i in &spat {
            let v = s[i];
            if i != t && v.abs() > Self::DROP_TOL {
                newcol.push((i, v));
                self.urows[i].push((t, v));
            }
        }
        self.ucols[t] = newcol;
        self.diag[t] = d;
        let p = self.pos[t];
        self.order.remove(p);
        self.order.push(t);
        for (idx, &u) in self.order.iter().enumerate().skip(p) {
            self.pos[u] = idx;
        }
        self.eta_entries += mus.len();
        self.etas.push(RowEta { t, entries: mus });
        true
    }

    fn sparsity_stats(&self) -> SparsityStats {
        self.counters.snapshot()
    }

    fn update(&mut self, l: usize, w: &[f64]) -> bool {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let m = self.m;
        if m == 0 {
            return false;
        }
        let t = self.uid_of_slot[l];

        // spike s = U ŵ, where ŵ is the FTRAN image mapped to uid space
        let mut s = vec![0.0f64; m];
        let mut s_inf = 0.0f64;
        for j in 0..m {
            let v = w[self.slot_of_uid[j]];
            if v != 0.0 {
                s[j] += self.diag[j] * v;
                for &(i, uv) in &self.ucols[j] {
                    s[i] += uv * v;
                }
            }
        }
        for &v in &s {
            s_inf = s_inf.max(v.abs());
        }

        // Eliminate the displaced row t left to right (ascending triangular
        // position); fill only spreads rightward, so each column is popped
        // at most once after its value is final.
        let mut rowval = vec![0.0f64; m];
        let mut heap: BinaryHeap<Reverse<(usize, usize)>> = BinaryHeap::new();
        for &(j, v) in &self.urows[t] {
            rowval[j] = v;
            heap.push(Reverse((self.pos[j], j)));
        }
        let mut mus: Vec<(usize, f64)> = Vec::new();
        let mut d = s[t];
        while let Some(Reverse((_, j))) = heap.pop() {
            let v = rowval[j];
            rowval[j] = 0.0;
            if v.abs() <= Self::DROP_TOL {
                continue;
            }
            let mu = v / self.diag[j];
            mus.push((j, mu));
            d -= mu * s[j];
            for &(j2, v2) in &self.urows[j] {
                if j2 == t || v2 == 0.0 {
                    continue;
                }
                if rowval[j2] == 0.0 {
                    heap.push(Reverse((self.pos[j2], j2)));
                }
                rowval[j2] -= mu * v2;
            }
        }

        // stability / capacity gate — nothing has been mutated yet
        if d.abs() <= Self::UPDATE_TOL
            || d.abs() < Self::UPDATE_REL_TOL * s_inf
            || self.eta_entries + mus.len() > self.eta_capacity()
        {
            return false;
        }

        // commit: drop the old row/column t from both mirrors, install the
        // spike as the new column t, move t to the back of the order
        let old_row = std::mem::take(&mut self.urows[t]);
        for &(j, _) in &old_row {
            self.ucols[j].retain(|&(i, _)| i != t);
        }
        let old_col = std::mem::take(&mut self.ucols[t]);
        for &(i, _) in &old_col {
            self.urows[i].retain(|&(j, _)| j != t);
        }
        let mut newcol: Vec<(usize, f64)> = Vec::new();
        for (i, &v) in s.iter().enumerate() {
            if i != t && v.abs() > Self::DROP_TOL {
                newcol.push((i, v));
                self.urows[i].push((t, v));
            }
        }
        self.ucols[t] = newcol;
        self.diag[t] = d;
        let p = self.pos[t];
        self.order.remove(p);
        self.order.push(t);
        for (idx, &u) in self.order.iter().enumerate().skip(p) {
            self.pos[u] = idx;
        }
        self.eta_entries += mus.len();
        self.etas.push(RowEta { t, entries: mus });
        true
    }

    fn updates_since_refactor(&self) -> usize {
        self.etas.len()
    }

    fn box_clone(&self) -> Box<dyn BasisFactorization> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Dense m × m reference multiply: B w for basis columns `cols`.
    fn apply_b(m: usize, cols: &[SparseColumn], w: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0f64; m];
        for (c, col) in cols.iter().enumerate() {
            for &(r, v) in col {
                out[r] += v * w[c];
            }
        }
        out
    }

    fn random_basis(seed: u64, m: usize) -> Vec<SparseColumn> {
        let mut rng = StdRng::seed_from_u64(seed);
        // diagonally-dominant so the basis is comfortably nonsingular
        (0..m)
            .map(|c| {
                let mut col: SparseColumn = vec![(c, 2.0 + rng.random_range(0.0..3.0))];
                for _ in 0..3 {
                    let r = rng.random_range(0..m);
                    if r != c {
                        col.push((r, rng.random_range(-0.4..0.4)));
                    }
                }
                col
            })
            .collect()
    }

    fn check_roundtrip(factor: &mut dyn BasisFactorization, seed: u64, m: usize) {
        let cols = random_basis(seed, m);
        assert!(factor.refactor(m, &cols), "random basis must factorize");
        let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);

        // FTRAN: B w = a
        let mut a: Vec<(usize, f64)> = Vec::new();
        for r in 0..m {
            if rng.random_range(0.0..1.0) < 0.5 {
                a.push((r, rng.random_range(-2.0..2.0)));
            }
        }
        let mut w = vec![0.0f64; m];
        factor.ftran_sparse(&a, &mut w);
        let bw = apply_b(m, &cols, &w);
        let mut dense_a = vec![0.0f64; m];
        for &(r, v) in &a {
            dense_a[r] += v;
        }
        for r in 0..m {
            assert!(
                (bw[r] - dense_a[r]).abs() < 1e-8,
                "ftran row {r}: {} vs {}",
                bw[r],
                dense_a[r]
            );
        }

        // BTRAN: y B = cb, i.e. y · (column c) = cb[c]
        let cb: Vec<f64> = (0..m).map(|_| rng.random_range(-3.0..3.0)).collect();
        let mut y = vec![0.0f64; m];
        factor.btran(&cb, &mut y);
        for (c, col) in cols.iter().enumerate() {
            let dot: f64 = col.iter().map(|&(r, v)| y[r] * v).sum();
            assert!(
                (dot - cb[c]).abs() < 1e-8,
                "btran col {c}: {dot} vs {}",
                cb[c]
            );
        }

        // btran_unit row r agrees with btran on e_r
        let r = m / 2;
        let mut rho = vec![0.0f64; m];
        factor.btran_unit(r, &mut rho);
        let mut er = vec![0.0f64; m];
        er[r] = 1.0;
        let mut yr = vec![0.0f64; m];
        factor.btran(&er, &mut yr);
        for i in 0..m {
            assert!((rho[i] - yr[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn product_form_roundtrips() {
        for seed in 0..6u64 {
            let m = 3 + (seed as usize % 8);
            check_roundtrip(&mut ProductFormInverse::default(), seed, m);
        }
    }

    #[test]
    fn sparse_lu_roundtrips() {
        for seed in 0..6u64 {
            let m = 3 + (seed as usize % 8);
            check_roundtrip(&mut SparseLu::default(), seed, m);
        }
    }

    #[test]
    fn forrest_tomlin_roundtrips() {
        for seed in 0..6u64 {
            let m = 3 + (seed as usize % 8);
            check_roundtrip(&mut ForrestTomlinLu::default(), seed, m);
        }
    }

    #[test]
    fn all_kinds_agree_after_updates() {
        let m = 12;
        let cols = random_basis(99, m);
        let mut pf = ProductFormInverse::default();
        let mut lu = SparseLu::default();
        let mut ft = ForrestTomlinLu::default();
        assert!(pf.refactor(m, &cols));
        assert!(lu.refactor(m, &cols));
        assert!(ft.refactor(m, &cols));
        let mut rng = StdRng::seed_from_u64(4242);
        let mut cols = cols;
        for _ in 0..8 {
            // a random replacement column
            let mut e: SparseColumn = Vec::new();
            for r in 0..m {
                if rng.random_range(0.0..1.0) < 0.4 {
                    e.push((r, rng.random_range(-2.0..2.0)));
                }
            }
            e.push((rng.random_range(0..m), 3.0));
            let mut w_pf = vec![0.0f64; m];
            let mut w_lu = vec![0.0f64; m];
            let mut w_ft = vec![0.0f64; m];
            pf.ftran_sparse(&e, &mut w_pf);
            lu.ftran_sparse(&e, &mut w_lu);
            ft.ftran_sparse(&e, &mut w_ft);
            for r in 0..m {
                assert!((w_pf[r] - w_lu[r]).abs() < 1e-7, "lu ftran mismatch at {r}");
                assert!((w_pf[r] - w_ft[r]).abs() < 1e-7, "ft ftran mismatch at {r}");
            }
            // choose a pivot position with a healthy element
            let l = (0..m)
                .max_by(|&a, &b| w_pf[a].abs().partial_cmp(&w_pf[b].abs()).unwrap())
                .unwrap();
            if w_pf[l].abs() < 1e-6 {
                continue;
            }
            assert!(pf.update(l, &w_pf));
            assert!(lu.update(l, &w_lu));
            assert!(ft.update(l, &w_ft));
            cols[l] = e;
            // duals must agree afterwards
            let cb: Vec<f64> = (0..m).map(|_| rng.random_range(-1.0..1.0)).collect();
            let mut y_pf = vec![0.0f64; m];
            let mut y_lu = vec![0.0f64; m];
            let mut y_ft = vec![0.0f64; m];
            pf.btran(&cb, &mut y_pf);
            lu.btran(&cb, &mut y_lu);
            ft.btran(&cb, &mut y_ft);
            for i in 0..m {
                assert!((y_pf[i] - y_lu[i]).abs() < 1e-6, "lu btran mismatch at {i}");
                assert!((y_pf[i] - y_ft[i]).abs() < 1e-6, "ft btran mismatch at {i}");
            }
        }
        assert_eq!(pf.updates_since_refactor(), lu.updates_since_refactor());
        assert_eq!(pf.updates_since_refactor(), ft.updates_since_refactor());
    }

    #[test]
    fn singular_basis_is_rejected_by_all() {
        let m = 4;
        // two identical columns
        let mut cols = random_basis(7, m);
        cols[2] = cols[1].clone();
        for factor in [
            &mut ProductFormInverse::default() as &mut dyn BasisFactorization,
            &mut SparseLu::default(),
            &mut ForrestTomlinLu::default(),
        ] {
            assert!(!factor.refactor(m, &cols), "{:?}", factor.kind());
        }
    }

    /// A failed refactor must leave the factorization *empty*, not partially
    /// built: `num_rows() == 0` and every solve writes zeros. The crash this
    /// pins down came from the session's deep-arrival path — a singular
    /// rebuild mid-solve left stale `order` over cleared `ucols`, and the
    /// next BTRAN (extracting duals for the failed solve) indexed out of
    /// bounds.
    #[test]
    fn failed_refactor_leaves_a_safe_empty_state() {
        let m = 6;
        let good = random_basis(11, m);
        let mut singular = random_basis(11, m);
        singular[3] = singular[4].clone();
        for factor in [
            &mut ProductFormInverse::default() as &mut dyn BasisFactorization,
            &mut SparseLu::default(),
            &mut ForrestTomlinLu::default(),
        ] {
            let kind = factor.kind();
            // a prior *successful* factorization populates every structure,
            // so this exercises failure-after-success, not the fresh state
            assert!(factor.refactor(m, &good), "{kind:?}: good basis");
            assert!(!factor.refactor(m, &singular), "{kind:?}: singular");
            assert_eq!(factor.num_rows(), 0, "{kind:?}: empty after failure");

            // every solve entry point is callable and writes zeros
            let cb = vec![1.0f64; m];
            let mut y = vec![f64::NAN; m];
            factor.btran(&cb, &mut y);
            assert!(y.iter().all(|&v| v == 0.0), "{kind:?}: btran zeros");
            let mut rho = vec![f64::NAN; m];
            factor.btran_unit(2, &mut rho);
            assert!(rho.iter().all(|&v| v == 0.0), "{kind:?}: btran_unit zeros");
            let mut w = vec![f64::NAN; m];
            factor.ftran_dense(&cb, &mut w);
            assert!(w.iter().all(|&v| v == 0.0), "{kind:?}: ftran_dense zeros");
            let mut w2 = vec![f64::NAN; m];
            factor.ftran_sparse(&[(1, 1.0)], &mut w2);
            assert!(w2.iter().all(|&v| v == 0.0), "{kind:?}: ftran_sparse zeros");

            // and the factorization recovers on the next successful refactor
            assert!(factor.refactor(m, &good), "{kind:?}: recovers");
            assert_eq!(factor.num_rows(), m);
            let mut w3 = vec![0.0f64; m];
            factor.ftran_dense(&cb, &mut w3);
            let bw = apply_b(m, &good, &w3);
            for r in 0..m {
                assert!((bw[r] - cb[r]).abs() < 1e-8, "{kind:?}: row {r}");
            }
        }
    }

    /// FT-updated factors must agree with a from-scratch refactorization of
    /// the same (updated) basis columns through a *long* pivot sequence —
    /// the invariant the debug-assertions check in the simplex core also
    /// enforces per scheduled refactor.
    #[test]
    fn forrest_tomlin_long_sequence_matches_fresh_refactor() {
        for seed in [5u64, 17, 23] {
            let m = 24;
            let mut cols = random_basis(seed, m);
            let mut ft = ForrestTomlinLu::default();
            assert!(ft.refactor(m, &cols));
            let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED);
            let mut applied = 0usize;
            let mut w = vec![0.0f64; m];
            while applied < 40 {
                let mut e: SparseColumn = Vec::new();
                for r in 0..m {
                    if rng.random_range(0.0..1.0) < 0.3 {
                        e.push((r, rng.random_range(-2.0..2.0)));
                    }
                }
                e.push((rng.random_range(0..m), 2.5));
                ft.ftran_sparse(&e, &mut w);
                let l = (0..m)
                    .max_by(|&a, &b| w[a].abs().partial_cmp(&w[b].abs()).unwrap())
                    .unwrap();
                if w[l].abs() < 1e-4 || !ft.update(l, &w) {
                    continue;
                }
                cols[l] = e;
                applied += 1;
                if applied.is_multiple_of(10) {
                    // compare the updated factors against a fresh refactor
                    let mut fresh = ForrestTomlinLu::default();
                    assert!(fresh.refactor(m, &cols));
                    let rhs: Vec<f64> = (0..m).map(|_| rng.random_range(-2.0..2.0)).collect();
                    let mut w_upd = vec![0.0f64; m];
                    let mut w_fresh = vec![0.0f64; m];
                    ft.ftran_dense(&rhs, &mut w_upd);
                    fresh.ftran_dense(&rhs, &mut w_fresh);
                    for i in 0..m {
                        assert!(
                            (w_upd[i] - w_fresh[i]).abs() < 1e-6,
                            "seed {seed}: ftran drift {} at {i} after {applied} updates",
                            (w_upd[i] - w_fresh[i]).abs()
                        );
                    }
                    let mut y_upd = vec![0.0f64; m];
                    let mut y_fresh = vec![0.0f64; m];
                    ft.btran(&rhs, &mut y_upd);
                    fresh.btran(&rhs, &mut y_fresh);
                    for i in 0..m {
                        assert!(
                            (y_upd[i] - y_fresh[i]).abs() < 1e-6,
                            "seed {seed}: btran drift at {i} after {applied} updates"
                        );
                    }
                }
            }
            assert_eq!(ft.updates_since_refactor(), 40);
        }
    }

    #[test]
    fn eta_capacity_forces_refactor() {
        let m = 4;
        let cols = random_basis(11, m);
        let mut lu = SparseLu::default();
        assert!(lu.refactor(m, &cols));
        // dense updates: each eta holds ~m entries; the capacity 4m + 64
        // must trip in bounded time
        let w: Vec<f64> = (0..m).map(|r| 1.0 + r as f64 * 0.1).collect();
        let mut declined = false;
        for _ in 0..200 {
            if !lu.update(0, &w) {
                declined = true;
                break;
            }
        }
        assert!(declined, "eta file must eventually decline updates");
    }

    /// Block size of [`block_basis`] (coupling never crosses a block).
    const BLOCK: usize = 6;

    /// A block-diagonal locally-coupled basis: diagonal dominance plus a
    /// few entries inside the column's own 6-row block. Unlike
    /// `random_basis`, whose uniformly random structure makes almost every
    /// triangular reach dense (even a plain band chains structurally to the
    /// end of the matrix), disconnected blocks keep the solve-graph reach
    /// genuinely bounded — the regime the hyper-sparse path exists for, and
    /// the shape auction LPs (mostly-slack bases, few-row bundle columns)
    /// actually have.
    fn block_basis(seed: u64, m: usize) -> Vec<SparseColumn> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..m)
            .map(|c| {
                let base = c - (c % BLOCK);
                let width = BLOCK.min(m - base);
                let mut col: SparseColumn = vec![(c, 2.0 + rng.random_range(0.0..3.0))];
                for _ in 0..2 {
                    let r = base + rng.random_range(0..width);
                    if r != c {
                        col.push((r, rng.random_range(-0.4..0.4)));
                    }
                }
                col
            })
            .collect()
    }

    /// Asserts the indexed result equals the dense reference: every dense
    /// value matches, and (when sparse) the pattern covers every nonzero.
    fn assert_sv_matches(sv: &SparseVector, dense: &[f64], tol: f64, ctx: &str) {
        assert_eq!(sv.len(), dense.len(), "{ctx}: length");
        for (i, &dv) in dense.iter().enumerate() {
            assert!(
                (sv.value(i) - dv).abs() <= tol,
                "{ctx}: value {i}: {} vs {dv}",
                sv.value(i)
            );
        }
        if sv.is_sparse() {
            let mut inpat = vec![false; dense.len()];
            for &i in sv.pattern() {
                inpat[i] = true;
            }
            for (i, &dv) in dense.iter().enumerate() {
                assert!(
                    dv.abs() <= tol || inpat[i],
                    "{ctx}: nonzero {i} missing from pattern"
                );
            }
        }
    }

    /// Hyper-sparse FTRAN/BTRAN must equal the dense kernels — exact
    /// indices, values within tolerance — on fresh factors and through a
    /// pivot-update sequence, for every representation.
    #[test]
    fn sparse_into_matches_dense_kernels() {
        for seed in 0..8u64 {
            let m = 40 + 20 * (seed as usize % 4);
            let mut cols = block_basis(seed.wrapping_mul(71) + 3, m);
            for factor in [
                &mut ProductFormInverse::default() as &mut dyn BasisFactorization,
                &mut SparseLu::default(),
                &mut ForrestTomlinLu::default(),
            ] {
                let kind = factor.kind();
                assert!(factor.refactor(m, &cols), "{kind:?}: refactor");
                let mut rng = StdRng::seed_from_u64(seed ^ 0xF00D);
                let mut w_sv = SparseVector::zeros(m);
                let mut rho_sv = SparseVector::zeros(m);
                let mut pivots = 0usize;
                for round in 0..30 {
                    // block-local sparse rhs (1–3 entries) so the
                    // hyper-sparse path is actually the one exercised
                    let anchor = rng.random_range(0..m);
                    let base = anchor - (anchor % BLOCK);
                    let width = BLOCK.min(m - base);
                    let mut e: SparseColumn = vec![(anchor, 2.5)];
                    for _ in 0..2 {
                        if rng.random_range(0.0..1.0) < 0.7 {
                            let r = base + rng.random_range(0..width);
                            e.push((r, rng.random_range(-2.0..2.0)));
                        }
                    }
                    let mut w_dense = vec![f64::NAN; m];
                    factor.ftran_sparse(&e, &mut w_dense);
                    factor.ftran_sparse_into(&e, &mut w_sv);
                    assert_sv_matches(&w_sv, &w_dense, 1e-7, &format!("{kind:?} ftran r{round}"));

                    let r = rng.random_range(0..m);
                    let mut rho_dense = vec![f64::NAN; m];
                    factor.btran_unit(r, &mut rho_dense);
                    factor.btran_unit_into(r, &mut rho_sv);
                    assert_sv_matches(
                        &rho_sv,
                        &rho_dense,
                        1e-7,
                        &format!("{kind:?} btran r{round}"),
                    );

                    // pivot through the sparse seam every few rounds so the
                    // eta/spike paths get covered too
                    if round % 3 == 0 {
                        let l = (0..m)
                            .max_by(|&a, &b| {
                                w_sv.value(a)
                                    .abs()
                                    .partial_cmp(&w_sv.value(b).abs())
                                    .unwrap()
                            })
                            .unwrap();
                        if w_sv.value(l).abs() > 1e-4 && factor.update_sparse(l, &w_sv) {
                            cols[l] = e;
                            pivots += 1;
                        }
                    }
                }
                assert!(pivots > 0, "{kind:?}: sequence never pivoted");
                if kind != BasisKind::ProductForm {
                    let stats = factor.sparsity_stats();
                    assert!(
                        stats.ftran_sparse > 0 && stats.btran_sparse > 0,
                        "{kind:?}: hyper-sparse path never taken: {stats:?}"
                    );
                    assert!(stats.avg_density() < 1.0, "{kind:?}: density not tracked");
                }
                // refactor from the updated columns and re-check once more
                assert!(factor.refactor(m, &cols), "{kind:?}: re-refactor");
                let e = vec![(m / 2, 1.0)];
                let mut w_dense = vec![f64::NAN; m];
                factor.ftran_sparse(&e, &mut w_dense);
                factor.ftran_sparse_into(&e, &mut w_sv);
                assert_sv_matches(&w_sv, &w_dense, 1e-7, &format!("{kind:?} post-refactor"));
            }
        }
    }

    /// Dense results (above the density cutoff) must come back marked dense
    /// and still be correct — exercised with a deliberately dense rhs.
    #[test]
    fn sparse_into_falls_back_dense_above_cutoff() {
        let m = 60;
        let cols = random_basis(21, m);
        let mut lu = SparseLu::default();
        assert!(lu.refactor(m, &cols));
        let e: SparseColumn = (0..m).map(|r| (r, 1.0 + 0.01 * r as f64)).collect();
        let mut w_dense = vec![f64::NAN; m];
        lu.ftran_sparse(&e, &mut w_dense);
        let mut w_sv = SparseVector::zeros(m);
        lu.ftran_sparse_into(&e, &mut w_sv);
        assert!(!w_sv.is_sparse(), "a full rhs must take the dense fallback");
        assert_sv_matches(&w_sv, &w_dense, 1e-9, "dense fallback");
        let stats = lu.sparsity_stats();
        assert!(stats.ftran_dense > 0, "fallback must be counted: {stats:?}");
    }

    /// The empty state (failed refactor) answers the indexed entry points
    /// with all-zero vectors of the caller's length.
    #[test]
    fn sparse_into_empty_state_writes_zeros() {
        let m = 6;
        let mut singular = random_basis(11, m);
        singular[3] = singular[4].clone();
        for factor in [
            &mut ProductFormInverse::default() as &mut dyn BasisFactorization,
            &mut SparseLu::default(),
            &mut ForrestTomlinLu::default(),
        ] {
            let kind = factor.kind();
            assert!(!factor.refactor(m, &singular), "{kind:?}");
            let mut w = SparseVector::zeros(m);
            factor.ftran_sparse_into(&[(1, 1.0)], &mut w);
            assert_eq!(w.len(), m, "{kind:?}: keeps length");
            assert!(w.values().iter().all(|&v| v == 0.0), "{kind:?}: zeros");
            let mut rho = SparseVector::zeros(m);
            factor.btran_unit_into(2, &mut rho);
            assert!(rho.values().iter().all(|&v| v == 0.0), "{kind:?}: zeros");
        }
    }

    /// Sparse FT updates (spike built from the image's support) must track a
    /// fresh refactorization through a long random pivot sequence, exactly
    /// like the dense-update variant of this test above.
    #[test]
    fn forrest_tomlin_long_sparse_sequence_matches_fresh_refactor() {
        for seed in [9u64, 31, 47] {
            let m = 48;
            let mut cols = block_basis(seed, m);
            let mut ft = ForrestTomlinLu::default();
            assert!(ft.refactor(m, &cols));
            let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED);
            let mut applied = 0usize;
            let mut w = SparseVector::zeros(m);
            let mut guard = 0usize;
            while applied < 40 {
                guard += 1;
                assert!(guard < 4000, "seed {seed}: pivot sequence stalled");
                let anchor = rng.random_range(0..m);
                let base = anchor - (anchor % BLOCK);
                let width = BLOCK.min(m - base);
                let mut e: SparseColumn = vec![(anchor, 2.5)];
                for _ in 0..3 {
                    if rng.random_range(0.0..1.0) < 0.6 {
                        let r = base + rng.random_range(0..width);
                        e.push((r, rng.random_range(-2.0..2.0)));
                    }
                }
                ft.ftran_sparse_into(&e, &mut w);
                let l = (0..m)
                    .max_by(|&a, &b| w.value(a).abs().partial_cmp(&w.value(b).abs()).unwrap())
                    .unwrap();
                if w.value(l).abs() < 1e-4 || !ft.update_sparse(l, &w) {
                    continue;
                }
                cols[l] = e;
                applied += 1;
                if applied.is_multiple_of(10) {
                    let mut fresh = ForrestTomlinLu::default();
                    assert!(fresh.refactor(m, &cols));
                    let rhs: Vec<f64> = (0..m).map(|_| rng.random_range(-2.0..2.0)).collect();
                    let mut w_upd = vec![0.0f64; m];
                    let mut w_fresh = vec![0.0f64; m];
                    ft.ftran_dense(&rhs, &mut w_upd);
                    fresh.ftran_dense(&rhs, &mut w_fresh);
                    for i in 0..m {
                        assert!(
                            (w_upd[i] - w_fresh[i]).abs() < 1e-6,
                            "seed {seed}: sparse-update ftran drift {} at {i} after {applied}",
                            (w_upd[i] - w_fresh[i]).abs()
                        );
                    }
                    // and the hyper-sparse solves drift no further than the
                    // dense ones
                    let r = rng.random_range(0..m);
                    let mut rho_dense = vec![0.0f64; m];
                    ft.btran_unit(r, &mut rho_dense);
                    let mut rho_sv = SparseVector::zeros(m);
                    ft.btran_unit_into(r, &mut rho_sv);
                    assert_sv_matches(&rho_sv, &rho_dense, 1e-7, "mid-sequence btran");
                }
            }
            assert_eq!(ft.updates_since_refactor(), 40);
        }
    }
}
