//! Pluggable basis factorizations for the revised simplex.
//!
//! The revised method needs four linear-algebra primitives per iteration —
//! FTRAN (`w = B⁻¹ a`), BTRAN (`y = cᵦ B⁻¹`), a single row of `B⁻¹` (for
//! Devex pivot rows and for driving artificials out), and a rank-one pivot
//! update — plus a periodic rebuild from the basis columns. This module
//! abstracts them behind the [`BasisFactorization`] trait so the simplex
//! core ([`crate::simplex`]) is independent of *how* the basis is
//! represented:
//!
//! * [`ProductFormInverse`] — the PR 1 representation: an explicit dense
//!   row-major `m × m` inverse updated in product form. Every primitive is
//!   `O(m²)` (FTRAN `O(m · nnz)`), which is fine for small masters but is
//!   the documented bottleneck at `m ≳ 5·10³` rows.
//! * [`SparseLu`] — a sparse LU factorization (`B = Pᵀ L U`, partial
//!   pivoting, left-looking elimination with a dense scratch column) with
//!   Bartels–Golub/Forrest–Tomlin-style **eta updates** between periodic
//!   refactorizations: each pivot appends a sparse eta matrix to the
//!   inverse representation instead of touching `O(m²)` entries, so FTRAN /
//!   BTRAN cost `O(nnz(L) + nnz(U) + nnz(etas))` and a pivot costs `O(nnz(w))`.
//!   The eta file is bounded (and the update refuses unstable pivots), which
//!   forces a refactorization through the simplex core's existing hygiene
//!   path.
//!
//! Which factorization runs is chosen by [`BasisKind`] in
//! [`crate::simplex::SimplexOptions`]; the property tests solve every
//! pricing × basis combination against the dense oracle ([`crate::dense`]).

use serde::{Deserialize, Serialize};

/// Selects the basis representation used by the revised simplex.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum BasisKind {
    /// Explicit dense `B⁻¹` maintained in product form (`O(m²)` per pivot).
    ProductForm,
    /// Sparse LU factors with eta updates and periodic refactorization.
    SparseLu,
}

impl BasisKind {
    /// Short stable name used in bench labels and stats tables.
    pub fn name(self) -> &'static str {
        match self {
            BasisKind::ProductForm => "product-form",
            BasisKind::SparseLu => "sparse-lu",
        }
    }
}

/// A sparse column of the basis matrix: `(row index, value)` pairs.
pub type SparseColumn = Vec<(usize, f64)>;

/// The linear-algebra kernel behind the revised simplex.
///
/// All vectors indexed "by basis position" refer to the slot `r` of the
/// simplex basis (`basis[r]` is the member whose column occupies position
/// `r`); vectors indexed "by row" refer to original constraint rows. The
/// two spaces have the same length `m` but are permuted relative to each
/// other inside the LU representation.
pub trait BasisFactorization: std::fmt::Debug + Send {
    /// Which representation this is (reported in solve stats).
    fn kind(&self) -> BasisKind;

    /// Number of rows of the factorized basis (0 before the first
    /// [`refactor`](Self::refactor)).
    fn num_rows(&self) -> usize;

    /// Rebuilds the factorization from scratch. `cols[c]` is the sparse
    /// column (by original row index) of the basis member at position `c`.
    /// Returns `false` when the basis matrix is numerically singular; the
    /// factorization is then unusable until the next successful refactor.
    fn refactor(&mut self, m: usize, cols: &[SparseColumn]) -> bool;

    /// FTRAN with a sparse right-hand side: `w = B⁻¹ a` where `a` is given
    /// as `(row, value)` entries. `w` (length `m`) is indexed by basis
    /// position.
    fn ftran_sparse(&self, entries: &[(usize, f64)], w: &mut [f64]);

    /// FTRAN with a dense right-hand side (used to recompute `x_B = B⁻¹ b`).
    fn ftran_dense(&self, rhs: &[f64], w: &mut [f64]);

    /// BTRAN: `y = cᵦ B⁻¹` for the basic cost vector `cb` (indexed by basis
    /// position); `y` (length `m`) is indexed by original row.
    fn btran(&self, cb: &[f64], y: &mut [f64]);

    /// Row `r` of `B⁻¹` (`rho = eᵣᵀ B⁻¹`, indexed by original row): the
    /// pivot row used by Devex weight updates and by the artificial
    /// drive-out pass.
    fn btran_unit(&self, r: usize, rho: &mut [f64]);

    /// Applies the pivot that replaces the basis column at position `l` by
    /// the column whose FTRAN image is `w` (so the new `B⁻¹` is
    /// `E · B⁻¹_old` with the eta matrix built from `(l, w)`).
    ///
    /// Returns `false` when the representation declines the update for
    /// stability or capacity reasons — the caller must then refactor from
    /// the (already updated) basis columns; the factorization state is
    /// unspecified until it does.
    fn update(&mut self, l: usize, w: &[f64]) -> bool;

    /// Number of successful [`update`](Self::update)s since the last
    /// [`refactor`](Self::refactor).
    fn updates_since_refactor(&self) -> usize;

    /// Clones the factorization state (used by [`crate::simplex::WarmStart`],
    /// which must stay `Clone` for the column-generation master).
    fn box_clone(&self) -> Box<dyn BasisFactorization>;
}

impl Clone for Box<dyn BasisFactorization> {
    fn clone(&self) -> Self {
        self.box_clone()
    }
}

/// Creates an empty factorization of the requested kind.
pub fn make_factorization(kind: BasisKind) -> Box<dyn BasisFactorization> {
    match kind {
        BasisKind::ProductForm => Box::new(ProductFormInverse::default()),
        BasisKind::SparseLu => Box::new(SparseLu::default()),
    }
}

// ---------------------------------------------------------------------------
// Product-form inverse (the PR 1 representation)
// ---------------------------------------------------------------------------

/// Explicit dense `B⁻¹`, row-major, updated in product form.
#[derive(Clone, Debug, Default)]
pub struct ProductFormInverse {
    m: usize,
    /// row-major `m × m`: `binv[r * m + i]` maps row `i` to basis position `r`
    binv: Vec<f64>,
    updates: usize,
}

impl ProductFormInverse {
    /// Wraps an existing dense inverse (used when migrating a pre-seam warm
    /// start and by tests).
    pub fn from_dense(m: usize, binv: Vec<f64>) -> Self {
        assert_eq!(binv.len(), m * m, "inverse must be m × m");
        ProductFormInverse {
            m,
            binv,
            updates: 0,
        }
    }
}

impl BasisFactorization for ProductFormInverse {
    fn kind(&self) -> BasisKind {
        BasisKind::ProductForm
    }

    fn num_rows(&self) -> usize {
        self.m
    }

    fn refactor(&mut self, m: usize, cols: &[SparseColumn]) -> bool {
        assert_eq!(cols.len(), m, "one column per basis position");
        self.m = m;
        self.updates = 0;
        // Dense B (column per basis position), then Gauss–Jordan with
        // partial pivoting applied to [B | I].
        let mut bmat = vec![0.0f64; m * m];
        for (c, col) in cols.iter().enumerate() {
            for &(r, v) in col {
                bmat[r * m + c] += v;
            }
        }
        let mut inv = vec![0.0f64; m * m];
        for i in 0..m {
            inv[i * m + i] = 1.0;
        }
        for k in 0..m {
            let mut p = k;
            let mut best = bmat[k * m + k].abs();
            for r in (k + 1)..m {
                let cand = bmat[r * m + k].abs();
                if cand > best {
                    best = cand;
                    p = r;
                }
            }
            if best <= 1e-12 {
                return false;
            }
            if p != k {
                for j in 0..m {
                    bmat.swap(k * m + j, p * m + j);
                    inv.swap(k * m + j, p * m + j);
                }
            }
            let inv_piv = 1.0 / bmat[k * m + k];
            for j in 0..m {
                bmat[k * m + j] *= inv_piv;
                inv[k * m + j] *= inv_piv;
            }
            for r in 0..m {
                if r == k {
                    continue;
                }
                let f = bmat[r * m + k];
                if f != 0.0 {
                    for j in 0..m {
                        bmat[r * m + j] -= f * bmat[k * m + j];
                        inv[r * m + j] -= f * inv[k * m + j];
                    }
                }
            }
        }
        self.binv = inv;
        true
    }

    fn ftran_sparse(&self, entries: &[(usize, f64)], w: &mut [f64]) {
        let m = self.m;
        for v in w.iter_mut() {
            *v = 0.0;
        }
        for &(i, a) in entries {
            if a != 0.0 {
                for (r, wr) in w.iter_mut().enumerate() {
                    *wr += self.binv[r * m + i] * a;
                }
            }
        }
    }

    fn ftran_dense(&self, rhs: &[f64], w: &mut [f64]) {
        let m = self.m;
        for (r, wr) in w.iter_mut().enumerate() {
            let row = &self.binv[r * m..(r + 1) * m];
            *wr = row.iter().zip(rhs.iter()).map(|(a, b)| a * b).sum();
        }
    }

    fn btran(&self, cb: &[f64], y: &mut [f64]) {
        let m = self.m;
        for v in y.iter_mut() {
            *v = 0.0;
        }
        for (r, &c) in cb.iter().enumerate() {
            if c != 0.0 {
                let row = &self.binv[r * m..(r + 1) * m];
                for (yk, &bk) in y.iter_mut().zip(row.iter()) {
                    *yk += c * bk;
                }
            }
        }
    }

    fn btran_unit(&self, r: usize, rho: &mut [f64]) {
        let m = self.m;
        rho.copy_from_slice(&self.binv[r * m..(r + 1) * m]);
    }

    fn update(&mut self, l: usize, w: &[f64]) -> bool {
        let m = self.m;
        let wl = w[l];
        if wl.abs() <= 1e-12 {
            return false;
        }
        let inv_wl = 1.0 / wl;
        for j in 0..m {
            self.binv[l * m + j] *= inv_wl;
        }
        let pivot_row: Vec<f64> = self.binv[l * m..(l + 1) * m].to_vec();
        for (r, &f) in w.iter().enumerate().take(m) {
            if r == l || f == 0.0 {
                continue;
            }
            let row = &mut self.binv[r * m..(r + 1) * m];
            for (dst, &p) in row.iter_mut().zip(pivot_row.iter()) {
                *dst -= f * p;
            }
        }
        self.updates += 1;
        true
    }

    fn updates_since_refactor(&self) -> usize {
        self.updates
    }

    fn box_clone(&self) -> Box<dyn BasisFactorization> {
        Box::new(self.clone())
    }
}

// ---------------------------------------------------------------------------
// Sparse LU with eta updates
// ---------------------------------------------------------------------------

/// One eta matrix of the update file: `B⁻¹_new = E · B⁻¹_old` with
/// `E = I + (e_l − w) e_lᵀ / w_l` built from the pivot `(l, w = B⁻¹ a_e)`.
#[derive(Clone, Debug)]
struct Eta {
    /// Pivot position (basis slot).
    l: usize,
    /// Pivot element `w_l`.
    wl: f64,
    /// Off-pivot entries `(r, w_r)` with `r ≠ l`.
    entries: Vec<(usize, f64)>,
}

/// Sparse LU factors of the basis with a product-form eta file.
///
/// `B = Pᵀ L U` with row permutation `P` chosen by partial pivoting during
/// a left-looking elimination; pivots append eta matrices instead of
/// re-factorizing. See the module docs for the cost model.
#[derive(Clone, Debug, Default)]
pub struct SparseLu {
    m: usize,
    /// Columns of unit-lower-triangular `L`: entries `(original row, value)`
    /// for rows pivoted *after* step `k`.
    l_cols: Vec<Vec<(usize, f64)>>,
    /// Off-diagonal columns of `U`: entries `(step i < k, value)`.
    u_cols: Vec<Vec<(usize, f64)>>,
    /// Diagonal of `U` per step.
    u_diag: Vec<f64>,
    /// `prow[k]` = original row chosen as pivot at elimination step `k`.
    prow: Vec<usize>,
    /// Eta file, in application (creation) order.
    etas: Vec<Eta>,
    /// Total entries across the eta file (bounds FTRAN/BTRAN cost).
    eta_entries: usize,
    /// Reusable solve workspaces (FTRAN rhs / BTRAN cost / BTRAN permuted
    /// solution / unit-cost vector): the trait's solve methods take `&self`
    /// and run once per pivot, so these avoid a heap allocation per call.
    /// `scratch_unit` is separate because `btran_unit` calls `btran`, which
    /// borrows the other two.
    scratch_x: std::cell::RefCell<Vec<f64>>,
    scratch_c: std::cell::RefCell<Vec<f64>>,
    scratch_s: std::cell::RefCell<Vec<f64>>,
    scratch_unit: std::cell::RefCell<Vec<f64>>,
}

impl SparseLu {
    /// Tiny pivots below this are treated as singular.
    const SINGULAR_TOL: f64 = 1e-12;
    /// Pivot elements below this refuse the eta update (forces refactor).
    const UPDATE_TOL: f64 = 1e-9;

    /// Eta-file capacity: once the file holds more than `4m + 64` entries
    /// the update declines and the core refactorizes, keeping the marginal
    /// FTRAN/BTRAN cost linear in the factor size.
    fn eta_capacity(&self) -> usize {
        4 * self.m + 64
    }

    /// Forward elimination (`L⁻¹` with the row permutation folded in)
    /// applied to the dense scratch `x` (indexed by original row). After the
    /// call, `x[prow[k]]` holds the permuted solution component `z_k`.
    fn forward(&self, x: &mut [f64]) {
        for k in 0..self.m {
            let z = x[self.prow[k]];
            if z != 0.0 {
                for &(r, lv) in &self.l_cols[k] {
                    x[r] -= z * lv;
                }
            }
        }
    }

    /// Backward substitution `U w = z` where `z_k = x[prow[k]]`; writes the
    /// solution (indexed by basis position) into `w`.
    fn backward(&self, x: &mut [f64], w: &mut [f64]) {
        for k in (0..self.m).rev() {
            let wk = x[self.prow[k]] / self.u_diag[k];
            w[k] = wk;
            if wk != 0.0 {
                for &(i, uv) in &self.u_cols[k] {
                    x[self.prow[i]] -= uv * wk;
                }
            }
        }
    }

    /// Applies the eta file (column action, creation order) to `w`.
    fn apply_etas_ftran(&self, w: &mut [f64]) {
        for eta in &self.etas {
            let vl = w[eta.l] / eta.wl;
            w[eta.l] = vl;
            if vl != 0.0 {
                for &(r, wr) in &eta.entries {
                    w[r] -= wr * vl;
                }
            }
        }
    }

    /// Applies the eta file (row action, reverse order) to `c`.
    fn apply_etas_btran(&self, c: &mut [f64]) {
        for eta in self.etas.iter().rev() {
            let mut dot = c[eta.l] * eta.wl;
            for &(r, wr) in &eta.entries {
                dot += c[r] * wr;
            }
            c[eta.l] += (c[eta.l] - dot) / eta.wl;
        }
    }

    fn lu_solve_into(&self, x: &mut [f64], w: &mut [f64]) {
        self.forward(x);
        self.backward(x, w);
        self.apply_etas_ftran(w);
    }
}

impl BasisFactorization for SparseLu {
    fn kind(&self) -> BasisKind {
        BasisKind::SparseLu
    }

    fn num_rows(&self) -> usize {
        self.m
    }

    fn refactor(&mut self, m: usize, cols: &[SparseColumn]) -> bool {
        assert_eq!(cols.len(), m, "one column per basis position");
        self.m = m;
        self.etas.clear();
        self.eta_entries = 0;
        self.l_cols.clear();
        self.u_cols.clear();
        self.u_diag.clear();
        self.prow.clear();
        self.l_cols.reserve(m);
        self.u_cols.reserve(m);
        self.u_diag.reserve(m);
        self.prow.reserve(m);

        // pos[r] = elimination step of original row r (MAX while unpivoted)
        let mut pos = vec![usize::MAX; m];
        let mut x = vec![0.0f64; m];
        let mut touched: Vec<usize> = Vec::with_capacity(m);

        for col in cols.iter() {
            // scatter the basis column into the scratch
            for &(r, v) in col {
                if x[r] == 0.0 && v != 0.0 {
                    touched.push(r);
                }
                x[r] += v;
            }
            // left-looking: apply the L columns computed so far (step order)
            let k = self.u_diag.len();
            for j in 0..k {
                let xj = x[self.prow[j]];
                if xj != 0.0 {
                    for &(r, lv) in &self.l_cols[j] {
                        if x[r] == 0.0 {
                            touched.push(r);
                        }
                        x[r] -= xj * lv;
                    }
                }
            }
            // partial pivot among unpivoted rows
            let mut p = usize::MAX;
            let mut best = Self::SINGULAR_TOL;
            for &r in &touched {
                if pos[r] == usize::MAX {
                    let cand = x[r].abs();
                    if cand > best {
                        best = cand;
                        p = r;
                    }
                }
            }
            if p == usize::MAX {
                // no usable pivot: singular (clear scratch before bailing)
                for &r in &touched {
                    x[r] = 0.0;
                }
                return false;
            }
            let piv = x[p];
            pos[p] = k;
            self.prow.push(p);
            self.u_diag.push(piv);
            let mut ucol: Vec<(usize, f64)> = Vec::new();
            let mut lcol: Vec<(usize, f64)> = Vec::new();
            for &r in &touched {
                let v = x[r];
                x[r] = 0.0;
                if v == 0.0 || r == p {
                    continue;
                }
                match pos[r] {
                    usize::MAX => lcol.push((r, v / piv)),
                    step => ucol.push((step, v)),
                }
            }
            touched.clear();
            self.u_cols.push(ucol);
            self.l_cols.push(lcol);
        }
        true
    }

    fn ftran_sparse(&self, entries: &[(usize, f64)], w: &mut [f64]) {
        let mut x = self.scratch_x.borrow_mut();
        x.clear();
        x.resize(self.m, 0.0);
        for &(i, a) in entries {
            x[i] += a;
        }
        self.lu_solve_into(&mut x, w);
    }

    fn ftran_dense(&self, rhs: &[f64], w: &mut [f64]) {
        let mut x = self.scratch_x.borrow_mut();
        x.clear();
        x.extend_from_slice(rhs);
        self.lu_solve_into(&mut x, w);
    }

    fn btran(&self, cb: &[f64], y: &mut [f64]) {
        // y = cᵦ B⁻¹ with B⁻¹ = Eₖ…E₁ · U⁻¹ ∘ read ∘ forward:
        // apply the eta file to cᵦ (row action, reverse order), then solve
        // Uᵀ s = c (ascending steps), scatter s through the permutation and
        // apply the transposed forward elimination in reverse.
        let m = self.m;
        let mut c = self.scratch_c.borrow_mut();
        c.clear();
        c.extend_from_slice(cb);
        self.apply_etas_btran(&mut c);
        let mut s = self.scratch_s.borrow_mut();
        s.clear();
        s.resize(m, 0.0);
        for k in 0..m {
            let mut v = c[k];
            for &(i, uv) in &self.u_cols[k] {
                v -= uv * s[i];
            }
            s[k] = v / self.u_diag[k];
        }
        for v in y.iter_mut() {
            *v = 0.0;
        }
        for k in 0..m {
            y[self.prow[k]] = s[k];
        }
        for k in (0..m).rev() {
            let mut acc = y[self.prow[k]];
            for &(r, lv) in &self.l_cols[k] {
                acc -= lv * y[r];
            }
            y[self.prow[k]] = acc;
        }
    }

    fn btran_unit(&self, r: usize, rho: &mut [f64]) {
        // `scratch_unit` is distinct from btran's own workspaces, so the
        // nested call cannot double-borrow.
        let mut cb = self.scratch_unit.borrow_mut();
        cb.clear();
        cb.resize(self.m, 0.0);
        cb[r] = 1.0;
        self.btran(&cb, rho);
    }

    fn update(&mut self, l: usize, w: &[f64]) -> bool {
        let wl = w[l];
        if wl.abs() <= Self::UPDATE_TOL || self.eta_entries >= self.eta_capacity() {
            return false;
        }
        let entries: Vec<(usize, f64)> = w
            .iter()
            .enumerate()
            .filter(|&(r, &v)| r != l && v.abs() > 1e-12)
            .map(|(r, &v)| (r, v))
            .collect();
        self.eta_entries += entries.len() + 1;
        self.etas.push(Eta { l, wl, entries });
        true
    }

    fn updates_since_refactor(&self) -> usize {
        self.etas.len()
    }

    fn box_clone(&self) -> Box<dyn BasisFactorization> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Dense m × m reference multiply: B w for basis columns `cols`.
    fn apply_b(m: usize, cols: &[SparseColumn], w: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0f64; m];
        for (c, col) in cols.iter().enumerate() {
            for &(r, v) in col {
                out[r] += v * w[c];
            }
        }
        out
    }

    fn random_basis(seed: u64, m: usize) -> Vec<SparseColumn> {
        let mut rng = StdRng::seed_from_u64(seed);
        // diagonally-dominant so the basis is comfortably nonsingular
        (0..m)
            .map(|c| {
                let mut col: SparseColumn = vec![(c, 2.0 + rng.random_range(0.0..3.0))];
                for _ in 0..3 {
                    let r = rng.random_range(0..m);
                    if r != c {
                        col.push((r, rng.random_range(-0.4..0.4)));
                    }
                }
                col
            })
            .collect()
    }

    fn check_roundtrip(factor: &mut dyn BasisFactorization, seed: u64, m: usize) {
        let cols = random_basis(seed, m);
        assert!(factor.refactor(m, &cols), "random basis must factorize");
        let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);

        // FTRAN: B w = a
        let mut a: Vec<(usize, f64)> = Vec::new();
        for r in 0..m {
            if rng.random_range(0.0..1.0) < 0.5 {
                a.push((r, rng.random_range(-2.0..2.0)));
            }
        }
        let mut w = vec![0.0f64; m];
        factor.ftran_sparse(&a, &mut w);
        let bw = apply_b(m, &cols, &w);
        let mut dense_a = vec![0.0f64; m];
        for &(r, v) in &a {
            dense_a[r] += v;
        }
        for r in 0..m {
            assert!(
                (bw[r] - dense_a[r]).abs() < 1e-8,
                "ftran row {r}: {} vs {}",
                bw[r],
                dense_a[r]
            );
        }

        // BTRAN: y B = cb, i.e. y · (column c) = cb[c]
        let cb: Vec<f64> = (0..m).map(|_| rng.random_range(-3.0..3.0)).collect();
        let mut y = vec![0.0f64; m];
        factor.btran(&cb, &mut y);
        for (c, col) in cols.iter().enumerate() {
            let dot: f64 = col.iter().map(|&(r, v)| y[r] * v).sum();
            assert!(
                (dot - cb[c]).abs() < 1e-8,
                "btran col {c}: {dot} vs {}",
                cb[c]
            );
        }

        // btran_unit row r agrees with btran on e_r
        let r = m / 2;
        let mut rho = vec![0.0f64; m];
        factor.btran_unit(r, &mut rho);
        let mut er = vec![0.0f64; m];
        er[r] = 1.0;
        let mut yr = vec![0.0f64; m];
        factor.btran(&er, &mut yr);
        for i in 0..m {
            assert!((rho[i] - yr[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn product_form_roundtrips() {
        for seed in 0..6u64 {
            let m = 3 + (seed as usize % 8);
            check_roundtrip(&mut ProductFormInverse::default(), seed, m);
        }
    }

    #[test]
    fn sparse_lu_roundtrips() {
        for seed in 0..6u64 {
            let m = 3 + (seed as usize % 8);
            check_roundtrip(&mut SparseLu::default(), seed, m);
        }
    }

    #[test]
    fn both_kinds_agree_after_updates() {
        let m = 12;
        let cols = random_basis(99, m);
        let mut pf = ProductFormInverse::default();
        let mut lu = SparseLu::default();
        assert!(pf.refactor(m, &cols));
        assert!(lu.refactor(m, &cols));
        let mut rng = StdRng::seed_from_u64(4242);
        let mut cols = cols;
        for _ in 0..8 {
            // a random replacement column
            let mut e: SparseColumn = Vec::new();
            for r in 0..m {
                if rng.random_range(0.0..1.0) < 0.4 {
                    e.push((r, rng.random_range(-2.0..2.0)));
                }
            }
            e.push((rng.random_range(0..m), 3.0));
            let mut w_pf = vec![0.0f64; m];
            let mut w_lu = vec![0.0f64; m];
            pf.ftran_sparse(&e, &mut w_pf);
            lu.ftran_sparse(&e, &mut w_lu);
            for r in 0..m {
                assert!((w_pf[r] - w_lu[r]).abs() < 1e-7, "ftran mismatch at {r}");
            }
            // choose a pivot position with a healthy element
            let l = (0..m)
                .max_by(|&a, &b| w_pf[a].abs().partial_cmp(&w_pf[b].abs()).unwrap())
                .unwrap();
            if w_pf[l].abs() < 1e-6 {
                continue;
            }
            assert!(pf.update(l, &w_pf));
            assert!(lu.update(l, &w_lu));
            cols[l] = e;
            // duals must agree afterwards
            let cb: Vec<f64> = (0..m).map(|_| rng.random_range(-1.0..1.0)).collect();
            let mut y_pf = vec![0.0f64; m];
            let mut y_lu = vec![0.0f64; m];
            pf.btran(&cb, &mut y_pf);
            lu.btran(&cb, &mut y_lu);
            for i in 0..m {
                assert!((y_pf[i] - y_lu[i]).abs() < 1e-6, "btran mismatch at {i}");
            }
        }
        assert_eq!(pf.updates_since_refactor(), lu.updates_since_refactor());
    }

    #[test]
    fn singular_basis_is_rejected_by_both() {
        let m = 4;
        // two identical columns
        let mut cols = random_basis(7, m);
        cols[2] = cols[1].clone();
        let mut pf = ProductFormInverse::default();
        let mut lu = SparseLu::default();
        assert!(!pf.refactor(m, &cols));
        assert!(!lu.refactor(m, &cols));
    }

    #[test]
    fn eta_capacity_forces_refactor() {
        let m = 4;
        let cols = random_basis(11, m);
        let mut lu = SparseLu::default();
        assert!(lu.refactor(m, &cols));
        // dense updates: each eta holds ~m entries; the capacity 4m + 64
        // must trip in bounded time
        let w: Vec<f64> = (0..m).map(|r| 1.0 + r as f64 * 0.1).collect();
        let mut declined = false;
        for _ in 0..200 {
            if !lu.update(0, &w) {
                declined = true;
                break;
            }
        }
        assert!(declined, "eta file must eventually decline updates");
    }
}
