//! **Dantzig–Wolfe decomposition**: a restricted master over block
//! extreme-point columns, with one pricing subproblem per block.
//!
//! A block-angular LP couples a set of **native variables** (priced by an
//! external [`ColumnSource`], e.g. the auction's demand oracle) and `k`
//! **blocks** — each a bounded packing polytope `P_b` over its own local
//! variables, mapped into the coupling rows by a linear *linking* map. The
//! decomposition keeps only the coupling rows in the master and represents
//! each block's contribution as a convex combination of extreme points of
//! `P_b`:
//!
//! * the master holds the coupling rows plus one **convexity row**
//!   `Σ_e λ_{b,e} ≤ 1` per block (the `≤` form is exact because every block
//!   polytope is required to contain the origin and be bounded — packing
//!   blocks always do — so `{Σ λ_e V_e : Σ λ_e ≤ 1} = conv(P_b ∪ {0}) =
//!   P_b`),
//! * each pricing round solves the `k` **subproblems** `max (c_b − πᵀA_b)·y`
//!   over `y ∈ P_b` — independent LPs, run **in parallel** through the
//!   rayon shim, each warm-started from its own previous basis (only the
//!   objective changes between rounds, so the old basis and factorization
//!   are reused verbatim),
//! * a block whose subproblem value exceeds its convexity dual `σ_b` prices
//!   out and contributes a new master column `(A_b V, 1)` with objective
//!   `c_b·V`; the loop ends when no block prices out and the native source
//!   is exhausted — the master optimum then equals the optimum of the full
//!   block-angular LP.
//!
//! Master re-solves are warm-started through [`MasterProblem`]; coupling
//! rows added mid-run ([`DecomposedLp::add_coupling_row`]) are absorbed by
//! the **dual simplex** ([`crate::dual`]) instead of a cold restart. In the
//! auction pipeline ([`MasterMode::DantzigWolfe`] threaded through the
//! core crate) the blocks are the `k` channels: block `j`'s polytope is the
//! channel-`j` fractional interference polytope, the native columns are the
//! bidder bundle columns, and the coupling rows tie per-bidder channel
//! usage to the channel allocations the blocks propose.
//!
//! **Lazy coupling-row activation** ([`DecomposedLp::new_lazy`]). Coupling
//! rows are addressed by **virtual** indices; a virtual row is only
//! *materialized* as a master row once a **native** column references it —
//! until then the row cannot bind (in the auction, a usage row
//! `Σ_{T ∋ j} x_{v,T} − supply ≤ 0` with no demand column is satisfied by
//! every non-negative supply), so withholding it changes nothing. Block
//! extreme-point columns may touch dormant rows; those coefficients are
//! **parked** and installed retroactively when the row activates, through
//! the [`MasterProblem::add_row`] → dual-simplex path, so the master only
//! ever pays for rows in the active support. For the auction's DW master
//! this cuts `n·k + n + k` rows down to roughly the seeded-bundle support —
//! the lever ROADMAP names for closing the decomposition's wall-clock gap.

use crate::column_generation::{ColumnSource, GeneratedColumn, MasterProblem};
use crate::problem::{LinearProgram, Relation, Sense};
use crate::simplex::{solve_with_warm_start, LpSolution, LpStatus, SimplexOptions, WarmStart};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// How a multi-channel relaxation master is solved.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum MasterMode {
    /// One monolithic master LP over all rows (the PR 1/2 path).
    Monolithic,
    /// Dantzig–Wolfe: coupling-row master + per-channel pricing subproblems.
    DantzigWolfe,
}

impl MasterMode {
    /// Short stable name used in bench labels and stats tables.
    pub fn name(self) -> &'static str {
        match self {
            MasterMode::Monolithic => "monolithic",
            MasterMode::DantzigWolfe => "dantzig-wolfe",
        }
    }
}

/// First tag of the block (extreme-point) column range; native columns must
/// stay below [`crate::column_generation::DEAD_COLUMN_TAG_BASE`]. The
/// auction's bundle tags (`bidder << 32 | bundle`) always do. See the tag
/// address-space table on that constant.
pub const BLOCK_COLUMN_TAG_BASE: u64 = 1 << 63;

/// Whether a master column tag belongs to a block extreme point (as opposed
/// to a native column added by the caller's [`ColumnSource`], a dead
/// tombstone, or a row-relief column).
pub fn is_block_tag(tag: u64) -> bool {
    (BLOCK_COLUMN_TAG_BASE..crate::column_generation::ROW_RELIEF_TAG_BASE).contains(&tag)
}

/// Options of the Dantzig–Wolfe loop.
#[derive(Clone, Debug)]
pub struct DantzigWolfeOptions {
    /// Engine for the restricted master re-solves.
    pub master_simplex: SimplexOptions,
    /// Engine for the block subproblems.
    pub subproblem_simplex: SimplexOptions,
    /// Maximum number of master pricing rounds.
    pub max_rounds: usize,
    /// Reduced-cost tolerance for both block and native columns.
    pub tolerance: f64,
    /// Dual-trajectory stabilization (see
    /// [`Stabilization`](crate::column_generation::Stabilization)).
    /// Smoothing here **is** in-out pricing for the degenerate master: the
    /// stability center is the "in" point, the current master duals the
    /// "out" point, and the subproblems price at their convex combination —
    /// while acceptance always tests the candidate's reduced cost at the
    /// **true** duals, and a smoothed round that prices nothing out is
    /// re-priced at the true duals before convergence is declared.
    pub stabilization: crate::column_generation::Stabilization,
}

impl Default for DantzigWolfeOptions {
    fn default() -> Self {
        DantzigWolfeOptions {
            master_simplex: SimplexOptions::default(),
            subproblem_simplex: SimplexOptions::default(),
            max_rounds: 400,
            tolerance: 1e-7,
            stabilization: crate::column_generation::Stabilization::Off,
        }
    }
}

/// One block: a bounded local polytope (an LP whose objective is rewritten
/// every pricing round) plus the linking map into the master's coupling
/// rows.
#[derive(Clone, Debug)]
pub struct Subproblem {
    /// Local rows over local variables; the objective holds the *priced*
    /// costs during a round.
    lp: LinearProgram,
    /// Master-objective contribution per local variable (`c_b`).
    base_objective: Vec<f64>,
    /// Per local variable: its coefficients on master coupling rows
    /// (`A_b` column-wise).
    linking: Vec<Vec<(usize, f64)>>,
    /// Warm-start state across pricing rounds (rows and columns of the
    /// subproblem never change — only its objective — so the previous
    /// optimal basis *and* factorization are reused as-is).
    warm: Option<WarmStart>,
    /// Total simplex pivots across this block's pricing solves.
    pivots: usize,
}

impl Subproblem {
    /// Wraps a local LP (its current objective is taken as the block's
    /// master-objective contribution `c_b`) and the linking map `A_b`.
    ///
    /// The local polytope must be **bounded** and contain the **origin**
    /// (both automatic for packing rows with non-negative right-hand sides
    /// plus per-variable upper bounds) — that is what makes the `≤ 1`
    /// convexity row an exact representation.
    ///
    /// # Panics
    /// Panics when `linking` does not have one entry per local variable or
    /// the local LP is not a maximization.
    pub fn new(local: LinearProgram, linking: Vec<Vec<(usize, f64)>>) -> Self {
        assert_eq!(
            linking.len(),
            local.num_variables(),
            "one linking column per local variable"
        );
        assert_eq!(
            local.sense(),
            Sense::Maximize,
            "block subproblems price in maximization form"
        );
        let base_objective = local.objective().to_vec();
        Subproblem {
            lp: local,
            base_objective,
            linking,
            warm: None,
            pivots: 0,
        }
    }

    /// Number of local variables.
    pub fn num_variables(&self) -> usize {
        self.lp.num_variables()
    }

    /// Solves `max (c_b − πᵀA_b)·y` over the local polytope at the given
    /// master duals, warm-started from the previous round's basis.
    fn price(&mut self, duals: &[f64], options: &SimplexOptions) -> LpSolution {
        for v in 0..self.lp.num_variables() {
            let mut c = self.base_objective[v];
            for &(r, a) in &self.linking[v] {
                c -= duals[r] * a;
            }
            self.lp.set_objective_coefficient(v, c);
        }
        let (solution, state) = solve_with_warm_start(&self.lp, options, self.warm.take());
        self.warm = Some(state);
        self.pivots += solution.iterations;
        solution
    }
}

/// Statistics of a Dantzig–Wolfe solve — the decomposition-level view that
/// the core crate surfaces as part of `RelaxationInfo`.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct DwStats {
    /// Master re-solves (pricing rounds).
    pub master_rounds: usize,
    /// Simplex pivots across every master re-solve.
    pub master_iterations: usize,
    /// Pivots of each master re-solve in order (the warm-start win is the
    /// drop after round 0). Ring-buffered at
    /// [`ROUND_SERIES_CAP`](crate::column_generation::ROUND_SERIES_CAP).
    pub master_per_round: crate::column_generation::RoundSeries,
    /// Columns (block + native) adopted per pricing round (same capping).
    pub columns_per_round: crate::column_generation::RoundSeries,
    /// Rounds in which the blocks / source were actually priced (box-step
    /// shrink re-solves are master-only and not counted).
    pub pricing_rounds: usize,
    /// Rounds where pricing at the stabilized duals found nothing but the
    /// exactness guard (true-dual re-price or box shrink) kept the loop
    /// going. Always 0 with stabilization off.
    pub stabilization_misprices: usize,
    /// Simplex pivots across every block subproblem solve.
    pub subproblem_pivots: usize,
    /// Dual-simplex reoptimization pivots in the master (row additions).
    pub dual_pivots: usize,
    /// Basis refactorizations across master re-solves.
    pub refactorizations: usize,
    /// The stability-forced subset of
    /// [`refactorizations`](Self::refactorizations) (declined basis update
    /// or numerical trouble, as opposed to scheduled hygiene).
    pub forced_refactorizations: usize,
    /// Degenerate pivots across master re-solves.
    pub degenerate_pivots: usize,
    /// Block extreme-point columns adopted by the master.
    pub columns_from_blocks: usize,
    /// Native columns adopted from the external source.
    pub columns_from_source: usize,
    /// Subproblem solves that did not reach proven optimality (counted, not
    /// fatal: the block simply proposes nothing that round).
    pub block_failures: usize,
    /// Coupling rows lazily materialized because a native column referenced
    /// them (0 on the eager path, where every row exists up front).
    pub rows_activated: usize,
    /// Master rows actually materialized at the end of the solve (the lazy
    /// win is this against `coupling + blocks` on the eager path).
    pub master_rows: usize,
    /// FTRANs answered on the hyper-sparse path across master re-solves
    /// (subproblem solves are not counted — they are small and throwaway).
    pub ftran_sparse_hits: usize,
    /// FTRANs that fell back to the dense kernel across master re-solves.
    pub ftran_dense_fallbacks: usize,
    /// Pivot-row BTRANs answered on the hyper-sparse path.
    pub btran_sparse_hits: usize,
    /// Pivot-row BTRANs that fell back to the dense kernel.
    pub btran_dense_fallbacks: usize,
    /// Tracked-solve-weighted mean result density across master re-solves;
    /// **0.0 when nothing was tracked** (the consumer maps that to the 1.0
    /// "no data" convention).
    pub avg_result_density: f64,
}

impl DwStats {
    /// Folds one master solve's hyper-sparse counters into the running
    /// totals (tracked-solve-weighted density merge; exact because every
    /// tracked solve of one master shares the same result length).
    fn absorb_sparsity(&mut self, stats: &crate::simplex::SolveStats) {
        let theirs = (stats.ftran_sparse_hits
            + stats.ftran_dense_fallbacks
            + stats.btran_sparse_hits
            + stats.btran_dense_fallbacks) as f64;
        if theirs > 0.0 {
            let mine = (self.ftran_sparse_hits
                + self.ftran_dense_fallbacks
                + self.btran_sparse_hits
                + self.btran_dense_fallbacks) as f64;
            self.avg_result_density = (self.avg_result_density * mine
                + stats.avg_result_density * theirs)
                / (mine + theirs);
        }
        self.ftran_sparse_hits += stats.ftran_sparse_hits;
        self.ftran_dense_fallbacks += stats.ftran_dense_fallbacks;
        self.btran_sparse_hits += stats.btran_sparse_hits;
        self.btran_dense_fallbacks += stats.btran_dense_fallbacks;
    }

    /// Number of FTRAN/BTRAN solves the sparsity counters tracked.
    pub fn tracked_solves(&self) -> usize {
        self.ftran_sparse_hits
            + self.ftran_dense_fallbacks
            + self.btran_sparse_hits
            + self.btran_dense_fallbacks
    }
}

/// Result of a Dantzig–Wolfe solve.
#[derive(Clone, Debug)]
pub struct DwSolution {
    /// Solution of the final restricted master. `x` is indexed by master
    /// column; use [`DecomposedLp::master`] and [`is_block_tag`] to separate
    /// native from block columns, and [`DecomposedLp::block_solution`] to
    /// recover a block's local variable values.
    pub solution: LpSolution,
    /// Whether the loop stopped because nothing priced out (`true`) or the
    /// round limit was hit.
    pub converged: bool,
    /// Decomposition statistics.
    pub stats: DwStats,
}

/// Error of a Dantzig–Wolfe solve.
#[derive(Clone, Debug)]
pub enum DantzigWolfeError {
    /// A master re-solve exhausted its pivot budget; the partial (feasible
    /// but non-optimal) state is attached.
    MasterIterationLimit {
        /// The interrupted master solution.
        partial: Box<LpSolution>,
        /// Statistics up to (and including) the interrupted solve (boxed:
        /// the per-round vectors make the stats the bulk of the variant).
        stats: Box<DwStats>,
    },
}

impl std::fmt::Display for DantzigWolfeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DantzigWolfeError::MasterIterationLimit { partial, stats } => write!(
                f,
                "Dantzig–Wolfe master hit the simplex iteration limit after {} rounds \
                 ({} pivots in the interrupted solve)",
                stats.master_rounds, partial.iterations
            ),
        }
    }
}

impl std::error::Error for DantzigWolfeError {}

/// A block-angular LP being solved by Dantzig–Wolfe decomposition.
///
/// Coupling rows live in a **virtual** index space (`0..num_virtual_rows`,
/// original rows first, [`add_coupling_row`](Self::add_coupling_row)
/// appends): native columns, block linking maps and the dual vectors handed
/// to pricing sources are all phrased in virtual indices. On the eager path
/// ([`new`](Self::new)) every virtual row is materialized as a master row
/// up front; on the lazy path ([`new_lazy`](Self::new_lazy)) a virtual row
/// materializes only when first referenced by a native column.
#[derive(Clone, Debug)]
pub struct DecomposedLp {
    master: MasterProblem,
    blocks: Vec<Subproblem>,
    /// Number of *original* coupling rows (virtual indices `0..coupling`).
    coupling: usize,
    /// All virtual coupling rows `(relation, rhs)`, original + added.
    virtual_rows: Vec<(Relation, f64)>,
    /// Virtual coupling row → master row (`None` while dormant).
    row_map: Vec<Option<usize>>,
    /// Master row of each block's convexity row.
    convexity_master: Vec<usize>,
    /// Parked coefficients of dormant virtual rows on existing master
    /// columns, installed retroactively when the row activates.
    pending_coeffs: HashMap<usize, Vec<(usize, f64)>>,
    /// Virtual rows materialized on demand (the lazy path's stat).
    rows_activated: usize,
    /// Extreme points behind block columns, keyed by column tag.
    block_points: HashMap<u64, (usize, Vec<f64>)>,
    next_block_tag: u64,
    /// Subproblem pivots spent by [`DecomposedLp::prime_blocks`] since the
    /// last solve — folded into the next solve's stats so priming work is
    /// attributed, not hidden.
    pending_subproblem_pivots: usize,
}

impl DecomposedLp {
    /// Creates the **eager** decomposition: a maximization master over the
    /// given coupling rows, one convexity row (`≤ 1`) per block appended
    /// after them (so master row indices coincide with virtual indices for
    /// the original coupling rows).
    pub fn new(coupling_rows: Vec<(Relation, f64)>, blocks: Vec<Subproblem>) -> Self {
        Self::build(coupling_rows, blocks, false)
    }

    /// Creates the **lazy** decomposition: the master starts with only the
    /// convexity rows, and coupling rows materialize when a native column
    /// first references them (see the [module docs](self)). Semantically
    /// identical to [`new`](Self::new) — only the master's physical row set
    /// (and therefore its size and warm-start work) differs.
    pub fn new_lazy(coupling_rows: Vec<(Relation, f64)>, blocks: Vec<Subproblem>) -> Self {
        Self::build(coupling_rows, blocks, true)
    }

    fn build(coupling_rows: Vec<(Relation, f64)>, blocks: Vec<Subproblem>, lazy: bool) -> Self {
        let coupling = coupling_rows.len();
        let k = blocks.len();
        let (master, row_map, convexity_master) = if lazy {
            let rows: Vec<(Relation, f64)> = (0..k).map(|_| (Relation::Le, 1.0)).collect();
            let master = MasterProblem::new(Sense::Maximize, rows);
            (master, vec![None; coupling], (0..k).collect())
        } else {
            let mut rows = coupling_rows.clone();
            for _ in 0..k {
                rows.push((Relation::Le, 1.0));
            }
            let master = MasterProblem::new(Sense::Maximize, rows);
            (
                master,
                (0..coupling).map(Some).collect(),
                (coupling..coupling + k).collect(),
            )
        };
        DecomposedLp {
            master,
            blocks,
            coupling,
            virtual_rows: coupling_rows,
            row_map,
            convexity_master,
            pending_coeffs: HashMap::new(),
            rows_activated: 0,
            block_points: HashMap::new(),
            next_block_tag: BLOCK_COLUMN_TAG_BASE,
            pending_subproblem_pivots: 0,
        }
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Number of *original* coupling rows (convexity and added rows are not
    /// included).
    pub fn num_coupling_rows(&self) -> usize {
        self.coupling
    }

    /// Number of virtual coupling rows (original + added).
    pub fn num_virtual_rows(&self) -> usize {
        self.virtual_rows.len()
    }

    /// Coupling rows materialized on demand so far (0 on the eager path).
    pub fn rows_activated(&self) -> usize {
        self.rows_activated
    }

    /// **Master** row index of block `b`'s convexity row.
    pub fn convexity_row(&self, b: usize) -> usize {
        self.convexity_master[b]
    }

    /// The restricted master (columns in insertion order; native and block
    /// columns distinguishable by [`is_block_tag`]).
    pub fn master(&self) -> &MasterProblem {
        &self.master
    }

    /// Materializes virtual coupling row `vr` as a master row, installing
    /// any parked block-column coefficients; returns its master index. The
    /// next master solve absorbs the row through the dual-simplex path.
    fn activate_row(&mut self, vr: usize) -> usize {
        if let Some(idx) = self.row_map[vr] {
            return idx;
        }
        let (rel, rhs) = self.virtual_rows[vr];
        let coeffs = self.pending_coeffs.remove(&vr).unwrap_or_default();
        let idx = self.master.add_row(rel, rhs, coeffs);
        self.row_map[vr] = Some(idx);
        self.rows_activated += 1;
        idx
    }

    /// Expands master duals into the virtual coupling-row space (dormant
    /// rows cannot bind, so their dual is exactly 0). This is the vector
    /// pricing sources and block subproblems are given.
    pub fn virtual_duals(&self, master_duals: &[f64]) -> Vec<f64> {
        self.row_map
            .iter()
            .map(|m| m.map(|idx| master_duals[idx]).unwrap_or(0.0))
            .collect()
    }

    /// Adds a **native** column. Coefficients are phrased over **virtual**
    /// coupling rows; any dormant row the column references is activated
    /// first (a native coefficient can make the row binding, so it must be
    /// enforced from now on).
    ///
    /// # Panics
    /// Panics when the column references an unknown virtual row or carries
    /// a non-native tag.
    pub fn add_native_column(&mut self, column: GeneratedColumn) -> bool {
        assert!(
            crate::column_generation::is_native_tag(column.tag),
            "native tags must stay below the reserved solver ranges"
        );
        for &(vr, _) in &column.coeffs {
            assert!(
                vr < self.virtual_rows.len(),
                "native column references unknown virtual coupling row {vr}"
            );
        }
        if self.master.contains_tag(column.tag) {
            return false;
        }
        let coeffs: Vec<(usize, f64)> = column
            .coeffs
            .iter()
            .map(|&(vr, a)| (self.activate_row(vr), a))
            .collect();
        self.master.add_column(GeneratedColumn {
            objective: column.objective,
            coeffs,
            tag: column.tag,
        })
    }

    /// Appends a coupling row mid-run (a new bidder, a new conflict
    /// constraint); the row is materialized immediately and the next master
    /// solve reoptimizes through the dual simplex. `coeffs` are the row's
    /// coefficients on **existing master columns** by column index —
    /// including block columns, whose coefficient is the row's value at
    /// their extreme point. `block_forms` states, for each block, the same
    /// row as a linear form over the block's **local variables** (empty
    /// when the block does not participate): it is appended to the block's
    /// linking map, so every extreme-point column generated *after* this
    /// call automatically carries the row's value at its point, and future
    /// native columns may reference the returned **virtual** row index
    /// directly.
    ///
    /// # Panics
    /// Panics unless `block_forms` has exactly one (possibly empty) entry
    /// per block, each referencing only existing local variables.
    pub fn add_coupling_row(
        &mut self,
        relation: Relation,
        rhs: f64,
        coeffs: Vec<(usize, f64)>,
        block_forms: &[Vec<(usize, f64)>],
    ) -> usize {
        assert_eq!(
            block_forms.len(),
            self.blocks.len(),
            "one linear form per block required (empty when the block does not participate)"
        );
        let vr = self.virtual_rows.len();
        self.virtual_rows.push((relation, rhs));
        let master_row = self.master.add_row(relation, rhs, coeffs);
        self.row_map.push(Some(master_row));
        for (block, form) in self.blocks.iter_mut().zip(block_forms) {
            for &(v, a) in form {
                assert!(
                    v < block.num_variables(),
                    "block form references unknown local variable {v}"
                );
                if a != 0.0 {
                    block.linking[v].push((vr, a));
                }
            }
        }
        vr
    }

    /// Builds and adds the master column for block `b`'s extreme point `x`,
    /// registering the point for later reconstruction. Coefficients on
    /// dormant virtual rows are parked and installed when (if ever) the row
    /// activates — a block column only *supplies* dormant rows, so
    /// withholding the coefficient while the row cannot bind is exact.
    fn push_block_column(&mut self, b: usize, x: &[f64]) -> bool {
        let block = &self.blocks[b];
        let mut acc: HashMap<usize, f64> = HashMap::new();
        let mut objective = 0.0;
        for (v, &xv) in x.iter().enumerate() {
            if xv.abs() <= 1e-12 {
                continue;
            }
            objective += block.base_objective[v] * xv;
            for &(vr, a) in &block.linking[v] {
                *acc.entry(vr).or_insert(0.0) += a * xv;
            }
        }
        let mut virtual_coeffs: Vec<(usize, f64)> =
            acc.into_iter().filter(|&(_, a)| a.abs() > 1e-12).collect();
        virtual_coeffs.sort_by_key(|&(vr, _)| vr);

        let mut coeffs: Vec<(usize, f64)> = Vec::with_capacity(virtual_coeffs.len() + 1);
        let mut parked: Vec<(usize, f64)> = Vec::new();
        for (vr, a) in virtual_coeffs {
            if let Some(idx) = self.row_map[vr] {
                coeffs.push((idx, a));
                continue;
            }
            // A coefficient may only stay parked while the dormant row
            // cannot be violated by it: block contributions must point into
            // the row's slack (supply-side — the auction's usage rows).
            // Anything else activates the row right away, degrading
            // gracefully toward the eager master instead of relaxing the
            // true LP.
            let (rel, rhs) = self.virtual_rows[vr];
            let safe_to_park = match rel {
                Relation::Le => rhs >= 0.0 && a <= 0.0,
                Relation::Ge => rhs <= 0.0 && a >= 0.0,
                Relation::Eq => false,
            };
            if safe_to_park {
                parked.push((vr, a));
            } else {
                coeffs.push((self.activate_row(vr), a));
            }
        }
        let column_index = self.master.num_columns();
        coeffs.push((self.convexity_master[b], 1.0));
        let tag = self.next_block_tag;
        self.next_block_tag += 1;
        let added = self.master.add_column(GeneratedColumn {
            objective,
            coeffs,
            tag,
        });
        if added {
            self.block_points.insert(tag, (b, x.to_vec()));
            for (vr, a) in parked {
                self.pending_coeffs
                    .entry(vr)
                    .or_default()
                    .push((column_index, a));
            }
        }
        added
    }

    /// Recovers block `b`'s local variable values from a master solution:
    /// `y_b = Σ_e λ_{b,e} · V_{b,e}`.
    pub fn block_solution(&self, b: usize, solution: &LpSolution) -> Vec<f64> {
        let mut y = vec![0.0f64; self.blocks[b].num_variables()];
        for (idx, col) in self.master.columns().iter().enumerate() {
            let Some((block, point)) = self.block_points.get(&col.tag) else {
                continue;
            };
            if *block != b {
                continue;
            }
            let lambda = solution.x.get(idx).copied().unwrap_or(0.0);
            if lambda > 1e-12 {
                for (yi, &vi) in y.iter_mut().zip(point.iter()) {
                    *yi += lambda * vi;
                }
            }
        }
        y
    }

    /// Primes every block with one extreme point priced at the given
    /// synthetic duals (indexed by **virtual** coupling row; no
    /// reduced-cost test — every proposal is adopted). Called before the
    /// first master solve, this hands the master an initial supply column
    /// per block, which saves the early rounds from re-discovering the
    /// block polytopes one pivot walk at a time; the auction path primes at
    /// unit usage prices, i.e. each channel's maximal fractional
    /// allocation. Returns how many columns were added.
    pub fn prime_blocks(&mut self, duals: &[f64], options: &DantzigWolfeOptions) -> usize {
        let pricings = self.price_blocks(duals, &options.subproblem_simplex);
        self.pending_subproblem_pivots += pricings.iter().map(|p| p.iterations).sum::<usize>();
        let mut added = 0usize;
        for (b, priced) in pricings.iter().enumerate() {
            if priced.status == LpStatus::Optimal
                && priced.x.iter().any(|&v| v.abs() > 1e-12)
                && self.push_block_column(b, &priced.x)
            {
                added += 1;
            }
        }
        added
    }

    /// Solves all block subproblems at the given duals, in parallel through
    /// the rayon shim.
    fn price_blocks(&mut self, duals: &[f64], options: &SimplexOptions) -> Vec<LpSolution> {
        use rayon::prelude::*;
        // Each block owns its warm-start state, so the blocks are handed
        // out behind per-block mutexes (each lock is taken exactly once —
        // the mutex only satisfies the shim's `Fn` bound, it never
        // contends).
        let cells: Vec<std::sync::Mutex<&mut Subproblem>> =
            self.blocks.iter_mut().map(std::sync::Mutex::new).collect();
        (0..cells.len())
            .into_par_iter()
            .map(|b| {
                let mut block = cells[b].lock().expect("block pricing panicked");
                block.price(duals, options)
            })
            .collect()
    }

    /// One block-and-source pricing pass. Oracles (block subproblems and
    /// the native source) see `pricing_duals` — the true virtual duals, or
    /// the smoothed "in-out" point under stabilization — while
    /// **acceptance** always tests the candidate's reduced cost at the
    /// true duals (`true_vduals` / the true convexity dual `σ_b`), so a
    /// stabilized round can only add genuinely improving columns. Returns
    /// how many columns the master adopted.
    #[allow(clippy::too_many_arguments)]
    fn price_round(
        &mut self,
        pricing_duals: &[f64],
        true_vduals: &[f64],
        master_duals: &[f64],
        smoothed: bool,
        source: &mut dyn ColumnSource,
        options: &DantzigWolfeOptions,
        stats: &mut DwStats,
    ) -> usize {
        let pricings = self.price_blocks(pricing_duals, &options.subproblem_simplex);
        let mut added = 0usize;
        for (b, priced) in pricings.iter().enumerate() {
            stats.subproblem_pivots += priced.iterations;
            if priced.status != LpStatus::Optimal {
                // An unbounded/limited block proposes nothing this
                // round; blocks are required to be bounded, so this is
                // a caller bug surfaced as a counter, not a panic.
                stats.block_failures += 1;
                continue;
            }
            let sigma = master_duals[self.convexity_master[b]];
            // On the smoothed path the subproblem's objective was priced at
            // the in-out point; re-price the returned extreme point at the
            // true duals before accepting it.
            let priced_objective = if smoothed {
                let block = &self.blocks[b];
                priced
                    .x
                    .iter()
                    .enumerate()
                    .filter(|&(_, &xv)| xv.abs() > 1e-12)
                    .map(|(v, &xv)| {
                        let mut c = block.base_objective[v];
                        for &(vr, a) in &block.linking[v] {
                            c -= true_vduals[vr] * a;
                        }
                        c * xv
                    })
                    .sum()
            } else {
                priced.objective
            };
            if priced_objective > sigma + options.tolerance && self.push_block_column(b, &priced.x)
            {
                added += 1;
                stats.columns_from_blocks += 1;
            }
        }
        for column in source.generate(pricing_duals) {
            let rc = column.reduced_cost(true_vduals);
            if rc > options.tolerance && self.add_native_column(column) {
                added += 1;
                stats.columns_from_source += 1;
            }
        }
        added
    }

    /// Runs the Dantzig–Wolfe loop: re-solve the master (warm-started;
    /// lazily activated rows are absorbed through the dual-simplex path),
    /// price every block subproblem **in parallel** at the virtual-space
    /// duals, offer the native source the same duals, and repeat until no
    /// block prices out and the source adds nothing.
    ///
    /// Every round already **batches** all blocks' proposals into a single
    /// warm master re-solve (there is exactly one `solve_warm` per round,
    /// never one per block); under
    /// [`DantzigWolfeOptions::stabilization`] the subproblems additionally
    /// price at a damped dual trajectory (in-out pricing / soft dual
    /// boxes) with the same exactness guard as the monolithic loop.
    ///
    /// # Errors
    /// Returns [`DantzigWolfeError::MasterIterationLimit`] when a master
    /// re-solve exhausts its pivot budget.
    pub fn solve(
        &mut self,
        source: &mut dyn ColumnSource,
        options: &DantzigWolfeOptions,
    ) -> Result<DwSolution, DantzigWolfeError> {
        use crate::column_generation::{BoxStabilizer, DualSmoother, Stabilization};
        let rows_activated_before = self.rows_activated;
        let mut stats = DwStats {
            subproblem_pivots: std::mem::take(&mut self.pending_subproblem_pivots),
            ..Default::default()
        };
        let mut smoother = match options.stabilization {
            Stabilization::Smoothing { alpha } => Some(DualSmoother::new(alpha)),
            _ => None,
        };
        let mut boxer: Option<BoxStabilizer> = None;
        // `Ok((solution, converged))` breaks the loop; the box (if any) is
        // retired on the single exit path below so the master the caller
        // keeps is unstabilized.
        let outcome = loop {
            let solution = self.master.solve_warm(&options.master_simplex);
            stats.master_rounds += 1;
            stats.master_iterations += solution.iterations;
            stats.master_per_round.push(solution.iterations);
            stats.refactorizations += solution.stats.refactorizations;
            stats.forced_refactorizations += solution.stats.forced_refactorizations;
            stats.degenerate_pivots += solution.stats.degenerate_pivots;
            stats.dual_pivots += solution.stats.dual_pivots;
            stats.absorb_sparsity(&solution.stats);
            stats.rows_activated = self.rows_activated - rows_activated_before;
            stats.master_rows = self.master.num_rows();
            if solution.status == LpStatus::IterationLimit {
                break Err(solution);
            }
            if solution.status != LpStatus::Optimal || stats.master_rounds > options.max_rounds {
                break Ok((solution, false));
            }
            // Install the soft dual box once the master has columns to
            // price against (an empty master's duals carry no trajectory).
            if let Stabilization::BoxStep { penalty, width } = options.stabilization {
                if boxer.is_none() && self.master.num_columns() > 0 {
                    boxer = Some(BoxStabilizer::install(
                        &mut self.master,
                        &solution.duals,
                        penalty,
                        width,
                    ));
                }
            }

            let vduals = self.virtual_duals(&solution.duals);
            let in_out = smoother.as_mut().and_then(|s| s.advance(&vduals));
            stats.pricing_rounds += 1;
            let mut added = match &in_out {
                Some(point) => self.price_round(
                    point,
                    &vduals,
                    &solution.duals,
                    true,
                    source,
                    options,
                    &mut stats,
                ),
                None => self.price_round(
                    &vduals,
                    &vduals,
                    &solution.duals,
                    false,
                    source,
                    options,
                    &mut stats,
                ),
            };
            if added == 0 && in_out.is_some() {
                // Exactness guard: nothing priced out at the in-out point,
                // which proves nothing about the true duals.
                added = self.price_round(
                    &vduals,
                    &vduals,
                    &solution.duals,
                    false,
                    source,
                    options,
                    &mut stats,
                );
                if added > 0 {
                    stats.stabilization_misprices += 1;
                    if let Some(s) = &mut smoother {
                        s.reset_to(&vduals);
                    }
                }
            }
            stats.columns_per_round.push(added);
            stats.rows_activated = self.rows_activated - rows_activated_before;
            stats.master_rows = self.master.num_rows();

            if added == 0 {
                if let Some(b) = &mut boxer {
                    if b.is_active() && !b.clean(&solution, options.tolerance.max(1e-9)) {
                        // The duals only certify optimality once the box
                        // machinery is inactive; shrink (retiring after
                        // MAX_BOX_SHRINKS) and re-solve.
                        stats.stabilization_misprices += 1;
                        b.shrink(&mut self.master, &solution.duals);
                        continue;
                    }
                }
                break Ok((solution, true));
            }
        };
        if let Some(b) = &mut boxer {
            b.retire(&mut self.master);
        }
        stats.master_rows = self.master.num_rows();
        match outcome {
            Ok((solution, converged)) => Ok(DwSolution {
                solution,
                converged,
                stats,
            }),
            Err(partial) => Err(DantzigWolfeError::MasterIterationLimit {
                partial: Box::new(partial),
                stats: Box::new(stats),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basis::BasisKind;
    use crate::dense;
    use crate::pricing::PricingRule;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn no_source() -> impl FnMut(&[f64]) -> Vec<GeneratedColumn> {
        |_: &[f64]| Vec::new()
    }

    /// A random block-angular packing LP:
    /// * `coupling` shared `≤` rows,
    /// * `k` blocks with `vars` local variables each, local packing rows and
    ///   per-variable bounds, and non-negative linking coefficients.
    ///
    /// Returns the decomposition and the equivalent monolithic LP (local
    /// rows inlined) for the dense oracle.
    fn random_block_angular(
        seed: u64,
        coupling: usize,
        k: usize,
        vars: usize,
    ) -> (DecomposedLp, LinearProgram) {
        random_block_angular_mode(seed, coupling, k, vars, false)
    }

    fn random_block_angular_mode(
        seed: u64,
        coupling: usize,
        k: usize,
        vars: usize,
        lazy: bool,
    ) -> (DecomposedLp, LinearProgram) {
        let mut rng = StdRng::seed_from_u64(seed);
        let coupling_rows: Vec<(Relation, f64)> = (0..coupling)
            .map(|_| (Relation::Le, rng.random_range(1.0..6.0)))
            .collect();

        let mut monolithic = LinearProgram::new(Sense::Maximize);
        let mut mono_coupling: Vec<Vec<(usize, f64)>> = vec![Vec::new(); coupling];
        let mut blocks = Vec::new();
        for _ in 0..k {
            let mut local = LinearProgram::new(Sense::Maximize);
            let mut linking: Vec<Vec<(usize, f64)>> = Vec::new();
            let mut mono_vars = Vec::new();
            for _ in 0..vars {
                let c = rng.random_range(0.5..5.0);
                local.add_variable(c);
                mono_vars.push(monolithic.add_variable(c));
            }
            // local packing rows
            for _ in 0..2 {
                let mut coeffs: Vec<(usize, f64)> = Vec::new();
                for v in 0..vars {
                    if rng.random_range(0.0..1.0) < 0.7 {
                        coeffs.push((v, rng.random_range(0.2..2.0)));
                    }
                }
                let rhs = rng.random_range(1.0..4.0);
                monolithic.add_constraint(
                    coeffs.iter().map(|&(v, a)| (mono_vars[v], a)).collect(),
                    Relation::Le,
                    rhs,
                );
                local.add_constraint(coeffs, Relation::Le, rhs);
            }
            // bounds keep the block polytope bounded
            for (v, &mono_var) in mono_vars.iter().enumerate() {
                let ub = rng.random_range(0.5..2.0);
                local.add_constraint(vec![(v, 1.0)], Relation::Le, ub);
                monolithic.add_constraint(vec![(mono_var, 1.0)], Relation::Le, ub);
            }
            // linking into coupling rows
            for &mono_var in mono_vars.iter() {
                let mut links = Vec::new();
                for (r, row) in mono_coupling.iter_mut().enumerate() {
                    if rng.random_range(0.0..1.0) < 0.5 {
                        let a = rng.random_range(0.1..1.5);
                        links.push((r, a));
                        row.push((mono_var, a));
                    }
                }
                linking.push(links);
            }
            blocks.push(Subproblem::new(local, linking));
        }
        for (r, coeffs) in mono_coupling.into_iter().enumerate() {
            let (rel, rhs) = coupling_rows[r];
            monolithic.add_constraint(coeffs, rel, rhs);
        }
        let dw = if lazy {
            DecomposedLp::new_lazy(coupling_rows, blocks)
        } else {
            DecomposedLp::new(coupling_rows, blocks)
        };
        (dw, monolithic)
    }

    #[test]
    fn two_block_decomposition_matches_the_monolithic_optimum() {
        // blocks: y0 ≤ 2 (value 3/unit), y1 ≤ 3 (value 2/unit);
        // coupling: y0 + y1 ≤ 4 → optimum 3·2 + 2·2 = 10.
        let mut b0 = LinearProgram::new(Sense::Maximize);
        let v0 = b0.add_variable(3.0);
        b0.add_constraint(vec![(v0, 1.0)], Relation::Le, 2.0);
        let mut b1 = LinearProgram::new(Sense::Maximize);
        let v1 = b1.add_variable(2.0);
        b1.add_constraint(vec![(v1, 1.0)], Relation::Le, 3.0);
        let mut dw = DecomposedLp::new(
            vec![(Relation::Le, 4.0)],
            vec![
                Subproblem::new(b0, vec![vec![(0, 1.0)]]),
                Subproblem::new(b1, vec![vec![(0, 1.0)]]),
            ],
        );
        let mut source = no_source();
        let result = dw
            .solve(&mut source, &DantzigWolfeOptions::default())
            .expect("dw failed");
        assert!(result.converged);
        assert_eq!(result.solution.status, LpStatus::Optimal);
        assert!((result.solution.objective - 10.0).abs() < 1e-6);
        assert!(result.stats.columns_from_blocks >= 2);
        // block reconstruction: y0 = 2, y1 = 2
        let y0 = dw.block_solution(0, &result.solution);
        let y1 = dw.block_solution(1, &result.solution);
        assert!((y0[0] - 2.0).abs() < 1e-6, "y0 = {}", y0[0]);
        assert!((y1[0] - 2.0).abs() < 1e-6, "y1 = {}", y1[0]);
    }

    #[test]
    fn native_columns_and_blocks_compose() {
        // A native column consuming the coupling capacity competes with the
        // blocks: max 5·x + 3·y, x + y ≤ 2, y ∈ {y ≤ 3} → x = 2 wins.
        let mut b0 = LinearProgram::new(Sense::Maximize);
        let v = b0.add_variable(3.0);
        b0.add_constraint(vec![(v, 1.0)], Relation::Le, 3.0);
        let mut dw = DecomposedLp::new(
            vec![(Relation::Le, 2.0)],
            vec![Subproblem::new(b0, vec![vec![(0, 1.0)]])],
        );
        let mut served = false;
        let mut source = move |duals: &[f64]| {
            if served {
                return Vec::new();
            }
            served = true;
            let _ = duals;
            vec![GeneratedColumn {
                objective: 5.0,
                coeffs: vec![(0, 1.0)],
                tag: 1,
            }]
        };
        let result = dw
            .solve(&mut source, &DantzigWolfeOptions::default())
            .expect("dw failed");
        assert!(result.converged);
        assert!((result.solution.objective - 10.0).abs() < 1e-6);
        assert_eq!(result.stats.columns_from_source, 1);
    }

    #[test]
    fn random_block_angular_lps_match_dense_across_engines() {
        for seed in 0..8u64 {
            let (dw_template, monolithic) = random_block_angular(100 + seed, 3, 3, 3);
            let reference = dense::solve(&monolithic, &SimplexOptions::default());
            assert_eq!(reference.status, LpStatus::Optimal);
            for (pricing, basis) in [
                (PricingRule::Dantzig, BasisKind::ProductForm),
                (PricingRule::Devex, BasisKind::SparseLu),
                (PricingRule::Bland, BasisKind::SparseLu),
            ] {
                let mut dw = dw_template.clone();
                let options = DantzigWolfeOptions {
                    master_simplex: SimplexOptions::default().with_engine(pricing, basis),
                    subproblem_simplex: SimplexOptions::default().with_engine(pricing, basis),
                    ..Default::default()
                };
                let mut source = no_source();
                let result = dw.solve(&mut source, &options).expect("dw failed");
                assert!(result.converged, "seed {seed} {pricing:?}/{basis:?}");
                assert!(
                    (result.solution.objective - reference.objective).abs()
                        < 1e-5 * (1.0 + reference.objective.abs()),
                    "seed {seed} {pricing:?}/{basis:?}: dw {} vs dense {}",
                    result.solution.objective,
                    reference.objective
                );
                assert_eq!(result.stats.block_failures, 0);
                // reconstructed block solutions satisfy the local rows
                for b in 0..dw.num_blocks() {
                    let y = dw.block_solution(b, &result.solution);
                    assert!(y.iter().all(|&v| v >= -1e-7));
                }
            }
        }
    }

    #[test]
    fn coupling_row_added_mid_run_reoptimizes_dually() {
        let (mut dw, _) = random_block_angular(7, 2, 2, 3);
        let mut source = no_source();
        let options = DantzigWolfeOptions::default();
        let first = dw.solve(&mut source, &options).expect("dw failed");
        assert!(first.converged);

        // Tighten: cap block 0's total variable mass at 0.5. The row is
        // stated twice — on existing master columns (their value at the
        // extreme point) and as a per-block linear form so every *future*
        // extreme-point column of block 0 carries it too.
        let block0_vars = dw.blocks[0].num_variables();
        let coeffs: Vec<(usize, f64)> = dw
            .master()
            .columns()
            .iter()
            .enumerate()
            .filter_map(|(idx, c)| {
                let (b, point) = dw.block_points.get(&c.tag)?;
                (*b == 0).then(|| (idx, point.iter().sum::<f64>()))
            })
            .filter(|&(_, a)| a != 0.0)
            .collect();
        let mut block_forms = vec![Vec::new(); dw.num_blocks()];
        block_forms[0] = (0..block0_vars).map(|v| (v, 1.0)).collect();
        let cap = 0.5;
        dw.add_coupling_row(Relation::Le, cap, coeffs, &block_forms);
        let second = dw.solve(&mut source, &options).expect("dw failed");
        assert_eq!(second.solution.status, LpStatus::Optimal);
        assert!(
            second.solution.objective <= first.solution.objective + 1e-7,
            "tightening cannot improve the optimum"
        );
        assert!(
            second.stats.dual_pivots > 0,
            "the added row must be absorbed by the dual simplex"
        );
        // The cap binds the *reconstructed* block solution — including any
        // extreme-point columns generated after the row was added, which
        // must have carried the row's value through the block form.
        let mass: f64 = dw.block_solution(0, &second.solution).iter().sum();
        assert!(
            mass <= cap + 1e-7,
            "block 0 mass {mass} violates the added cap {cap}"
        );
    }

    /// The lazy master must reach the same optimum as the eager one on
    /// generic block-angular LPs — here the coupling rows carry demand-side
    /// block coefficients, so parking is unsafe and lazy mode degrades
    /// gracefully by activating rows as block columns reference them.
    #[test]
    fn lazy_decomposition_matches_eager_and_dense() {
        for seed in 0..6u64 {
            let (mut eager, monolithic) = random_block_angular_mode(300 + seed, 3, 3, 3, false);
            let (mut lazy, _) = random_block_angular_mode(300 + seed, 3, 3, 3, true);
            let reference = dense::solve(&monolithic, &SimplexOptions::default());
            assert_eq!(reference.status, LpStatus::Optimal);
            let options = DantzigWolfeOptions::default();
            let mut s0 = no_source();
            let e = eager.solve(&mut s0, &options).expect("eager failed");
            let mut s1 = no_source();
            let l = lazy.solve(&mut s1, &options).expect("lazy failed");
            assert!(e.converged && l.converged, "seed {seed}");
            let scale = 1.0 + reference.objective.abs();
            assert!(
                (e.solution.objective - reference.objective).abs() < 1e-5 * scale,
                "seed {seed}: eager {} vs dense {}",
                e.solution.objective,
                reference.objective
            );
            assert!(
                (l.solution.objective - reference.objective).abs() < 1e-5 * scale,
                "seed {seed}: lazy {} vs dense {}",
                l.solution.objective,
                reference.objective
            );
            assert_eq!(e.stats.rows_activated, 0, "eager never activates lazily");
        }
    }

    /// On the auction's supply-side shape (usage rows `demand − supply ≤ 0`)
    /// the lazy master materializes only rows referenced by native demand
    /// columns — the whole point of the refactor.
    #[test]
    fn lazy_supply_side_master_stays_at_active_support_size() {
        // 2 blocks × 3 local variables; virtual usage row (b, u) = b·3 + u
        // with the block supplying it at −1 (the auction's linking shape).
        let build = |lazy: bool| -> DecomposedLp {
            let mut blocks = Vec::new();
            for b in 0..2usize {
                let mut local = LinearProgram::new(Sense::Maximize);
                for _ in 0..3 {
                    local.add_variable(0.0);
                }
                for u in 0..3 {
                    local.add_constraint(vec![(u, 1.0)], Relation::Le, 1.0);
                }
                let linking = (0..3).map(|u| vec![(b * 3 + u, -1.0)]).collect();
                blocks.push(Subproblem::new(local, linking));
            }
            let coupling: Vec<(Relation, f64)> = (0..6).map(|_| (Relation::Le, 0.0)).collect();
            if lazy {
                DecomposedLp::new_lazy(coupling, blocks)
            } else {
                DecomposedLp::new(coupling, blocks)
            }
        };
        let options = DantzigWolfeOptions::default();
        let mut results = Vec::new();
        for lazy in [false, true] {
            let mut dw = build(lazy);
            // one native demand column on usage row 0 (block 0's supply)
            assert!(dw.add_native_column(GeneratedColumn {
                objective: 5.0,
                coeffs: vec![(0, 1.0)],
                tag: 1,
            }));
            let ones = vec![1.0f64; dw.num_virtual_rows() + dw.num_blocks()];
            dw.prime_blocks(&ones, &options);
            let mut source = no_source();
            let result = dw.solve(&mut source, &options).expect("dw failed");
            assert!(result.converged);
            assert!(
                (result.solution.objective - 5.0).abs() < 1e-6,
                "lazy={lazy}: {}",
                result.solution.objective
            );
            results.push((dw.master().num_rows(), dw.rows_activated()));
        }
        let (eager_rows, _) = results[0];
        let (lazy_rows, lazy_activated) = results[1];
        assert_eq!(eager_rows, 6 + 2, "eager: all usage rows + convexity");
        assert_eq!(
            lazy_rows, 3,
            "lazy: 2 convexity rows + the single referenced usage row"
        );
        assert_eq!(lazy_activated, 1);
    }

    /// Lazy activation mid-run composes with `add_coupling_row`: explicitly
    /// added rows are materialized immediately while usage rows keep
    /// activating on demand, and block forms keep binding future columns.
    #[test]
    fn lazy_mode_composes_with_added_coupling_rows() {
        let (mut dw, _) = random_block_angular_mode(17, 2, 2, 3, true);
        let mut source = no_source();
        let options = DantzigWolfeOptions::default();
        let first = dw.solve(&mut source, &options).expect("dw failed");
        assert!(first.converged);

        let block0_vars = dw.blocks[0].num_variables();
        let coeffs: Vec<(usize, f64)> = dw
            .master()
            .columns()
            .iter()
            .enumerate()
            .filter_map(|(idx, c)| {
                let (b, point) = dw.block_points.get(&c.tag)?;
                (*b == 0).then(|| (idx, point.iter().sum::<f64>()))
            })
            .filter(|&(_, a)| a != 0.0)
            .collect();
        let mut block_forms = vec![Vec::new(); dw.num_blocks()];
        block_forms[0] = (0..block0_vars).map(|v| (v, 1.0)).collect();
        let cap = 0.4;
        dw.add_coupling_row(Relation::Le, cap, coeffs, &block_forms);
        let second = dw.solve(&mut source, &options).expect("dw failed");
        assert_eq!(second.solution.status, LpStatus::Optimal);
        assert!(second.solution.objective <= first.solution.objective + 1e-7);
        let mass: f64 = dw.block_solution(0, &second.solution).iter().sum();
        assert!(
            mass <= cap + 1e-7,
            "block 0 mass {mass} violates the added cap {cap}"
        );
    }

    #[test]
    fn subproblem_warm_starts_pay_off_across_rounds() {
        let (mut dw, monolithic) = random_block_angular(42, 4, 4, 6);
        let reference = dense::solve(&monolithic, &SimplexOptions::default());
        let mut source = no_source();
        let result = dw
            .solve(&mut source, &DantzigWolfeOptions::default())
            .expect("dw failed");
        assert!(result.converged);
        assert!(
            (result.solution.objective - reference.objective).abs()
                < 1e-5 * (1.0 + reference.objective.abs())
        );
        assert!(result.stats.master_rounds >= 2);
        assert!(result.stats.subproblem_pivots > 0);
    }
}
