//! A self-contained linear-programming toolkit for the spectrum-auction
//! reproduction.
//!
//! The SPAA 2011 paper solves its LP relaxations (which have exponentially
//! many variables) with the ellipsoid method and demand-oracle separation.
//! Mature LP solver bindings are not available in this environment, so this
//! crate implements the required machinery from scratch:
//!
//! * [`problem::LinearProgram`] — a sparse LP model (maximize or minimize,
//!   `≤` / `≥` / `=` constraints, non-negative variables) with a
//!   compressed-sparse-column view ([`problem::CscMatrix`]) of the
//!   constraint matrix,
//! * [`simplex`] — a sparse **revised** two-phase primal simplex engine
//!   with two pluggable seams: the pricing rule ([`pricing`]: Dantzig,
//!   Bland, candidate-list Devex, or exact-reference primal steepest
//!   edge) and the basis factorization ([`basis`]: dense product-form
//!   inverse; sparse LU with a product-form eta file; or Markowitz-ordered
//!   LU with true Forrest–Tomlin U-updates, all with periodic
//!   refactorization). The
//!   engine reports dual values, which the auction code turns into
//!   bidder-specific channel prices (Section 2.2 of the paper); the
//!   original dense tableau solver is kept as the reference oracle in
//!   [`dense`],
//! * [`column_generation`] — a restricted-master / pricing loop that replaces
//!   the ellipsoid method: the pricing oracle sees the current duals and
//!   returns improving columns (in the auction: demand-oracle queries at the
//!   prices `p_{v,j} = Σ_{u : v ∈ Γπ(u)} y_{u,j}`), which is the textbook
//!   dual view of the paper's separation-based approach. Master re-solves
//!   are **warm-started** from the previous round's optimal basis, and
//!   families of related masters (one per channel) can share a
//!   [`column_generation::BatchedMasters`] context that pools generated
//!   columns and seeds sibling warm starts,
//! * [`dual`] — a **dual simplex** on the same basis-factorization seam:
//!   after rows are appended to a solved master
//!   ([`column_generation::MasterProblem::add_row`]) the old basis extended
//!   by the new rows' logicals is dual feasible, and
//!   [`dual::reoptimize_after_row_additions`] repairs primal feasibility
//!   from there instead of re-solving from scratch,
//! * [`decomposition`] — **Dantzig–Wolfe**: a restricted master over block
//!   extreme-point columns with one pricing subproblem per block (in the
//!   auction: one per channel), priced in parallel and warm-started across
//!   rounds; [`decomposition::MasterMode`] is the pipeline-level switch
//!   between the monolithic and decomposed relaxation masters.
//!
//! All of the paper's relaxations are *packing* LPs (non-negative data,
//! `≤` constraints), for which the all-slack basis is feasible and phase 1
//! is skipped automatically; the general two-phase path exists for the
//! Lavi–Swamy decomposition LP which contains equality constraints.
//!
//! # Solve-pipeline data flow (hyper-sparse kernels)
//!
//! Per pivot, the revised engines move two vectors through the basis
//! factorization, and both stay **indexed** end to end when the inputs
//! allow it:
//!
//! 1. **FTRAN** — the entering column `Aₑ` (a handful of non-zeros in the
//!    packing shape) is solved as `w = B⁻¹Aₑ` by Gilbert–Peierls: a DFS
//!    over the triangular factors' graphs computes the symbolic reachable
//!    set of the RHS support first, then numeric elimination touches only
//!    those rows. The result arrives in a [`basis::SparseVector`] — dense
//!    value array plus a non-zero pattern — and flows *as a sparse
//!    vector* into the ratio test ([`simplex`]), the basis update
//!    (Forrest–Tomlin spike / eta construction over the pattern only),
//!    and the steepest-edge / Devex reference updates ([`pricing`]).
//! 2. **BTRAN** — the pivot row `ρ = eₗᵀB⁻¹` is solved the same way
//!    through the transposed factors and drives the pricing-weight and
//!    incremental dual updates; the [`dual`] simplex scatters it against
//!    a row-major matrix view to form its ratio-test row sparsely.
//!
//! When the DFS discovers the reachable set has grown past ~`m/4` the
//! kernel **densifies**: it falls back to the dense triangular solve and
//! the `SparseVector` degrades gracefully to a dense result (its pattern
//! is dropped, consumers iterate the full length). Every indexed solve is
//! counted — [`SolveStats`] reports sparse hits, dense fallbacks, and the
//! average result density, and the counters propagate through
//! [`column_generation`] / [`decomposition`] into the auction-level
//! summaries. `SimplexOptions::hyper_sparse` (default `true`) is the
//! A/B lever: disabling it routes every solve through the legacy dense
//! kernels, which the equivalence tests use to prove the indexed paths
//! change timings, never results.
//!
//! The ratio tests are **two-pass Harris** tests (primal in [`simplex`],
//! dual in [`dual`]): the first pass relaxes the bound by a feasibility
//! tolerance to find the best attainable step, the second picks the
//! largest-magnitude eligible pivot within that step, and a relative
//! pivot floor (`10⁻⁷ · max |wᵣ|`) rejects numerically tiny pivots by
//! forcing an early refactorization instead of pivoting on noise.

#![warn(missing_docs)]

pub mod basis;
pub mod column_generation;
pub mod decomposition;
pub mod dense;
pub mod dual;
pub mod pricing;
pub mod problem;
pub mod simplex;

pub use basis::{
    BasisFactorization, BasisKind, ForrestTomlinLu, ProductFormInverse, SparseLu, SparseVector,
    SparsityStats,
};
pub use column_generation::{
    is_native_tag, is_relief_tag, is_stabilization_tag, BatchedMasters, BatchedResult,
    ChannelRunStats, ColumnGeneration, ColumnGenerationError, ColumnGenerationResult, ColumnPool,
    ColumnSource, CompactionReport, GeneratedColumn, MasterProblem, PooledColumn, RoundSeries,
    Stabilization, DEAD_COLUMN_TAG_BASE, DEFAULT_POOL_CAPACITY, MAX_BOX_SHRINKS, ROUND_SERIES_CAP,
    ROW_RELIEF_TAG_BASE, STABILIZATION_TAG_BASE,
};
pub use decomposition::{
    is_block_tag, DantzigWolfeError, DantzigWolfeOptions, DecomposedLp, DwSolution, DwStats,
    MasterMode, Subproblem,
};
pub use dual::{reoptimize_after_row_additions, DualReoptimization};
pub use pricing::{
    BlandPricing, DantzigPricing, DevexPricing, Pricing, PricingRule, SteepestEdgePricing,
};
pub use problem::{Compaction, Constraint, CscMatrix, LinearProgram, Relation, RowState, Sense};
pub use simplex::{
    solve, solve_with_warm_start, BasisVar, LpSolution, LpStatus, SimplexOptions, SolveStats,
    WarmStart,
};
