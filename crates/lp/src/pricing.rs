//! Pluggable pricing rules for the revised simplex.
//!
//! Pricing decides which nonbasic column enters the basis each pivot. The
//! seed engine hard-wired Dantzig's rule (full scan, most-positive reduced
//! cost) with a Bland fallback; this module turns the decision into the
//! [`Pricing`] trait with three implementations selected by
//! [`PricingRule`] in [`crate::simplex::SimplexOptions`]:
//!
//! * [`DantzigPricing`] — full scan, most-positive reduced cost. Simple and
//!   effective on small LPs; `O(nnz(A))` per iteration.
//! * [`BlandPricing`] — first improving index. Slow but cycling-proof; also
//!   what every rule degrades to when the simplex core detects stalling.
//! * [`DevexPricing`] — Devex reference weights with a **candidate list**
//!   (partial pricing): a rotating window of columns is scanned to keep a
//!   short list of improving candidates, the entering column maximizes
//!   `rc² / weight`, and the weights are updated from the pivot row after
//!   every pivot. Optimality is still exact: the rule only reports "no
//!   entering column" after a full wrap over every column found nothing
//!   improving.
//!
//! The simplex core owns the reduced-cost computation and hands it to the
//! rule as a closure, so rules never see the basis representation — that is
//! the [`crate::basis`] seam's job.

use serde::{Deserialize, Serialize};

/// Selects the pricing rule used by the revised simplex.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum PricingRule {
    /// Full-scan most-positive reduced cost.
    Dantzig,
    /// First improving index (terminating, used as the stall fallback).
    Bland,
    /// Devex reference weights with candidate-list partial pricing.
    Devex,
}

impl PricingRule {
    /// Short stable name used in bench labels and stats tables.
    pub fn name(self) -> &'static str {
        match self {
            PricingRule::Dantzig => "dantzig",
            PricingRule::Bland => "bland",
            PricingRule::Devex => "devex",
        }
    }
}

/// A pricing rule: selects the entering column and observes pivots.
///
/// `eligible(j)` is `true` for nonbasic columns the current phase allows to
/// enter; `rc(j)` is the reduced cost of column `j` under the current duals
/// (maximization convention: improving means `rc > tol`). Implementations
/// must return `None` **only** when no eligible column is improving — the
/// simplex core takes `None` as proof of optimality for the current phase.
pub trait Pricing: std::fmt::Debug {
    /// Resets per-solve state for a problem with `n_total` columns.
    fn reset(&mut self, n_total: usize);

    /// Chooses the entering column, or `None` when provably optimal.
    fn select_entering(
        &mut self,
        n_total: usize,
        tol: f64,
        eligible: &dyn Fn(usize) -> bool,
        rc: &dyn Fn(usize) -> f64,
    ) -> Option<usize>;

    /// Whether [`notify_pivot`](Self::notify_pivot) needs the pivot row
    /// (`alpha(j) = (eᵣᵀ B⁻¹ A)_j`). The core skips the BTRAN that produces
    /// it when this returns `false`.
    fn wants_pivot_row(&self) -> bool {
        false
    }

    /// Observes a pivot: column `entering` replaced `leaving` (now
    /// nonbasic); `alpha_entering` is the pivot element and `alpha(j)`
    /// evaluates the pivot row at other columns (only meaningful when
    /// [`wants_pivot_row`](Self::wants_pivot_row) is `true`).
    fn notify_pivot(
        &mut self,
        entering: usize,
        leaving: usize,
        alpha_entering: f64,
        alpha: &dyn Fn(usize) -> f64,
    ) {
        let _ = (entering, leaving, alpha_entering, alpha);
    }
}

/// Creates a pricing rule of the requested kind.
pub fn make_pricing(rule: PricingRule) -> Box<dyn Pricing> {
    match rule {
        PricingRule::Dantzig => Box::new(DantzigPricing),
        PricingRule::Bland => Box::new(BlandPricing),
        PricingRule::Devex => Box::new(DevexPricing::default()),
    }
}

/// Full-scan most-positive reduced cost.
#[derive(Clone, Copy, Debug, Default)]
pub struct DantzigPricing;

impl Pricing for DantzigPricing {
    fn reset(&mut self, _n_total: usize) {}

    fn select_entering(
        &mut self,
        n_total: usize,
        tol: f64,
        eligible: &dyn Fn(usize) -> bool,
        rc: &dyn Fn(usize) -> f64,
    ) -> Option<usize> {
        let mut best: Option<usize> = None;
        let mut best_rc = tol;
        for j in 0..n_total {
            if !eligible(j) {
                continue;
            }
            let r = rc(j);
            if r > best_rc {
                best_rc = r;
                best = Some(j);
            }
        }
        best
    }
}

/// First improving index (Bland's rule).
#[derive(Clone, Copy, Debug, Default)]
pub struct BlandPricing;

impl Pricing for BlandPricing {
    fn reset(&mut self, _n_total: usize) {}

    fn select_entering(
        &mut self,
        n_total: usize,
        tol: f64,
        eligible: &dyn Fn(usize) -> bool,
        rc: &dyn Fn(usize) -> f64,
    ) -> Option<usize> {
        (0..n_total).find(|&j| eligible(j) && rc(j) > tol)
    }
}

/// Devex pricing with a candidate list.
///
/// Reference weights `w_j ≥ 1` approximate the steepest-edge norms; the
/// entering column maximizes `rc_j² / w_j`. The candidate list keeps the
/// per-iteration scan at `O(|list| + chunk)` instead of `O(n_total)`,
/// refilling from a rotating cursor; a full-wrap empty scan certifies
/// optimality exactly like a full Dantzig scan would.
#[derive(Clone, Debug, Default)]
pub struct DevexPricing {
    weights: Vec<f64>,
    candidates: Vec<usize>,
    in_list: Vec<bool>,
    cursor: usize,
    /// Largest weight seen since the last framework reset.
    max_weight: f64,
}

impl DevexPricing {
    /// Refill chunk: how many *new improving* candidates one select call
    /// tries to harvest before stopping the scan.
    ///
    /// Sized at half the column count (the seed used `n/8`, capped at 512):
    /// on the e13 packing grid the thin list kept entering columns with
    /// stale scores and paid for it in pivots — `n/2` cuts Devex pivot
    /// counts by ~10–25% at n ∈ {400, 800} for the same per-scan cost
    /// order, now that the pivot-row BTRAN is shared with the dual update.
    fn chunk(n_total: usize) -> usize {
        (n_total / 2).clamp(64, 2048)
    }

    /// Keep scanning while the list is thinner than this.
    fn min_keep(n_total: usize) -> usize {
        (n_total / 8).clamp(16, 256)
    }

    /// Weights above this trigger a reference-framework reset.
    const WEIGHT_RESET: f64 = 1e10;
}

impl Pricing for DevexPricing {
    fn reset(&mut self, n_total: usize) {
        self.weights.clear();
        self.weights.resize(n_total, 1.0);
        self.candidates.clear();
        self.in_list.clear();
        self.in_list.resize(n_total, false);
        self.cursor = 0;
        self.max_weight = 1.0;
    }

    fn select_entering(
        &mut self,
        n_total: usize,
        tol: f64,
        eligible: &dyn Fn(usize) -> bool,
        rc: &dyn Fn(usize) -> f64,
    ) -> Option<usize> {
        if self.weights.len() != n_total {
            // column count grew since reset (defensive; the core resets per
            // phase) — extend with unit weights
            self.weights.resize(n_total, 1.0);
            self.in_list.resize(n_total, false);
        }
        let mut best: Option<(usize, f64)> = None;
        // re-price the surviving candidates
        let mut kept = Vec::with_capacity(self.candidates.len());
        for &j in &self.candidates {
            if !eligible(j) {
                self.in_list[j] = false;
                continue;
            }
            let r = rc(j);
            if r > tol {
                let score = r * r / self.weights[j];
                if best.as_ref().map(|&(_, s)| score > s).unwrap_or(true) {
                    best = Some((j, score));
                }
                kept.push(j);
            } else {
                self.in_list[j] = false;
            }
        }
        self.candidates = kept;

        // refill from the rotating cursor when the list runs thin; a full
        // wrap with nothing improving proves optimality
        if self.candidates.len() < Self::min_keep(n_total) {
            let chunk = Self::chunk(n_total);
            let mut scanned = 0usize;
            let mut found = 0usize;
            while scanned < n_total && (found < chunk || best.is_none()) {
                let j = self.cursor;
                self.cursor = (self.cursor + 1) % n_total.max(1);
                scanned += 1;
                if self.in_list[j] || !eligible(j) {
                    continue;
                }
                let r = rc(j);
                if r > tol {
                    self.candidates.push(j);
                    self.in_list[j] = true;
                    found += 1;
                    let score = r * r / self.weights[j];
                    if best.as_ref().map(|&(_, s)| score > s).unwrap_or(true) {
                        best = Some((j, score));
                    }
                }
            }
        }
        best.map(|(j, _)| j)
    }

    fn wants_pivot_row(&self) -> bool {
        // the pivot row only feeds candidate weight updates — skip the
        // BTRAN entirely while the list is empty
        !self.candidates.is_empty()
    }

    fn notify_pivot(
        &mut self,
        entering: usize,
        leaving: usize,
        alpha_entering: f64,
        alpha: &dyn Fn(usize) -> f64,
    ) {
        if alpha_entering.abs() <= 1e-12 {
            return;
        }
        let wq = self.weights[entering].max(1.0);
        let inv_aq2 = 1.0 / (alpha_entering * alpha_entering);
        // update the candidates' reference weights from the pivot row
        for i in 0..self.candidates.len() {
            let j = self.candidates[i];
            if j == entering {
                continue;
            }
            let aj = alpha(j);
            if aj != 0.0 {
                let cand = aj * aj * inv_aq2 * wq;
                if cand > self.weights[j] {
                    self.weights[j] = cand;
                    if cand > self.max_weight {
                        self.max_weight = cand;
                    }
                }
            }
        }
        // the leaving variable becomes nonbasic with the textbook weight
        if leaving < self.weights.len() {
            self.weights[leaving] = (wq * inv_aq2).max(1.0);
        }
        // the entering column leaves the nonbasic set
        if entering < self.in_list.len() && self.in_list[entering] {
            self.in_list[entering] = false;
            self.candidates.retain(|&j| j != entering);
        }
        // reference framework reset when weights degenerate
        if self.max_weight > Self::WEIGHT_RESET {
            for w in &mut self.weights {
                *w = 1.0;
            }
            self.max_weight = 1.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny synthetic pricing problem: 6 columns, fixed reduced costs.
    fn rcs() -> Vec<f64> {
        vec![-1.0, 0.5, 3.0, 0.0, 2.0, -0.2]
    }

    #[test]
    fn dantzig_picks_most_positive() {
        let rc = rcs();
        let mut p = DantzigPricing;
        p.reset(rc.len());
        let pick = p.select_entering(rc.len(), 1e-9, &|_| true, &|j| rc[j]);
        assert_eq!(pick, Some(2));
    }

    #[test]
    fn bland_picks_first_improving() {
        let rc = rcs();
        let mut p = BlandPricing;
        p.reset(rc.len());
        let pick = p.select_entering(rc.len(), 1e-9, &|_| true, &|j| rc[j]);
        assert_eq!(pick, Some(1));
    }

    #[test]
    fn devex_with_unit_weights_matches_dantzig() {
        let rc = rcs();
        let mut p = DevexPricing::default();
        p.reset(rc.len());
        let pick = p.select_entering(rc.len(), 1e-9, &|_| true, &|j| rc[j]);
        assert_eq!(pick, Some(2));
    }

    #[test]
    fn devex_respects_weights() {
        let rc = rcs();
        let mut p = DevexPricing::default();
        p.reset(rc.len());
        // inflate column 2's weight so 2.0²/1 beats 3.0²/100
        p.weights[2] = 100.0;
        let pick = p.select_entering(rc.len(), 1e-9, &|_| true, &|j| rc[j]);
        assert_eq!(pick, Some(4));
    }

    #[test]
    fn all_rules_certify_optimality() {
        let rc = [-1.0, -0.5, 0.0];
        for rule in [PricingRule::Dantzig, PricingRule::Bland, PricingRule::Devex] {
            let mut p = make_pricing(rule);
            p.reset(rc.len());
            assert_eq!(
                p.select_entering(rc.len(), 1e-9, &|_| true, &|j| rc[j]),
                None,
                "{rule:?} must certify optimality"
            );
        }
    }

    #[test]
    fn devex_ignores_ineligible_columns() {
        let rc = rcs();
        let mut p = DevexPricing::default();
        p.reset(rc.len());
        let pick = p.select_entering(rc.len(), 1e-9, &|j| j != 2, &|j| rc[j]);
        assert_eq!(pick, Some(4));
    }

    #[test]
    fn devex_candidate_list_survives_across_calls() {
        let mut rc = rcs();
        let mut p = DevexPricing::default();
        p.reset(rc.len());
        assert_eq!(
            p.select_entering(rc.len(), 1e-9, &|_| true, &|j| rc[j]),
            Some(2)
        );
        // column 2 entered the basis: mark ineligible, its candidate entry
        // must be pruned rather than returned again
        rc[2] = -5.0;
        let pick = p.select_entering(rc.len(), 1e-9, &|j| j != 2, &|j| rc[j]);
        assert_eq!(pick, Some(4));
    }
}
