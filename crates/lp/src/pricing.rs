//! Pluggable pricing rules for the revised simplex.
//!
//! Pricing decides which nonbasic column enters the basis each pivot. The
//! seed engine hard-wired Dantzig's rule (full scan, most-positive reduced
//! cost) with a Bland fallback; this module turns the decision into the
//! [`Pricing`] trait with three implementations selected by
//! [`PricingRule`] in [`crate::simplex::SimplexOptions`]:
//!
//! * [`DantzigPricing`] — full scan, most-positive reduced cost. Simple and
//!   effective on small LPs; `O(nnz(A))` per iteration.
//! * [`BlandPricing`] — first improving index. Slow but cycling-proof; also
//!   what every rule degrades to when the simplex core detects stalling.
//! * [`DevexPricing`] — Devex reference weights with a **candidate list**
//!   (partial pricing): a rotating window of columns is scanned to keep a
//!   short list of improving candidates, the entering column maximizes
//!   `rc² / weight`, and the weights are updated from the pivot row after
//!   every pivot. Optimality is still exact: the rule only reports "no
//!   entering column" after a full wrap over every column found nothing
//!   improving.
//! * [`SteepestEdgePricing`] — primal steepest edge over the same candidate
//!   list. The weights track the exact edge norms
//!   `γ_j = 1 + ‖B⁻¹ a_j‖²`, initialized **exactly** at the slack basis
//!   (`B = I ⇒ γ_j = 1 + ‖a_j‖²`), updated per pivot with the
//!   Forrest–Goldfarb reference formulas driven by quantities the core
//!   already computes (the entering column's FTRAN image gives the exact
//!   `γ_q`; the pivot-row BTRAN that Devex pays gives the `α_j`), and
//!   **reset to exact values** for the candidate set at every scheduled
//!   refactorization. No extra linear solves per pivot.
//!
//! The simplex core owns the reduced-cost computation and hands it to the
//! rule as a closure, so rules never see the basis representation — that is
//! the [`crate::basis`] seam's job.
//!
//! ## Steepest-edge weight updates in formulas
//!
//! After a pivot with entering column `q`, leaving slot `l`, pivot row `α`
//! (`α_j = (e_lᵀ B⁻¹ A)_j`) and exact entering norm `γ_q = 1 + ‖B⁻¹ a_q‖²`
//! (one dot product over the FTRAN image, no extra solve), the reference
//! bounds are
//!
//! ```text
//! γ_j  ← max(γ_j, (α_j / α_q)² · γ_q)        (candidates j ≠ q)
//! γ_l  ← max(γ_q / α_q², 1)                  (the leaving variable)
//! ```
//!
//! — the same Forrest–Goldfarb scheme the dual simplex ([`crate::dual`])
//! uses for its dual steepest-edge weights. The `max` form drops the exact
//! cross term (which would need a second BTRAN per pivot) but never
//! *under*-estimates a norm that the update touches, and the periodic exact
//! reset at refactorization stops long-run drift.

use serde::{Deserialize, Serialize};

/// Selects the pricing rule used by the revised simplex.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum PricingRule {
    /// Full-scan most-positive reduced cost.
    Dantzig,
    /// First improving index (terminating, used as the stall fallback).
    Bland,
    /// Devex reference weights with candidate-list partial pricing.
    Devex,
    /// Primal steepest edge: exact `1 + ‖B⁻¹a_j‖²` reference weights with
    /// Forrest–Goldfarb updates and candidate-list partial pricing.
    SteepestEdge,
}

impl PricingRule {
    /// Short stable name used in bench labels and stats tables.
    pub fn name(self) -> &'static str {
        match self {
            PricingRule::Dantzig => "dantzig",
            PricingRule::Bland => "bland",
            PricingRule::Devex => "devex",
            PricingRule::SteepestEdge => "steepest-edge",
        }
    }
}

/// A pricing rule: selects the entering column and observes pivots.
///
/// `eligible(j)` is `true` for nonbasic columns the current phase allows to
/// enter; `rc(j)` is the reduced cost of column `j` under the current duals
/// (maximization convention: improving means `rc > tol`). Implementations
/// must return `None` **only** when no eligible column is improving — the
/// simplex core takes `None` as proof of optimality for the current phase.
pub trait Pricing: std::fmt::Debug {
    /// Resets per-solve state for a problem with `n_total` columns.
    fn reset(&mut self, n_total: usize);

    /// Chooses the entering column, or `None` when provably optimal.
    fn select_entering(
        &mut self,
        n_total: usize,
        tol: f64,
        eligible: &dyn Fn(usize) -> bool,
        rc: &dyn Fn(usize) -> f64,
    ) -> Option<usize>;

    /// Whether [`notify_pivot`](Self::notify_pivot) needs the pivot row
    /// (`alpha(j) = (eᵣᵀ B⁻¹ A)_j`). The core skips the (hyper-sparse)
    /// BTRAN that produces it when this returns `false`.
    fn wants_pivot_row(&self) -> bool {
        false
    }

    /// Observes a pivot: column `entering` replaced `leaving` (now
    /// nonbasic); `alpha_entering` is the pivot element and `alpha(j)`
    /// evaluates the pivot row at other columns (only meaningful when
    /// [`wants_pivot_row`](Self::wants_pivot_row) is `true`). The closure
    /// dots column `j` against the core's indexed BTRAN image, so each
    /// evaluation costs `O(nnz(A_j))` regardless of how dense `eᵣᵀ B⁻¹`
    /// came out — weight updates over a candidate list stay cheap even
    /// when the basis inverse itself has filled in.
    fn notify_pivot(
        &mut self,
        entering: usize,
        leaving: usize,
        alpha_entering: f64,
        alpha: &dyn Fn(usize) -> f64,
    ) {
        let _ = (entering, leaving, alpha_entering, alpha);
    }

    /// Seeds exact reference weights for an **identity** starting basis
    /// (`B = I ⇒ ‖B⁻¹a_j‖² = ‖a_j‖²`): `norm_sq(j)` is the squared norm of
    /// column `j` of the constraint matrix. Called by the core right after
    /// a cold start; default no-op.
    fn seed_reference_weights(&mut self, n_total: usize, norm_sq: &dyn Fn(usize) -> f64) {
        let _ = (n_total, norm_sq);
    }

    /// Observes the exact squared norm `‖B⁻¹a_e‖²` of the entering column's
    /// FTRAN image, which the core computes anyway for the ratio test — a
    /// free exact weight for the entering column. Default no-op.
    fn observe_entering(&mut self, entering: usize, norm_sq: f64) {
        let _ = (entering, norm_sq);
    }

    /// Notifies the rule of a scheduled refactorization; `norm_sq(j)`
    /// computes the exact `‖B⁻¹a_j‖²` for one column (one sparse FTRAN
    /// against the freshly built factors). Implementations may refresh a
    /// bounded set of weights — steepest edge resets its candidate list to
    /// exact values here. Default no-op.
    fn notify_refactor(&mut self, norm_sq: &dyn Fn(usize) -> f64) {
        let _ = norm_sq;
    }
}

/// Creates a pricing rule of the requested kind.
pub fn make_pricing(rule: PricingRule) -> Box<dyn Pricing> {
    match rule {
        PricingRule::Dantzig => Box::new(DantzigPricing),
        PricingRule::Bland => Box::new(BlandPricing),
        PricingRule::Devex => Box::new(DevexPricing::default()),
        PricingRule::SteepestEdge => Box::new(SteepestEdgePricing::default()),
    }
}

/// Full-scan most-positive reduced cost.
#[derive(Clone, Copy, Debug, Default)]
pub struct DantzigPricing;

impl Pricing for DantzigPricing {
    fn reset(&mut self, _n_total: usize) {}

    fn select_entering(
        &mut self,
        n_total: usize,
        tol: f64,
        eligible: &dyn Fn(usize) -> bool,
        rc: &dyn Fn(usize) -> f64,
    ) -> Option<usize> {
        let mut best: Option<usize> = None;
        let mut best_rc = tol;
        for j in 0..n_total {
            if !eligible(j) {
                continue;
            }
            let r = rc(j);
            if r > best_rc {
                best_rc = r;
                best = Some(j);
            }
        }
        best
    }
}

/// First improving index (Bland's rule).
#[derive(Clone, Copy, Debug, Default)]
pub struct BlandPricing;

impl Pricing for BlandPricing {
    fn reset(&mut self, _n_total: usize) {}

    fn select_entering(
        &mut self,
        n_total: usize,
        tol: f64,
        eligible: &dyn Fn(usize) -> bool,
        rc: &dyn Fn(usize) -> f64,
    ) -> Option<usize> {
        (0..n_total).find(|&j| eligible(j) && rc(j) > tol)
    }
}

/// Devex pricing with a candidate list.
///
/// Reference weights `w_j ≥ 1` approximate the steepest-edge norms; the
/// entering column maximizes `rc_j² / w_j`. The candidate list keeps the
/// per-iteration scan at `O(|list| + chunk)` instead of `O(n_total)`,
/// refilling from a rotating cursor; a full-wrap empty scan certifies
/// optimality exactly like a full Dantzig scan would.
#[derive(Clone, Debug, Default)]
pub struct DevexPricing {
    weights: Vec<f64>,
    candidates: Vec<usize>,
    in_list: Vec<bool>,
    cursor: usize,
    /// Largest weight seen since the last framework reset.
    max_weight: f64,
}

impl DevexPricing {
    /// Refill chunk: how many *new improving* candidates one select call
    /// tries to harvest before stopping the scan.
    ///
    /// Sized at half the column count (the seed used `n/8`, capped at 512):
    /// on the e13 packing grid the thin list kept entering columns with
    /// stale scores and paid for it in pivots — `n/2` cuts Devex pivot
    /// counts by ~10–25% at n ∈ {400, 800} for the same per-scan cost
    /// order, now that the pivot-row BTRAN is shared with the dual update.
    fn chunk(n_total: usize) -> usize {
        (n_total / 2).clamp(64, 2048)
    }

    /// Keep scanning while the list is thinner than this.
    fn min_keep(n_total: usize) -> usize {
        (n_total / 8).clamp(16, 256)
    }

    /// Weights above this trigger a reference-framework reset.
    const WEIGHT_RESET: f64 = 1e10;
}

impl Pricing for DevexPricing {
    fn reset(&mut self, n_total: usize) {
        self.weights.clear();
        self.weights.resize(n_total, 1.0);
        self.candidates.clear();
        self.in_list.clear();
        self.in_list.resize(n_total, false);
        self.cursor = 0;
        self.max_weight = 1.0;
    }

    fn select_entering(
        &mut self,
        n_total: usize,
        tol: f64,
        eligible: &dyn Fn(usize) -> bool,
        rc: &dyn Fn(usize) -> f64,
    ) -> Option<usize> {
        if self.weights.len() != n_total {
            // column count grew since reset (defensive; the core resets per
            // phase) — extend with unit weights
            self.weights.resize(n_total, 1.0);
            self.in_list.resize(n_total, false);
        }
        let mut best: Option<(usize, f64)> = None;
        // re-price the surviving candidates
        let mut kept = Vec::with_capacity(self.candidates.len());
        for &j in &self.candidates {
            if !eligible(j) {
                self.in_list[j] = false;
                continue;
            }
            let r = rc(j);
            if r > tol {
                let score = r * r / self.weights[j];
                if best.as_ref().map(|&(_, s)| score > s).unwrap_or(true) {
                    best = Some((j, score));
                }
                kept.push(j);
            } else {
                self.in_list[j] = false;
            }
        }
        self.candidates = kept;

        // refill from the rotating cursor when the list runs thin; a full
        // wrap with nothing improving proves optimality
        if self.candidates.len() < Self::min_keep(n_total) {
            let chunk = Self::chunk(n_total);
            let mut scanned = 0usize;
            let mut found = 0usize;
            while scanned < n_total && (found < chunk || best.is_none()) {
                let j = self.cursor;
                self.cursor = (self.cursor + 1) % n_total.max(1);
                scanned += 1;
                if self.in_list[j] || !eligible(j) {
                    continue;
                }
                let r = rc(j);
                if r > tol {
                    self.candidates.push(j);
                    self.in_list[j] = true;
                    found += 1;
                    let score = r * r / self.weights[j];
                    if best.as_ref().map(|&(_, s)| score > s).unwrap_or(true) {
                        best = Some((j, score));
                    }
                }
            }
        }
        best.map(|(j, _)| j)
    }

    fn wants_pivot_row(&self) -> bool {
        // the pivot row only feeds candidate weight updates — skip the
        // BTRAN entirely while the list is empty
        !self.candidates.is_empty()
    }

    fn notify_pivot(
        &mut self,
        entering: usize,
        leaving: usize,
        alpha_entering: f64,
        alpha: &dyn Fn(usize) -> f64,
    ) {
        if alpha_entering.abs() <= 1e-12 {
            return;
        }
        let wq = self.weights[entering].max(1.0);
        let inv_aq2 = 1.0 / (alpha_entering * alpha_entering);
        // update the candidates' reference weights from the pivot row
        for i in 0..self.candidates.len() {
            let j = self.candidates[i];
            if j == entering {
                continue;
            }
            let aj = alpha(j);
            if aj != 0.0 {
                let cand = aj * aj * inv_aq2 * wq;
                if cand > self.weights[j] {
                    self.weights[j] = cand;
                    if cand > self.max_weight {
                        self.max_weight = cand;
                    }
                }
            }
        }
        // the leaving variable becomes nonbasic with the textbook weight
        if leaving < self.weights.len() {
            self.weights[leaving] = (wq * inv_aq2).max(1.0);
        }
        // the entering column leaves the nonbasic set
        if entering < self.in_list.len() && self.in_list[entering] {
            self.in_list[entering] = false;
            self.candidates.retain(|&j| j != entering);
        }
        // reference framework reset when weights degenerate
        if self.max_weight > Self::WEIGHT_RESET {
            for w in &mut self.weights {
                *w = 1.0;
            }
            self.max_weight = 1.0;
        }
    }
}

/// Primal steepest-edge pricing with a candidate list.
///
/// The weights approximate the exact edge norms `γ_j = 1 + ‖B⁻¹a_j‖²` (so
/// the entering column maximizes `rc_j² / γ_j`, the squared objective rate
/// of change per unit distance along the edge). Three exactness anchors
/// keep them honest without any extra linear solves:
///
/// 1. **Slack-basis seed** — at a cold start `B = I`, so
///    [`seed_reference_weights`](Pricing::seed_reference_weights) installs
///    the exact `1 + ‖a_j‖²` for every column.
/// 2. **Exact entering norm** — the core reports `‖B⁻¹a_e‖²` of the
///    entering column's FTRAN image each pivot
///    ([`observe_entering`](Pricing::observe_entering)); the
///    Forrest–Goldfarb candidate/leaving updates in
///    [`notify_pivot`](Pricing::notify_pivot) are driven by that exact
///    `γ_q` rather than a drifting estimate.
/// 3. **Refactorization reset** — each scheduled refactor, the candidate
///    list's weights are recomputed exactly from the fresh factors
///    ([`notify_refactor`](Pricing::notify_refactor)); the work is bounded
///    by the list length, which partial pricing already caps.
///
/// Candidate-list mechanics (rotating-cursor refill, full-wrap optimality
/// certification) are identical to [`DevexPricing`].
#[derive(Clone, Debug, Default)]
pub struct SteepestEdgePricing {
    weights: Vec<f64>,
    candidates: Vec<usize>,
    in_list: Vec<bool>,
    cursor: usize,
    /// Largest weight seen since the last framework reset.
    max_weight: f64,
    /// Exact `γ_q = 1 + ‖B⁻¹a_q‖²` of the last observed entering column.
    entering_norm: f64,
    /// Which column `entering_norm` belongs to.
    entering_col: usize,
}

impl SteepestEdgePricing {
    /// Weights above this trigger a reference-framework reset (matches the
    /// dual steepest-edge reset in [`crate::dual`]).
    const WEIGHT_RESET: f64 = 1e12;
}

impl Pricing for SteepestEdgePricing {
    fn reset(&mut self, n_total: usize) {
        self.weights.clear();
        self.weights.resize(n_total, 1.0);
        self.candidates.clear();
        self.in_list.clear();
        self.in_list.resize(n_total, false);
        self.cursor = 0;
        self.max_weight = 1.0;
        self.entering_norm = 1.0;
        self.entering_col = usize::MAX;
    }

    fn select_entering(
        &mut self,
        n_total: usize,
        tol: f64,
        eligible: &dyn Fn(usize) -> bool,
        rc: &dyn Fn(usize) -> f64,
    ) -> Option<usize> {
        if self.weights.len() != n_total {
            self.weights.resize(n_total, 1.0);
            self.in_list.resize(n_total, false);
        }
        let mut best: Option<(usize, f64)> = None;
        let mut kept = Vec::with_capacity(self.candidates.len());
        for &j in &self.candidates {
            if !eligible(j) {
                self.in_list[j] = false;
                continue;
            }
            let r = rc(j);
            if r > tol {
                let score = r * r / self.weights[j];
                if best.as_ref().map(|&(_, s)| score > s).unwrap_or(true) {
                    best = Some((j, score));
                }
                kept.push(j);
            } else {
                self.in_list[j] = false;
            }
        }
        self.candidates = kept;

        // refill from the rotating cursor when the list runs thin; a full
        // wrap with nothing improving proves optimality (same discipline,
        // same chunk sizing as Devex)
        if self.candidates.len() < DevexPricing::min_keep(n_total) {
            let chunk = DevexPricing::chunk(n_total);
            let mut scanned = 0usize;
            let mut found = 0usize;
            while scanned < n_total && (found < chunk || best.is_none()) {
                let j = self.cursor;
                self.cursor = (self.cursor + 1) % n_total.max(1);
                scanned += 1;
                if self.in_list[j] || !eligible(j) {
                    continue;
                }
                let r = rc(j);
                if r > tol {
                    self.candidates.push(j);
                    self.in_list[j] = true;
                    found += 1;
                    let score = r * r / self.weights[j];
                    if best.as_ref().map(|&(_, s)| score > s).unwrap_or(true) {
                        best = Some((j, score));
                    }
                }
            }
        }
        best.map(|(j, _)| j)
    }

    fn wants_pivot_row(&self) -> bool {
        !self.candidates.is_empty()
    }

    fn notify_pivot(
        &mut self,
        entering: usize,
        leaving: usize,
        alpha_entering: f64,
        alpha: &dyn Fn(usize) -> f64,
    ) {
        if alpha_entering.abs() <= 1e-12 {
            return;
        }
        // exact γ_q when the core observed this column's FTRAN, else the
        // stored reference weight
        let gq = if self.entering_col == entering {
            self.entering_norm
        } else {
            self.weights.get(entering).copied().unwrap_or(1.0).max(1.0)
        };
        let inv_aq2 = 1.0 / (alpha_entering * alpha_entering);
        for i in 0..self.candidates.len() {
            let j = self.candidates[i];
            if j == entering {
                continue;
            }
            let aj = alpha(j);
            if aj != 0.0 {
                let cand = aj * aj * inv_aq2 * gq;
                if cand > self.weights[j] {
                    self.weights[j] = cand;
                    if cand > self.max_weight {
                        self.max_weight = cand;
                    }
                }
            }
        }
        if leaving < self.weights.len() {
            self.weights[leaving] = (gq * inv_aq2).max(1.0);
        }
        if entering < self.in_list.len() && self.in_list[entering] {
            self.in_list[entering] = false;
            self.candidates.retain(|&j| j != entering);
        }
        if self.max_weight > Self::WEIGHT_RESET {
            for w in &mut self.weights {
                *w = 1.0;
            }
            self.max_weight = 1.0;
        }
    }

    fn seed_reference_weights(&mut self, n_total: usize, norm_sq: &dyn Fn(usize) -> f64) {
        if self.weights.len() != n_total {
            self.weights.resize(n_total, 1.0);
            self.in_list.resize(n_total, false);
        }
        for (j, w) in self.weights.iter_mut().enumerate() {
            *w = 1.0 + norm_sq(j);
        }
        self.max_weight = self.weights.iter().cloned().fold(1.0, f64::max);
    }

    fn observe_entering(&mut self, entering: usize, norm_sq: f64) {
        self.entering_col = entering;
        self.entering_norm = 1.0 + norm_sq;
        if entering < self.weights.len() {
            self.weights[entering] = self.entering_norm;
        }
    }

    fn notify_refactor(&mut self, norm_sq: &dyn Fn(usize) -> f64) {
        // exact reset for the candidate set — bounded by the list length
        // (≤ min_keep + chunk), amortized over refactor_interval pivots
        let mut max_w = 1.0f64;
        for &j in &self.candidates {
            self.weights[j] = 1.0 + norm_sq(j);
            max_w = max_w.max(self.weights[j]);
        }
        self.max_weight = max_w;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny synthetic pricing problem: 6 columns, fixed reduced costs.
    fn rcs() -> Vec<f64> {
        vec![-1.0, 0.5, 3.0, 0.0, 2.0, -0.2]
    }

    #[test]
    fn dantzig_picks_most_positive() {
        let rc = rcs();
        let mut p = DantzigPricing;
        p.reset(rc.len());
        let pick = p.select_entering(rc.len(), 1e-9, &|_| true, &|j| rc[j]);
        assert_eq!(pick, Some(2));
    }

    #[test]
    fn bland_picks_first_improving() {
        let rc = rcs();
        let mut p = BlandPricing;
        p.reset(rc.len());
        let pick = p.select_entering(rc.len(), 1e-9, &|_| true, &|j| rc[j]);
        assert_eq!(pick, Some(1));
    }

    #[test]
    fn devex_with_unit_weights_matches_dantzig() {
        let rc = rcs();
        let mut p = DevexPricing::default();
        p.reset(rc.len());
        let pick = p.select_entering(rc.len(), 1e-9, &|_| true, &|j| rc[j]);
        assert_eq!(pick, Some(2));
    }

    #[test]
    fn devex_respects_weights() {
        let rc = rcs();
        let mut p = DevexPricing::default();
        p.reset(rc.len());
        // inflate column 2's weight so 2.0²/1 beats 3.0²/100
        p.weights[2] = 100.0;
        let pick = p.select_entering(rc.len(), 1e-9, &|_| true, &|j| rc[j]);
        assert_eq!(pick, Some(4));
    }

    #[test]
    fn steepest_edge_seeds_exact_slack_basis_weights() {
        // column norms ‖a_j‖²: picks rc²/(1+‖a_j‖²) maximizer
        let rc = [2.0, 2.0, 1.0];
        let norms = [8.0, 0.0, 0.0];
        let mut p = SteepestEdgePricing::default();
        p.reset(rc.len());
        p.seed_reference_weights(rc.len(), &|j| norms[j]);
        assert_eq!(p.weights, vec![9.0, 1.0, 1.0]);
        // 4/9 < 4/1: column 1 wins despite the tie on reduced cost
        let pick = p.select_entering(rc.len(), 1e-9, &|_| true, &|j| rc[j]);
        assert_eq!(pick, Some(1));
    }

    #[test]
    fn steepest_edge_uses_exact_entering_norm_for_updates() {
        let rc = [3.0, 1.0, 2.0];
        let mut p = SteepestEdgePricing::default();
        p.reset(rc.len());
        assert_eq!(
            p.select_entering(rc.len(), 1e-9, &|_| true, &|j| rc[j]),
            Some(0)
        );
        // core observed ‖B⁻¹a_0‖² = 3 → γ_0 = 4 exactly
        p.observe_entering(0, 3.0);
        // pivot: α_0 = 2, pivot row α = [2, 1, 0]; leaving slot maps to
        // column 1's weight slot via the leaving id
        p.notify_pivot(0, 1, 2.0, &|j| [2.0, 1.0, 0.0][j]);
        // candidate 2 was in the list with α_2 = 0 → untouched (weight 1);
        // candidate 1: α_1 = 1 → max(1, (1/2)²·4) = 1 (no increase beyond 1)
        // leaving weight: max(γ_q/α_q², 1) = max(4/4, 1) = 1
        assert!((p.weights[1] - 1.0).abs() < 1e-12);
        // now a pivot with a stronger row: α_entering = 0.5
        p.observe_entering(2, 15.0); // γ_2 = 16
        p.notify_pivot(2, 0, 0.5, &|j| [0.0, 1.0, 0.5][j]);
        // leaving weight for column 0: max(16/0.25, 1) = 64
        assert!((p.weights[0] - 64.0).abs() < 1e-12);
    }

    #[test]
    fn steepest_edge_refactor_reset_refreshes_candidates() {
        let rc = [1.0, 1.0, 1.0];
        let mut p = SteepestEdgePricing::default();
        p.reset(rc.len());
        // populate the candidate list
        let _ = p.select_entering(rc.len(), 1e-9, &|_| true, &|j| rc[j]);
        assert!(!p.candidates.is_empty());
        p.notify_refactor(&|j| (j as f64) * 10.0);
        for &j in &p.candidates {
            assert!((p.weights[j] - (1.0 + j as f64 * 10.0)).abs() < 1e-12);
        }
    }

    #[test]
    fn all_rules_certify_optimality() {
        let rc = [-1.0, -0.5, 0.0];
        for rule in [
            PricingRule::Dantzig,
            PricingRule::Bland,
            PricingRule::Devex,
            PricingRule::SteepestEdge,
        ] {
            let mut p = make_pricing(rule);
            p.reset(rc.len());
            assert_eq!(
                p.select_entering(rc.len(), 1e-9, &|_| true, &|j| rc[j]),
                None,
                "{rule:?} must certify optimality"
            );
        }
    }

    #[test]
    fn devex_ignores_ineligible_columns() {
        let rc = rcs();
        let mut p = DevexPricing::default();
        p.reset(rc.len());
        let pick = p.select_entering(rc.len(), 1e-9, &|j| j != 2, &|j| rc[j]);
        assert_eq!(pick, Some(4));
    }

    #[test]
    fn devex_candidate_list_survives_across_calls() {
        let mut rc = rcs();
        let mut p = DevexPricing::default();
        p.reset(rc.len());
        assert_eq!(
            p.select_entering(rc.len(), 1e-9, &|_| true, &|j| rc[j]),
            Some(2)
        );
        // column 2 entered the basis: mark ineligible, its candidate entry
        // must be pruned rather than returned again
        rc[2] = -5.0;
        let pick = p.select_entering(rc.len(), 1e-9, &|j| j != 2, &|j| rc[j]);
        assert_eq!(pick, Some(4));
    }
}
