//! Sparse linear-program models with a managed **row lifecycle**.
//!
//! Rows used to be append-only; dynamic markets (bidders leaving as often
//! as they arrive) need the inverse primitive too. A row now carries a
//! [`RowState`]:
//!
//! ```text
//!            add_constraint                 deactivate_rows
//!   (none) ────────────────▶ Active ────────────────────────▶ Deactivated
//!                              │                                   │
//!                              └──────────── compact ◀─────────────┘
//!                                    (physically removed)
//! ```
//!
//! * [`LinearProgram::deactivate_rows`] relaxes rows to non-binding **in
//!   place**, without touching any existing column or invalidating a
//!   recorded basis: each deactivated `≤`/`≥` row gains a zero-objective
//!   **relief variable** (`−1` for `≤`, `+1` for `≥`) whose growth absorbs
//!   the constraint (`a·x − t ≤ rhs` with `t ≥ 0` unbounded is no
//!   constraint at all). New columns enter nonbasic, so a warm basis stays
//!   valid and primal feasible and the next solve resumes with ordinary
//!   primal pivots — the basis-preserving departure path.
//! * [`LinearProgram::fix_variables_at_zero`] retires columns: the
//!   objective coefficient drops to zero and every engine (revised, dense,
//!   dual) bars the column from entering a basis. A fixed column arriving
//!   *basic* through a warm start keeps its value only when that is
//!   provably harmless (pure `≤`-row slack consumption — the auction
//!   masters' packing shape); any other shape makes the engines reject
//!   the warm start and cold-start, where fixed columns are exactly zero,
//!   so the reported optimum is the fixed-at-zero optimum in every case.
//! * [`LinearProgram::compact`] physically removes `Deactivated` rows,
//!   fixed variables and relief variables once callers decide the
//!   deadweight is worth a rebuild, returning index maps so basis
//!   identities and caller bookkeeping can be remapped.
//!
//! The factorization seam ([`crate::basis`]) never sees an invalid basis:
//! deactivation only ever *adds* nonbasic columns, and compaction hands the
//! remapped basis back through the ordinary warm-start validation path.

use serde::{Deserialize, Serialize};

/// Optimization direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Sense {
    /// Maximize the objective.
    Maximize,
    /// Minimize the objective.
    Minimize,
}

/// Relation of a linear constraint.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Relation {
    /// `a·x ≤ rhs`
    Le,
    /// `a·x ≥ rhs`
    Ge,
    /// `a·x = rhs`
    Eq,
}

/// A single linear constraint with sparse coefficients.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Constraint {
    /// Sparse coefficients as `(variable index, coefficient)` pairs.
    pub coeffs: Vec<(usize, f64)>,
    /// The relation between the left-hand side and `rhs`.
    pub relation: Relation,
    /// Right-hand side.
    pub rhs: f64,
}

/// Activation state of a constraint row (see the [module docs](self) for
/// the lifecycle diagram).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RowState {
    /// The row constrains the feasible region (the only state rows had
    /// before the lifecycle refactor).
    Active,
    /// The row has been relaxed to non-binding in place (its relief
    /// variable absorbs any activity); it is physically removed by the next
    /// [`LinearProgram::compact`].
    Deactivated,
}

/// Index maps returned by [`LinearProgram::compact`]: `None` marks a
/// removed row / variable, `Some(new)` the post-compaction index.
#[derive(Clone, Debug)]
pub struct Compaction {
    /// Old row index → new row index (`None` for deactivated rows).
    pub row_map: Vec<Option<usize>>,
    /// Old variable index → new variable index (`None` for fixed and
    /// relief variables).
    pub var_map: Vec<Option<usize>>,
}

/// A linear program over non-negative variables.
///
/// All variables implicitly satisfy `x ≥ 0`; upper bounds (e.g. `x ≤ 1`)
/// are modeled as explicit constraints, matching how the paper writes its
/// relaxations (constraints (1c)/(4c)).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LinearProgram {
    sense: Sense,
    objective: Vec<f64>,
    constraints: Vec<Constraint>,
    /// Activation state per row (parallel to `constraints`).
    row_state: Vec<RowState>,
    /// Variables fixed at zero (barred from entering any basis).
    var_fixed: Vec<bool>,
    /// `Some(row)` for relief variables created by
    /// [`deactivate_rows`](Self::deactivate_rows) (removed on compaction
    /// together with their row).
    var_relief: Vec<Option<usize>>,
}

impl LinearProgram {
    /// Creates an empty LP with the given optimization sense.
    pub fn new(sense: Sense) -> Self {
        LinearProgram {
            sense,
            objective: Vec::new(),
            constraints: Vec::new(),
            row_state: Vec::new(),
            var_fixed: Vec::new(),
            var_relief: Vec::new(),
        }
    }

    /// Optimization sense.
    pub fn sense(&self) -> Sense {
        self.sense
    }

    /// Adds a variable with the given objective coefficient and returns its
    /// index.
    pub fn add_variable(&mut self, objective_coefficient: f64) -> usize {
        self.objective.push(objective_coefficient);
        self.var_fixed.push(false);
        self.var_relief.push(None);
        self.objective.len() - 1
    }

    /// Number of variables.
    pub fn num_variables(&self) -> usize {
        self.objective.len()
    }

    /// Objective coefficients indexed by variable.
    pub fn objective(&self) -> &[f64] {
        &self.objective
    }

    /// Changes the objective coefficient of an existing variable.
    ///
    /// # Panics
    /// Panics if `var` is out of range.
    pub fn set_objective_coefficient(&mut self, var: usize, value: f64) {
        self.objective[var] = value;
    }

    /// Adds a constraint and returns its index.
    ///
    /// Coefficients referring to the same variable multiple times are summed.
    ///
    /// # Panics
    /// Panics if any referenced variable does not exist or any value is NaN.
    pub fn add_constraint(
        &mut self,
        coeffs: Vec<(usize, f64)>,
        relation: Relation,
        rhs: f64,
    ) -> usize {
        assert!(!rhs.is_nan(), "constraint rhs must not be NaN");
        let mut merged: Vec<(usize, f64)> = Vec::with_capacity(coeffs.len());
        let mut sorted = coeffs;
        sorted.sort_by_key(|&(v, _)| v);
        for (v, c) in sorted {
            assert!(
                v < self.num_variables(),
                "constraint references unknown variable {v}"
            );
            assert!(!c.is_nan(), "constraint coefficient must not be NaN");
            match merged.last_mut() {
                Some(&mut (lv, ref mut lc)) if lv == v => *lc += c,
                _ => merged.push((v, c)),
            }
        }
        self.constraints.push(Constraint {
            coeffs: merged,
            relation,
            rhs,
        });
        self.row_state.push(RowState::Active);
        self.constraints.len() - 1
    }

    /// Adds `coeff` to variable `var`'s coefficient in constraint `row`,
    /// keeping the row's sparse coefficients sorted.
    ///
    /// This is the incremental path used by the column-generation master:
    /// appending a freshly created variable (the common case) is `O(1)`
    /// because its index is larger than everything already in the row.
    ///
    /// # Panics
    /// Panics if `row` or `var` does not exist, or `coeff` is NaN.
    pub fn add_coefficient(&mut self, row: usize, var: usize, coeff: f64) {
        assert!(
            var < self.num_variables(),
            "coefficient references unknown variable {var}"
        );
        assert!(!coeff.is_nan(), "constraint coefficient must not be NaN");
        let coeffs = &mut self.constraints[row].coeffs;
        match coeffs.binary_search_by_key(&var, |&(v, _)| v) {
            Ok(pos) => coeffs[pos].1 += coeff,
            Err(pos) => coeffs.insert(pos, (var, coeff)),
        }
    }

    /// The constraints.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Number of constraints (active **and** deactivated — deactivated rows
    /// keep their index until [`compact`](Self::compact)).
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    // -- row lifecycle ------------------------------------------------------

    /// Activation state per row (parallel to
    /// [`constraints`](Self::constraints)).
    pub fn row_states(&self) -> &[RowState] {
        &self.row_state
    }

    /// Whether row `i` is [`RowState::Active`].
    pub fn is_row_active(&self, i: usize) -> bool {
        self.row_state[i] == RowState::Active
    }

    /// Number of rows still [`RowState::Active`].
    pub fn num_active_rows(&self) -> usize {
        self.row_state
            .iter()
            .filter(|&&s| s == RowState::Active)
            .count()
    }

    /// Whether variable `j` has been fixed at zero. Relief variables are
    /// **not** fixed (they must stay enterable to do their job); test them
    /// with [`is_relief_variable`](Self::is_relief_variable).
    pub fn is_variable_fixed(&self, j: usize) -> bool {
        self.var_fixed[j]
    }

    /// Whether variable `j` is a relief variable of a deactivated row.
    pub fn is_relief_variable(&self, j: usize) -> bool {
        self.var_relief[j].is_some()
    }

    /// Number of variables that compaction would remove (fixed + relief).
    pub fn num_dead_variables(&self) -> usize {
        self.var_fixed
            .iter()
            .zip(self.var_relief.iter())
            .filter(|&(&f, r)| f || r.is_some())
            .count()
    }

    /// Relaxes the given rows to non-binding **in place**, keeping every
    /// recorded basis over this LP valid (see the [module docs](self)):
    /// each row gains a fresh zero-objective relief variable (`−1` on a `≤`
    /// row, `+1` on a `≥` row) and moves to [`RowState::Deactivated`]. The
    /// relief variables are returned in row order; they start nonbasic, so
    /// a subsequent warm-started solve resumes with primal pivots (the
    /// relief column enters exactly when the deactivated row was binding).
    ///
    /// At any later optimum the deactivated row's dual is (numerically)
    /// zero: the relief column's reduced cost is `±y_i`, so optimality
    /// forces `y_i ≈ 0` — pricing oracles need no special casing.
    ///
    /// # Panics
    /// Panics if a row does not exist, is already deactivated, or is an
    /// equality row (`=` rows would need a *free* relief variable, which
    /// the engines do not model; the stack only deactivates packing rows).
    pub fn deactivate_rows(&mut self, rows: &[usize]) -> Vec<usize> {
        let mut relief = Vec::with_capacity(rows.len());
        for &i in rows {
            assert!(i < self.constraints.len(), "row {i} does not exist");
            assert!(
                self.row_state[i] == RowState::Active,
                "row {i} is already deactivated"
            );
            let sign = match self.constraints[i].relation {
                Relation::Le => -1.0,
                Relation::Ge => 1.0,
                Relation::Eq => panic!("equality rows cannot be deactivated in place"),
            };
            let var = self.add_variable(0.0);
            self.add_coefficient(i, var, sign);
            self.var_relief[var] = Some(i);
            self.row_state[i] = RowState::Deactivated;
            relief.push(var);
        }
        relief
    }

    /// Fixes the given variables at zero: their objective coefficient is
    /// cleared and every engine bars them from entering a basis. A fixed
    /// variable that arrives *basic* through a warm start may keep its
    /// value only when that is provably harmless
    /// ([`fixed_value_is_harmless`](Self::fixed_value_is_harmless): the
    /// column only consumes `≤`-row slack — the packing shape of the
    /// auction masters, where zeroing a zero-objective column never
    /// changes the optimum); otherwise the engines reject the warm start
    /// and cold-start, which keeps every fixed variable at exactly 0, so
    /// the reported optimum is the fixed-at-zero optimum in **all** cases
    /// (covering/minimization included).
    ///
    /// # Panics
    /// Panics if a variable does not exist.
    pub fn fix_variables_at_zero(&mut self, vars: &[usize]) {
        for &j in vars {
            assert!(j < self.num_variables(), "variable {j} does not exist");
            self.objective[j] = 0.0;
            self.var_fixed[j] = true;
        }
    }

    /// Whether a fixed variable retaining a positive basic value cannot
    /// change the fixed-at-zero optimum: every coefficient is non-negative
    /// on a `≤` row with non-negative right-hand side (so the lingering
    /// value only consumes slack — zeroing it stays feasible and, since
    /// the objective coefficient is 0, leaves the objective unchanged).
    /// Covering (`≥`/`=`) participation is *not* harmless: a zero-cost
    /// basic column could satisfy a covering row for free and report an
    /// objective below the true fixed-at-zero optimum.
    pub fn fixed_value_is_harmless(&self, j: usize) -> bool {
        self.constraints
            .iter()
            .all(|c| match c.coeffs.binary_search_by_key(&j, |&(v, _)| v) {
                Err(_) => true,
                Ok(pos) => {
                    let a = c.coeffs[pos].1;
                    a == 0.0 || (c.relation == Relation::Le && a >= 0.0 && c.rhs >= 0.0)
                }
            })
    }

    /// Physically removes deactivated rows, fixed variables and relief
    /// variables, remapping every surviving constraint's coefficients.
    /// Returns the index maps callers need to remap basis identities and
    /// their own row/column bookkeeping.
    pub fn compact(&mut self) -> Compaction {
        let mut var_map = vec![None; self.num_variables()];
        let mut next = 0usize;
        for (j, slot) in var_map.iter_mut().enumerate() {
            if !self.var_fixed[j] && self.var_relief[j].is_none() {
                *slot = Some(next);
                next += 1;
            }
        }
        let mut row_map = vec![None; self.constraints.len()];
        let mut next_row = 0usize;
        for (i, slot) in row_map.iter_mut().enumerate() {
            if self.row_state[i] == RowState::Active {
                *slot = Some(next_row);
                next_row += 1;
            }
        }

        let mut objective = Vec::with_capacity(next);
        for (j, &keep) in var_map.iter().enumerate() {
            if keep.is_some() {
                objective.push(self.objective[j]);
            }
        }
        let mut constraints = Vec::with_capacity(next_row);
        for (i, c) in self.constraints.iter().enumerate() {
            if row_map[i].is_none() {
                continue;
            }
            let coeffs: Vec<(usize, f64)> = c
                .coeffs
                .iter()
                .filter_map(|&(v, a)| var_map[v].map(|nv| (nv, a)))
                .collect();
            constraints.push(Constraint {
                coeffs,
                relation: c.relation,
                rhs: c.rhs,
            });
        }
        self.objective = objective;
        self.constraints = constraints;
        self.row_state = vec![RowState::Active; next_row];
        self.var_fixed = vec![false; next];
        self.var_relief = vec![None; next];
        Compaction { row_map, var_map }
    }

    /// Evaluates the objective at a point.
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        self.objective
            .iter()
            .zip(x.iter())
            .map(|(c, v)| c * v)
            .sum()
    }

    /// Builds the compressed-sparse-column view of the constraint matrix
    /// used by the revised simplex: one sparse column per variable.
    ///
    /// Constraints are stored row-wise for cheap model building; the solver
    /// prices and FTRANs over columns, so it needs the transpose. The
    /// conversion is a single counting pass plus a single fill pass,
    /// `O(nnz)`.
    pub fn to_csc(&self) -> CscMatrix {
        let n = self.num_variables();
        let mut col_len = vec![0usize; n];
        for c in &self.constraints {
            for &(v, _) in &c.coeffs {
                col_len[v] += 1;
            }
        }
        let mut col_ptr = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        col_ptr.push(0);
        for &len in &col_len {
            acc += len;
            col_ptr.push(acc);
        }
        let mut row_idx = vec![0usize; acc];
        let mut values = vec![0.0f64; acc];
        let mut cursor: Vec<usize> = col_ptr[..n].to_vec();
        for (row, c) in self.constraints.iter().enumerate() {
            for &(v, a) in &c.coeffs {
                let p = cursor[v];
                row_idx[p] = row;
                values[p] = a;
                cursor[v] += 1;
            }
        }
        CscMatrix {
            num_rows: self.constraints.len(),
            col_ptr,
            row_idx,
            values,
        }
    }

    /// Checks primal feasibility of `x` (non-negativity plus every
    /// constraint) within tolerance `tol`.
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        if x.len() != self.num_variables() {
            return false;
        }
        if x.iter().any(|&v| v < -tol || v.is_nan()) {
            return false;
        }
        self.constraints.iter().all(|c| {
            let lhs: f64 = c.coeffs.iter().map(|&(v, a)| a * x[v]).sum();
            match c.relation {
                Relation::Le => lhs <= c.rhs + tol,
                Relation::Ge => lhs >= c.rhs - tol,
                Relation::Eq => (lhs - c.rhs).abs() <= tol,
            }
        })
    }
}

/// Compressed-sparse-column matrix: the constraint matrix transposed into
/// per-variable columns, consumed by the revised simplex.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CscMatrix {
    /// Number of rows (constraints).
    pub num_rows: usize,
    /// `col_ptr[j]..col_ptr[j+1]` indexes column `j`'s entries.
    pub col_ptr: Vec<usize>,
    /// Row index of each stored entry.
    pub row_idx: Vec<usize>,
    /// Value of each stored entry.
    pub values: Vec<f64>,
}

impl CscMatrix {
    /// Number of columns.
    pub fn num_cols(&self) -> usize {
        self.col_ptr.len() - 1
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.row_idx.len()
    }

    /// The sparse column `j` as parallel `(rows, values)` slices.
    pub fn column(&self, j: usize) -> (&[usize], &[f64]) {
        let lo = self.col_ptr[j];
        let hi = self.col_ptr[j + 1];
        (&self.row_idx[lo..hi], &self.values[lo..hi])
    }

    /// Row-major adjacency view: `(column, value)` per stored entry, grouped
    /// by row with columns in ascending order. The dual simplex builds this
    /// once per repair so its ratio test can scatter a *sparse* pivot row
    /// into the touched columns only, instead of sweeping every column for
    /// its `ρ·a_j` product.
    pub fn row_major(&self) -> Vec<Vec<(usize, f64)>> {
        let mut rows: Vec<Vec<(usize, f64)>> = vec![Vec::new(); self.num_rows];
        for j in 0..self.num_cols() {
            let (ridx, vals) = self.column(j);
            for (&r, &v) in ridx.iter().zip(vals.iter()) {
                if v != 0.0 {
                    rows[r].push((j, v));
                }
            }
        }
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csc_matches_row_storage() {
        let mut lp = LinearProgram::new(Sense::Maximize);
        let x = lp.add_variable(1.0);
        let y = lp.add_variable(2.0);
        let z = lp.add_variable(0.0);
        lp.add_constraint(vec![(x, 1.0), (z, 3.0)], Relation::Le, 4.0);
        lp.add_constraint(vec![(y, -2.0)], Relation::Ge, -1.0);
        lp.add_constraint(vec![(x, 5.0), (y, 6.0), (z, 7.0)], Relation::Eq, 8.0);
        let csc = lp.to_csc();
        assert_eq!(csc.num_rows, 3);
        assert_eq!(csc.num_cols(), 3);
        assert_eq!(csc.nnz(), 6);
        let (rows_x, vals_x) = csc.column(x);
        assert_eq!(rows_x, &[0, 2]);
        assert_eq!(vals_x, &[1.0, 5.0]);
        let (rows_y, vals_y) = csc.column(y);
        assert_eq!(rows_y, &[1, 2]);
        assert_eq!(vals_y, &[-2.0, 6.0]);
        let (rows_z, vals_z) = csc.column(z);
        assert_eq!(rows_z, &[0, 2]);
        assert_eq!(vals_z, &[3.0, 7.0]);
    }

    #[test]
    fn build_small_lp() {
        let mut lp = LinearProgram::new(Sense::Maximize);
        let x = lp.add_variable(3.0);
        let y = lp.add_variable(2.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Le, 4.0);
        lp.add_constraint(vec![(x, 1.0)], Relation::Le, 2.0);
        assert_eq!(lp.num_variables(), 2);
        assert_eq!(lp.num_constraints(), 2);
        assert_eq!(lp.objective_value(&[2.0, 2.0]), 10.0);
        assert!(lp.is_feasible(&[2.0, 2.0], 1e-9));
        assert!(!lp.is_feasible(&[3.0, 2.0], 1e-9));
        assert!(!lp.is_feasible(&[-0.1, 0.0], 1e-9));
    }

    #[test]
    fn duplicate_coefficients_are_merged() {
        let mut lp = LinearProgram::new(Sense::Maximize);
        let x = lp.add_variable(1.0);
        let c = lp.add_constraint(vec![(x, 1.0), (x, 2.0)], Relation::Le, 6.0);
        assert_eq!(lp.constraints()[c].coeffs, vec![(x, 3.0)]);
        assert!(lp.is_feasible(&[2.0], 1e-9));
        assert!(!lp.is_feasible(&[2.1], 1e-9));
    }

    #[test]
    fn equality_and_ge_feasibility() {
        let mut lp = LinearProgram::new(Sense::Minimize);
        let x = lp.add_variable(1.0);
        let y = lp.add_variable(1.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Eq, 3.0);
        lp.add_constraint(vec![(y, 1.0)], Relation::Ge, 1.0);
        assert!(lp.is_feasible(&[2.0, 1.0], 1e-9));
        assert!(!lp.is_feasible(&[2.0, 0.5], 1e-9));
        assert!(!lp.is_feasible(&[3.0, 1.0], 1e-9));
    }

    #[test]
    #[should_panic]
    fn unknown_variable_rejected() {
        let mut lp = LinearProgram::new(Sense::Maximize);
        lp.add_constraint(vec![(0, 1.0)], Relation::Le, 1.0);
    }

    #[test]
    fn deactivation_adds_relief_variables_and_flips_state() {
        let mut lp = LinearProgram::new(Sense::Maximize);
        let x = lp.add_variable(1.0);
        let r0 = lp.add_constraint(vec![(x, 1.0)], Relation::Le, 2.0);
        let r1 = lp.add_constraint(vec![(x, 1.0)], Relation::Ge, 1.0);
        let relief = lp.deactivate_rows(&[r0, r1]);
        assert_eq!(relief.len(), 2);
        assert!(!lp.is_row_active(r0) && !lp.is_row_active(r1));
        assert_eq!(lp.num_active_rows(), 0);
        assert!(lp.is_relief_variable(relief[0]));
        assert_eq!(lp.objective()[relief[0]], 0.0);
        // relief signs: −1 on the ≤ row, +1 on the ≥ row
        assert_eq!(lp.constraints()[r0].coeffs.last(), Some(&(relief[0], -1.0)));
        assert_eq!(lp.constraints()[r1].coeffs.last(), Some(&(relief[1], 1.0)));
        // the rows are now satisfiable at any x: big relief values absorb it
        assert!(lp.is_feasible(&[50.0, 48.0, 0.0], 1e-9));
    }

    #[test]
    #[should_panic]
    fn equality_rows_cannot_be_deactivated() {
        let mut lp = LinearProgram::new(Sense::Maximize);
        let x = lp.add_variable(1.0);
        let r = lp.add_constraint(vec![(x, 1.0)], Relation::Eq, 1.0);
        lp.deactivate_rows(&[r]);
    }

    #[test]
    fn fixed_value_harmlessness_distinguishes_packing_from_covering() {
        let mut lp = LinearProgram::new(Sense::Minimize);
        let x = lp.add_variable(1.0);
        let y = lp.add_variable(2.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Ge, 1.0);
        lp.fix_variables_at_zero(&[x]);
        // x participates in a covering row: a lingering basic value would
        // satisfy the row for free — not harmless
        assert!(!lp.fixed_value_is_harmless(x));

        let mut packing = LinearProgram::new(Sense::Maximize);
        let p = packing.add_variable(1.0);
        packing.add_constraint(vec![(p, 1.0)], Relation::Le, 2.0);
        packing.fix_variables_at_zero(&[p]);
        assert!(packing.fixed_value_is_harmless(p));
    }

    #[test]
    fn fixing_clears_the_objective_and_marks_the_variable() {
        let mut lp = LinearProgram::new(Sense::Maximize);
        let x = lp.add_variable(3.0);
        let y = lp.add_variable(2.0);
        lp.fix_variables_at_zero(&[x]);
        assert!(lp.is_variable_fixed(x));
        assert!(!lp.is_variable_fixed(y));
        assert_eq!(lp.objective()[x], 0.0);
        assert_eq!(lp.num_dead_variables(), 1);
    }

    #[test]
    fn compact_removes_dead_rows_and_variables_with_maps() {
        let mut lp = LinearProgram::new(Sense::Maximize);
        let x = lp.add_variable(3.0);
        let y = lp.add_variable(2.0);
        let z = lp.add_variable(1.0);
        let r0 = lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Le, 4.0);
        let r1 = lp.add_constraint(vec![(y, 2.0), (z, 1.0)], Relation::Le, 3.0);
        let r2 = lp.add_constraint(vec![(z, 1.0)], Relation::Le, 5.0);
        lp.fix_variables_at_zero(&[y]);
        lp.deactivate_rows(&[r1]);
        let maps = lp.compact();
        assert_eq!(maps.row_map, vec![Some(0), None, Some(1)]);
        // y fixed and the relief variable dropped; x and z survive
        assert_eq!(maps.var_map[x], Some(0));
        assert_eq!(maps.var_map[y], None);
        assert_eq!(maps.var_map[z], Some(1));
        assert_eq!(maps.var_map.len(), 4);
        assert_eq!(lp.num_variables(), 2);
        assert_eq!(lp.num_constraints(), 2);
        assert_eq!(lp.num_active_rows(), 2);
        assert_eq!(lp.num_dead_variables(), 0);
        // surviving rows reference remapped variables only
        assert_eq!(lp.constraints()[0].coeffs, vec![(0, 1.0)]); // was r0: x
        assert_eq!(lp.constraints()[1].coeffs, vec![(1, 1.0)]); // was r2: z
        assert_eq!(lp.constraints()[1].rhs, 5.0);
        let _ = r0;
        let _ = r2;
    }
}
