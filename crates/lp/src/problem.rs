//! Sparse linear-program models.

use serde::{Deserialize, Serialize};

/// Optimization direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Sense {
    /// Maximize the objective.
    Maximize,
    /// Minimize the objective.
    Minimize,
}

/// Relation of a linear constraint.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Relation {
    /// `a·x ≤ rhs`
    Le,
    /// `a·x ≥ rhs`
    Ge,
    /// `a·x = rhs`
    Eq,
}

/// A single linear constraint with sparse coefficients.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Constraint {
    /// Sparse coefficients as `(variable index, coefficient)` pairs.
    pub coeffs: Vec<(usize, f64)>,
    /// The relation between the left-hand side and `rhs`.
    pub relation: Relation,
    /// Right-hand side.
    pub rhs: f64,
}

/// A linear program over non-negative variables.
///
/// All variables implicitly satisfy `x ≥ 0`; upper bounds (e.g. `x ≤ 1`)
/// are modeled as explicit constraints, matching how the paper writes its
/// relaxations (constraints (1c)/(4c)).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LinearProgram {
    sense: Sense,
    objective: Vec<f64>,
    constraints: Vec<Constraint>,
}

impl LinearProgram {
    /// Creates an empty LP with the given optimization sense.
    pub fn new(sense: Sense) -> Self {
        LinearProgram {
            sense,
            objective: Vec::new(),
            constraints: Vec::new(),
        }
    }

    /// Optimization sense.
    pub fn sense(&self) -> Sense {
        self.sense
    }

    /// Adds a variable with the given objective coefficient and returns its
    /// index.
    pub fn add_variable(&mut self, objective_coefficient: f64) -> usize {
        self.objective.push(objective_coefficient);
        self.objective.len() - 1
    }

    /// Number of variables.
    pub fn num_variables(&self) -> usize {
        self.objective.len()
    }

    /// Objective coefficients indexed by variable.
    pub fn objective(&self) -> &[f64] {
        &self.objective
    }

    /// Changes the objective coefficient of an existing variable.
    ///
    /// # Panics
    /// Panics if `var` is out of range.
    pub fn set_objective_coefficient(&mut self, var: usize, value: f64) {
        self.objective[var] = value;
    }

    /// Adds a constraint and returns its index.
    ///
    /// Coefficients referring to the same variable multiple times are summed.
    ///
    /// # Panics
    /// Panics if any referenced variable does not exist or any value is NaN.
    pub fn add_constraint(
        &mut self,
        coeffs: Vec<(usize, f64)>,
        relation: Relation,
        rhs: f64,
    ) -> usize {
        assert!(!rhs.is_nan(), "constraint rhs must not be NaN");
        let mut merged: Vec<(usize, f64)> = Vec::with_capacity(coeffs.len());
        let mut sorted = coeffs;
        sorted.sort_by_key(|&(v, _)| v);
        for (v, c) in sorted {
            assert!(
                v < self.num_variables(),
                "constraint references unknown variable {v}"
            );
            assert!(!c.is_nan(), "constraint coefficient must not be NaN");
            match merged.last_mut() {
                Some(&mut (lv, ref mut lc)) if lv == v => *lc += c,
                _ => merged.push((v, c)),
            }
        }
        self.constraints.push(Constraint {
            coeffs: merged,
            relation,
            rhs,
        });
        self.constraints.len() - 1
    }

    /// Adds `coeff` to variable `var`'s coefficient in constraint `row`,
    /// keeping the row's sparse coefficients sorted.
    ///
    /// This is the incremental path used by the column-generation master:
    /// appending a freshly created variable (the common case) is `O(1)`
    /// because its index is larger than everything already in the row.
    ///
    /// # Panics
    /// Panics if `row` or `var` does not exist, or `coeff` is NaN.
    pub fn add_coefficient(&mut self, row: usize, var: usize, coeff: f64) {
        assert!(
            var < self.num_variables(),
            "coefficient references unknown variable {var}"
        );
        assert!(!coeff.is_nan(), "constraint coefficient must not be NaN");
        let coeffs = &mut self.constraints[row].coeffs;
        match coeffs.binary_search_by_key(&var, |&(v, _)| v) {
            Ok(pos) => coeffs[pos].1 += coeff,
            Err(pos) => coeffs.insert(pos, (var, coeff)),
        }
    }

    /// The constraints.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Evaluates the objective at a point.
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        self.objective
            .iter()
            .zip(x.iter())
            .map(|(c, v)| c * v)
            .sum()
    }

    /// Builds the compressed-sparse-column view of the constraint matrix
    /// used by the revised simplex: one sparse column per variable.
    ///
    /// Constraints are stored row-wise for cheap model building; the solver
    /// prices and FTRANs over columns, so it needs the transpose. The
    /// conversion is a single counting pass plus a single fill pass,
    /// `O(nnz)`.
    pub fn to_csc(&self) -> CscMatrix {
        let n = self.num_variables();
        let mut col_len = vec![0usize; n];
        for c in &self.constraints {
            for &(v, _) in &c.coeffs {
                col_len[v] += 1;
            }
        }
        let mut col_ptr = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        col_ptr.push(0);
        for &len in &col_len {
            acc += len;
            col_ptr.push(acc);
        }
        let mut row_idx = vec![0usize; acc];
        let mut values = vec![0.0f64; acc];
        let mut cursor: Vec<usize> = col_ptr[..n].to_vec();
        for (row, c) in self.constraints.iter().enumerate() {
            for &(v, a) in &c.coeffs {
                let p = cursor[v];
                row_idx[p] = row;
                values[p] = a;
                cursor[v] += 1;
            }
        }
        CscMatrix {
            num_rows: self.constraints.len(),
            col_ptr,
            row_idx,
            values,
        }
    }

    /// Checks primal feasibility of `x` (non-negativity plus every
    /// constraint) within tolerance `tol`.
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        if x.len() != self.num_variables() {
            return false;
        }
        if x.iter().any(|&v| v < -tol || v.is_nan()) {
            return false;
        }
        self.constraints.iter().all(|c| {
            let lhs: f64 = c.coeffs.iter().map(|&(v, a)| a * x[v]).sum();
            match c.relation {
                Relation::Le => lhs <= c.rhs + tol,
                Relation::Ge => lhs >= c.rhs - tol,
                Relation::Eq => (lhs - c.rhs).abs() <= tol,
            }
        })
    }
}

/// Compressed-sparse-column matrix: the constraint matrix transposed into
/// per-variable columns, consumed by the revised simplex.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CscMatrix {
    /// Number of rows (constraints).
    pub num_rows: usize,
    /// `col_ptr[j]..col_ptr[j+1]` indexes column `j`'s entries.
    pub col_ptr: Vec<usize>,
    /// Row index of each stored entry.
    pub row_idx: Vec<usize>,
    /// Value of each stored entry.
    pub values: Vec<f64>,
}

impl CscMatrix {
    /// Number of columns.
    pub fn num_cols(&self) -> usize {
        self.col_ptr.len() - 1
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.row_idx.len()
    }

    /// The sparse column `j` as parallel `(rows, values)` slices.
    pub fn column(&self, j: usize) -> (&[usize], &[f64]) {
        let lo = self.col_ptr[j];
        let hi = self.col_ptr[j + 1];
        (&self.row_idx[lo..hi], &self.values[lo..hi])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csc_matches_row_storage() {
        let mut lp = LinearProgram::new(Sense::Maximize);
        let x = lp.add_variable(1.0);
        let y = lp.add_variable(2.0);
        let z = lp.add_variable(0.0);
        lp.add_constraint(vec![(x, 1.0), (z, 3.0)], Relation::Le, 4.0);
        lp.add_constraint(vec![(y, -2.0)], Relation::Ge, -1.0);
        lp.add_constraint(vec![(x, 5.0), (y, 6.0), (z, 7.0)], Relation::Eq, 8.0);
        let csc = lp.to_csc();
        assert_eq!(csc.num_rows, 3);
        assert_eq!(csc.num_cols(), 3);
        assert_eq!(csc.nnz(), 6);
        let (rows_x, vals_x) = csc.column(x);
        assert_eq!(rows_x, &[0, 2]);
        assert_eq!(vals_x, &[1.0, 5.0]);
        let (rows_y, vals_y) = csc.column(y);
        assert_eq!(rows_y, &[1, 2]);
        assert_eq!(vals_y, &[-2.0, 6.0]);
        let (rows_z, vals_z) = csc.column(z);
        assert_eq!(rows_z, &[0, 2]);
        assert_eq!(vals_z, &[3.0, 7.0]);
    }

    #[test]
    fn build_small_lp() {
        let mut lp = LinearProgram::new(Sense::Maximize);
        let x = lp.add_variable(3.0);
        let y = lp.add_variable(2.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Le, 4.0);
        lp.add_constraint(vec![(x, 1.0)], Relation::Le, 2.0);
        assert_eq!(lp.num_variables(), 2);
        assert_eq!(lp.num_constraints(), 2);
        assert_eq!(lp.objective_value(&[2.0, 2.0]), 10.0);
        assert!(lp.is_feasible(&[2.0, 2.0], 1e-9));
        assert!(!lp.is_feasible(&[3.0, 2.0], 1e-9));
        assert!(!lp.is_feasible(&[-0.1, 0.0], 1e-9));
    }

    #[test]
    fn duplicate_coefficients_are_merged() {
        let mut lp = LinearProgram::new(Sense::Maximize);
        let x = lp.add_variable(1.0);
        let c = lp.add_constraint(vec![(x, 1.0), (x, 2.0)], Relation::Le, 6.0);
        assert_eq!(lp.constraints()[c].coeffs, vec![(x, 3.0)]);
        assert!(lp.is_feasible(&[2.0], 1e-9));
        assert!(!lp.is_feasible(&[2.1], 1e-9));
    }

    #[test]
    fn equality_and_ge_feasibility() {
        let mut lp = LinearProgram::new(Sense::Minimize);
        let x = lp.add_variable(1.0);
        let y = lp.add_variable(1.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Eq, 3.0);
        lp.add_constraint(vec![(y, 1.0)], Relation::Ge, 1.0);
        assert!(lp.is_feasible(&[2.0, 1.0], 1e-9));
        assert!(!lp.is_feasible(&[2.0, 0.5], 1e-9));
        assert!(!lp.is_feasible(&[3.0, 1.0], 1e-9));
    }

    #[test]
    #[should_panic]
    fn unknown_variable_rejected() {
        let mut lp = LinearProgram::new(Sense::Maximize);
        lp.add_constraint(vec![(0, 1.0)], Relation::Le, 1.0);
    }
}
