//! A dense two-phase primal simplex solver.
//!
//! The solver targets the moderate problem sizes produced by the auction
//! relaxations (hundreds to a few thousand rows/columns). It keeps the full
//! tableau `[B⁻¹A | B⁻¹b]` in memory, uses Dantzig pricing with a Bland's-rule
//! fallback to guarantee termination, and reports dual values which the
//! auction layer converts into bidder-specific channel prices.
//!
//! Packing LPs (all `≤` constraints with non-negative right-hand sides) are
//! detected automatically and start from the all-slack basis, skipping
//! phase 1 entirely; this covers the relaxations (1) and (4) of the paper.

use crate::problem::{LinearProgram, Relation, Sense};
use serde::{Deserialize, Serialize};

/// Termination status of a solve.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum LpStatus {
    /// An optimal basic solution was found.
    Optimal,
    /// The constraints admit no feasible point.
    Infeasible,
    /// The objective is unbounded over the feasible region.
    Unbounded,
    /// The iteration limit was hit before optimality was proven.
    IterationLimit,
}

/// Result of a simplex solve.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LpSolution {
    /// Termination status.
    pub status: LpStatus,
    /// Objective value in the problem's original sense (meaningful only when
    /// `status == Optimal` or `IterationLimit`).
    pub objective: f64,
    /// Primal values indexed by variable.
    pub x: Vec<f64>,
    /// Dual values indexed by constraint, in the convention that strong
    /// duality `Σ_i duals[i] · rhs[i] = objective` holds at optimality.
    pub duals: Vec<f64>,
    /// Number of simplex pivots performed (both phases).
    pub iterations: usize,
}

/// Solver options.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SimplexOptions {
    /// Numerical tolerance for feasibility, pricing and pivoting decisions.
    pub tolerance: f64,
    /// Maximum number of pivots across both phases (0 means automatic:
    /// `200 · (m + n) + 10_000`).
    pub max_iterations: usize,
    /// After this many consecutive pivots without objective improvement the
    /// solver switches to Bland's rule to escape potential cycling.
    pub stall_threshold: usize,
}

impl Default for SimplexOptions {
    fn default() -> Self {
        SimplexOptions {
            tolerance: 1e-9,
            max_iterations: 0,
            stall_threshold: 64,
        }
    }
}

/// Solves a linear program with the two-phase primal simplex method.
pub fn solve(lp: &LinearProgram, options: &SimplexOptions) -> LpSolution {
    Tableau::build(lp, options).solve()
}

struct Tableau<'a> {
    lp: &'a LinearProgram,
    tol: f64,
    max_iterations: usize,
    stall_threshold: usize,
    m: usize,
    /// total number of columns (original + slack + surplus + artificial)
    n_total: usize,
    n_original: usize,
    /// row-major tableau, m rows × (n_total + 1); last column is the rhs
    t: Vec<f64>,
    /// objective coefficients (maximization form) for all columns
    cost: Vec<f64>,
    /// basis variable of each row
    basis: Vec<usize>,
    /// first artificial column index (columns ≥ this are artificial)
    first_artificial: usize,
    /// per original constraint: the identity column created for it and the
    /// sign applied when normalizing the rhs
    identity_col: Vec<usize>,
    row_sign: Vec<f64>,
    iterations: usize,
}

impl<'a> Tableau<'a> {
    fn build(lp: &'a LinearProgram, options: &SimplexOptions) -> Self {
        let m = lp.num_constraints();
        let n = lp.num_variables();

        // Count extra columns.
        let mut num_slack = 0usize;
        let mut num_surplus = 0usize;
        let mut num_artificial = 0usize;
        // effective relation after normalizing rhs >= 0
        let mut eff: Vec<(Relation, f64)> = Vec::with_capacity(m);
        for c in lp.constraints() {
            let (rel, sign) = if c.rhs < 0.0 {
                let flipped = match c.relation {
                    Relation::Le => Relation::Ge,
                    Relation::Ge => Relation::Le,
                    Relation::Eq => Relation::Eq,
                };
                (flipped, -1.0)
            } else {
                (c.relation, 1.0)
            };
            match rel {
                Relation::Le => num_slack += 1,
                Relation::Ge => {
                    num_surplus += 1;
                    num_artificial += 1;
                }
                Relation::Eq => num_artificial += 1,
            }
            eff.push((rel, sign));
        }

        let n_total = n + num_slack + num_surplus + num_artificial;
        let width = n_total + 1;
        let mut t = vec![0.0; m * width];
        let mut basis = vec![0usize; m];
        let mut identity_col = vec![0usize; m];
        let mut row_sign = vec![1.0; m];

        let slack_base = n;
        let surplus_base = n + num_slack;
        let artificial_base = n + num_slack + num_surplus;
        let mut next_slack = slack_base;
        let mut next_surplus = surplus_base;
        let mut next_artificial = artificial_base;

        for (i, c) in lp.constraints().iter().enumerate() {
            let (rel, sign) = eff[i];
            row_sign[i] = sign;
            let row = &mut t[i * width..(i + 1) * width];
            for &(v, a) in &c.coeffs {
                row[v] += sign * a;
            }
            row[n_total] = sign * c.rhs;
            match rel {
                Relation::Le => {
                    row[next_slack] = 1.0;
                    basis[i] = next_slack;
                    identity_col[i] = next_slack;
                    next_slack += 1;
                }
                Relation::Ge => {
                    row[next_surplus] = -1.0;
                    row[next_artificial] = 1.0;
                    basis[i] = next_artificial;
                    identity_col[i] = next_artificial;
                    next_surplus += 1;
                    next_artificial += 1;
                }
                Relation::Eq => {
                    row[next_artificial] = 1.0;
                    basis[i] = next_artificial;
                    identity_col[i] = next_artificial;
                    next_artificial += 1;
                }
            }
        }

        // Maximization costs for the original problem.
        let mut cost = vec![0.0; n_total];
        let sense_sign = match lp.sense() {
            Sense::Maximize => 1.0,
            Sense::Minimize => -1.0,
        };
        for (v, &c) in lp.objective().iter().enumerate() {
            cost[v] = sense_sign * c;
        }

        let max_iterations = if options.max_iterations == 0 {
            200 * (m + n_total) + 10_000
        } else {
            options.max_iterations
        };

        Tableau {
            lp,
            tol: options.tolerance,
            max_iterations,
            stall_threshold: options.stall_threshold,
            m,
            n_total,
            n_original: n,
            t,
            cost,
            basis,
            first_artificial: artificial_base,
            identity_col,
            row_sign,
            iterations: 0,
        }
    }

    #[inline]
    fn width(&self) -> usize {
        self.n_total + 1
    }

    #[inline]
    fn at(&self, r: usize, c: usize) -> f64 {
        self.t[r * self.width() + c]
    }

    fn objective_of_basis(&self, cost: &[f64]) -> f64 {
        (0..self.m)
            .map(|r| cost[self.basis[r]] * self.at(r, self.n_total))
            .sum()
    }

    /// Runs simplex iterations with the given cost vector and a predicate for
    /// columns allowed to enter the basis. Returns `None` on success (optimal
    /// for this cost) or `Some(status)` if unbounded / iteration limit.
    fn iterate(&mut self, cost: &[f64], allow_enter: impl Fn(usize) -> bool) -> Option<LpStatus> {
        let width = self.width();
        let mut stall = 0usize;
        let mut last_obj = self.objective_of_basis(cost);
        loop {
            if self.iterations >= self.max_iterations {
                return Some(LpStatus::IterationLimit);
            }
            // y = c_B^T B^{-1} is implicit: reduced cost of column j is
            // cost[j] - sum_r cost[basis[r]] * t[r][j].
            let mut entering: Option<usize> = None;
            let use_bland = stall >= self.stall_threshold;
            let mut best_rc = self.tol;
            for j in 0..self.n_total {
                if !allow_enter(j) {
                    continue;
                }
                // skip basic columns (their reduced cost is 0)
                // (cheap test: basic columns always have rc == 0, no need to skip explicitly)
                let mut rc = cost[j];
                for r in 0..self.m {
                    let cb = cost[self.basis[r]];
                    if cb != 0.0 {
                        rc -= cb * self.t[r * width + j];
                    }
                }
                if rc > self.tol {
                    if use_bland {
                        entering = Some(j);
                        break;
                    }
                    if rc > best_rc {
                        best_rc = rc;
                        entering = Some(j);
                    }
                }
            }
            let Some(e) = entering else {
                return None; // optimal for this cost vector
            };

            // Ratio test.
            let mut leaving: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for r in 0..self.m {
                let a = self.t[r * width + e];
                if a > self.tol {
                    let ratio = self.t[r * width + self.n_total] / a;
                    let better = ratio < best_ratio - self.tol
                        || (ratio < best_ratio + self.tol
                            && leaving.map(|l| self.basis[r] < self.basis[l]).unwrap_or(true));
                    if better {
                        best_ratio = ratio;
                        leaving = Some(r);
                    }
                }
            }
            let Some(l) = leaving else {
                return Some(LpStatus::Unbounded);
            };

            self.pivot(l, e);
            self.iterations += 1;

            let obj = self.objective_of_basis(cost);
            if obj > last_obj + self.tol {
                stall = 0;
            } else {
                stall += 1;
            }
            last_obj = obj;
        }
    }

    fn pivot(&mut self, row: usize, col: usize) {
        let width = self.width();
        let pivot_value = self.t[row * width + col];
        debug_assert!(pivot_value.abs() > 1e-12, "pivot element too small");
        // normalize pivot row
        let inv = 1.0 / pivot_value;
        for j in 0..width {
            self.t[row * width + j] *= inv;
        }
        // eliminate the column from all other rows
        for r in 0..self.m {
            if r == row {
                continue;
            }
            let factor = self.t[r * width + col];
            if factor != 0.0 {
                for j in 0..width {
                    let delta = factor * self.t[row * width + j];
                    self.t[r * width + j] -= delta;
                }
                // clamp tiny residues on the pivot column to exactly zero
                self.t[r * width + col] = 0.0;
            }
        }
        self.basis[row] = col;
    }

    fn solve(mut self) -> LpSolution {
        let has_artificials = self.first_artificial < self.n_total;

        if has_artificials {
            // Phase 1: maximize -(sum of artificials).
            let mut phase1_cost = vec![0.0; self.n_total];
            for j in self.first_artificial..self.n_total {
                phase1_cost[j] = -1.0;
            }
            if let Some(status) = self.iterate(&phase1_cost, |_| true) {
                // Unbounded cannot happen in phase 1 (objective bounded by 0),
                // so this is an iteration limit.
                return self.extract(status);
            }
            let phase1_obj = self.objective_of_basis(&phase1_cost);
            if phase1_obj < -1e-6 {
                return self.extract(LpStatus::Infeasible);
            }
            self.drive_out_artificials();
        }

        // Phase 2 with the original costs; artificial columns may not enter.
        let cost = self.cost.clone();
        let first_artificial = self.first_artificial;
        let status = match self.iterate(&cost, |j| j < first_artificial) {
            None => LpStatus::Optimal,
            Some(s) => s,
        };
        self.extract(status)
    }

    /// After phase 1, pivots basic artificial variables (at value 0) out of
    /// the basis where possible so that phase 2 starts from a clean basis.
    fn drive_out_artificials(&mut self) {
        let width = self.width();
        for r in 0..self.m {
            if self.basis[r] >= self.first_artificial {
                // find any eligible non-artificial column with nonzero entry
                let mut target = None;
                for j in 0..self.first_artificial {
                    if self.t[r * width + j].abs() > self.tol {
                        target = Some(j);
                        break;
                    }
                }
                if let Some(j) = target {
                    self.pivot(r, j);
                }
                // if no such column exists the row is redundant; the
                // artificial stays basic at value 0 which is harmless because
                // artificials are barred from re-entering in phase 2.
            }
        }
    }

    fn extract(&self, status: LpStatus) -> LpSolution {
        let width = self.width();
        let mut x = vec![0.0; self.n_original];
        for r in 0..self.m {
            let b = self.basis[r];
            if b < self.n_original {
                x[b] = self.t[r * width + self.n_total].max(0.0);
            }
        }
        // duals of the maximization form: y_i = Σ_r cost[basis[r]] * B^{-1}[r][i],
        // and column `identity_col[i]` of the tableau is exactly B^{-1} e_i.
        let sense_sign = match self.lp.sense() {
            Sense::Maximize => 1.0,
            Sense::Minimize => -1.0,
        };
        let mut duals = vec![0.0; self.m];
        for i in 0..self.m {
            let col = self.identity_col[i];
            let mut y = 0.0;
            for r in 0..self.m {
                let cb = self.cost[self.basis[r]];
                if cb != 0.0 {
                    y += cb * self.t[r * width + col];
                }
            }
            duals[i] = sense_sign * self.row_sign[i] * y;
        }
        let objective = self.lp.objective_value(&x);
        LpSolution {
            status,
            objective,
            x,
            duals,
            iterations: self.iterations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{LinearProgram, Relation, Sense};
    use proptest::prelude::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "expected {b}, got {a}");
    }

    #[test]
    fn simple_packing_lp() {
        // max 3x + 2y  s.t. x + y <= 4, x <= 2, y <= 3
        let mut lp = LinearProgram::new(Sense::Maximize);
        let x = lp.add_variable(3.0);
        let y = lp.add_variable(2.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Le, 4.0);
        lp.add_constraint(vec![(x, 1.0)], Relation::Le, 2.0);
        lp.add_constraint(vec![(y, 1.0)], Relation::Le, 3.0);
        let sol = solve(&lp, &SimplexOptions::default());
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.objective, 10.0, 1e-7); // x=2, y=2
        assert_close(sol.x[x], 2.0, 1e-7);
        assert_close(sol.x[y], 2.0, 1e-7);
        assert!(lp.is_feasible(&sol.x, 1e-7));
        // strong duality
        let dual_obj: f64 = sol.duals[0] * 4.0 + sol.duals[1] * 2.0 + sol.duals[2] * 3.0;
        assert_close(dual_obj, 10.0, 1e-7);
        // duals of <= constraints in a maximization are non-negative
        assert!(sol.duals.iter().all(|&d| d >= -1e-9));
    }

    #[test]
    fn degenerate_clique_lp() {
        // The edge-based independent-set LP on a triangle: max x0+x1+x2 with
        // pairwise sums <= 1. Optimum 1.5 (all at 1/2) — the integrality-gap
        // example from Section 2.1.
        let mut lp = LinearProgram::new(Sense::Maximize);
        let v: Vec<usize> = (0..3).map(|_| lp.add_variable(1.0)).collect();
        for i in 0..3 {
            for j in (i + 1)..3 {
                lp.add_constraint(vec![(v[i], 1.0), (v[j], 1.0)], Relation::Le, 1.0);
            }
        }
        let sol = solve(&lp, &SimplexOptions::default());
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.objective, 1.5, 1e-7);
    }

    #[test]
    fn minimization_with_ge_constraints() {
        // min 2x + 3y  s.t. x + y >= 4, x >= 1  -> x = 4, y = 0 ... but check:
        // 2*4=8 vs x=1,y=3 -> 2+9=11. Optimum x=4,y=0, objective 8.
        let mut lp = LinearProgram::new(Sense::Minimize);
        let x = lp.add_variable(2.0);
        let y = lp.add_variable(3.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Ge, 4.0);
        lp.add_constraint(vec![(x, 1.0)], Relation::Ge, 1.0);
        let sol = solve(&lp, &SimplexOptions::default());
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.objective, 8.0, 1e-7);
        assert_close(sol.x[x], 4.0, 1e-7);
        assert_close(sol.x[y], 0.0, 1e-7);
        // strong duality for the minimization
        let dual_obj: f64 = sol.duals[0] * 4.0 + sol.duals[1] * 1.0;
        assert_close(dual_obj, 8.0, 1e-6);
    }

    #[test]
    fn equality_constraints() {
        // max x + 2y s.t. x + y = 3, y <= 2 -> x=1, y=2, objective 5
        let mut lp = LinearProgram::new(Sense::Maximize);
        let x = lp.add_variable(1.0);
        let y = lp.add_variable(2.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Eq, 3.0);
        lp.add_constraint(vec![(y, 1.0)], Relation::Le, 2.0);
        let sol = solve(&lp, &SimplexOptions::default());
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.objective, 5.0, 1e-7);
        assert_close(sol.x[x], 1.0, 1e-7);
        assert_close(sol.x[y], 2.0, 1e-7);
    }

    #[test]
    fn infeasible_problem_detected() {
        // x <= 1 and x >= 2 simultaneously
        let mut lp = LinearProgram::new(Sense::Maximize);
        let x = lp.add_variable(1.0);
        lp.add_constraint(vec![(x, 1.0)], Relation::Le, 1.0);
        lp.add_constraint(vec![(x, 1.0)], Relation::Ge, 2.0);
        let sol = solve(&lp, &SimplexOptions::default());
        assert_eq!(sol.status, LpStatus::Infeasible);
    }

    #[test]
    fn unbounded_problem_detected() {
        let mut lp = LinearProgram::new(Sense::Maximize);
        let x = lp.add_variable(1.0);
        let y = lp.add_variable(0.0);
        lp.add_constraint(vec![(y, 1.0)], Relation::Le, 5.0);
        let _ = x;
        let sol = solve(&lp, &SimplexOptions::default());
        assert_eq!(sol.status, LpStatus::Unbounded);
    }

    #[test]
    fn negative_rhs_is_normalized() {
        // -x <= -2  ===  x >= 2; minimize x -> 2
        let mut lp = LinearProgram::new(Sense::Minimize);
        let x = lp.add_variable(1.0);
        lp.add_constraint(vec![(x, -1.0)], Relation::Le, -2.0);
        let sol = solve(&lp, &SimplexOptions::default());
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.objective, 2.0, 1e-7);
    }

    #[test]
    fn zero_constraint_problem() {
        // no constraints, maximize 0 over x >= 0: optimal 0
        let mut lp = LinearProgram::new(Sense::Maximize);
        lp.add_variable(0.0);
        let sol = solve(&lp, &SimplexOptions::default());
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.objective, 0.0, 1e-9);
    }

    #[test]
    fn duals_price_binding_constraints_only() {
        // max x + y s.t. x <= 1, y <= 1, x + y <= 5 (slack constraint)
        let mut lp = LinearProgram::new(Sense::Maximize);
        let x = lp.add_variable(1.0);
        let y = lp.add_variable(1.0);
        lp.add_constraint(vec![(x, 1.0)], Relation::Le, 1.0);
        lp.add_constraint(vec![(y, 1.0)], Relation::Le, 1.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Le, 5.0);
        let sol = solve(&lp, &SimplexOptions::default());
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.duals[0], 1.0, 1e-7);
        assert_close(sol.duals[1], 1.0, 1e-7);
        assert_close(sol.duals[2], 0.0, 1e-7);
    }

    // Random packing LPs: the simplex solution must be feasible, and weak
    // duality must hold against the reported duals.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_random_packing_lps_are_solved_consistently(
            n in 1usize..8,
            m in 1usize..8,
            obj in prop::collection::vec(0.0f64..10.0, 8),
            rows in prop::collection::vec(prop::collection::vec(0.0f64..5.0, 8), 8),
            rhs in prop::collection::vec(1.0f64..20.0, 8),
        ) {
            let mut lp = LinearProgram::new(Sense::Maximize);
            for j in 0..n {
                lp.add_variable(obj[j]);
            }
            for i in 0..m {
                let coeffs: Vec<(usize, f64)> = (0..n).map(|j| (j, rows[i][j])).collect();
                lp.add_constraint(coeffs, Relation::Le, rhs[i]);
            }
            let sol = solve(&lp, &SimplexOptions::default());
            // packing LPs with x = 0 feasible are never infeasible
            prop_assert_ne!(sol.status, LpStatus::Infeasible);
            if sol.status == LpStatus::Optimal {
                prop_assert!(lp.is_feasible(&sol.x, 1e-6));
                // weak duality: b^T y >= c^T x for feasible dual y
                let dual_obj: f64 = (0..m).map(|i| sol.duals[i] * rhs[i]).sum();
                prop_assert!(dual_obj >= sol.objective - 1e-5);
                // strong duality within tolerance
                prop_assert!((dual_obj - sol.objective).abs() < 1e-4 * (1.0 + sol.objective.abs()));
                // dual feasibility: A^T y >= c (for maximization with <=)
                for j in 0..n {
                    let lhs: f64 = (0..m).map(|i| sol.duals[i] * rows[i][j]).sum();
                    prop_assert!(lhs >= obj[j] - 1e-5);
                }
            }
        }

        #[test]
        fn prop_random_mixed_lps_feasible_solutions(
            n in 1usize..6,
            obj in prop::collection::vec(-5.0f64..5.0, 6),
            rows in prop::collection::vec(prop::collection::vec(-3.0f64..3.0, 6), 6),
            rhs in prop::collection::vec(-5.0f64..5.0, 6),
            rels in prop::collection::vec(0u8..3, 6),
            m in 1usize..6,
        ) {
            let mut lp = LinearProgram::new(Sense::Maximize);
            for j in 0..n {
                lp.add_variable(obj[j]);
            }
            for i in 0..m {
                let coeffs: Vec<(usize, f64)> = (0..n).map(|j| (j, rows[i][j])).collect();
                let rel = match rels[i] % 3 {
                    0 => Relation::Le,
                    1 => Relation::Ge,
                    _ => Relation::Eq,
                };
                lp.add_constraint(coeffs, rel, rhs[i]);
            }
            // always bound the variables so "unbounded" cannot occur and the
            // optimal face is a polytope
            for j in 0..n {
                lp.add_constraint(vec![(j, 1.0)], Relation::Le, 10.0);
            }
            let sol = solve(&lp, &SimplexOptions::default());
            match sol.status {
                LpStatus::Optimal => prop_assert!(lp.is_feasible(&sol.x, 1e-5)),
                LpStatus::Infeasible => { /* fine */ }
                LpStatus::Unbounded => prop_assert!(false, "bounded LP reported unbounded"),
                LpStatus::IterationLimit => { /* extremely unlikely; accept */ }
            }
        }
    }
}
