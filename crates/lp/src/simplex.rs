//! A sparse **revised simplex** engine with pluggable pricing and basis
//! factorization.
//!
//! The seed implementation kept the full dense tableau `[B⁻¹A | B⁻¹b]` and
//! touched all `m · n_total` entries on every pivot; PR 1 replaced it with a
//! revised method around a hard-wired dense product-form inverse and a
//! Dantzig scan. This revision splits the engine along its two classic
//! seams, both selected per solve through [`SimplexOptions`]:
//!
//! * **Pricing** ([`crate::pricing`]) — Dantzig (full scan), Bland (first
//!   improving, terminating), or Devex with a candidate list (partial
//!   pricing; the default). After `stall_threshold` pivots without
//!   objective improvement the core overrides any rule with Bland's rule,
//!   which guarantees termination.
//! * **Basis factorization** ([`crate::basis`]) — the dense product-form
//!   inverse (`O(m²)` per pivot, the PR 1 representation) or a sparse LU
//!   with Bartels–Golub/Forrest–Tomlin-style eta updates (the default),
//!   whose FTRAN/BTRAN cost is proportional to the factor sparsity rather
//!   than `m²`.
//!
//! **Refactorization**: every [`SimplexOptions::refactor_interval`] pivots
//! (and whenever the factorization declines an update or a warm-started
//! basis looks inconsistent) the factorization is rebuilt from the basis
//! columns and the basic solution is recomputed as `x_B = B⁻¹ b`. The
//! number of refactorizations and degenerate pivots is reported in
//! [`LpSolution::stats`] so benches can attribute time per stage.
//!
//! **Warm starts**: [`solve_with_warm_start`] accepts the [`WarmStart`]
//! returned by a previous solve over the *same rows* and resumes from that
//! basis, skipping phase 1 entirely. The state carries the basis *and* its
//! factorization (moved, not copied), so a warm re-solve pays no
//! re-factorization when the engine kind is unchanged. Column generation
//! exploits this: new columns enter nonbasic, so each master re-solve
//! continues from the previous optimum.
//!
//! Packing LPs (all `≤` constraints with non-negative right-hand sides) are
//! detected automatically and start from the all-slack basis, skipping
//! phase 1; general `≥`/`=` rows go through a standard two-phase scheme with
//! artificial variables. The dense tableau solver survives as
//! [`crate::dense`]; property tests assert every pricing × basis
//! combination agrees with it to 1e-6.

use crate::basis::{
    make_factorization, BasisFactorization, BasisKind, SparseColumn, SparseVector, SparsityStats,
};
use crate::pricing::{make_pricing, Pricing, PricingRule};
use crate::problem::{CscMatrix, LinearProgram, Relation, Sense};
use serde::{Deserialize, Serialize};

/// Termination status of a solve.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum LpStatus {
    /// An optimal basic solution was found.
    Optimal,
    /// The constraints admit no feasible point.
    Infeasible,
    /// The objective is unbounded over the feasible region.
    Unbounded,
    /// The iteration limit was hit before optimality was proven.
    IterationLimit,
}

/// Per-solve engine statistics (exposed up the stack as
/// `RelaxationInfo` so benches can attribute time per stage).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SolveStats {
    /// Pricing rule that ran.
    pub pricing: PricingRule,
    /// Basis factorization that ran.
    pub basis: BasisKind,
    /// Simplex pivots across both phases.
    pub iterations: usize,
    /// Factorization rebuilds, **total** (scheduled periodic hygiene plus
    /// stability-forced; the forced subset is
    /// [`forced_refactorizations`](Self::forced_refactorizations)).
    pub refactorizations: usize,
    /// Stability-forced factorization rebuilds: the representation declined
    /// a pivot update (tiny pivot, full eta file, unstable FT diagonal) or a
    /// numerically degenerate direction forced a rebuild-and-retry. The
    /// scheduled-hygiene count is `refactorizations − forced_refactorizations`.
    pub forced_refactorizations: usize,
    /// Pivots whose leaving variable was already at zero.
    pub degenerate_pivots: usize,
    /// Dual-simplex reoptimization pivots ([`crate::dual`]) that repaired
    /// primal feasibility after row additions before this (primal) solve
    /// resumed. Always 0 on the plain primal path.
    pub dual_pivots: usize,
    /// FTRANs answered on the hyper-sparse (Gilbert–Peierls) path, whose
    /// cost was proportional to the solve graph reached from the RHS
    /// support rather than to `m`.
    pub ftran_sparse_hits: usize,
    /// FTRANs that bailed to the dense kernel (result density above the
    /// cutoff, or the factorization kind has no sparse path).
    pub ftran_dense_fallbacks: usize,
    /// BTRANs answered on the hyper-sparse path (unit-RHS pivot rows).
    pub btran_sparse_hits: usize,
    /// BTRANs that bailed to the dense kernel.
    pub btran_dense_fallbacks: usize,
    /// Mean result density (pattern length / m) across all tracked
    /// FTRAN/BTRAN solves; dense fallbacks count as density 1.0. Reads 1.0
    /// when no solves were tracked (e.g. sparsity disabled).
    pub avg_result_density: f64,
}

impl Default for SolveStats {
    fn default() -> Self {
        SolveStats {
            pricing: PricingRule::Dantzig,
            basis: BasisKind::ProductForm,
            iterations: 0,
            refactorizations: 0,
            forced_refactorizations: 0,
            degenerate_pivots: 0,
            dual_pivots: 0,
            ftran_sparse_hits: 0,
            ftran_dense_fallbacks: 0,
            btran_sparse_hits: 0,
            btran_dense_fallbacks: 0,
            avg_result_density: 1.0,
        }
    }
}

/// Result of a simplex solve.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LpSolution {
    /// Termination status.
    pub status: LpStatus,
    /// Objective value in the problem's original sense (meaningful only when
    /// `status == Optimal` or `IterationLimit`).
    pub objective: f64,
    /// Primal values indexed by variable.
    pub x: Vec<f64>,
    /// Dual values indexed by constraint, in the convention that strong
    /// duality `Σ_i duals[i] · rhs[i] = objective` holds at optimality.
    pub duals: Vec<f64>,
    /// Number of simplex pivots performed (both phases).
    pub iterations: usize,
    /// Engine statistics for this solve.
    pub stats: SolveStats,
}

/// Solver options.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SimplexOptions {
    /// Numerical tolerance for feasibility, pricing and pivoting decisions.
    pub tolerance: f64,
    /// Maximum number of pivots across both phases. `0` means automatic:
    /// `200 · (m + n_total) + 10_000`, recomputed from the problem actually
    /// being solved — so in column generation the budget grows with the
    /// restricted master's *current* column count rather than staying pinned
    /// at the seed LP's size.
    pub max_iterations: usize,
    /// After this many consecutive pivots without objective improvement the
    /// solver switches to Bland's rule to escape potential cycling.
    pub stall_threshold: usize,
    /// Rebuild the basis factorization after this many updates (numerical
    /// hygiene). `0` disables periodic refactorization (the factorization
    /// may still force one by declining an update).
    pub refactor_interval: usize,
    /// Pricing rule (entering-column choice).
    pub pricing: PricingRule,
    /// Basis factorization kind.
    pub basis: BasisKind,
    /// Route FTRAN/BTRAN through the hyper-sparse (Gilbert–Peierls) solves
    /// and keep pivot columns / pivot rows in sparse form through the ratio
    /// test and the pricing updates. `false` restores the dense kernels
    /// everywhere (the pre-sparsity behaviour; kept as an A/B lever for
    /// benches and as a numerical escape hatch).
    pub hyper_sparse: bool,
}

impl Default for SimplexOptions {
    /// The default engine is **data-driven**: steepest-edge pricing over
    /// the Forrest–Tomlin factorization won the multi-seed medians of the
    /// `engine_grid` measurement at every size from n = 200 up (n = 800:
    /// 70 ms vs 419 ms for `lu+dantzig`, the previous best; n = 2000:
    /// 0.57 s vs 6.6 s), by combining the fewest pivots (exact reference
    /// weights) with bounded-fill FTRAN/BTRAN.
    fn default() -> Self {
        SimplexOptions {
            tolerance: 1e-9,
            max_iterations: 0,
            stall_threshold: 64,
            refactor_interval: 256,
            pricing: PricingRule::SteepestEdge,
            basis: BasisKind::ForrestTomlin,
            hyper_sparse: true,
        }
    }
}

impl SimplexOptions {
    /// The PR 1 engine (Dantzig pricing over a dense product-form inverse):
    /// the comparison baseline in the `e13_lp_solver` bench grid.
    pub fn product_form_dantzig() -> Self {
        SimplexOptions {
            pricing: PricingRule::Dantzig,
            basis: BasisKind::ProductForm,
            ..Default::default()
        }
    }

    /// Returns a copy with the given engine selection.
    pub fn with_engine(mut self, pricing: PricingRule, basis: BasisKind) -> Self {
        self.pricing = pricing;
        self.basis = basis;
        self
    }

    /// Returns a copy with the hyper-sparse solve paths toggled.
    pub fn with_hyper_sparse(mut self, on: bool) -> Self {
        self.hyper_sparse = on;
        self
    }
}

/// Identity of a basis member, stable across re-solves of a problem whose
/// rows are fixed but whose column set grows (the restricted master of
/// column generation).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum BasisVar {
    /// Structural variable `j` of the [`LinearProgram`].
    Structural(usize),
    /// Slack of row `i` (a `≤` row after rhs normalization).
    Slack(usize),
    /// Surplus of row `i` (a `≥` row after rhs normalization).
    Surplus(usize),
    /// Artificial of row `i` (`≥` or `=` rows; basic only at value 0 after
    /// phase 1, or marking a redundant row).
    Artificial(usize),
}

/// Resumable solver state: the optimal basis of a previous solve together
/// with its factorization.
///
/// Valid for re-solves of an LP with the **same constraint rows** (same
/// relations and right-hand sides); the column set may have grown, because
/// new columns start nonbasic and therefore do not touch `B`. This is
/// exactly the restricted-master situation in column generation.
#[derive(Clone, Debug)]
pub struct WarmStart {
    /// One basis member per row.
    pub basis: Vec<BasisVar>,
    /// The factorization matching `basis` (moved in and out of the solver,
    /// never copied on the warm path).
    factor: Box<dyn BasisFactorization>,
}

impl WarmStart {
    /// Assembles a state from a basis and a matching factorization (used by
    /// [`crate::dual`], which maintains both itself).
    pub(crate) fn from_parts(basis: Vec<BasisVar>, factor: Box<dyn BasisFactorization>) -> Self {
        WarmStart { basis, factor }
    }

    /// Number of rows this state was built for.
    pub fn num_rows(&self) -> usize {
        self.basis.len()
    }

    /// Which basis representation the state carries.
    pub fn basis_kind(&self) -> BasisKind {
        self.factor.kind()
    }

    /// Keeps the basis but drops the factorization, forcing the next solve
    /// to refactorize from the *target problem's* columns.
    ///
    /// This is the sound way to seed a **different** problem (another
    /// channel's master, the next edge LP in a sweep): the basis identities
    /// carry over, but the stored `B⁻¹` was computed from the donor's
    /// constraint matrix and silently priced the new problem wrong when the
    /// matrices differ. Re-solving the *same* rows with grown columns (the
    /// restricted-master path) should keep the factorization and not call
    /// this.
    pub fn into_basis_only(self) -> WarmStart {
        WarmStart {
            factor: make_factorization(self.factor.kind()),
            basis: self.basis,
        }
    }
}

/// Solves a linear program with the sparse revised simplex method.
pub fn solve(lp: &LinearProgram, options: &SimplexOptions) -> LpSolution {
    solve_with_warm_start(lp, options, None).0
}

/// Solves a linear program, optionally resuming from the basis of a
/// previous solve over the same rows, and returns the solution together
/// with the final basis for future warm starts.
///
/// The state is taken **by value**: its factorization is moved into the
/// solver and moved back out, so a warm re-solve never copies it (at master
/// sizes of ~10³ rows those copies would dominate the handful of pivots a
/// warm re-solve actually needs). A warm start whose factorization kind
/// differs from [`SimplexOptions::basis`] is converted by one
/// refactorization from the basis columns.
pub fn solve_with_warm_start(
    lp: &LinearProgram,
    options: &SimplexOptions,
    warm: Option<WarmStart>,
) -> (LpSolution, WarmStart) {
    let mut solver = Revised::build(lp, options);
    let status = solver.run(warm);
    let solution = solver.extract(status);
    let state = solver.into_warm_start();
    (solution, state)
}

struct Revised<'a> {
    lp: &'a LinearProgram,
    tol: f64,
    max_iterations: usize,
    stall_threshold: usize,
    refactor_interval: usize,
    pricing_rule: PricingRule,
    basis_kind: BasisKind,

    m: usize,
    n: usize,
    n_total: usize,
    /// structural columns with row-normalization signs already applied
    cols: CscMatrix,
    /// per-row sign applied to normalize rhs ≥ 0
    row_sign: Vec<f64>,
    /// normalized rhs (≥ 0)
    b: Vec<f64>,
    /// layout of logical columns (index into the global column space)
    slack_col: Vec<Option<usize>>,
    surplus_col: Vec<Option<usize>>,
    art_col: Vec<Option<usize>>,
    /// inverse layout: what each global column is
    kind: Vec<BasisVar>,
    first_artificial: usize,
    /// maximization costs per global column (original objective)
    cost: Vec<f64>,
    /// per global column: may it enter a basis? `false` for structural
    /// variables fixed at zero ([`LinearProgram::fix_variables_at_zero`]);
    /// logical columns are always enterable. A fixed column arriving basic
    /// through a warm start may stay basic until it leaves naturally.
    enterable: Vec<bool>,

    /// basis member (global column index) per row
    basis: Vec<usize>,
    in_basis: Vec<bool>,
    /// pluggable basis factorization
    factor: Box<dyn BasisFactorization>,
    /// current basic solution B⁻¹ b
    xb: Vec<f64>,

    /// hyper-sparse FTRAN/BTRAN + sparse ratio test enabled
    /// ([`SimplexOptions::hyper_sparse`])
    hyper_sparse: bool,
    /// Factorization sparsity counters at solve start (the factorization's
    /// counters are monotone over its lifetime, which for a warm-started
    /// solve began in a *previous* solve); [`Revised::extract`] reports the
    /// delta since this snapshot.
    sparsity_baseline: SparsityStats,

    iterations: usize,
    refactorizations: usize,
    forced_refactorizations: usize,
    degenerate_pivots: usize,
    /// Set when a mid-solve refactorization found the current basis
    /// numerically singular (the factorization is then empty, per the
    /// [`BasisFactorization::refactor`] contract). [`Revised::run`] answers
    /// with one cold restart — the collapse reflects numerical breakdown of
    /// the pivot path, not the LP.
    factor_failed: bool,
}

impl<'a> Revised<'a> {
    fn build(lp: &'a LinearProgram, options: &SimplexOptions) -> Self {
        let m = lp.num_constraints();
        let n = lp.num_variables();

        let mut row_sign = vec![1.0f64; m];
        let mut b = vec![0.0f64; m];
        let mut eff: Vec<Relation> = Vec::with_capacity(m);
        for (i, c) in lp.constraints().iter().enumerate() {
            let (rel, sign) = if c.rhs < 0.0 {
                let flipped = match c.relation {
                    Relation::Le => Relation::Ge,
                    Relation::Ge => Relation::Le,
                    Relation::Eq => Relation::Eq,
                };
                (flipped, -1.0)
            } else {
                (c.relation, 1.0)
            };
            row_sign[i] = sign;
            b[i] = sign * c.rhs;
            eff.push(rel);
        }

        // Structural columns in CSC form with the row signs folded in.
        let mut cols = lp.to_csc();
        for (val, &row) in cols.values.iter_mut().zip(cols.row_idx.iter()) {
            *val *= row_sign[row];
        }

        // Logical column layout: slacks, then surpluses, then artificials —
        // the same index discipline as the dense solver, so Bland's rule
        // visits columns in the same order.
        let mut slack_col = vec![None; m];
        let mut surplus_col = vec![None; m];
        let mut art_col = vec![None; m];
        let mut kind: Vec<BasisVar> = (0..n).map(BasisVar::Structural).collect();
        let mut next = n;
        for (i, rel) in eff.iter().enumerate() {
            if matches!(rel, Relation::Le) {
                slack_col[i] = Some(next);
                kind.push(BasisVar::Slack(i));
                next += 1;
            }
        }
        for (i, rel) in eff.iter().enumerate() {
            if matches!(rel, Relation::Ge) {
                surplus_col[i] = Some(next);
                kind.push(BasisVar::Surplus(i));
                next += 1;
            }
        }
        let first_artificial = next;
        for (i, rel) in eff.iter().enumerate() {
            if matches!(rel, Relation::Ge | Relation::Eq) {
                art_col[i] = Some(next);
                kind.push(BasisVar::Artificial(i));
                next += 1;
            }
        }
        let n_total = next;

        let sense_sign = match lp.sense() {
            Sense::Maximize => 1.0,
            Sense::Minimize => -1.0,
        };
        let mut cost = vec![0.0f64; n_total];
        for (v, &c) in lp.objective().iter().enumerate() {
            cost[v] = sense_sign * c;
        }

        let mut enterable = vec![true; n_total];
        for (v, e) in enterable.iter_mut().enumerate().take(n) {
            *e = !lp.is_variable_fixed(v);
        }

        let max_iterations = if options.max_iterations == 0 {
            200 * (m + n_total) + 10_000
        } else {
            options.max_iterations
        };

        Revised {
            lp,
            tol: options.tolerance,
            max_iterations,
            stall_threshold: options.stall_threshold,
            refactor_interval: options.refactor_interval,
            pricing_rule: options.pricing,
            basis_kind: options.basis,
            m,
            n,
            n_total,
            cols,
            row_sign,
            b,
            slack_col,
            surplus_col,
            art_col,
            kind,
            first_artificial,
            cost,
            enterable,
            basis: Vec::new(),
            in_basis: vec![false; n_total],
            factor: make_factorization(options.basis),
            xb: Vec::new(),
            hyper_sparse: options.hyper_sparse,
            sparsity_baseline: SparsityStats::default(),
            iterations: 0,
            refactorizations: 0,
            forced_refactorizations: 0,
            degenerate_pivots: 0,
            factor_failed: false,
        }
    }

    /// Visits the sparse entries of global column `j` (signs applied).
    #[inline]
    fn for_each_entry(&self, j: usize, mut f: impl FnMut(usize, f64)) {
        match self.kind[j] {
            BasisVar::Structural(v) => {
                let (rows, vals) = self.cols.column(v);
                for (&r, &a) in rows.iter().zip(vals.iter()) {
                    if a != 0.0 {
                        f(r, a);
                    }
                }
            }
            BasisVar::Slack(i) | BasisVar::Artificial(i) => f(i, 1.0),
            BasisVar::Surplus(i) => f(i, -1.0),
        }
    }

    /// Materializes global column `j` as a sparse `(row, value)` vector.
    fn sparse_column(&self, j: usize) -> SparseColumn {
        let mut col = SparseColumn::new();
        self.for_each_entry(j, |r, v| col.push((r, v)));
        col
    }

    /// Maps a stable basis identity to the current global column index.
    fn column_of(&self, var: BasisVar) -> Option<usize> {
        match var {
            BasisVar::Structural(j) => (j < self.n).then_some(j),
            BasisVar::Slack(i) => self.slack_col.get(i).copied().flatten(),
            BasisVar::Surplus(i) => self.surplus_col.get(i).copied().flatten(),
            BasisVar::Artificial(i) => self.art_col.get(i).copied().flatten(),
        }
    }

    /// Installs the cold-start identity basis (slack or artificial per row).
    fn cold_basis(&mut self) {
        self.basis = (0..self.m)
            .map(|i| {
                self.slack_col[i]
                    .or(self.art_col[i])
                    .expect("every row creates an identity column")
            })
            .collect();
        self.in_basis = vec![false; self.n_total];
        for &c in &self.basis {
            self.in_basis[c] = true;
        }
        // Identity-creating columns are exactly e_i, so B = I; factorizing
        // it is trivial for every representation.
        let ok = self.refactor();
        debug_assert!(ok, "the identity basis cannot be singular");
        self.xb = self.b.clone();
        // Installing the starting basis is not a hygiene event: the stats
        // counter covers only rebuilds *during* the solve, so cold and warm
        // solves of the same work read the same.
        self.refactorizations = 0;
        self.forced_refactorizations = 0;
    }

    /// Attempts to install a warm-start basis; returns `false` if the state
    /// does not fit this problem (the caller then cold-starts, overwriting
    /// any partial state installed here).
    fn try_warm_basis(&mut self, warm: WarmStart) -> bool {
        if warm.basis.len() != self.m {
            return false;
        }
        let mut basis = Vec::with_capacity(self.m);
        for &var in &warm.basis {
            match self.column_of(var) {
                Some(c) => basis.push(c),
                None => return false,
            }
        }
        let mut in_basis = vec![false; self.n_total];
        for &c in &basis {
            if in_basis[c] {
                return false; // duplicated member: corrupt state
            }
            in_basis[c] = true;
        }
        self.basis = basis;
        self.in_basis = in_basis;
        if warm.factor.num_rows() == self.m && warm.factor.kind() == self.basis_kind {
            // same engine: adopt the factorization without any rebuild. Its
            // sparsity counters carry history from the donor solve — re-anchor
            // the baseline so extract() reports only this solve's work.
            self.factor = warm.factor;
            self.sparsity_baseline = self.factor.sparsity_stats();
            self.xb = vec![0.0; self.m];
            let (factor, xb) = (&self.factor, &mut self.xb);
            factor.ftran_dense(&self.b, xb);
            // Validate the adopted factorization against *this* problem's
            // basis columns: a state recycled across different constraint
            // matrices (same shape, different coefficients) would price
            // every reduced cost against a stale B⁻¹ and can terminate
            // "optimal" at a wrong vertex. ‖B·x_B − b‖∞ is O(nnz) and
            // catches that; one refactorization repairs it.
            if self.residual_inf_norm() > 1e-6 && !self.refactor() {
                return false;
            }
        } else if !self.refactor() {
            // engine switched (or basis-only seed): one rebuild from the basis
            return false;
        }
        // The rows are supposed to be unchanged, so the previous basic
        // solution must still be (near-)feasible. If it is not — caller
        // reused state across incompatible problems, or drift built up —
        // refactorize once, then give up on the warm start.
        if self.min_xb() < -1e-7 && !(self.refactor() && self.min_xb() >= -1e-7) {
            return false;
        }
        for v in &mut self.xb {
            if *v < 0.0 {
                *v = 0.0;
            }
        }
        // A fixed column that arrived basic may only stay when that is
        // provably harmless (it consumes ≤-row slack only — the packing
        // shape). Otherwise reject the warm start: the cold start keeps
        // every fixed variable at exactly 0, so covering and minimization
        // shapes report the true fixed-at-zero optimum instead of letting
        // a zero-cost basic column satisfy `≥` rows for free. The value
        // does NOT matter: the `enterable` mask only bars *entering*, so
        // even a fixed column basic at 0 would be free to grow as later
        // pivots of other columns shift the basic solution — e.g. a
        // retired box-stabilization cap column (a −1 coefficient) silently
        // relaxing its row.
        for &c in self.basis.iter() {
            if let BasisVar::Structural(v) = self.kind[c] {
                if self.lp.is_variable_fixed(v) && !self.lp.fixed_value_is_harmless(v) {
                    return false;
                }
            }
        }
        // Adopting/converting the starting basis is install work, not a
        // hygiene rebuild (see cold_basis).
        self.refactorizations = 0;
        self.forced_refactorizations = 0;
        true
    }

    fn min_xb(&self) -> f64 {
        self.xb.iter().cloned().fold(f64::INFINITY, f64::min)
    }

    /// `‖B·x_B − b‖∞` for the current basis and basic solution: a cheap
    /// consistency check that the factorization actually inverts this
    /// problem's basis matrix.
    fn residual_inf_norm(&self) -> f64 {
        let mut residual = self.b.clone();
        for (c, &col) in self.basis.iter().enumerate() {
            let xc = self.xb[c];
            if xc != 0.0 {
                self.for_each_entry(col, |r, v| residual[r] -= v * xc);
            }
        }
        residual.iter().fold(0.0f64, |acc, &r| acc.max(r.abs()))
    }

    /// Rebuilds the factorization from the basis columns and recomputes
    /// `x_B`. Returns `false` if the basis matrix is numerically singular.
    fn refactor(&mut self) -> bool {
        let cols: Vec<SparseColumn> = self.basis.iter().map(|&c| self.sparse_column(c)).collect();
        if !self.factor.refactor(self.m, &cols) {
            self.factor_failed = true;
            return false;
        }
        self.refactorizations += 1;
        if self.xb.len() != self.m {
            self.xb = vec![0.0; self.m];
        }
        let (factor, xb) = (&self.factor, &mut self.xb);
        factor.ftran_dense(&self.b, xb);
        true
    }

    /// FTRAN into a [`SparseVector`]: the hyper-sparse path when enabled
    /// (result indexed below the density cutoff), the dense kernel — with
    /// the counters bypassed — when sparsity is switched off.
    fn ftran_into(&self, j: usize, w: &mut SparseVector, scratch: &mut SparseColumn) {
        scratch.clear();
        self.for_each_entry(j, |r, v| scratch.push((r, v)));
        if self.hyper_sparse {
            self.factor.ftran_sparse_into(scratch, w);
        } else {
            w.begin_dense(self.m);
            self.factor.ftran_sparse(scratch, w.values_mut());
        }
    }

    /// BTRAN of unit vector `e_r` (the pivot row of `B⁻¹`) into a
    /// [`SparseVector`], mirroring [`Revised::ftran_into`]'s gating.
    fn btran_unit_into(&self, r: usize, rho: &mut SparseVector) {
        if self.hyper_sparse {
            self.factor.btran_unit_into(r, rho);
        } else {
            rho.begin_dense(self.m);
            self.factor.btran_unit(r, rho.values_mut());
        }
    }

    /// Reduced cost of column `j` at duals `y`.
    #[inline]
    fn reduced_cost(&self, cost: &[f64], y: &[f64], j: usize) -> f64 {
        let mut rc = cost[j];
        self.for_each_entry(j, |i, a| {
            rc -= y[i] * a;
        });
        rc
    }

    fn objective_of_basis(&self, cost: &[f64]) -> f64 {
        (0..self.m).map(|r| cost[self.basis[r]] * self.xb[r]).sum()
    }

    /// Applies the pivot (leaving row `l`, entering column `e`, direction
    /// `w = B⁻¹ a_e`) to the basic solution, the basis bookkeeping, and the
    /// factorization. Returns `false` only when the factorization declined
    /// the update *and* the recovery refactorization failed.
    fn pivot(&mut self, l: usize, e: usize, w: &SparseVector) -> bool {
        let wl = w.value(l);
        debug_assert!(wl.abs() > 1e-12, "pivot element too small");
        let theta = self.xb[l] / wl;
        let xb = &mut self.xb;
        w.for_each_nonzero(|r, a| {
            if r != l {
                let xr = &mut xb[r];
                *xr -= theta * a;
                if *xr < 0.0 && *xr > -1e-11 {
                    *xr = 0.0;
                }
            }
        });
        self.xb[l] = theta;

        self.in_basis[self.basis[l]] = false;
        self.in_basis[e] = true;
        self.basis[l] = e;

        if !self.factor.update_sparse(l, w) {
            // The representation declined (tiny pivot, full eta file, or an
            // unstable FT diagonal): rebuild from the already-updated basis
            // columns. This is a stability-forced rebuild, not hygiene.
            self.forced_refactorizations += 1;
            return self.refactor();
        }
        true
    }

    /// Runs simplex iterations with the given cost vector, entering filter
    /// and pricing rule. Returns `None` when optimal for this cost, or a
    /// terminal status.
    ///
    /// The duals `y = c_B B⁻¹` are maintained **incrementally** whenever the
    /// pivot row `ρ = e_l B⁻¹` is available (`y' = y + (rc_e / w_l)·ρ`, the
    /// textbook dual update): the pivot row is exactly the BTRAN that Devex
    /// pricing already pays for its weight update, so caching it for the
    /// dual update means a Devex pivot costs **one** BTRAN total instead of
    /// two (the extra-BTRAN gap the ROADMAP measured against Dantzig at
    /// n ≈ 200). Rules that skip the pivot row fall back to recomputing `y`
    /// from scratch each iteration, and optimality claimed under
    /// incrementally updated duals is always re-certified against freshly
    /// computed ones before being returned.
    fn iterate(
        &mut self,
        cost: &[f64],
        allow_enter: impl Fn(usize) -> bool,
        pricer: &mut dyn Pricing,
    ) -> Option<LpStatus> {
        let m = self.m;
        let mut y = vec![0.0f64; m];
        let mut cb = vec![0.0f64; m];
        let mut w = SparseVector::zeros(m);
        let mut rho_buf = SparseVector::zeros(m);
        let mut col_scratch = SparseColumn::new();
        let mut stall = 0usize;
        let mut last_obj = self.objective_of_basis(cost);
        // `y_valid`: y holds (possibly incrementally updated) duals for the
        // current basis. `y_fresh`: y was recomputed by a full BTRAN for the
        // current basis, so an empty pricing scan is a proof of optimality.
        let mut y_valid = false;
        let mut y_fresh = false;
        loop {
            if self.iterations >= self.max_iterations {
                return Some(LpStatus::IterationLimit);
            }
            if self.refactor_interval > 0
                && self.factor.updates_since_refactor() >= self.refactor_interval
            {
                // Debug builds verify the update path against the rebuild it
                // is about to be replaced by: the pivot-updated factors and
                // a from-scratch refactorization must produce the same
                // basic solution (catches FT/eta algebra drift at the site
                // where it would otherwise be silently erased).
                #[cfg(debug_assertions)]
                let xb_updated: Vec<f64> = {
                    let mut v = vec![0.0f64; m];
                    self.factor.ftran_dense(&self.b, &mut v);
                    v
                };
                if !self.refactor() {
                    // A singular rebuild means the factorization had drifted
                    // beyond repair; continuing would price against garbage.
                    return Some(LpStatus::IterationLimit);
                }
                #[cfg(debug_assertions)]
                {
                    let scale = 1.0 + self.xb.iter().fold(0.0f64, |acc, &v| acc.max(v.abs()));
                    for (r, (&upd, &fresh)) in xb_updated.iter().zip(self.xb.iter()).enumerate() {
                        debug_assert!(
                            (upd - fresh).abs() <= 1e-4 * scale,
                            "updated factors disagree with fresh refactor at row {r}: \
                             {upd} vs {fresh}"
                        );
                    }
                }
                // the rebuild resets accumulated drift; so should the duals
                y_valid = false;
                // steepest edge resets its candidate weights to exact norms
                // against the fresh factors (one sparse FTRAN per candidate)
                {
                    let this = &*self;
                    let scratch =
                        std::cell::RefCell::new((SparseVector::zeros(m), SparseColumn::new()));
                    let exact = |j: usize| -> f64 {
                        let (w, cs) = &mut *scratch.borrow_mut();
                        this.ftran_into(j, w, cs);
                        let mut s = 0.0;
                        w.for_each_nonzero(|_, v| s += v * v);
                        s
                    };
                    pricer.notify_refactor(&exact);
                }
            }

            if !y_valid {
                for (r, c) in cb.iter_mut().enumerate() {
                    *c = cost[self.basis[r]];
                }
                self.factor.btran(&cb, &mut y);
                y_valid = true;
                y_fresh = true;
            }

            let use_bland = stall >= self.stall_threshold;
            let select = |this: &Self, y: &[f64], pricer: &mut dyn Pricing| -> Option<usize> {
                let rc = |j: usize| this.reduced_cost(cost, y, j);
                let eligible = |j: usize| !this.in_basis[j] && allow_enter(j);
                if use_bland {
                    // Anti-cycling override: Bland's rule regardless of the
                    // configured pricing (guaranteed to terminate).
                    (0..this.n_total).find(|&j| eligible(j) && rc(j) > this.tol)
                } else {
                    pricer.select_entering(this.n_total, this.tol, &eligible, &rc)
                }
            };
            let e = match select(self, &y, pricer) {
                Some(e) => e,
                None if y_fresh => return None,
                None => {
                    // Optimality under incrementally updated duals is only a
                    // candidate: recompute y exactly and ask again.
                    for (r, c) in cb.iter_mut().enumerate() {
                        *c = cost[self.basis[r]];
                    }
                    self.factor.btran(&cb, &mut y);
                    y_fresh = true;
                    select(self, &y, pricer)?
                }
            };
            // reduced cost of the entering column under the current duals,
            // needed for the incremental dual update after the pivot
            let rc_e = self.reduced_cost(cost, &y, e);

            self.ftran_into(e, &mut w, &mut col_scratch);
            // the FTRAN image is in hand: its squared norm is the exact
            // steepest-edge weight of the entering column, free of charge
            let mut w_norm_sq = 0.0f64;
            w.for_each_nonzero(|_, v| w_norm_sq += v * v);
            pricer.observe_entering(e, w_norm_sq);

            // Ratio test over the pivot column's support only. The default
            // is a two-pass Harris test: pass 1 finds the *relaxed* minimum
            // ratio (each basic value granted `feas` of slack), pass 2 picks
            // the largest-magnitude pivot element whose ratio stays within
            // that bound — trading a harmless O(feas) primal infeasibility
            // for a far better-conditioned pivot on degenerate LPs, where
            // the textbook rule is forced onto whichever tiny pivot attains
            // the exact minimum. Under the Bland override the textbook
            // smallest-ratio / smallest-index rule is kept (the termination
            // guarantee needs it).
            let mut leaving: Option<usize> = None;
            let mut col_max = 0.0f64;
            if use_bland {
                let mut best_ratio = f64::INFINITY;
                w.for_each_nonzero(|r, a| {
                    if a > self.tol {
                        let ratio = self.xb[r] / a;
                        let better = ratio < best_ratio - self.tol
                            || (ratio < best_ratio + self.tol
                                && leaving
                                    .map(|l| self.basis[r] < self.basis[l])
                                    .unwrap_or(true));
                        if better {
                            best_ratio = ratio;
                            leaving = Some(r);
                        }
                    }
                });
            } else {
                let feas = self.tol.max(1e-9);
                let mut theta_max = f64::INFINITY;
                w.for_each_nonzero(|r, a| {
                    if a > self.tol {
                        col_max = col_max.max(a);
                        let bound = (self.xb[r].max(0.0) + feas) / a;
                        if bound < theta_max {
                            theta_max = bound;
                        }
                    }
                });
                if theta_max.is_finite() {
                    let mut best_piv = 0.0f64;
                    w.for_each_nonzero(|r, a| {
                        if a > self.tol && self.xb[r].max(0.0) / a <= theta_max {
                            let better = a > best_piv
                                || (a == best_piv
                                    && leaving
                                        .map(|l| self.basis[r] < self.basis[l])
                                        .unwrap_or(true));
                            if better {
                                best_piv = a;
                                leaving = Some(r);
                            }
                        }
                    });
                }
            }
            let Some(l) = leaving else {
                if !y_fresh {
                    // The entering column was priced under incrementally
                    // updated duals; like the optimality exit, an unbounded
                    // verdict must not rest on drifted reduced costs.
                    // Recompute y and re-price from scratch.
                    for (r, c) in cb.iter_mut().enumerate() {
                        *c = cost[self.basis[r]];
                    }
                    self.factor.btran(&cb, &mut y);
                    y_fresh = true;
                    continue;
                }
                return Some(LpStatus::Unbounded);
            };

            // Harris pivot floor: an absolutely tiny pivot always forces a
            // rebuild-and-retry; a pivot that is merely tiny *relative* to
            // the column's largest eligible element (< 1e-7·col_max) is
            // treated as a drift signal and triggers an early
            // refactorization — but only while there are accumulated updates
            // for the rebuild to undo, so a floor violation against fresh
            // factors is accepted rather than looped on. Both are
            // stability-forced, not hygiene.
            let wl_abs = w.value(l).abs();
            let pivot_floor = (1e-7 * col_max).max(1e-12);
            if wl_abs <= 1e-12 || (wl_abs < pivot_floor && self.factor.updates_since_refactor() > 0)
            {
                self.forced_refactorizations += 1;
                if !self.refactor() {
                    return Some(LpStatus::IterationLimit);
                }
                continue;
            }

            if self.xb[l] <= self.tol {
                self.degenerate_pivots += 1;
            }

            // Devex needs the pivot row of the *outgoing* basis; compute it
            // before the factorization is updated, and only when asked.
            let rho_valid = pricer.wants_pivot_row();
            if rho_valid {
                self.btran_unit_into(l, &mut rho_buf);
            }
            let leaving_col = self.basis[l];
            let wl = w.value(l);

            if !self.pivot(l, e, &w) {
                return Some(LpStatus::IterationLimit);
            }
            self.iterations += 1;

            {
                let rho = &rho_buf;
                let alpha = |j: usize| -> f64 {
                    if !rho_valid {
                        return 0.0;
                    }
                    let mut a = 0.0;
                    self.for_each_entry(j, |i, v| a += rho.value(i) * v);
                    a
                };
                pricer.notify_pivot(e, leaving_col, wl, &alpha);
            }

            if rho_valid {
                // The pivot row was already paid for (Devex weight update):
                // reuse it for the textbook dual update
                // `y' = y + (rc_e / w_l)·ρ` instead of a fresh BTRAN next
                // iteration — over ρ's support only. The update is exact in
                // exact arithmetic; drift is bounded by the refactor-interval
                // reset and the fresh re-certification before any optimality
                // claim.
                let theta_d = rc_e / wl;
                rho_buf.for_each_nonzero(|i, ri| y[i] += theta_d * ri);
                y_fresh = false;
            } else {
                y_valid = false;
            }

            let obj = self.objective_of_basis(cost);
            if obj > last_obj + self.tol {
                stall = 0;
            } else {
                stall += 1;
            }
            last_obj = obj;
        }
    }

    /// Drives phase-1 artificials out of the basis where possible. Returns
    /// `false` only on an unrecoverable factorization failure.
    fn drive_out_artificials(&mut self) -> bool {
        let m = self.m;
        let mut w = SparseVector::zeros(m);
        let mut rho = vec![0.0f64; m];
        let mut col_scratch = SparseColumn::new();
        #[allow(clippy::needless_range_loop)] // r indexes basis, rho and w
        for r in 0..m {
            if !matches!(self.kind[self.basis[r]], BasisVar::Artificial(_)) {
                continue;
            }
            // Find a non-artificial, nonbasic column whose FTRAN has a
            // non-zero pivot element in row r. The pivot element alone is
            // (row r of B⁻¹) · a_j — one BTRAN-unit, then O(nnz) per
            // candidate.
            self.factor.btran_unit(r, &mut rho);
            let mut target = None;
            for j in 0..self.first_artificial {
                if self.in_basis[j] || !self.enterable[j] {
                    continue;
                }
                let mut alpha = 0.0;
                self.for_each_entry(j, |i, a| {
                    alpha += rho[i] * a;
                });
                if alpha.abs() > self.tol {
                    target = Some(j);
                    break;
                }
            }
            if let Some(j) = target {
                self.ftran_into(j, &mut w, &mut col_scratch);
                if w.value(r).abs() > 1e-12 && !self.pivot(r, j, &w) {
                    return false;
                }
            }
            // Otherwise the row is redundant: the artificial stays basic at
            // value 0 and is barred from re-entering in phase 2.
        }
        true
    }

    /// Seeds exact steepest-edge weights for an identity starting basis:
    /// `B = I` makes `‖B⁻¹a_j‖² = ‖a_j‖²`, a pure column scan (no solves).
    fn seed_identity_weights(&self, pricer: &mut dyn Pricing) {
        let norm_sq = |j: usize| -> f64 {
            let mut s = 0.0;
            self.for_each_entry(j, |_, v| s += v * v);
            s
        };
        pricer.seed_reference_weights(self.n_total, &norm_sq);
    }

    fn run(&mut self, warm: Option<WarmStart>) -> LpStatus {
        let status = self.run_attempt(warm);
        if !self.factor_failed {
            return status;
        }
        // The factorization collapsed mid-solve: a refactorization found the
        // current basis numerically singular. Pivots are selected against
        // the *factorized* (drifted) basis, and a run of tiny-pivot steps —
        // degenerate masters with near-duplicate columns do this at depth —
        // can walk the true basis singular while every per-pivot guard
        // passes. The status in hand reflects that breakdown, not the LP:
        // restart once from the cold slack basis with fresh numerics (the
        // restarted path re-prices every column and does not revisit the
        // collapsed basis). Counters accumulate across both attempts — the
        // discarded pivots were real work.
        self.factor_failed = false;
        let (prior_refactors, prior_forced) = (self.refactorizations, self.forced_refactorizations);
        let status = self.run_attempt(None);
        self.refactorizations += prior_refactors;
        self.forced_refactorizations += prior_forced;
        status
    }

    fn run_attempt(&mut self, warm: Option<WarmStart>) -> LpStatus {
        let mut pricer = make_pricing(self.pricing_rule);
        let warm_ok = match warm {
            Some(state) => self.try_warm_basis(state),
            None => false,
        };
        // true while the installed basis is still the cold identity (slack /
        // artificial per row) — the only state where exact steepest-edge
        // weights are free to seed
        let mut basis_is_identity = false;
        if !warm_ok {
            self.cold_basis();
            basis_is_identity = true;
            let has_artificials = self.first_artificial < self.n_total;
            let needs_phase1 = has_artificials
                && self
                    .basis
                    .iter()
                    .any(|&c| matches!(self.kind[c], BasisVar::Artificial(_)));
            if needs_phase1 {
                let mut phase1_cost = vec![0.0f64; self.n_total];
                for c in phase1_cost[self.first_artificial..].iter_mut() {
                    *c = -1.0;
                }
                let enterable = self.enterable.clone();
                pricer.reset(self.n_total);
                self.seed_identity_weights(pricer.as_mut());
                basis_is_identity = false; // phase 1 moves the basis off I
                if let Some(status) = self.iterate(&phase1_cost, |j| enterable[j], pricer.as_mut())
                {
                    // Phase 1 is bounded by 0, so this is an iteration limit.
                    return status;
                }
                let infeasibility = -self.objective_of_basis(&phase1_cost);
                if infeasibility > 1e-6 {
                    return LpStatus::Infeasible;
                }
                if !self.drive_out_artificials() {
                    return LpStatus::IterationLimit;
                }
            }
        }

        // Phase 2 with the original costs; artificials may not (re-)enter,
        // and neither may fixed columns.
        let cost = self.cost.clone();
        let first_artificial = self.first_artificial;
        let enterable = self.enterable.clone();
        pricer.reset(self.n_total);
        if basis_is_identity {
            // packing LPs start phase 2 directly at the slack basis
            self.seed_identity_weights(pricer.as_mut());
        }
        match self.iterate(
            &cost,
            |j| j < first_artificial && enterable[j],
            pricer.as_mut(),
        ) {
            None => LpStatus::Optimal,
            Some(s) => s,
        }
    }

    fn extract(&self, status: LpStatus) -> LpSolution {
        let mut x = vec![0.0f64; self.n];
        for (r, &c) in self.basis.iter().enumerate() {
            if let BasisVar::Structural(j) = self.kind[c] {
                x[j] = self.xb[r].max(0.0);
            }
        }
        let sense_sign = match self.lp.sense() {
            Sense::Maximize => 1.0,
            Sense::Minimize => -1.0,
        };
        // y = c_B B⁻¹ with the original maximization costs, then undo the
        // row normalization signs and the sense flip.
        let cb: Vec<f64> = (0..self.m).map(|r| self.cost[self.basis[r]]).collect();
        let mut y = vec![0.0f64; self.m];
        self.factor.btran(&cb, &mut y);
        let duals: Vec<f64> = (0..self.m)
            .map(|i| sense_sign * self.row_sign[i] * y[i])
            .collect();
        let objective = self.lp.objective_value(&x);
        let sp = self
            .factor
            .sparsity_stats()
            .delta_since(self.sparsity_baseline);
        LpSolution {
            status,
            objective,
            x,
            duals,
            iterations: self.iterations,
            stats: SolveStats {
                pricing: self.pricing_rule,
                basis: self.basis_kind,
                iterations: self.iterations,
                refactorizations: self.refactorizations,
                forced_refactorizations: self.forced_refactorizations,
                degenerate_pivots: self.degenerate_pivots,
                dual_pivots: 0,
                ftran_sparse_hits: sp.ftran_sparse as usize,
                ftran_dense_fallbacks: sp.ftran_dense as usize,
                btran_sparse_hits: sp.btran_sparse as usize,
                btran_dense_fallbacks: sp.btran_dense as usize,
                avg_result_density: sp.avg_density(),
            },
        }
    }

    fn into_warm_start(self) -> WarmStart {
        WarmStart {
            basis: self.basis.iter().map(|&c| self.kind[c]).collect(),
            factor: self.factor,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense;
    use crate::problem::{LinearProgram, Relation, Sense};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Every pricing × basis combination of the engine.
    pub(crate) fn all_engines() -> Vec<SimplexOptions> {
        let mut out = Vec::new();
        for pricing in [
            PricingRule::Dantzig,
            PricingRule::Bland,
            PricingRule::Devex,
            PricingRule::SteepestEdge,
        ] {
            for basis in [
                BasisKind::ProductForm,
                BasisKind::SparseLu,
                BasisKind::ForrestTomlin,
            ] {
                out.push(SimplexOptions::default().with_engine(pricing, basis));
            }
        }
        out
    }

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "expected {b}, got {a}");
    }

    #[test]
    fn simple_packing_lp() {
        // max 3x + 2y  s.t. x + y <= 4, x <= 2, y <= 3
        let mut lp = LinearProgram::new(Sense::Maximize);
        let x = lp.add_variable(3.0);
        let y = lp.add_variable(2.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Le, 4.0);
        lp.add_constraint(vec![(x, 1.0)], Relation::Le, 2.0);
        lp.add_constraint(vec![(y, 1.0)], Relation::Le, 3.0);
        for options in all_engines() {
            let sol = solve(&lp, &options);
            assert_eq!(sol.status, LpStatus::Optimal);
            assert_close(sol.objective, 10.0, 1e-7); // x=2, y=2
            assert_close(sol.x[x], 2.0, 1e-7);
            assert_close(sol.x[y], 2.0, 1e-7);
            assert!(lp.is_feasible(&sol.x, 1e-7));
            // strong duality
            let dual_obj: f64 = sol.duals[0] * 4.0 + sol.duals[1] * 2.0 + sol.duals[2] * 3.0;
            assert_close(dual_obj, 10.0, 1e-7);
            // duals of <= constraints in a maximization are non-negative
            assert!(sol.duals.iter().all(|&d| d >= -1e-9));
            // stats label the engine that actually ran
            assert_eq!(sol.stats.pricing, options.pricing);
            assert_eq!(sol.stats.basis, options.basis);
            assert_eq!(sol.stats.iterations, sol.iterations);
        }
    }

    #[test]
    fn degenerate_clique_lp() {
        // The edge-based independent-set LP on a triangle: max x0+x1+x2 with
        // pairwise sums <= 1. Optimum 1.5 (all at 1/2) — the integrality-gap
        // example from Section 2.1.
        let mut lp = LinearProgram::new(Sense::Maximize);
        let v: Vec<usize> = (0..3).map(|_| lp.add_variable(1.0)).collect();
        for i in 0..3 {
            for j in (i + 1)..3 {
                lp.add_constraint(vec![(v[i], 1.0), (v[j], 1.0)], Relation::Le, 1.0);
            }
        }
        for options in all_engines() {
            let sol = solve(&lp, &options);
            assert_eq!(sol.status, LpStatus::Optimal);
            assert_close(sol.objective, 1.5, 1e-7);
        }
    }

    #[test]
    fn minimization_with_ge_constraints() {
        // min 2x + 3y  s.t. x + y >= 4, x >= 1 -> x=4, y=0, objective 8.
        let mut lp = LinearProgram::new(Sense::Minimize);
        let x = lp.add_variable(2.0);
        let y = lp.add_variable(3.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Ge, 4.0);
        lp.add_constraint(vec![(x, 1.0)], Relation::Ge, 1.0);
        for options in all_engines() {
            let sol = solve(&lp, &options);
            assert_eq!(sol.status, LpStatus::Optimal);
            assert_close(sol.objective, 8.0, 1e-7);
            assert_close(sol.x[x], 4.0, 1e-7);
            assert_close(sol.x[y], 0.0, 1e-7);
            // strong duality for the minimization
            let dual_obj: f64 = sol.duals[0] * 4.0 + sol.duals[1] * 1.0;
            assert_close(dual_obj, 8.0, 1e-6);
        }
    }

    #[test]
    fn equality_constraints() {
        // max x + 2y s.t. x + y = 3, y <= 2 -> x=1, y=2, objective 5
        let mut lp = LinearProgram::new(Sense::Maximize);
        let x = lp.add_variable(1.0);
        let y = lp.add_variable(2.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Eq, 3.0);
        lp.add_constraint(vec![(y, 1.0)], Relation::Le, 2.0);
        for options in all_engines() {
            let sol = solve(&lp, &options);
            assert_eq!(sol.status, LpStatus::Optimal);
            assert_close(sol.objective, 5.0, 1e-7);
            assert_close(sol.x[x], 1.0, 1e-7);
            assert_close(sol.x[y], 2.0, 1e-7);
        }
    }

    #[test]
    fn infeasible_problem_detected() {
        // x <= 1 and x >= 2 simultaneously
        let mut lp = LinearProgram::new(Sense::Maximize);
        let x = lp.add_variable(1.0);
        lp.add_constraint(vec![(x, 1.0)], Relation::Le, 1.0);
        lp.add_constraint(vec![(x, 1.0)], Relation::Ge, 2.0);
        for options in all_engines() {
            let sol = solve(&lp, &options);
            assert_eq!(sol.status, LpStatus::Infeasible);
        }
    }

    #[test]
    fn unbounded_problem_detected() {
        let mut lp = LinearProgram::new(Sense::Maximize);
        let x = lp.add_variable(1.0);
        let y = lp.add_variable(0.0);
        lp.add_constraint(vec![(y, 1.0)], Relation::Le, 5.0);
        let _ = x;
        for options in all_engines() {
            let sol = solve(&lp, &options);
            assert_eq!(sol.status, LpStatus::Unbounded);
        }
    }

    #[test]
    fn negative_rhs_is_normalized() {
        // -x <= -2  ===  x >= 2; minimize x -> 2
        let mut lp = LinearProgram::new(Sense::Minimize);
        let x = lp.add_variable(1.0);
        lp.add_constraint(vec![(x, -1.0)], Relation::Le, -2.0);
        for options in all_engines() {
            let sol = solve(&lp, &options);
            assert_eq!(sol.status, LpStatus::Optimal);
            assert_close(sol.objective, 2.0, 1e-7);
        }
    }

    #[test]
    fn zero_constraint_problem() {
        // no constraints, maximize 0 over x >= 0: optimal 0
        let mut lp = LinearProgram::new(Sense::Maximize);
        lp.add_variable(0.0);
        for options in all_engines() {
            let sol = solve(&lp, &options);
            assert_eq!(sol.status, LpStatus::Optimal);
            assert_close(sol.objective, 0.0, 1e-9);
        }
    }

    #[test]
    fn duals_price_binding_constraints_only() {
        // max x + y s.t. x <= 1, y <= 1, x + y <= 5 (slack constraint)
        let mut lp = LinearProgram::new(Sense::Maximize);
        let x = lp.add_variable(1.0);
        let y = lp.add_variable(1.0);
        lp.add_constraint(vec![(x, 1.0)], Relation::Le, 1.0);
        lp.add_constraint(vec![(y, 1.0)], Relation::Le, 1.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Le, 5.0);
        for options in all_engines() {
            let sol = solve(&lp, &options);
            assert_eq!(sol.status, LpStatus::Optimal);
            assert_close(sol.duals[0], 1.0, 1e-7);
            assert_close(sol.duals[1], 1.0, 1e-7);
            assert_close(sol.duals[2], 0.0, 1e-7);
        }
    }

    #[test]
    fn warm_start_resumes_without_pivots() {
        let mut lp = LinearProgram::new(Sense::Maximize);
        let x = lp.add_variable(3.0);
        let y = lp.add_variable(2.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Le, 4.0);
        lp.add_constraint(vec![(x, 1.0)], Relation::Le, 2.0);
        lp.add_constraint(vec![(y, 1.0)], Relation::Le, 3.0);
        for options in all_engines() {
            let (first, state) = solve_with_warm_start(&lp, &options, None);
            assert_eq!(first.status, LpStatus::Optimal);
            assert!(first.iterations > 0);
            assert_eq!(state.basis_kind(), options.basis);
            // Re-solving the unchanged LP from the optimal basis needs 0 pivots.
            let (second, _) = solve_with_warm_start(&lp, &options, Some(state));
            assert_eq!(second.status, LpStatus::Optimal);
            assert_eq!(second.iterations, 0);
            assert_close(second.objective, first.objective, 1e-9);
        }
    }

    #[test]
    fn warm_start_after_adding_a_column() {
        // Solve, then add a new structural variable (as column generation
        // does) and resume: the old basis stays valid, the new column enters.
        for options in all_engines() {
            let mut lp = LinearProgram::new(Sense::Maximize);
            let x = lp.add_variable(1.0);
            lp.add_constraint(vec![(x, 1.0)], Relation::Le, 2.0);
            let (first, state) = solve_with_warm_start(&lp, &options, None);
            assert_close(first.objective, 2.0, 1e-9);

            let mut grown = LinearProgram::new(Sense::Maximize);
            let x2 = grown.add_variable(1.0);
            let z = grown.add_variable(5.0);
            grown.add_constraint(vec![(x2, 1.0), (z, 1.0)], Relation::Le, 2.0);
            let (second, _) = solve_with_warm_start(&grown, &options, Some(state));
            assert_eq!(second.status, LpStatus::Optimal);
            assert_close(second.objective, 10.0, 1e-9);
            assert_close(second.x[z], 2.0, 1e-9);
        }
    }

    #[test]
    fn warm_start_across_engine_kinds_is_converted() {
        // A warm start produced by one basis representation resumes under
        // the other via a single refactorization.
        let mut lp = LinearProgram::new(Sense::Maximize);
        let x = lp.add_variable(3.0);
        let y = lp.add_variable(2.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Le, 4.0);
        lp.add_constraint(vec![(x, 1.0)], Relation::Le, 2.0);
        let pf =
            SimplexOptions::default().with_engine(PricingRule::Dantzig, BasisKind::ProductForm);
        let lu = SimplexOptions::default().with_engine(PricingRule::Devex, BasisKind::SparseLu);
        let (first, state) = solve_with_warm_start(&lp, &pf, None);
        assert_eq!(first.status, LpStatus::Optimal);
        assert_eq!(state.basis_kind(), BasisKind::ProductForm);
        let (second, state2) = solve_with_warm_start(&lp, &lu, Some(state));
        assert_eq!(second.status, LpStatus::Optimal);
        assert_eq!(
            second.iterations, 0,
            "optimal basis needs no pivots after conversion"
        );
        assert_close(second.objective, first.objective, 1e-9);
        assert_eq!(state2.basis_kind(), BasisKind::SparseLu);
    }

    #[test]
    fn warm_start_across_different_matrices_is_repaired() {
        // Two LPs with identical rows (same count, relations, rhs) but
        // different coefficient patterns: adopting the first solve's
        // factorization verbatim would price the second LP against a stale
        // B⁻¹ and could terminate "optimal" at a wrong vertex. The
        // residual check must detect the mismatch, refactorize, and still
        // reach the true optimum.
        for options in all_engines() {
            let mut a = LinearProgram::new(Sense::Maximize);
            let ax = a.add_variable(1.0);
            let ay = a.add_variable(1.0);
            a.add_constraint(vec![(ax, 1.0)], Relation::Le, 1.0);
            a.add_constraint(vec![(ay, 1.0)], Relation::Le, 1.0);
            let (first, state) = solve_with_warm_start(&a, &options, None);
            assert_eq!(first.status, LpStatus::Optimal);

            let mut b = LinearProgram::new(Sense::Maximize);
            let bx = b.add_variable(4.0);
            let by = b.add_variable(2.0);
            b.add_constraint(vec![(by, 1.0)], Relation::Le, 1.0);
            b.add_constraint(vec![(bx, 1.0), (by, 1.0)], Relation::Le, 1.0);
            let cold = solve(&b, &options);
            let (warmed, _) = solve_with_warm_start(&b, &options, Some(state));
            assert_eq!(warmed.status, LpStatus::Optimal);
            assert_close(warmed.objective, cold.objective, 1e-7);
            assert!(b.is_feasible(&warmed.x, 1e-7));
        }
    }

    #[test]
    fn mismatched_warm_start_falls_back_to_cold() {
        let mut a = LinearProgram::new(Sense::Maximize);
        let x = a.add_variable(1.0);
        a.add_constraint(vec![(x, 1.0)], Relation::Le, 1.0);
        for options in all_engines() {
            let (_, state) = solve_with_warm_start(&a, &options, None);

            // different row count: the state must be rejected, not trusted
            let mut b = LinearProgram::new(Sense::Maximize);
            let u = b.add_variable(1.0);
            b.add_constraint(vec![(u, 1.0)], Relation::Le, 1.0);
            b.add_constraint(vec![(u, 1.0)], Relation::Le, 3.0);
            let (sol, _) = solve_with_warm_start(&b, &options, Some(state));
            assert_eq!(sol.status, LpStatus::Optimal);
            assert_close(sol.objective, 1.0, 1e-9);
        }
    }

    /// Fixing a column that is basic in a **covering** (minimize / `≥`) LP
    /// must not let its lingering value satisfy the rows for free: the
    /// warm-start screen rejects the basis and the cold start reports the
    /// true fixed-at-zero optimum (the review repro for the unsound case).
    #[test]
    fn fixed_basic_columns_are_evicted_on_covering_lps() {
        for options in all_engines() {
            let mut lp = LinearProgram::new(Sense::Minimize);
            let x1 = lp.add_variable(1.0);
            let x2 = lp.add_variable(2.0);
            lp.add_constraint(vec![(x1, 1.0), (x2, 1.0)], Relation::Ge, 1.0);
            let (first, state) = solve_with_warm_start(&lp, &options, None);
            assert_eq!(first.status, LpStatus::Optimal);
            assert_close(first.objective, 1.0, 1e-7); // x1 = 1 basic

            lp.fix_variables_at_zero(&[x1]);
            let (fixed, _) = solve_with_warm_start(&lp, &options, Some(state));
            assert_eq!(fixed.status, LpStatus::Optimal);
            assert_close(fixed.objective, 2.0, 1e-7); // x2 = 1, not x1 for free
            assert_close(fixed.x[x1], 0.0, 1e-9);
        }
    }

    /// Deterministic seeded random packing LP used by the
    /// engine-vs-dense equivalence tests.
    fn random_packing_lp(seed: u64, n: usize, m: usize) -> LinearProgram {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut lp = LinearProgram::new(Sense::Maximize);
        for _ in 0..n {
            lp.add_variable(rng.random_range(0.0..10.0));
        }
        for _ in 0..m {
            let mut coeffs: Vec<(usize, f64)> = Vec::new();
            for j in 0..n {
                if rng.random_range(0.0..1.0) < 0.6 {
                    coeffs.push((j, rng.random_range(0.1..5.0)));
                }
            }
            lp.add_constraint(coeffs, Relation::Le, rng.random_range(1.0..20.0));
        }
        lp
    }

    #[test]
    fn all_engines_match_dense_on_seeded_packing_lps() {
        for seed in 0..20u64 {
            let n = 1 + (seed as usize % 12);
            let m = 1 + ((seed as usize * 7) % 10);
            let lp = random_packing_lp(seed, n, m);
            let reference = dense::solve(&lp, &SimplexOptions::default());
            for options in all_engines() {
                let revised = solve(&lp, &options);
                let label = format!(
                    "seed {seed} engine {}x{}",
                    options.pricing.name(),
                    options.basis.name()
                );
                assert_eq!(revised.status, reference.status, "{label}");
                if revised.status == LpStatus::Optimal {
                    assert!(
                        (revised.objective - reference.objective).abs() < 1e-6,
                        "{label}: revised {} vs dense {}",
                        revised.objective,
                        reference.objective
                    );
                    assert!(lp.is_feasible(&revised.x, 1e-6));
                    // The optimal basis (and hence the duals) need not be
                    // unique, but both dual vectors must price the rhs to
                    // the optimum.
                    let price = |duals: &[f64]| -> f64 {
                        lp.constraints()
                            .iter()
                            .zip(duals.iter())
                            .map(|(c, &y)| c.rhs * y)
                            .sum()
                    };
                    assert!(
                        (price(&revised.duals) - price(&reference.duals)).abs() < 1e-6,
                        "{label}: dual objectives differ"
                    );
                }
            }
        }
    }

    #[test]
    fn all_engines_agree_on_degenerate_and_rank_deficient_lps() {
        // Degenerate: many redundant copies of the same binding row;
        // rank-deficient: an equality row repeated verbatim (phase 1 leaves
        // a zero-valued artificial basic for the redundant copy). Every
        // engine must terminate (Bland fallback) and agree with the oracle.
        for seed in 0..10u64 {
            let mut rng = StdRng::seed_from_u64(900 + seed);
            let n = 2 + (seed as usize % 4);
            let mut lp = LinearProgram::new(Sense::Maximize);
            for _ in 0..n {
                lp.add_variable(rng.random_range(0.5..5.0));
            }
            let coeffs: Vec<(usize, f64)> =
                (0..n).map(|j| (j, rng.random_range(0.5..2.0))).collect();
            let rhs = rng.random_range(1.0..4.0);
            // the same packing row three times (degeneracy)
            for _ in 0..3 {
                lp.add_constraint(coeffs.clone(), Relation::Le, rhs);
            }
            // a repeated equality row (rank deficiency)
            let eq: Vec<(usize, f64)> = vec![(0, 1.0)];
            let eq_rhs = rhs / 2.0;
            lp.add_constraint(eq.clone(), Relation::Eq, eq_rhs);
            lp.add_constraint(eq, Relation::Eq, eq_rhs);
            for j in 0..n {
                lp.add_constraint(vec![(j, 1.0)], Relation::Le, 3.0);
            }
            let reference = dense::solve(&lp, &SimplexOptions::default());
            for options in all_engines() {
                let sol = solve(&lp, &options);
                let label = format!(
                    "seed {seed} engine {}x{}",
                    options.pricing.name(),
                    options.basis.name()
                );
                assert_eq!(sol.status, reference.status, "{label}");
                if sol.status == LpStatus::Optimal {
                    assert!(lp.is_feasible(&sol.x, 1e-6), "{label}");
                    assert!(
                        (sol.objective - reference.objective).abs() < 1e-6,
                        "{label}: {} vs dense {}",
                        sol.objective,
                        reference.objective
                    );
                }
            }
        }
    }

    /// Degenerate triangle-clique LP with a duplicated packing row and a
    /// repeated equality row (rank deficiency): the stress shape for the
    /// sparse-kernel equivalence tests.
    fn degenerate_duplicated_lp() -> LinearProgram {
        let mut lp = LinearProgram::new(Sense::Maximize);
        for _ in 0..3 {
            lp.add_variable(1.0);
        }
        for a in 0..3 {
            for b in (a + 1)..3 {
                lp.add_constraint(vec![(a, 1.0), (b, 1.0)], Relation::Le, 1.0);
            }
        }
        // a duplicated row and a repeated equality (phase 1 leaves a
        // zero-valued artificial basic for the redundant copy)
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], Relation::Le, 1.0);
        lp.add_constraint(vec![(0, 1.0)], Relation::Eq, 0.5);
        lp.add_constraint(vec![(0, 1.0)], Relation::Eq, 0.5);
        lp
    }

    #[test]
    fn hyper_sparse_toggle_preserves_solutions_on_all_engines() {
        // `hyper_sparse: false` routes every FTRAN/BTRAN through the legacy
        // dense kernels; the toggle must be a pure performance lever, so the
        // two paths must agree on status, objective, and feasibility — on
        // random packing LPs and on the degenerate / duplicated-row /
        // rank-deficient stress LP alike.
        let mut lps: Vec<LinearProgram> = (0..6u64)
            .map(|s| random_packing_lp(400 + s, 4 + s as usize, 3 + s as usize))
            .collect();
        lps.push(degenerate_duplicated_lp());
        for (k, lp) in lps.iter().enumerate() {
            for base in all_engines() {
                let on = solve(lp, &base.with_hyper_sparse(true));
                let off = solve(lp, &base.with_hyper_sparse(false));
                let label = format!(
                    "lp {k} engine {}x{}",
                    base.pricing.name(),
                    base.basis.name()
                );
                assert_eq!(on.status, off.status, "{label}");
                if on.status == LpStatus::Optimal {
                    assert!(
                        (on.objective - off.objective).abs() < 1e-7,
                        "{label}: sparse {} vs dense {}",
                        on.objective,
                        off.objective
                    );
                    assert!(lp.is_feasible(&on.x, 1e-7), "{label}");
                    assert!(lp.is_feasible(&off.x, 1e-7), "{label}");
                }
                // the disabled path bypasses the indexed kernels entirely,
                // so it must report zero tracked solves and "no data" density
                assert_eq!(off.stats.ftran_sparse_hits, 0, "{label}");
                assert_eq!(off.stats.ftran_dense_fallbacks, 0, "{label}");
                assert_eq!(off.stats.btran_sparse_hits, 0, "{label}");
                assert_eq!(off.stats.btran_dense_fallbacks, 0, "{label}");
                assert!(
                    (off.stats.avg_result_density - 1.0).abs() < 1e-12,
                    "{label}"
                );
                // the LU-based factorizations track every indexed solve;
                // any solve that pivoted must therefore show activity
                let tracked = on.stats.ftran_sparse_hits
                    + on.stats.ftran_dense_fallbacks
                    + on.stats.btran_sparse_hits
                    + on.stats.btran_dense_fallbacks;
                if on.iterations > 0
                    && matches!(base.basis, BasisKind::SparseLu | BasisKind::ForrestTomlin)
                {
                    assert!(tracked > 0, "{label}: no tracked hyper-sparse solves");
                    assert!(
                        on.stats.avg_result_density > 0.0 && on.stats.avg_result_density <= 1.0,
                        "{label}: density {} out of range",
                        on.stats.avg_result_density
                    );
                }
            }
        }
    }

    // Random packing LPs: every engine's solution must be feasible, match
    // the dense reference, and satisfy weak/strong duality.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn prop_random_packing_lps_are_solved_consistently(
            n in 1usize..8,
            m in 1usize..8,
            obj in prop::collection::vec(0.0f64..10.0, 8),
            rows in prop::collection::vec(prop::collection::vec(0.0f64..5.0, 8), 8),
            rhs in prop::collection::vec(1.0f64..20.0, 8),
            engine in 0usize..12,
        ) {
            let mut lp = LinearProgram::new(Sense::Maximize);
            for &c in obj.iter().take(n) {
                lp.add_variable(c);
            }
            for i in 0..m {
                let coeffs: Vec<(usize, f64)> = (0..n).map(|j| (j, rows[i][j])).collect();
                lp.add_constraint(coeffs, Relation::Le, rhs[i]);
            }
            let options = all_engines()[engine];
            let sol = solve(&lp, &options);
            // packing LPs with x = 0 feasible are never infeasible
            prop_assert_ne!(sol.status, LpStatus::Infeasible);
            if sol.status == LpStatus::Optimal {
                prop_assert!(lp.is_feasible(&sol.x, 1e-6));
                // weak duality: b^T y >= c^T x for feasible dual y
                let dual_obj: f64 = (0..m).map(|i| sol.duals[i] * rhs[i]).sum();
                prop_assert!(dual_obj >= sol.objective - 1e-5);
                // strong duality within tolerance
                prop_assert!((dual_obj - sol.objective).abs() < 1e-4 * (1.0 + sol.objective.abs()));
                // dual feasibility: A^T y >= c (for maximization with <=)
                for j in 0..n {
                    let lhs: f64 = (0..m).map(|i| sol.duals[i] * rows[i][j]).sum();
                    prop_assert!(lhs >= obj[j] - 1e-5);
                }
                // and the dense reference finds the same optimum
                let reference = dense::solve(&lp, &SimplexOptions::default());
                prop_assert_eq!(reference.status, LpStatus::Optimal);
                prop_assert!((sol.objective - reference.objective).abs() < 1e-6,
                    "engine {}x{}: {} vs dense {}",
                    options.pricing.name(), options.basis.name(),
                    sol.objective, reference.objective);
            }
        }

        #[test]
        fn prop_random_mixed_lps_feasible_solutions(
            n in 1usize..6,
            obj in prop::collection::vec(-5.0f64..5.0, 6),
            rows in prop::collection::vec(prop::collection::vec(-3.0f64..3.0, 6), 6),
            rhs in prop::collection::vec(-5.0f64..5.0, 6),
            rels in prop::collection::vec(0u8..3, 6),
            m in 1usize..6,
            engine in 0usize..12,
        ) {
            let mut lp = LinearProgram::new(Sense::Maximize);
            for &c in obj.iter().take(n) {
                lp.add_variable(c);
            }
            for i in 0..m {
                let coeffs: Vec<(usize, f64)> = (0..n).map(|j| (j, rows[i][j])).collect();
                let rel = match rels[i] % 3 {
                    0 => Relation::Le,
                    1 => Relation::Ge,
                    _ => Relation::Eq,
                };
                lp.add_constraint(coeffs, rel, rhs[i]);
            }
            // always bound the variables so "unbounded" cannot occur and the
            // optimal face is a polytope
            for j in 0..n {
                lp.add_constraint(vec![(j, 1.0)], Relation::Le, 10.0);
            }
            let options = all_engines()[engine];
            let sol = solve(&lp, &options);
            match sol.status {
                LpStatus::Optimal => {
                    prop_assert!(lp.is_feasible(&sol.x, 1e-5));
                    let reference = dense::solve(&lp, &SimplexOptions::default());
                    if reference.status == LpStatus::Optimal {
                        prop_assert!((sol.objective - reference.objective).abs()
                            < 1e-5 * (1.0 + sol.objective.abs()),
                            "engine {}x{}: {} vs dense {}",
                            options.pricing.name(), options.basis.name(),
                            sol.objective, reference.objective);
                    }
                }
                LpStatus::Infeasible => {
                    // the dense reference must agree that no point exists
                    let reference = dense::solve(&lp, &SimplexOptions::default());
                    prop_assert_ne!(reference.status, LpStatus::Optimal);
                }
                LpStatus::Unbounded => prop_assert!(false, "bounded LP reported unbounded"),
                LpStatus::IterationLimit => { /* extremely unlikely; accept */ }
            }
        }

        #[test]
        fn prop_hyper_sparse_paths_agree_on_mixed_lps(
            n in 1usize..6,
            obj in prop::collection::vec(-5.0f64..5.0, 6),
            rows in prop::collection::vec(prop::collection::vec(-3.0f64..3.0, 6), 6),
            rhs in prop::collection::vec(-5.0f64..5.0, 6),
            rels in prop::collection::vec(0u8..3, 6),
            m in 1usize..6,
            dup in 0usize..6,
            engine in 0usize..12,
        ) {
            // Mixed-relation LPs with one row duplicated verbatim (rank
            // deficiency when the relation is Eq): the indexed FTRAN/BTRAN
            // kernels must not change the verdict or the optimum.
            let mut lp = LinearProgram::new(Sense::Maximize);
            for &c in obj.iter().take(n) {
                lp.add_variable(c);
            }
            for i in 0..m {
                let coeffs: Vec<(usize, f64)> = (0..n).map(|j| (j, rows[i][j])).collect();
                let rel = match rels[i] % 3 {
                    0 => Relation::Le,
                    1 => Relation::Ge,
                    _ => Relation::Eq,
                };
                lp.add_constraint(coeffs, rel, rhs[i]);
            }
            {
                let i = dup % m;
                let coeffs: Vec<(usize, f64)> = (0..n).map(|j| (j, rows[i][j])).collect();
                let rel = match rels[i] % 3 {
                    0 => Relation::Le,
                    1 => Relation::Ge,
                    _ => Relation::Eq,
                };
                lp.add_constraint(coeffs, rel, rhs[i]);
            }
            for j in 0..n {
                lp.add_constraint(vec![(j, 1.0)], Relation::Le, 10.0);
            }
            let base = all_engines()[engine];
            let on = solve(&lp, &base.with_hyper_sparse(true));
            let off = solve(&lp, &base.with_hyper_sparse(false));
            prop_assert_eq!(on.status, off.status,
                "engine {}x{}", base.pricing.name(), base.basis.name());
            if on.status == LpStatus::Optimal {
                prop_assert!((on.objective - off.objective).abs()
                    < 1e-6 * (1.0 + on.objective.abs()),
                    "engine {}x{}: sparse {} vs dense {}",
                    base.pricing.name(), base.basis.name(),
                    on.objective, off.objective);
                prop_assert!(lp.is_feasible(&on.x, 1e-5));
                prop_assert!(lp.is_feasible(&off.x, 1e-5));
            }
            prop_assert_eq!(off.stats.ftran_sparse_hits
                + off.stats.ftran_dense_fallbacks
                + off.stats.btran_sparse_hits
                + off.stats.btran_dense_fallbacks, 0);
        }
    }
}
