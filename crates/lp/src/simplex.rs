//! A sparse **revised simplex** solver.
//!
//! The seed implementation kept the full dense tableau `[B⁻¹A | B⁻¹b]` and
//! touched all `m · n_total` entries on every pivot. This module replaces it
//! with the revised method, which maintains only the `m × m` basis inverse
//! and works on the constraint matrix in compressed-sparse-column form
//! ([`crate::problem::CscMatrix`]):
//!
//! * **Pricing** is Dantzig's rule over sparse columns: the dual vector
//!   `y = c_B B⁻¹` is formed once per iteration (`O(m²)` worst case, but
//!   only rows with non-zero basic cost contribute), then every candidate
//!   column is priced in `O(nnz(col))`. After `stall_threshold` pivots
//!   without objective improvement the solver switches to Bland's rule
//!   (first improving index, smallest-index ratio ties) which guarantees
//!   termination.
//! * **FTRAN** (`w = B⁻¹ a_e`) costs `O(m · nnz(a_e))`, and each pivot
//!   updates `B⁻¹` in product form in `O(m²)` — independent of the number
//!   of columns, which is what makes the method scale for column
//!   generation, where columns outnumber rows by a growing factor.
//! * **Refactorization**: the product-form updates accumulate floating-point
//!   drift, so every [`SimplexOptions::refactor_interval`] pivots (and
//!   whenever a warm-started basis looks inconsistent) `B⁻¹` is rebuilt from
//!   the basis columns by Gauss–Jordan elimination with partial pivoting and
//!   the basic solution is recomputed as `x_B = B⁻¹ b`.
//! * **Warm starts**: [`solve_with_warm_start`] accepts the [`WarmStart`]
//!   returned by a previous solve over the *same rows* and resumes from that
//!   basis, skipping phase 1 entirely. Column generation exploits this: new
//!   columns enter nonbasic, so each master re-solve continues from the
//!   previous optimum instead of re-running from the all-slack basis.
//!
//! Packing LPs (all `≤` constraints with non-negative right-hand sides) are
//! detected automatically and start from the all-slack basis, skipping
//! phase 1; this covers the relaxations (1) and (4) of the paper. General
//! `≥`/`=` rows go through a standard two-phase scheme with artificial
//! variables (needed by the Lavi–Swamy decomposition master).
//!
//! The dense tableau solver survives as [`crate::dense`]; property tests
//! assert both agree on objectives and duals to 1e-6.

use crate::problem::{CscMatrix, LinearProgram, Relation, Sense};
use serde::{Deserialize, Serialize};

/// Termination status of a solve.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum LpStatus {
    /// An optimal basic solution was found.
    Optimal,
    /// The constraints admit no feasible point.
    Infeasible,
    /// The objective is unbounded over the feasible region.
    Unbounded,
    /// The iteration limit was hit before optimality was proven.
    IterationLimit,
}

/// Result of a simplex solve.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LpSolution {
    /// Termination status.
    pub status: LpStatus,
    /// Objective value in the problem's original sense (meaningful only when
    /// `status == Optimal` or `IterationLimit`).
    pub objective: f64,
    /// Primal values indexed by variable.
    pub x: Vec<f64>,
    /// Dual values indexed by constraint, in the convention that strong
    /// duality `Σ_i duals[i] · rhs[i] = objective` holds at optimality.
    pub duals: Vec<f64>,
    /// Number of simplex pivots performed (both phases).
    pub iterations: usize,
}

/// Solver options.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SimplexOptions {
    /// Numerical tolerance for feasibility, pricing and pivoting decisions.
    pub tolerance: f64,
    /// Maximum number of pivots across both phases. `0` means automatic:
    /// `200 · (m + n_total) + 10_000`, recomputed from the problem actually
    /// being solved — so in column generation the budget grows with the
    /// restricted master's *current* column count rather than staying pinned
    /// at the seed LP's size.
    pub max_iterations: usize,
    /// After this many consecutive pivots without objective improvement the
    /// solver switches to Bland's rule to escape potential cycling.
    pub stall_threshold: usize,
    /// Rebuild `B⁻¹` from the basis columns after this many product-form
    /// updates (numerical hygiene). `0` disables periodic refactorization.
    pub refactor_interval: usize,
}

impl Default for SimplexOptions {
    fn default() -> Self {
        SimplexOptions {
            tolerance: 1e-9,
            max_iterations: 0,
            stall_threshold: 64,
            refactor_interval: 256,
        }
    }
}

/// Identity of a basis member, stable across re-solves of a problem whose
/// rows are fixed but whose column set grows (the restricted master of
/// column generation).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum BasisVar {
    /// Structural variable `j` of the [`LinearProgram`].
    Structural(usize),
    /// Slack of row `i` (a `≤` row after rhs normalization).
    Slack(usize),
    /// Surplus of row `i` (a `≥` row after rhs normalization).
    Surplus(usize),
    /// Artificial of row `i` (`≥` or `=` rows; basic only at value 0 after
    /// phase 1, or marking a redundant row).
    Artificial(usize),
}

/// Resumable solver state: the optimal basis of a previous solve together
/// with its basis inverse.
///
/// Valid for re-solves of an LP with the **same constraint rows** (same
/// relations and right-hand sides); the column set may have grown, because
/// new columns start nonbasic and therefore do not touch `B`. This is
/// exactly the restricted-master situation in column generation.
#[derive(Clone, Debug)]
pub struct WarmStart {
    /// One basis member per row.
    pub basis: Vec<BasisVar>,
    /// Row-major `m × m` basis inverse matching `basis`.
    binv: Vec<f64>,
}

impl WarmStart {
    /// Number of rows this state was built for.
    pub fn num_rows(&self) -> usize {
        self.basis.len()
    }
}

/// Solves a linear program with the sparse revised simplex method.
pub fn solve(lp: &LinearProgram, options: &SimplexOptions) -> LpSolution {
    solve_with_warm_start(lp, options, None).0
}

/// Solves a linear program, optionally resuming from the basis of a
/// previous solve over the same rows, and returns the solution together
/// with the final basis for future warm starts.
///
/// The state is taken **by value**: its `m × m` basis inverse is moved into
/// the solver and moved back out, so a warm re-solve never copies the
/// inverse (at master sizes of ~10³ rows those copies would dominate the
/// handful of pivots a warm re-solve actually needs).
pub fn solve_with_warm_start(
    lp: &LinearProgram,
    options: &SimplexOptions,
    warm: Option<WarmStart>,
) -> (LpSolution, WarmStart) {
    let mut solver = Revised::build(lp, options);
    let status = solver.run(warm);
    let solution = solver.extract(status);
    let state = solver.into_warm_start();
    (solution, state)
}

struct Revised<'a> {
    lp: &'a LinearProgram,
    tol: f64,
    max_iterations: usize,
    stall_threshold: usize,
    refactor_interval: usize,

    m: usize,
    n: usize,
    n_total: usize,
    /// structural columns with row-normalization signs already applied
    cols: CscMatrix,
    /// per-row sign applied to normalize rhs ≥ 0
    row_sign: Vec<f64>,
    /// normalized rhs (≥ 0)
    b: Vec<f64>,
    /// layout of logical columns (index into the global column space)
    slack_col: Vec<Option<usize>>,
    surplus_col: Vec<Option<usize>>,
    art_col: Vec<Option<usize>>,
    /// inverse layout: what each global column is
    kind: Vec<BasisVar>,
    first_artificial: usize,
    /// maximization costs per global column (original objective)
    cost: Vec<f64>,

    /// basis member (global column index) per row
    basis: Vec<usize>,
    in_basis: Vec<bool>,
    /// row-major m × m basis inverse
    binv: Vec<f64>,
    /// current basic solution B⁻¹ b
    xb: Vec<f64>,

    iterations: usize,
    pivots_since_refactor: usize,
}

impl<'a> Revised<'a> {
    fn build(lp: &'a LinearProgram, options: &SimplexOptions) -> Self {
        let m = lp.num_constraints();
        let n = lp.num_variables();

        let mut row_sign = vec![1.0f64; m];
        let mut b = vec![0.0f64; m];
        let mut eff: Vec<Relation> = Vec::with_capacity(m);
        for (i, c) in lp.constraints().iter().enumerate() {
            let (rel, sign) = if c.rhs < 0.0 {
                let flipped = match c.relation {
                    Relation::Le => Relation::Ge,
                    Relation::Ge => Relation::Le,
                    Relation::Eq => Relation::Eq,
                };
                (flipped, -1.0)
            } else {
                (c.relation, 1.0)
            };
            row_sign[i] = sign;
            b[i] = sign * c.rhs;
            eff.push(rel);
        }

        // Structural columns in CSC form with the row signs folded in.
        let mut cols = lp.to_csc();
        for (val, &row) in cols.values.iter_mut().zip(cols.row_idx.iter()) {
            *val *= row_sign[row];
        }

        // Logical column layout: slacks, then surpluses, then artificials —
        // the same index discipline as the dense solver, so Bland's rule
        // visits columns in the same order.
        let mut slack_col = vec![None; m];
        let mut surplus_col = vec![None; m];
        let mut art_col = vec![None; m];
        let mut kind: Vec<BasisVar> = (0..n).map(BasisVar::Structural).collect();
        let mut next = n;
        for (i, rel) in eff.iter().enumerate() {
            if matches!(rel, Relation::Le) {
                slack_col[i] = Some(next);
                kind.push(BasisVar::Slack(i));
                next += 1;
            }
        }
        for (i, rel) in eff.iter().enumerate() {
            if matches!(rel, Relation::Ge) {
                surplus_col[i] = Some(next);
                kind.push(BasisVar::Surplus(i));
                next += 1;
            }
        }
        let first_artificial = next;
        for (i, rel) in eff.iter().enumerate() {
            if matches!(rel, Relation::Ge | Relation::Eq) {
                art_col[i] = Some(next);
                kind.push(BasisVar::Artificial(i));
                next += 1;
            }
        }
        let n_total = next;

        let sense_sign = match lp.sense() {
            Sense::Maximize => 1.0,
            Sense::Minimize => -1.0,
        };
        let mut cost = vec![0.0f64; n_total];
        for (v, &c) in lp.objective().iter().enumerate() {
            cost[v] = sense_sign * c;
        }

        let max_iterations = if options.max_iterations == 0 {
            200 * (m + n_total) + 10_000
        } else {
            options.max_iterations
        };

        Revised {
            lp,
            tol: options.tolerance,
            max_iterations,
            stall_threshold: options.stall_threshold,
            refactor_interval: options.refactor_interval,
            m,
            n,
            n_total,
            cols,
            row_sign,
            b,
            slack_col,
            surplus_col,
            art_col,
            kind,
            first_artificial,
            cost,
            basis: Vec::new(),
            in_basis: vec![false; n_total],
            binv: Vec::new(),
            xb: Vec::new(),
            iterations: 0,
            pivots_since_refactor: 0,
        }
    }

    /// Visits the sparse entries of global column `j` (signs applied).
    #[inline]
    fn for_each_entry(&self, j: usize, mut f: impl FnMut(usize, f64)) {
        match self.kind[j] {
            BasisVar::Structural(v) => {
                let (rows, vals) = self.cols.column(v);
                for (&r, &a) in rows.iter().zip(vals.iter()) {
                    if a != 0.0 {
                        f(r, a);
                    }
                }
            }
            BasisVar::Slack(i) | BasisVar::Artificial(i) => f(i, 1.0),
            BasisVar::Surplus(i) => f(i, -1.0),
        }
    }

    /// Maps a stable basis identity to the current global column index.
    fn column_of(&self, var: BasisVar) -> Option<usize> {
        match var {
            BasisVar::Structural(j) => (j < self.n).then_some(j),
            BasisVar::Slack(i) => self.slack_col.get(i).copied().flatten(),
            BasisVar::Surplus(i) => self.surplus_col.get(i).copied().flatten(),
            BasisVar::Artificial(i) => self.art_col.get(i).copied().flatten(),
        }
    }

    /// Installs the cold-start identity basis (slack or artificial per row).
    fn cold_basis(&mut self) {
        self.basis = (0..self.m)
            .map(|i| self.slack_col[i].or(self.art_col[i]).expect("every row creates an identity column"))
            .collect();
        self.in_basis = vec![false; self.n_total];
        for &c in &self.basis {
            self.in_basis[c] = true;
        }
        // Identity-creating columns are exactly e_i, so B = I.
        self.binv = identity(self.m);
        self.xb = self.b.clone();
        self.pivots_since_refactor = 0;
    }

    /// Attempts to install a warm-start basis; returns `false` (leaving the
    /// solver untouched) if the state does not fit this problem.
    fn try_warm_basis(&mut self, warm: WarmStart) -> bool {
        if warm.basis.len() != self.m || warm.binv.len() != self.m * self.m {
            return false;
        }
        let mut basis = Vec::with_capacity(self.m);
        for &var in &warm.basis {
            match self.column_of(var) {
                Some(c) => basis.push(c),
                None => return false,
            }
        }
        let mut in_basis = vec![false; self.n_total];
        for &c in &basis {
            if in_basis[c] {
                return false; // duplicated member: corrupt state
            }
            in_basis[c] = true;
        }
        self.basis = basis;
        self.in_basis = in_basis;
        self.binv = warm.binv;
        self.xb = self.mat_vec(&self.binv, &self.b);
        self.pivots_since_refactor = 0;
        // The rows are supposed to be unchanged, so the previous basic
        // solution must still be (near-)feasible. If it is not — caller
        // reused state across incompatible problems, or drift built up —
        // refactorize once, then give up on the warm start.
        if self.min_xb() < -1e-7 && !(self.refactor() && self.min_xb() >= -1e-7) {
            return false;
        }
        for v in &mut self.xb {
            if *v < 0.0 {
                *v = 0.0;
            }
        }
        true
    }

    fn min_xb(&self) -> f64 {
        self.xb.iter().cloned().fold(f64::INFINITY, f64::min)
    }

    fn mat_vec(&self, mat: &[f64], v: &[f64]) -> Vec<f64> {
        let m = self.m;
        let mut out = vec![0.0; m];
        for r in 0..m {
            let row = &mat[r * m..(r + 1) * m];
            out[r] = row.iter().zip(v.iter()).map(|(a, b)| a * b).sum();
        }
        out
    }

    /// Rebuilds `B⁻¹` from the basis columns by Gauss–Jordan elimination
    /// with partial pivoting, and recomputes `x_B`. Returns `false` if the
    /// basis matrix is numerically singular.
    fn refactor(&mut self) -> bool {
        let m = self.m;
        // Dense B (column per basis member).
        let mut bmat = vec![0.0f64; m * m];
        for (c, &col) in self.basis.iter().enumerate() {
            self.for_each_entry(col, |r, v| bmat[r * m + c] = v);
        }
        let mut inv = identity(m);
        for k in 0..m {
            // partial pivot
            let mut p = k;
            let mut best = bmat[k * m + k].abs();
            for r in (k + 1)..m {
                let cand = bmat[r * m + k].abs();
                if cand > best {
                    best = cand;
                    p = r;
                }
            }
            if best <= 1e-12 {
                return false;
            }
            if p != k {
                for j in 0..m {
                    bmat.swap(k * m + j, p * m + j);
                    inv.swap(k * m + j, p * m + j);
                }
            }
            let piv = bmat[k * m + k];
            let inv_piv = 1.0 / piv;
            for j in 0..m {
                bmat[k * m + j] *= inv_piv;
                inv[k * m + j] *= inv_piv;
            }
            for r in 0..m {
                if r == k {
                    continue;
                }
                let f = bmat[r * m + k];
                if f != 0.0 {
                    for j in 0..m {
                        bmat[r * m + j] -= f * bmat[k * m + j];
                        inv[r * m + j] -= f * inv[k * m + j];
                    }
                }
            }
        }
        // Row swaps are ordinary row operations applied to both sides, so
        // once the left block reaches exactly I the right block is B⁻¹
        // (with basis member r mapped to unit vector e_r).
        self.binv = inv;
        self.xb = self.mat_vec(&self.binv, &self.b);
        self.pivots_since_refactor = 0;
        true
    }

    /// FTRAN: `w = B⁻¹ a_j`.
    fn ftran(&self, j: usize, w: &mut [f64]) {
        let m = self.m;
        for v in w.iter_mut() {
            *v = 0.0;
        }
        self.for_each_entry(j, |i, a| {
            for (r, wr) in w.iter_mut().enumerate() {
                *wr += self.binv[r * m + i] * a;
            }
        });
    }

    /// BTRAN for pricing: `y = c_B B⁻¹` for the given cost vector.
    fn duals_for(&self, cost: &[f64], y: &mut [f64]) {
        let m = self.m;
        for v in y.iter_mut() {
            *v = 0.0;
        }
        for r in 0..m {
            let cb = cost[self.basis[r]];
            if cb != 0.0 {
                let row = &self.binv[r * m..(r + 1) * m];
                for (yk, &bk) in y.iter_mut().zip(row.iter()) {
                    *yk += cb * bk;
                }
            }
        }
    }

    /// Reduced cost of column `j` at duals `y`.
    #[inline]
    fn reduced_cost(&self, cost: &[f64], y: &[f64], j: usize) -> f64 {
        let mut rc = cost[j];
        self.for_each_entry(j, |i, a| {
            rc -= y[i] * a;
        });
        rc
    }

    fn objective_of_basis(&self, cost: &[f64]) -> f64 {
        (0..self.m).map(|r| cost[self.basis[r]] * self.xb[r]).sum()
    }

    /// Applies the pivot (leaving row `l`, entering column `e`, direction
    /// `w = B⁻¹ a_e`) to the basis inverse and the basic solution.
    fn pivot(&mut self, l: usize, e: usize, w: &[f64]) {
        let m = self.m;
        let wl = w[l];
        debug_assert!(wl.abs() > 1e-12, "pivot element too small");
        let theta = self.xb[l] / wl;
        for (r, xr) in self.xb.iter_mut().enumerate() {
            if r != l {
                *xr -= theta * w[r];
                if *xr < 0.0 && *xr > -1e-11 {
                    *xr = 0.0;
                }
            }
        }
        self.xb[l] = theta;

        // Product-form update of B⁻¹: scale the pivot row by 1/w_l, then
        // subtract w_r times it from every other row. The pivot row is
        // copied to a scratch buffer so the other rows can be updated
        // without aliasing; the O(m) copy is dwarfed by the O(m²) update.
        let inv_wl = 1.0 / wl;
        for j in 0..m {
            self.binv[l * m + j] *= inv_wl;
        }
        let pivot_row: Vec<f64> = self.binv[l * m..(l + 1) * m].to_vec();
        for (r, &f) in w.iter().enumerate().take(m) {
            if r == l {
                continue;
            }
            if f != 0.0 {
                let row = &mut self.binv[r * m..(r + 1) * m];
                for (dst, &p) in row.iter_mut().zip(pivot_row.iter()) {
                    *dst -= f * p;
                }
            }
        }

        self.in_basis[self.basis[l]] = false;
        self.in_basis[e] = true;
        self.basis[l] = e;
        self.pivots_since_refactor += 1;
    }

    /// Runs simplex iterations with the given cost vector and entering
    /// filter. Returns `None` when optimal for this cost, or a terminal
    /// status.
    fn iterate(&mut self, cost: &[f64], allow_enter: impl Fn(usize) -> bool) -> Option<LpStatus> {
        let m = self.m;
        let mut y = vec![0.0f64; m];
        let mut w = vec![0.0f64; m];
        let mut stall = 0usize;
        let mut last_obj = self.objective_of_basis(cost);
        loop {
            if self.iterations >= self.max_iterations {
                return Some(LpStatus::IterationLimit);
            }
            if self.refactor_interval > 0
                && self.pivots_since_refactor >= self.refactor_interval
                && !self.refactor()
            {
                // A singular rebuild means the product-form inverse had
                // drifted beyond repair; continuing would price against
                // garbage. Same terminal treatment as the degenerate-pivot
                // branch below.
                return Some(LpStatus::IterationLimit);
            }

            self.duals_for(cost, &mut y);
            let use_bland = stall >= self.stall_threshold;
            let mut entering: Option<usize> = None;
            let mut best_rc = self.tol;
            for j in 0..self.n_total {
                if self.in_basis[j] || !allow_enter(j) {
                    continue;
                }
                let rc = self.reduced_cost(cost, &y, j);
                if rc > self.tol {
                    if use_bland {
                        entering = Some(j);
                        break;
                    }
                    if rc > best_rc {
                        best_rc = rc;
                        entering = Some(j);
                    }
                }
            }
            let e = entering?;

            self.ftran(e, &mut w);

            // Ratio test (smallest ratio; ties to the smallest basis column
            // index, which together with Bland pricing prevents cycling).
            let mut leaving: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for (r, &a) in w.iter().enumerate().take(m) {
                if a > self.tol {
                    let ratio = self.xb[r] / a;
                    let better = ratio < best_ratio - self.tol
                        || (ratio < best_ratio + self.tol
                            && leaving.map(|l| self.basis[r] < self.basis[l]).unwrap_or(true));
                    if better {
                        best_ratio = ratio;
                        leaving = Some(r);
                    }
                }
            }
            let Some(l) = leaving else {
                return Some(LpStatus::Unbounded);
            };

            if w[l].abs() <= 1e-12 {
                // numerically degenerate direction: refactorize and retry
                if !self.refactor() {
                    return Some(LpStatus::IterationLimit);
                }
                continue;
            }

            self.pivot(l, e, &w);
            self.iterations += 1;

            let obj = self.objective_of_basis(cost);
            if obj > last_obj + self.tol {
                stall = 0;
            } else {
                stall += 1;
            }
            last_obj = obj;
        }
    }

    /// Drives phase-1 artificials out of the basis where possible.
    fn drive_out_artificials(&mut self) {
        let m = self.m;
        let mut w = vec![0.0f64; m];
        #[allow(clippy::needless_range_loop)] // r indexes basis, binv rows and w
        for r in 0..m {
            if !matches!(self.kind[self.basis[r]], BasisVar::Artificial(_)) {
                continue;
            }
            // Find a non-artificial, nonbasic column whose FTRAN has a
            // non-zero pivot element in row r. The pivot element alone is
            // (row r of B⁻¹) · a_j — O(nnz) per candidate.
            let mut target = None;
            for j in 0..self.first_artificial {
                if self.in_basis[j] {
                    continue;
                }
                let mut alpha = 0.0;
                self.for_each_entry(j, |i, a| {
                    alpha += self.binv[r * m + i] * a;
                });
                if alpha.abs() > self.tol {
                    target = Some(j);
                    break;
                }
            }
            if let Some(j) = target {
                self.ftran(j, &mut w);
                if w[r].abs() > 1e-12 {
                    self.pivot(r, j, &w);
                }
            }
            // Otherwise the row is redundant: the artificial stays basic at
            // value 0 and is barred from re-entering in phase 2.
        }
    }

    fn run(&mut self, warm: Option<WarmStart>) -> LpStatus {
        let warm_ok = match warm {
            Some(state) => self.try_warm_basis(state),
            None => false,
        };
        if !warm_ok {
            self.cold_basis();
            let has_artificials = self.first_artificial < self.n_total;
            let needs_phase1 = has_artificials
                && self
                    .basis
                    .iter()
                    .any(|&c| matches!(self.kind[c], BasisVar::Artificial(_)));
            if needs_phase1 {
                let mut phase1_cost = vec![0.0f64; self.n_total];
                for c in phase1_cost[self.first_artificial..].iter_mut() {
                    *c = -1.0;
                }
                if let Some(status) = self.iterate(&phase1_cost, |_| true) {
                    // Phase 1 is bounded by 0, so this is an iteration limit.
                    return status;
                }
                let infeasibility = -self.objective_of_basis(&phase1_cost);
                if infeasibility > 1e-6 {
                    return LpStatus::Infeasible;
                }
                self.drive_out_artificials();
            }
        }

        // Phase 2 with the original costs; artificials may not (re-)enter.
        let cost = self.cost.clone();
        let first_artificial = self.first_artificial;
        match self.iterate(&cost, |j| j < first_artificial) {
            None => LpStatus::Optimal,
            Some(s) => s,
        }
    }

    fn extract(&self, status: LpStatus) -> LpSolution {
        let mut x = vec![0.0f64; self.n];
        for (r, &c) in self.basis.iter().enumerate() {
            if let BasisVar::Structural(j) = self.kind[c] {
                x[j] = self.xb[r].max(0.0);
            }
        }
        let sense_sign = match self.lp.sense() {
            Sense::Maximize => 1.0,
            Sense::Minimize => -1.0,
        };
        // y = c_B B⁻¹ with the original maximization costs; B⁻¹ e_i is
        // column i of the inverse, so this is exactly the dense solver's
        // identity-column read-out.
        let mut y = vec![0.0f64; self.m];
        self.duals_for(&self.cost, &mut y);
        let duals: Vec<f64> = (0..self.m)
            .map(|i| sense_sign * self.row_sign[i] * y[i])
            .collect();
        let objective = self.lp.objective_value(&x);
        LpSolution {
            status,
            objective,
            x,
            duals,
            iterations: self.iterations,
        }
    }

    fn into_warm_start(self) -> WarmStart {
        WarmStart {
            basis: self.basis.iter().map(|&c| self.kind[c]).collect(),
            binv: self.binv,
        }
    }
}

fn identity(m: usize) -> Vec<f64> {
    let mut out = vec![0.0f64; m * m];
    for i in 0..m {
        out[i * m + i] = 1.0;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense;
    use crate::problem::{LinearProgram, Relation, Sense};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "expected {b}, got {a}");
    }

    #[test]
    fn simple_packing_lp() {
        // max 3x + 2y  s.t. x + y <= 4, x <= 2, y <= 3
        let mut lp = LinearProgram::new(Sense::Maximize);
        let x = lp.add_variable(3.0);
        let y = lp.add_variable(2.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Le, 4.0);
        lp.add_constraint(vec![(x, 1.0)], Relation::Le, 2.0);
        lp.add_constraint(vec![(y, 1.0)], Relation::Le, 3.0);
        let sol = solve(&lp, &SimplexOptions::default());
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.objective, 10.0, 1e-7); // x=2, y=2
        assert_close(sol.x[x], 2.0, 1e-7);
        assert_close(sol.x[y], 2.0, 1e-7);
        assert!(lp.is_feasible(&sol.x, 1e-7));
        // strong duality
        let dual_obj: f64 = sol.duals[0] * 4.0 + sol.duals[1] * 2.0 + sol.duals[2] * 3.0;
        assert_close(dual_obj, 10.0, 1e-7);
        // duals of <= constraints in a maximization are non-negative
        assert!(sol.duals.iter().all(|&d| d >= -1e-9));
    }

    #[test]
    fn degenerate_clique_lp() {
        // The edge-based independent-set LP on a triangle: max x0+x1+x2 with
        // pairwise sums <= 1. Optimum 1.5 (all at 1/2) — the integrality-gap
        // example from Section 2.1.
        let mut lp = LinearProgram::new(Sense::Maximize);
        let v: Vec<usize> = (0..3).map(|_| lp.add_variable(1.0)).collect();
        for i in 0..3 {
            for j in (i + 1)..3 {
                lp.add_constraint(vec![(v[i], 1.0), (v[j], 1.0)], Relation::Le, 1.0);
            }
        }
        let sol = solve(&lp, &SimplexOptions::default());
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.objective, 1.5, 1e-7);
    }

    #[test]
    fn minimization_with_ge_constraints() {
        // min 2x + 3y  s.t. x + y >= 4, x >= 1 -> x=4, y=0, objective 8.
        let mut lp = LinearProgram::new(Sense::Minimize);
        let x = lp.add_variable(2.0);
        let y = lp.add_variable(3.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Ge, 4.0);
        lp.add_constraint(vec![(x, 1.0)], Relation::Ge, 1.0);
        let sol = solve(&lp, &SimplexOptions::default());
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.objective, 8.0, 1e-7);
        assert_close(sol.x[x], 4.0, 1e-7);
        assert_close(sol.x[y], 0.0, 1e-7);
        // strong duality for the minimization
        let dual_obj: f64 = sol.duals[0] * 4.0 + sol.duals[1] * 1.0;
        assert_close(dual_obj, 8.0, 1e-6);
    }

    #[test]
    fn equality_constraints() {
        // max x + 2y s.t. x + y = 3, y <= 2 -> x=1, y=2, objective 5
        let mut lp = LinearProgram::new(Sense::Maximize);
        let x = lp.add_variable(1.0);
        let y = lp.add_variable(2.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Eq, 3.0);
        lp.add_constraint(vec![(y, 1.0)], Relation::Le, 2.0);
        let sol = solve(&lp, &SimplexOptions::default());
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.objective, 5.0, 1e-7);
        assert_close(sol.x[x], 1.0, 1e-7);
        assert_close(sol.x[y], 2.0, 1e-7);
    }

    #[test]
    fn infeasible_problem_detected() {
        // x <= 1 and x >= 2 simultaneously
        let mut lp = LinearProgram::new(Sense::Maximize);
        let x = lp.add_variable(1.0);
        lp.add_constraint(vec![(x, 1.0)], Relation::Le, 1.0);
        lp.add_constraint(vec![(x, 1.0)], Relation::Ge, 2.0);
        let sol = solve(&lp, &SimplexOptions::default());
        assert_eq!(sol.status, LpStatus::Infeasible);
    }

    #[test]
    fn unbounded_problem_detected() {
        let mut lp = LinearProgram::new(Sense::Maximize);
        let x = lp.add_variable(1.0);
        let y = lp.add_variable(0.0);
        lp.add_constraint(vec![(y, 1.0)], Relation::Le, 5.0);
        let _ = x;
        let sol = solve(&lp, &SimplexOptions::default());
        assert_eq!(sol.status, LpStatus::Unbounded);
    }

    #[test]
    fn negative_rhs_is_normalized() {
        // -x <= -2  ===  x >= 2; minimize x -> 2
        let mut lp = LinearProgram::new(Sense::Minimize);
        let x = lp.add_variable(1.0);
        lp.add_constraint(vec![(x, -1.0)], Relation::Le, -2.0);
        let sol = solve(&lp, &SimplexOptions::default());
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.objective, 2.0, 1e-7);
    }

    #[test]
    fn zero_constraint_problem() {
        // no constraints, maximize 0 over x >= 0: optimal 0
        let mut lp = LinearProgram::new(Sense::Maximize);
        lp.add_variable(0.0);
        let sol = solve(&lp, &SimplexOptions::default());
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.objective, 0.0, 1e-9);
    }

    #[test]
    fn duals_price_binding_constraints_only() {
        // max x + y s.t. x <= 1, y <= 1, x + y <= 5 (slack constraint)
        let mut lp = LinearProgram::new(Sense::Maximize);
        let x = lp.add_variable(1.0);
        let y = lp.add_variable(1.0);
        lp.add_constraint(vec![(x, 1.0)], Relation::Le, 1.0);
        lp.add_constraint(vec![(y, 1.0)], Relation::Le, 1.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Le, 5.0);
        let sol = solve(&lp, &SimplexOptions::default());
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.duals[0], 1.0, 1e-7);
        assert_close(sol.duals[1], 1.0, 1e-7);
        assert_close(sol.duals[2], 0.0, 1e-7);
    }

    #[test]
    fn warm_start_resumes_without_pivots() {
        let mut lp = LinearProgram::new(Sense::Maximize);
        let x = lp.add_variable(3.0);
        let y = lp.add_variable(2.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Le, 4.0);
        lp.add_constraint(vec![(x, 1.0)], Relation::Le, 2.0);
        lp.add_constraint(vec![(y, 1.0)], Relation::Le, 3.0);
        let (first, state) = solve_with_warm_start(&lp, &SimplexOptions::default(), None);
        assert_eq!(first.status, LpStatus::Optimal);
        assert!(first.iterations > 0);
        // Re-solving the unchanged LP from the optimal basis needs 0 pivots.
        let (second, _) = solve_with_warm_start(&lp, &SimplexOptions::default(), Some(state));
        assert_eq!(second.status, LpStatus::Optimal);
        assert_eq!(second.iterations, 0);
        assert_close(second.objective, first.objective, 1e-9);
    }

    #[test]
    fn warm_start_after_adding_a_column() {
        // Solve, then add a new structural variable (as column generation
        // does) and resume: the old basis stays valid, the new column enters.
        let mut lp = LinearProgram::new(Sense::Maximize);
        let x = lp.add_variable(1.0);
        lp.add_constraint(vec![(x, 1.0)], Relation::Le, 2.0);
        let (first, state) = solve_with_warm_start(&lp, &SimplexOptions::default(), None);
        assert_close(first.objective, 2.0, 1e-9);

        let mut grown = LinearProgram::new(Sense::Maximize);
        let x2 = grown.add_variable(1.0);
        let z = grown.add_variable(5.0);
        grown.add_constraint(vec![(x2, 1.0), (z, 1.0)], Relation::Le, 2.0);
        let (second, _) = solve_with_warm_start(&grown, &SimplexOptions::default(), Some(state));
        assert_eq!(second.status, LpStatus::Optimal);
        assert_close(second.objective, 10.0, 1e-9);
        assert_close(second.x[z], 2.0, 1e-9);
    }

    #[test]
    fn mismatched_warm_start_falls_back_to_cold() {
        let mut a = LinearProgram::new(Sense::Maximize);
        let x = a.add_variable(1.0);
        a.add_constraint(vec![(x, 1.0)], Relation::Le, 1.0);
        let (_, state) = solve_with_warm_start(&a, &SimplexOptions::default(), None);

        // different row count: the state must be rejected, not trusted
        let mut b = LinearProgram::new(Sense::Maximize);
        let u = b.add_variable(1.0);
        b.add_constraint(vec![(u, 1.0)], Relation::Le, 1.0);
        b.add_constraint(vec![(u, 1.0)], Relation::Le, 3.0);
        let (sol, _) = solve_with_warm_start(&b, &SimplexOptions::default(), Some(state));
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.objective, 1.0, 1e-9);
    }

    /// Deterministic seeded random packing LP used by the
    /// revised-vs-dense equivalence tests.
    fn random_packing_lp(seed: u64, n: usize, m: usize) -> LinearProgram {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut lp = LinearProgram::new(Sense::Maximize);
        for _ in 0..n {
            lp.add_variable(rng.random_range(0.0..10.0));
        }
        for _ in 0..m {
            let mut coeffs: Vec<(usize, f64)> = Vec::new();
            for j in 0..n {
                if rng.random_range(0.0..1.0) < 0.6 {
                    coeffs.push((j, rng.random_range(0.1..5.0)));
                }
            }
            lp.add_constraint(coeffs, Relation::Le, rng.random_range(1.0..20.0));
        }
        lp
    }

    #[test]
    fn revised_matches_dense_on_seeded_packing_lps() {
        for seed in 0..40u64 {
            let n = 1 + (seed as usize % 12);
            let m = 1 + ((seed as usize * 7) % 10);
            let lp = random_packing_lp(seed, n, m);
            let revised = solve(&lp, &SimplexOptions::default());
            let reference = dense::solve(&lp, &SimplexOptions::default());
            assert_eq!(revised.status, reference.status, "seed {seed}");
            if revised.status == LpStatus::Optimal {
                assert!(
                    (revised.objective - reference.objective).abs() < 1e-6,
                    "seed {seed}: revised {} vs dense {}",
                    revised.objective,
                    reference.objective
                );
                assert!(lp.is_feasible(&revised.x, 1e-6));
                // The optimal basis (and hence the duals) need not be unique,
                // but both dual vectors must price the rhs to the optimum.
                let price = |duals: &[f64]| -> f64 {
                    lp.constraints()
                        .iter()
                        .zip(duals.iter())
                        .map(|(c, &y)| c.rhs * y)
                        .sum()
                };
                assert!(
                    (price(&revised.duals) - price(&reference.duals)).abs() < 1e-6,
                    "seed {seed}: dual objectives differ"
                );
            }
        }
    }

    // Random packing LPs: the revised solution must be feasible, match the
    // dense reference, and satisfy weak/strong duality.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_random_packing_lps_are_solved_consistently(
            n in 1usize..8,
            m in 1usize..8,
            obj in prop::collection::vec(0.0f64..10.0, 8),
            rows in prop::collection::vec(prop::collection::vec(0.0f64..5.0, 8), 8),
            rhs in prop::collection::vec(1.0f64..20.0, 8),
        ) {
            let mut lp = LinearProgram::new(Sense::Maximize);
            for &c in obj.iter().take(n) {
                lp.add_variable(c);
            }
            for i in 0..m {
                let coeffs: Vec<(usize, f64)> = (0..n).map(|j| (j, rows[i][j])).collect();
                lp.add_constraint(coeffs, Relation::Le, rhs[i]);
            }
            let sol = solve(&lp, &SimplexOptions::default());
            // packing LPs with x = 0 feasible are never infeasible
            prop_assert_ne!(sol.status, LpStatus::Infeasible);
            if sol.status == LpStatus::Optimal {
                prop_assert!(lp.is_feasible(&sol.x, 1e-6));
                // weak duality: b^T y >= c^T x for feasible dual y
                let dual_obj: f64 = (0..m).map(|i| sol.duals[i] * rhs[i]).sum();
                prop_assert!(dual_obj >= sol.objective - 1e-5);
                // strong duality within tolerance
                prop_assert!((dual_obj - sol.objective).abs() < 1e-4 * (1.0 + sol.objective.abs()));
                // dual feasibility: A^T y >= c (for maximization with <=)
                for j in 0..n {
                    let lhs: f64 = (0..m).map(|i| sol.duals[i] * rows[i][j]).sum();
                    prop_assert!(lhs >= obj[j] - 1e-5);
                }
                // and the dense reference finds the same optimum
                let reference = dense::solve(&lp, &SimplexOptions::default());
                prop_assert_eq!(reference.status, LpStatus::Optimal);
                prop_assert!((sol.objective - reference.objective).abs() < 1e-6,
                    "revised {} vs dense {}", sol.objective, reference.objective);
            }
        }

        #[test]
        fn prop_random_mixed_lps_feasible_solutions(
            n in 1usize..6,
            obj in prop::collection::vec(-5.0f64..5.0, 6),
            rows in prop::collection::vec(prop::collection::vec(-3.0f64..3.0, 6), 6),
            rhs in prop::collection::vec(-5.0f64..5.0, 6),
            rels in prop::collection::vec(0u8..3, 6),
            m in 1usize..6,
        ) {
            let mut lp = LinearProgram::new(Sense::Maximize);
            for &c in obj.iter().take(n) {
                lp.add_variable(c);
            }
            for i in 0..m {
                let coeffs: Vec<(usize, f64)> = (0..n).map(|j| (j, rows[i][j])).collect();
                let rel = match rels[i] % 3 {
                    0 => Relation::Le,
                    1 => Relation::Ge,
                    _ => Relation::Eq,
                };
                lp.add_constraint(coeffs, rel, rhs[i]);
            }
            // always bound the variables so "unbounded" cannot occur and the
            // optimal face is a polytope
            for j in 0..n {
                lp.add_constraint(vec![(j, 1.0)], Relation::Le, 10.0);
            }
            let sol = solve(&lp, &SimplexOptions::default());
            match sol.status {
                LpStatus::Optimal => {
                    prop_assert!(lp.is_feasible(&sol.x, 1e-5));
                    let reference = dense::solve(&lp, &SimplexOptions::default());
                    if reference.status == LpStatus::Optimal {
                        prop_assert!((sol.objective - reference.objective).abs()
                            < 1e-5 * (1.0 + sol.objective.abs()),
                            "revised {} vs dense {}", sol.objective, reference.objective);
                    }
                }
                LpStatus::Infeasible => {
                    // the dense reference must agree that no point exists
                    let reference = dense::solve(&lp, &SimplexOptions::default());
                    prop_assert_ne!(reference.status, LpStatus::Optimal);
                }
                LpStatus::Unbounded => prop_assert!(false, "bounded LP reported unbounded"),
                LpStatus::IterationLimit => { /* extremely unlikely; accept */ }
            }
        }
    }
}
