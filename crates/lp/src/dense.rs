//! The original dense two-phase tableau simplex, kept as a reference
//! implementation.
//!
//! [`crate::simplex`] (the default solver) is a sparse revised simplex; this
//! module preserves the seed's dense tableau `[B⁻¹A | B⁻¹b]` method. It is
//! retained for three reasons: property tests assert the revised solver
//! matches it to 1e-6 on objectives and duals, the `e13_lp_solver` bench
//! measures the speedup against it, and it is an independent oracle when
//! debugging numerical issues. New code should call [`crate::simplex::solve`].

// The dense tableau is index-heavy by nature; the range loops mirror the
// textbook presentation and are kept as-is in this frozen reference module.
#![allow(clippy::needless_range_loop)]

use crate::problem::{LinearProgram, Relation, Sense};
use crate::simplex::{LpSolution, LpStatus, SimplexOptions};

/// Solves a linear program with the dense two-phase primal tableau simplex.
pub fn solve(lp: &LinearProgram, options: &SimplexOptions) -> LpSolution {
    Tableau::build(lp, options).solve()
}

struct Tableau<'a> {
    lp: &'a LinearProgram,
    tol: f64,
    max_iterations: usize,
    stall_threshold: usize,
    m: usize,
    /// total number of columns (original + slack + surplus + artificial)
    n_total: usize,
    n_original: usize,
    /// row-major tableau, m rows × (n_total + 1); last column is the rhs
    t: Vec<f64>,
    /// objective coefficients (maximization form) for all columns
    cost: Vec<f64>,
    /// basis variable of each row
    basis: Vec<usize>,
    /// first artificial column index (columns ≥ this are artificial)
    first_artificial: usize,
    /// per original constraint: the identity column created for it and the
    /// sign applied when normalizing the rhs
    identity_col: Vec<usize>,
    row_sign: Vec<f64>,
    iterations: usize,
}

impl<'a> Tableau<'a> {
    fn build(lp: &'a LinearProgram, options: &SimplexOptions) -> Self {
        let m = lp.num_constraints();
        let n = lp.num_variables();

        // Count extra columns.
        let mut num_slack = 0usize;
        let mut num_surplus = 0usize;
        let mut num_artificial = 0usize;
        // effective relation after normalizing rhs >= 0
        let mut eff: Vec<(Relation, f64)> = Vec::with_capacity(m);
        for c in lp.constraints() {
            let (rel, sign) = if c.rhs < 0.0 {
                let flipped = match c.relation {
                    Relation::Le => Relation::Ge,
                    Relation::Ge => Relation::Le,
                    Relation::Eq => Relation::Eq,
                };
                (flipped, -1.0)
            } else {
                (c.relation, 1.0)
            };
            match rel {
                Relation::Le => num_slack += 1,
                Relation::Ge => {
                    num_surplus += 1;
                    num_artificial += 1;
                }
                Relation::Eq => num_artificial += 1,
            }
            eff.push((rel, sign));
        }

        let n_total = n + num_slack + num_surplus + num_artificial;
        let width = n_total + 1;
        let mut t = vec![0.0; m * width];
        let mut basis = vec![0usize; m];
        let mut identity_col = vec![0usize; m];
        let mut row_sign = vec![1.0; m];

        let slack_base = n;
        let surplus_base = n + num_slack;
        let artificial_base = n + num_slack + num_surplus;
        let mut next_slack = slack_base;
        let mut next_surplus = surplus_base;
        let mut next_artificial = artificial_base;

        for (i, c) in lp.constraints().iter().enumerate() {
            let (rel, sign) = eff[i];
            row_sign[i] = sign;
            let row = &mut t[i * width..(i + 1) * width];
            for &(v, a) in &c.coeffs {
                row[v] += sign * a;
            }
            row[n_total] = sign * c.rhs;
            match rel {
                Relation::Le => {
                    row[next_slack] = 1.0;
                    basis[i] = next_slack;
                    identity_col[i] = next_slack;
                    next_slack += 1;
                }
                Relation::Ge => {
                    row[next_surplus] = -1.0;
                    row[next_artificial] = 1.0;
                    basis[i] = next_artificial;
                    identity_col[i] = next_artificial;
                    next_surplus += 1;
                    next_artificial += 1;
                }
                Relation::Eq => {
                    row[next_artificial] = 1.0;
                    basis[i] = next_artificial;
                    identity_col[i] = next_artificial;
                    next_artificial += 1;
                }
            }
        }

        // Maximization costs for the original problem.
        let mut cost = vec![0.0; n_total];
        let sense_sign = match lp.sense() {
            Sense::Maximize => 1.0,
            Sense::Minimize => -1.0,
        };
        for (v, &c) in lp.objective().iter().enumerate() {
            cost[v] = sense_sign * c;
        }

        let max_iterations = if options.max_iterations == 0 {
            200 * (m + n_total) + 10_000
        } else {
            options.max_iterations
        };

        Tableau {
            lp,
            tol: options.tolerance,
            max_iterations,
            stall_threshold: options.stall_threshold,
            m,
            n_total,
            n_original: n,
            t,
            cost,
            basis,
            first_artificial: artificial_base,
            identity_col,
            row_sign,
            iterations: 0,
        }
    }

    #[inline]
    fn width(&self) -> usize {
        self.n_total + 1
    }

    #[inline]
    fn at(&self, r: usize, c: usize) -> f64 {
        self.t[r * self.width() + c]
    }

    fn objective_of_basis(&self, cost: &[f64]) -> f64 {
        (0..self.m)
            .map(|r| cost[self.basis[r]] * self.at(r, self.n_total))
            .sum()
    }

    /// Runs simplex iterations with the given cost vector and a predicate for
    /// columns allowed to enter the basis. Returns `None` on success (optimal
    /// for this cost) or `Some(status)` if unbounded / iteration limit.
    fn iterate(&mut self, cost: &[f64], allow_enter: impl Fn(usize) -> bool) -> Option<LpStatus> {
        let width = self.width();
        let mut stall = 0usize;
        let mut last_obj = self.objective_of_basis(cost);
        loop {
            if self.iterations >= self.max_iterations {
                return Some(LpStatus::IterationLimit);
            }
            // y = c_B^T B^{-1} is implicit: reduced cost of column j is
            // cost[j] - sum_r cost[basis[r]] * t[r][j].
            let mut entering: Option<usize> = None;
            let use_bland = stall >= self.stall_threshold;
            let mut best_rc = self.tol;
            for j in 0..self.n_total {
                if !allow_enter(j) {
                    continue;
                }
                let mut rc = cost[j];
                for r in 0..self.m {
                    let cb = cost[self.basis[r]];
                    if cb != 0.0 {
                        rc -= cb * self.t[r * width + j];
                    }
                }
                if rc > self.tol {
                    if use_bland {
                        entering = Some(j);
                        break;
                    }
                    if rc > best_rc {
                        best_rc = rc;
                        entering = Some(j);
                    }
                }
            }
            let Some(e) = entering else {
                return None; // optimal for this cost vector
            };

            // Ratio test.
            let mut leaving: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for r in 0..self.m {
                let a = self.t[r * width + e];
                if a > self.tol {
                    let ratio = self.t[r * width + self.n_total] / a;
                    let better = ratio < best_ratio - self.tol
                        || (ratio < best_ratio + self.tol
                            && leaving
                                .map(|l| self.basis[r] < self.basis[l])
                                .unwrap_or(true));
                    if better {
                        best_ratio = ratio;
                        leaving = Some(r);
                    }
                }
            }
            let Some(l) = leaving else {
                return Some(LpStatus::Unbounded);
            };

            self.pivot(l, e);
            self.iterations += 1;

            let obj = self.objective_of_basis(cost);
            if obj > last_obj + self.tol {
                stall = 0;
            } else {
                stall += 1;
            }
            last_obj = obj;
        }
    }

    fn pivot(&mut self, row: usize, col: usize) {
        let width = self.width();
        let pivot_value = self.t[row * width + col];
        debug_assert!(pivot_value.abs() > 1e-12, "pivot element too small");
        // normalize pivot row
        let inv = 1.0 / pivot_value;
        for j in 0..width {
            self.t[row * width + j] *= inv;
        }
        // eliminate the column from all other rows
        for r in 0..self.m {
            if r == row {
                continue;
            }
            let factor = self.t[r * width + col];
            if factor != 0.0 {
                for j in 0..width {
                    let delta = factor * self.t[row * width + j];
                    self.t[r * width + j] -= delta;
                }
                // clamp tiny residues on the pivot column to exactly zero
                self.t[r * width + col] = 0.0;
            }
        }
        self.basis[row] = col;
    }

    fn solve(mut self) -> LpSolution {
        let has_artificials = self.first_artificial < self.n_total;

        // Structural variables fixed at zero may never enter a basis (same
        // contract as the revised engine, so the oracle stays comparable).
        let n = self.n_original;
        let fixed: Vec<bool> = (0..n).map(|j| self.lp.is_variable_fixed(j)).collect();
        let allow = move |j: usize| j >= n || !fixed[j];

        if has_artificials {
            // Phase 1: maximize -(sum of artificials).
            let mut phase1_cost = vec![0.0; self.n_total];
            for j in self.first_artificial..self.n_total {
                phase1_cost[j] = -1.0;
            }
            if let Some(status) = self.iterate(&phase1_cost, &allow) {
                // Unbounded cannot happen in phase 1 (objective bounded by 0),
                // so this is an iteration limit.
                return self.extract(status);
            }
            let phase1_obj = self.objective_of_basis(&phase1_cost);
            if phase1_obj < -1e-6 {
                return self.extract(LpStatus::Infeasible);
            }
            self.drive_out_artificials();
        }

        // Phase 2 with the original costs; artificial columns may not enter.
        let cost = self.cost.clone();
        let first_artificial = self.first_artificial;
        let status = match self.iterate(&cost, move |j| j < first_artificial && allow(j)) {
            None => LpStatus::Optimal,
            Some(s) => s,
        };
        self.extract(status)
    }

    /// After phase 1, pivots basic artificial variables (at value 0) out of
    /// the basis where possible so that phase 2 starts from a clean basis.
    fn drive_out_artificials(&mut self) {
        let width = self.width();
        for r in 0..self.m {
            if self.basis[r] >= self.first_artificial {
                // find any eligible non-artificial column with nonzero entry
                let mut target = None;
                for j in 0..self.first_artificial {
                    if self.t[r * width + j].abs() > self.tol {
                        target = Some(j);
                        break;
                    }
                }
                if let Some(j) = target {
                    self.pivot(r, j);
                }
                // if no such column exists the row is redundant; the
                // artificial stays basic at value 0 which is harmless because
                // artificials are barred from re-entering in phase 2.
            }
        }
    }

    fn extract(&self, status: LpStatus) -> LpSolution {
        let width = self.width();
        let mut x = vec![0.0; self.n_original];
        for r in 0..self.m {
            let b = self.basis[r];
            if b < self.n_original {
                x[b] = self.t[r * width + self.n_total].max(0.0);
            }
        }
        // duals of the maximization form: y_i = Σ_r cost[basis[r]] * B^{-1}[r][i],
        // and column `identity_col[i]` of the tableau is exactly B^{-1} e_i.
        let sense_sign = match self.lp.sense() {
            Sense::Maximize => 1.0,
            Sense::Minimize => -1.0,
        };
        let mut duals = vec![0.0; self.m];
        for i in 0..self.m {
            let col = self.identity_col[i];
            let mut y = 0.0;
            for r in 0..self.m {
                let cb = self.cost[self.basis[r]];
                if cb != 0.0 {
                    y += cb * self.t[r * width + col];
                }
            }
            duals[i] = sense_sign * self.row_sign[i] * y;
        }
        let objective = self.lp.objective_value(&x);
        LpSolution {
            status,
            objective,
            x,
            duals,
            iterations: self.iterations,
            // The dense tableau has no pluggable engine: report the
            // closest labels (full Dantzig scan, dense inverse) with its
            // pivot count so stats stay comparable across solvers.
            stats: crate::simplex::SolveStats {
                iterations: self.iterations,
                ..Default::default()
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_reference_still_solves_the_basic_packing_lp() {
        // max 3x + 2y  s.t. x + y <= 4, x <= 2, y <= 3  -> 10 at (2, 2)
        let mut lp = LinearProgram::new(Sense::Maximize);
        let x = lp.add_variable(3.0);
        let y = lp.add_variable(2.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Le, 4.0);
        lp.add_constraint(vec![(x, 1.0)], Relation::Le, 2.0);
        lp.add_constraint(vec![(y, 1.0)], Relation::Le, 3.0);
        let sol = solve(&lp, &SimplexOptions::default());
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.objective - 10.0).abs() < 1e-7);
    }
}
