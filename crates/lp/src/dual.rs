//! **Dual simplex** reoptimization after row additions.
//!
//! The primal warm-start path ([`crate::simplex::solve_with_warm_start`])
//! resumes cheaply only when the constraint **rows are unchanged** and the
//! column set grew — the restricted-master situation of column generation.
//! When rows are *added* (a new bidder enters the auction, a new conflict
//! constraint is discovered, a cutting plane lands in the Dantzig–Wolfe
//! master) the old optimal basis is no longer primal feasible, and the seed
//! behavior was a full cold re-solve.
//!
//! This module closes that gap with the classic observation: extending the
//! old optimal basis by the **logical columns of the new rows** yields a
//! basis that is **dual feasible** (the new rows' duals are zero, so every
//! reduced cost is unchanged) but possibly primal infeasible (a new row may
//! cut off the old optimum). The dual simplex method restores primal
//! feasibility while *maintaining* dual feasibility:
//!
//! 1. **leaving row**: **dual steepest-edge** (Forrest–Goldfarb reference
//!    weights): the row maximizing `x_B[l]² / γ_l`, where `γ_l`
//!    approximates `‖e_l B⁻¹‖²`. The weights are updated from the entering
//!    column's FTRAN image — which the pivot already pays for — so DSE
//!    costs no extra solves over the old most-negative-value rule; it picks
//!    rows whose repair makes *geometric* progress instead of rows that
//!    merely look bad in un-normalized units (after stalls the rule
//!    degrades to first-violated-row, Bland-style, which terminates),
//! 2. **pivot row**: `ρ = e_l B⁻¹` (one BTRAN on the
//!    [`crate::basis::BasisFactorization`] seam),
//! 3. **dual ratio test**: among nonbasic columns with `α_j = ρ·a_j < 0`,
//!    enter the one minimizing `rc_j / α_j` (keeping all reduced costs
//!    non-positive), falling back to a smallest-index rule after stalls,
//! 4. terminate **optimal** when `x_B ≥ 0`, or **infeasible** when a
//!    violated row has no negative entry (a Farkas certificate).
//!
//! Internally every `≤`/`≥` row is folded into a `≤` row (a `≥` row is
//! negated, so its right-hand side may go negative — the dual method does
//! not mind), which makes one slack per row the only logical column and
//! maps the primal engine's `Surplus(i)` basis members onto the folded
//! slack exactly. LPs with equality rows, or warm bases carrying a basic
//! artificial, are not eligible and fall back to the primal path.
//!
//! The public entry point [`reoptimize_after_row_additions`] never returns
//! a wrong answer on ineligible input: every fallback re-solves through
//! [`crate::simplex`], and the dual loop itself hands its repaired basis to
//! the primal engine for final pricing/extraction, so the reported solution
//! always satisfies the primal engine's invariants (and its
//! [`crate::simplex::SolveStats::dual_pivots`] records the repair work).

use crate::basis::{
    make_factorization, BasisFactorization, SparseColumn, SparseVector, SparsityStats,
};
use crate::problem::{CscMatrix, LinearProgram, Relation, Sense};
use crate::simplex::{
    solve_with_warm_start, BasisVar, LpSolution, SimplexOptions, SolveStats, WarmStart,
};

/// Result of a dual-simplex reoptimization.
#[derive(Debug)]
pub struct DualReoptimization {
    /// The solution of the full (rows-added) problem.
    pub solution: LpSolution,
    /// Resumable state for the next re-solve (primal or dual).
    pub warm: WarmStart,
    /// Whether the dual path actually ran (`false` means the input was
    /// ineligible — equality rows, foreign basis — and the primal engine
    /// solved from scratch).
    pub used_dual_path: bool,
}

/// Re-solves `lp` starting from `prior`, the optimal basis of a previous
/// solve of the **same LP minus some trailing rows** (columns may also have
/// grown; new columns start nonbasic). Runs the dual simplex to repair
/// primal feasibility, then resumes the primal engine from the repaired
/// basis for final pricing and extraction.
///
/// Falls back to a plain primal solve (reporting `used_dual_path: false`)
/// when the LP has equality rows, the prior basis does not map onto this
/// problem, or the extended basis is not dual feasible (the prior state was
/// not an optimum of a row-prefix of `lp`).
pub fn reoptimize_after_row_additions(
    lp: &LinearProgram,
    options: &SimplexOptions,
    prior: WarmStart,
) -> DualReoptimization {
    let Some(mut dual) = DualSimplex::build(lp, options) else {
        return primal_fallback(lp, options, Some(prior));
    };
    if !dual.install(&prior) {
        return primal_fallback(lp, options, Some(prior));
    }
    match dual.run() {
        DualStatus::PrimalFeasible => {
            let pivots = dual.iterations;
            let dual_sparsity = dual.sparsity_delta();
            let warm = dual.into_warm_start();
            // Final pricing + extraction through the primal engine: the
            // repaired basis is primal feasible and (up to drift) dual
            // feasible, so this typically takes zero pivots — and reuses
            // the primal engine's extraction conventions verbatim. (The
            // primal engine re-anchors the adopted factorization's sparsity
            // baseline, so its stats cover the resume only; the repair's
            // solves are merged in afterwards.)
            let (mut solution, warm) = solve_with_warm_start(lp, options, Some(warm));
            solution.stats.dual_pivots = pivots;
            merge_sparsity(&mut solution.stats, dual_sparsity);
            DualReoptimization {
                solution,
                warm,
                used_dual_path: true,
            }
        }
        DualStatus::Infeasible => {
            // The dual method's unbounded ray is a Farkas certificate, but
            // callers expect the primal engine's infeasibility report (and
            // its phase-1 certificate): produce it from a cold start. The
            // dual pivots spent discovering the certificate are reported.
            let pivots = dual.iterations;
            let dual_sparsity = dual.sparsity_delta();
            let mut out = primal_fallback(lp, options, None);
            out.solution.stats.dual_pivots = pivots;
            merge_sparsity(&mut out.solution.stats, dual_sparsity);
            out.used_dual_path = true;
            out
        }
        DualStatus::IterationLimit => primal_fallback(lp, options, None),
    }
}

/// Folds the dual repair's hyper-sparse solve counters into stats that
/// already cover the primal resume. The density average is re-weighted by
/// tracked-solve counts, which is exact because every tracked solve of one
/// repair shares the same result length `m`.
fn merge_sparsity(stats: &mut SolveStats, sp: SparsityStats) {
    let dual_solves = sp.tracked_solves();
    if dual_solves == 0 {
        return;
    }
    let primal_solves = (stats.ftran_sparse_hits
        + stats.ftran_dense_fallbacks
        + stats.btran_sparse_hits
        + stats.btran_dense_fallbacks) as f64;
    stats.avg_result_density = (stats.avg_result_density * primal_solves
        + sp.avg_density() * dual_solves as f64)
        / (primal_solves + dual_solves as f64);
    stats.ftran_sparse_hits += sp.ftran_sparse as usize;
    stats.ftran_dense_fallbacks += sp.ftran_dense as usize;
    stats.btran_sparse_hits += sp.btran_sparse as usize;
    stats.btran_dense_fallbacks += sp.btran_dense as usize;
}

fn primal_fallback(
    lp: &LinearProgram,
    options: &SimplexOptions,
    warm: Option<WarmStart>,
) -> DualReoptimization {
    // A prior state whose row count differs is rejected by the primal
    // engine's own validation, so passing it through is safe either way.
    let (solution, warm) = solve_with_warm_start(lp, options, warm);
    DualReoptimization {
        solution,
        warm,
        used_dual_path: false,
    }
}

enum DualStatus {
    /// `x_B ≥ 0` reached: the basis is optimal (dual feasibility was
    /// maintained throughout).
    PrimalFeasible,
    /// A violated row with no negative pivot-row entry: no feasible point.
    Infeasible,
    /// Pivot budget exhausted before primal feasibility.
    IterationLimit,
}

/// The dual-simplex core over the folded all-`≤` form.
struct DualSimplex<'a> {
    lp: &'a LinearProgram,
    tol: f64,
    max_iterations: usize,
    stall_threshold: usize,
    refactor_interval: usize,

    m: usize,
    n: usize,
    /// structural columns + one slack per row
    n_total: usize,
    /// structural columns with the fold signs applied
    cols: CscMatrix,
    /// row-major adjacency of `cols` ([`CscMatrix::row_major`]): lets the
    /// dual ratio test scatter a sparse pivot row into the touched columns
    /// instead of sweeping all `n_total` columns
    rows_adj: Vec<Vec<(usize, f64)>>,
    /// folded rhs (may be negative — that is the dual method's job)
    b: Vec<f64>,
    /// maximization costs per global column (slacks cost 0)
    cost: Vec<f64>,
    /// Structural columns barred from the dual phase and exempt from the
    /// dual-feasibility screen: variables fixed at zero (they may never
    /// enter any basis) and **relief columns** of deactivated rows. A
    /// relief column legitimately has `rc = y_i > 0` when its row was
    /// binding at the prior optimum — it must *enter*, which is the primal
    /// engine's job after the repair: barring it here keeps the dual
    /// invariant over the remaining columns, and the final primal resume
    /// (which re-prices every column) brings it in. An infeasibility
    /// verdict reached while relief columns are barred may be spurious, but
    /// that path already falls back to a full primal solve, so the answer
    /// stays correct either way.
    barred: Vec<bool>,

    basis: Vec<usize>,
    in_basis: Vec<bool>,
    factor: Box<dyn BasisFactorization>,
    xb: Vec<f64>,
    /// hyper-sparse FTRAN/BTRAN enabled ([`SimplexOptions::hyper_sparse`])
    hyper_sparse: bool,

    iterations: usize,
}

impl<'a> DualSimplex<'a> {
    /// Builds the folded form; `None` when the LP has equality rows (not
    /// expressible with one slack per row — the caller falls back).
    fn build(lp: &'a LinearProgram, options: &SimplexOptions) -> Option<Self> {
        let m = lp.num_constraints();
        let n = lp.num_variables();
        let mut row_sign = vec![1.0f64; m];
        let mut b = vec![0.0f64; m];
        for (i, c) in lp.constraints().iter().enumerate() {
            let sign = match c.relation {
                Relation::Le => 1.0,
                Relation::Ge => -1.0,
                Relation::Eq => return None,
            };
            row_sign[i] = sign;
            b[i] = sign * c.rhs;
        }
        let mut cols = lp.to_csc();
        for (val, &row) in cols.values.iter_mut().zip(cols.row_idx.iter()) {
            *val *= row_sign[row];
        }
        let rows_adj = cols.row_major();
        let n_total = n + m;
        let sense_sign = match lp.sense() {
            Sense::Maximize => 1.0,
            Sense::Minimize => -1.0,
        };
        let mut cost = vec![0.0f64; n_total];
        for (v, &c) in lp.objective().iter().enumerate() {
            cost[v] = sense_sign * c;
        }
        let barred: Vec<bool> = (0..n)
            .map(|j| lp.is_variable_fixed(j) || lp.is_relief_variable(j))
            .collect();
        let max_iterations = if options.max_iterations == 0 {
            200 * (m + n_total) + 10_000
        } else {
            options.max_iterations
        };
        Some(DualSimplex {
            lp,
            tol: options.tolerance,
            max_iterations,
            stall_threshold: options.stall_threshold,
            refactor_interval: options.refactor_interval,
            m,
            n,
            n_total,
            cols,
            rows_adj,
            b,
            cost,
            barred,
            basis: Vec::new(),
            in_basis: vec![false; n_total],
            factor: make_factorization(options.basis),
            xb: Vec::new(),
            hyper_sparse: options.hyper_sparse,
            iterations: 0,
        })
    }

    /// Global column index of the slack of row `i`.
    #[inline]
    fn slack_col(&self, i: usize) -> usize {
        self.n + i
    }

    /// Visits the sparse entries of global column `j` (fold signs applied).
    #[inline]
    fn for_each_entry(&self, j: usize, mut f: impl FnMut(usize, f64)) {
        if j < self.n {
            let (rows, vals) = self.cols.column(j);
            for (&r, &a) in rows.iter().zip(vals.iter()) {
                if a != 0.0 {
                    f(r, a);
                }
            }
        } else {
            f(j - self.n, 1.0);
        }
    }

    fn sparse_column(&self, j: usize) -> SparseColumn {
        let mut col = SparseColumn::new();
        self.for_each_entry(j, |r, v| col.push((r, v)));
        col
    }

    /// Maps a prior basis member onto the folded column space. `Surplus(i)`
    /// of a `≥` row *is* the slack of the negated row (`a·x − s = rhs ⟺
    /// −a·x + s = −rhs`), so both logicals land on the same folded slack.
    fn map_prior(&self, var: BasisVar) -> Option<usize> {
        match var {
            BasisVar::Structural(j) => (j < self.n).then_some(j),
            BasisVar::Slack(i) => (i < self.m
                && matches!(self.lp.constraints()[i].relation, Relation::Le))
            .then(|| self.slack_col(i)),
            BasisVar::Surplus(i) => (i < self.m
                && matches!(self.lp.constraints()[i].relation, Relation::Ge))
            .then(|| self.slack_col(i)),
            // a basic artificial (a redundant row in the prior solve) has no
            // folded counterpart — the caller falls back to the primal path
            BasisVar::Artificial(_) => None,
        }
    }

    /// Installs `prior` (covering a row prefix) extended by the new rows'
    /// slacks, refactorizes from **this** problem's columns, and verifies
    /// dual feasibility. Returns `false` when anything does not fit.
    fn install(&mut self, prior: &WarmStart) -> bool {
        let m_old = prior.basis.len();
        if m_old > self.m {
            return false;
        }
        let mut basis = Vec::with_capacity(self.m);
        for &var in &prior.basis {
            match self.map_prior(var) {
                Some(c) => basis.push(c),
                None => return false,
            }
        }
        for i in m_old..self.m {
            basis.push(self.slack_col(i));
        }
        let mut in_basis = vec![false; self.n_total];
        for &c in &basis {
            if in_basis[c] {
                return false; // duplicated member: corrupt state
            }
            in_basis[c] = true;
        }
        self.basis = basis;
        self.in_basis = in_basis;
        if !self.refactor() {
            return false;
        }
        // Mirror of the primal engine's screen: a *fixed* column basic at
        // a positive value may only ride along when harmless (≤-row slack
        // consumption); otherwise fall back so the eventual cold start
        // pins it at exactly 0. Relief columns are exempt — being basic at
        // a positive value is precisely how they keep a deactivated row
        // slack.
        for (r, &c) in self.basis.iter().enumerate() {
            if c < self.n
                && self.xb[r] > 1e-9
                && self.lp.is_variable_fixed(c)
                && !self.lp.fixed_value_is_harmless(c)
            {
                return false;
            }
        }
        // Dual feasibility of the extended basis: with the new rows' duals
        // at zero every reduced cost equals its value at the prior optimum,
        // so rc ≤ 0 must hold for all nonbasic columns. A violation means
        // `prior` was not an optimal basis of a row-prefix of this LP.
        let mut y = vec![0.0f64; self.m];
        let cb: Vec<f64> = self.basis.iter().map(|&c| self.cost[c]).collect();
        self.factor.btran(&cb, &mut y);
        let dual_tol = self.tol.max(1e-7);
        for j in 0..self.n_total {
            if self.in_basis[j] || (j < self.n && self.barred[j]) {
                continue;
            }
            if self.reduced_cost(&y, j) > dual_tol {
                return false;
            }
        }
        true
    }

    #[inline]
    fn reduced_cost(&self, y: &[f64], j: usize) -> f64 {
        let mut rc = self.cost[j];
        self.for_each_entry(j, |i, a| {
            rc -= y[i] * a;
        });
        rc
    }

    fn refactor(&mut self) -> bool {
        let cols: Vec<SparseColumn> = self.basis.iter().map(|&c| self.sparse_column(c)).collect();
        if !self.factor.refactor(self.m, &cols) {
            return false;
        }
        if self.xb.len() != self.m {
            self.xb = vec![0.0; self.m];
        }
        let (factor, xb) = (&self.factor, &mut self.xb);
        factor.ftran_dense(&self.b, xb);
        true
    }

    /// FTRAN of global column `j` into a [`SparseVector`] (hyper-sparse
    /// path when enabled, dense kernel with the counters bypassed when not).
    fn ftran_into(&self, j: usize, w: &mut SparseVector, scratch: &mut SparseColumn) {
        scratch.clear();
        self.for_each_entry(j, |r, v| scratch.push((r, v)));
        if self.hyper_sparse {
            self.factor.ftran_sparse_into(scratch, w);
        } else {
            w.begin_dense(self.m);
            self.factor.ftran_sparse(scratch, w.values_mut());
        }
    }

    /// BTRAN of unit vector `e_r` (pivot row of `B⁻¹`) into a
    /// [`SparseVector`].
    fn btran_unit_into(&self, r: usize, rho: &mut SparseVector) {
        if self.hyper_sparse {
            self.factor.btran_unit_into(r, rho);
        } else {
            rho.begin_dense(self.m);
            self.factor.btran_unit(r, rho.values_mut());
        }
    }

    /// The factorization's cumulative hyper-sparse counters. The factor is
    /// created fresh per repair, so no baseline subtraction is needed: the
    /// snapshot *is* this repair's work.
    fn sparsity_delta(&self) -> SparsityStats {
        self.factor.sparsity_stats()
    }

    /// Total primal infeasibility `Σ max(0, −x_B)`, the quantity the dual
    /// method drives to zero (used for stall detection).
    fn infeasibility(&self) -> f64 {
        self.xb.iter().map(|&x| (-x).max(0.0)).sum()
    }

    /// Recomputes the full nonbasic reduced-cost vector from fresh duals
    /// (`O(nnz)` plus one BTRAN) — used at entry and after refactorizations;
    /// between them the vector is maintained **incrementally** by the pivot
    /// update `rc_j ← rc_j − θ_d·α_j`, which reuses the pivot-row products
    /// the ratio test computed anyway, so a dual pivot pays one BTRAN (the
    /// pivot row) and one FTRAN (the entering column) — the same
    /// linear-algebra bill as a primal pivot.
    fn recompute_reduced_costs(&self, rc: &mut [f64], y: &mut [f64]) {
        let cb: Vec<f64> = self.basis.iter().map(|&c| self.cost[c]).collect();
        self.factor.btran(&cb, y);
        for (j, r) in rc.iter_mut().enumerate() {
            *r = if self.in_basis[j] {
                0.0
            } else {
                self.reduced_cost(y, j)
            };
        }
    }

    /// The dual-simplex loop: repair primal feasibility while keeping dual
    /// feasibility.
    fn run(&mut self) -> DualStatus {
        let m = self.m;
        let mut y = vec![0.0f64; m];
        let mut rho = SparseVector::zeros(m);
        let mut w = SparseVector::zeros(m);
        let mut rc = vec![0.0f64; self.n_total];
        // scatter workspace for the ratio test: `alpha_ws[j] = ρ·a_j` for
        // the candidate columns touched by the pivot row's support
        let mut alpha_ws = vec![0.0f64; self.n_total];
        let mut in_cand = vec![false; self.n_total];
        let mut cand: Vec<usize> = Vec::with_capacity(self.n_total);
        // Dual steepest-edge reference weights: `gamma[r]` approximates
        // `‖e_r B⁻¹‖²` for the current basis. Initialized to the exact
        // value for slack-heavy extended bases (1.0) and maintained by the
        // Forrest–Goldfarb reference update from the entering column's
        // FTRAN image — no additional BTRAN/FTRAN per pivot.
        let mut gamma = vec![1.0f64; m];
        // nonbasic columns touched by the current pivot row: `(j, α_j)`
        let mut touched: Vec<(usize, f64)> = Vec::with_capacity(self.n_total);
        let mut col_scratch = SparseColumn::new();
        let mut stall = 0usize;
        let mut last_infeas = f64::INFINITY;
        self.recompute_reduced_costs(&mut rc, &mut y);
        loop {
            if self.iterations >= self.max_iterations {
                return DualStatus::IterationLimit;
            }
            if self.refactor_interval > 0
                && self.factor.updates_since_refactor() >= self.refactor_interval
            {
                if !self.refactor() {
                    return DualStatus::IterationLimit;
                }
                // rebuilds reset incremental drift in x_B and rc alike
                self.recompute_reduced_costs(&mut rc, &mut y);
            }

            let use_bland = stall >= self.stall_threshold;
            // Leaving row: dual steepest-edge (max `x² / γ` among violated
            // rows), or the first violated row under the anti-cycling
            // override.
            let infeas_tol = self.tol.max(1e-9);
            let mut leaving: Option<usize> = None;
            let mut best_score = 0.0f64;
            for (r, &x) in self.xb.iter().enumerate() {
                if x < -infeas_tol {
                    if use_bland {
                        leaving = Some(r);
                        break;
                    }
                    let score = x * x / gamma[r].max(1e-12);
                    if leaving.is_none() || score > best_score {
                        best_score = score;
                        leaving = Some(r);
                    }
                }
            }
            let Some(l) = leaving else {
                return DualStatus::PrimalFeasible;
            };

            // Pivot row of the outgoing basis.
            self.btran_unit_into(l, &mut rho);

            // Scatter the pivot row into the columns it touches: for every
            // support row `i`, walk that row's structural entries (plus its
            // slack, coefficient 1), accumulating `α_j = ρ·a_j`. A column
            // the scatter misses has α_j = 0 exactly, so it can be neither
            // an entering candidate nor an rc-update target — restricting
            // the ratio test to the candidate list is exact, including the
            // Farkas (infeasibility) verdict.
            cand.clear();
            {
                let rows_adj = &self.rows_adj;
                let in_basis = &self.in_basis;
                let barred = &self.barred;
                let n = self.n;
                rho.for_each_nonzero(|i, ri| {
                    let js = n + i; // slack of folded row i
                    if !in_basis[js] {
                        if !in_cand[js] {
                            in_cand[js] = true;
                            cand.push(js);
                        }
                        alpha_ws[js] += ri;
                    }
                    for &(j, a) in &rows_adj[i] {
                        if in_basis[j] || barred[j] {
                            continue;
                        }
                        if !in_cand[j] {
                            in_cand[j] = true;
                            cand.push(j);
                        }
                        alpha_ws[j] += ri * a;
                    }
                });
            }

            // Dual ratio test over the candidates. The default is a
            // two-pass Harris test: pass 1 relaxes dual feasibility by
            // `dual_feas` to obtain a bound on the dual step θ_d, pass 2
            // takes the best-conditioned pivot (largest |α|) whose exact
            // ratio stays within the bound. Under the anti-cycling override
            // the textbook smallest-ratio / smallest-index rule is kept.
            let pivot_tol = 1e-9;
            let mut entering: Option<usize> = None;
            let mut best_alpha = 0.0f64;
            if use_bland {
                let mut best_ratio = f64::INFINITY;
                for &j in &cand {
                    let alpha = alpha_ws[j];
                    if alpha >= -pivot_tol {
                        continue;
                    }
                    // clamp tiny positive drift so ratios stay non-negative
                    let ratio = rc[j].min(0.0) / alpha;
                    let better = ratio < best_ratio - self.tol
                        || (ratio < best_ratio + self.tol
                            && entering.map(|e| j < e).unwrap_or(true));
                    if better || entering.is_none() {
                        best_ratio = ratio;
                        best_alpha = alpha;
                        entering = Some(j);
                    }
                }
            } else {
                let dual_feas = self.tol.max(1e-9);
                let mut theta_max = f64::INFINITY;
                for &j in &cand {
                    let alpha = alpha_ws[j];
                    if alpha < -pivot_tol {
                        let bound = (rc[j].min(0.0) - dual_feas) / alpha;
                        if bound < theta_max {
                            theta_max = bound;
                        }
                    }
                }
                if theta_max.is_finite() {
                    for &j in &cand {
                        let alpha = alpha_ws[j];
                        if alpha < -pivot_tol
                            && rc[j].min(0.0) / alpha <= theta_max
                            && (entering.is_none() || alpha.abs() > best_alpha.abs())
                        {
                            best_alpha = alpha;
                            entering = Some(j);
                        }
                    }
                }
            }
            // Materialize the touched set for the incremental rc update and
            // restore the scatter workspace's all-zero invariant.
            touched.clear();
            for &j in &cand {
                let alpha = alpha_ws[j];
                if alpha != 0.0 {
                    touched.push((j, alpha));
                }
                alpha_ws[j] = 0.0;
                in_cand[j] = false;
            }
            let Some(e) = entering else {
                // Row l reads `Σ α_j x_j = x_B[l] < 0` with every nonbasic
                // α_j ≥ 0 and every x_j ≥ 0: no feasible point exists.
                return DualStatus::Infeasible;
            };

            // FTRAN the entering column and pivot exactly like the primal
            // method: θ = x_B[l] / w_l ≥ 0 because both are negative.
            self.ftran_into(e, &mut w, &mut col_scratch);
            if w.value(l).abs() <= 1e-12 {
                // drifted pivot row: refactorize and retry this iteration
                if !self.refactor() {
                    return DualStatus::IterationLimit;
                }
                self.recompute_reduced_costs(&mut rc, &mut y);
                continue;
            }
            let theta = self.xb[l] / w.value(l);
            {
                let xb = &mut self.xb;
                w.for_each_nonzero(|r, a| {
                    if r != l {
                        xb[r] -= theta * a;
                    }
                });
            }
            self.xb[l] = theta;

            // Dual steepest-edge reference update (Forrest–Goldfarb): the
            // entering column's FTRAN image `w` — already computed for the
            // pivot — bounds how every row norm can have grown:
            // `γ_r ← max(γ_r, (w_r / w_l)² · γ_l)`, `γ_l ← γ_l / w_l²`.
            // Weights only ever *grow* between resets, so checking the
            // blow-up trigger against the entries updated this pivot (plus
            // γ_l) is enough: any weight above the threshold was detected
            // at the pivot that set it.
            {
                let wl = w.value(l);
                let gamma_l = gamma[l].max(1.0);
                let inv_wl2 = 1.0 / (wl * wl);
                let mut max_gamma = 0.0f64;
                {
                    let gamma = &mut gamma;
                    w.for_each_nonzero(|r, wr| {
                        if r != l {
                            let candidate = wr * wr * inv_wl2 * gamma_l;
                            if candidate > gamma[r] {
                                gamma[r] = candidate;
                            }
                            max_gamma = max_gamma.max(gamma[r]);
                        }
                    });
                }
                gamma[l] = (gamma_l * inv_wl2).max(1.0);
                max_gamma = max_gamma.max(gamma[l]);
                if max_gamma > 1e12 {
                    // degenerate reference framework: restart the weights
                    gamma.fill(1.0);
                }
            }
            let leaving_col = self.basis[l];
            self.in_basis[leaving_col] = false;
            self.in_basis[e] = true;
            self.basis[l] = e;
            let refactored = if self.factor.update_sparse(l, &w) {
                false
            } else if self.refactor() {
                true
            } else {
                return DualStatus::IterationLimit;
            };
            self.iterations += 1;

            if refactored {
                self.recompute_reduced_costs(&mut rc, &mut y);
            } else {
                // Incremental dual update from the already-computed pivot
                // row: `θ_d = rc_e / α_e`, `rc_j ← rc_j − θ_d·α_j` for the
                // touched nonbasic columns; the leaving column has α = 1
                // (it *was* basis position l), so its new rc is −θ_d ≤ 0.
                let theta_d = rc[e].min(0.0) / best_alpha;
                for &(j, alpha) in &touched {
                    if !self.in_basis[j] {
                        rc[j] -= theta_d * alpha;
                    }
                }
                rc[e] = 0.0;
                rc[leaving_col] = -theta_d;
            }

            let infeas = self.infeasibility();
            if infeas < last_infeas - self.tol {
                stall = 0;
            } else {
                stall += 1;
            }
            last_infeas = infeas;
        }
    }

    /// Emits the repaired basis for the primal engine, mapping folded
    /// slacks back onto the primal engine's `Slack`/`Surplus` identities.
    fn into_warm_start(self) -> WarmStart {
        let basis = self
            .basis
            .iter()
            .map(|&c| {
                if c < self.n {
                    BasisVar::Structural(c)
                } else {
                    let i = c - self.n;
                    match self.lp.constraints()[i].relation {
                        Relation::Le => BasisVar::Slack(i),
                        Relation::Ge => BasisVar::Surplus(i),
                        Relation::Eq => unreachable!("Eq rows are rejected in build"),
                    }
                }
            })
            .collect();
        // The factorization inverts the *folded* basis, which differs from
        // the primal engine's rhs-normalized fold by a ±1 row scaling
        // whenever the two folds disagree on a row. The primal engine's
        // residual check repairs that case with one refactorization; when
        // the folds agree (all-`≤` rows with non-negative rhs — the master
        // shape) the factorization is adopted as-is.
        WarmStart::from_parts(basis, self.factor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense;
    use crate::problem::{LinearProgram, Relation, Sense};
    use crate::simplex::{solve, LpStatus, SimplexOptions};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn all_engines() -> Vec<SimplexOptions> {
        use crate::basis::BasisKind;
        use crate::pricing::PricingRule;
        let mut out = Vec::new();
        for pricing in [
            PricingRule::Dantzig,
            PricingRule::Bland,
            PricingRule::Devex,
            PricingRule::SteepestEdge,
        ] {
            for basis in [
                BasisKind::ProductForm,
                BasisKind::SparseLu,
                BasisKind::ForrestTomlin,
            ] {
                out.push(SimplexOptions::default().with_engine(pricing, basis));
            }
        }
        out
    }

    /// Random bounded packing LP (the master shape).
    fn random_packing_lp(seed: u64, n: usize, m: usize) -> LinearProgram {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut lp = LinearProgram::new(Sense::Maximize);
        for _ in 0..n {
            lp.add_variable(rng.random_range(1.0..10.0));
        }
        for _ in 0..m {
            let mut coeffs: Vec<(usize, f64)> = Vec::new();
            for j in 0..n {
                if rng.random_range(0.0..1.0) < 0.6 {
                    coeffs.push((j, rng.random_range(0.1..4.0)));
                }
            }
            lp.add_constraint(coeffs, Relation::Le, rng.random_range(1.0..15.0));
        }
        for j in 0..n {
            lp.add_constraint(vec![(j, 1.0)], Relation::Le, rng.random_range(0.5..4.0));
        }
        lp
    }

    #[test]
    fn tightening_row_is_repaired_by_the_dual_path() {
        // max 3x + 2y, x + y <= 4, x <= 2, y <= 3 -> (2, 2), obj 10.
        // Adding x + y <= 1 cuts the optimum off: the dual path must land on
        // the new optimum 3 (x = 1).
        for options in all_engines() {
            let mut lp = LinearProgram::new(Sense::Maximize);
            let x = lp.add_variable(3.0);
            let y = lp.add_variable(2.0);
            lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Le, 4.0);
            lp.add_constraint(vec![(x, 1.0)], Relation::Le, 2.0);
            lp.add_constraint(vec![(y, 1.0)], Relation::Le, 3.0);
            let (first, state) = solve_with_warm_start(&lp, &options, None);
            assert_eq!(first.status, LpStatus::Optimal);

            lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Le, 1.0);
            let re = reoptimize_after_row_additions(&lp, &options, state);
            assert!(re.used_dual_path, "packing rows must take the dual path");
            assert_eq!(re.solution.status, LpStatus::Optimal);
            assert!((re.solution.objective - 3.0).abs() < 1e-7);
            assert!(re.solution.stats.dual_pivots > 0);
            assert!(lp.is_feasible(&re.solution.x, 1e-7));
        }
    }

    #[test]
    fn slack_row_addition_needs_no_pivots() {
        for options in all_engines() {
            let mut lp = LinearProgram::new(Sense::Maximize);
            let x = lp.add_variable(1.0);
            lp.add_constraint(vec![(x, 1.0)], Relation::Le, 2.0);
            let (_, state) = solve_with_warm_start(&lp, &options, None);
            lp.add_constraint(vec![(x, 1.0)], Relation::Le, 10.0);
            let re = reoptimize_after_row_additions(&lp, &options, state);
            assert!(re.used_dual_path);
            assert_eq!(re.solution.status, LpStatus::Optimal);
            assert!((re.solution.objective - 2.0).abs() < 1e-9);
            assert_eq!(re.solution.stats.dual_pivots, 0, "non-binding row");
            assert_eq!(re.solution.iterations, 0, "primal resume needs no work");
        }
    }

    #[test]
    fn infeasible_after_row_addition_is_detected() {
        // x <= 2 optimal at 2; adding x >= 5 makes the LP infeasible.
        for options in all_engines() {
            let mut lp = LinearProgram::new(Sense::Maximize);
            let x = lp.add_variable(1.0);
            lp.add_constraint(vec![(x, 1.0)], Relation::Le, 2.0);
            let (_, state) = solve_with_warm_start(&lp, &options, None);
            lp.add_constraint(vec![(x, 1.0)], Relation::Ge, 5.0);
            let re = reoptimize_after_row_additions(&lp, &options, state);
            assert_eq!(re.solution.status, LpStatus::Infeasible);
        }
    }

    #[test]
    fn equality_rows_fall_back_to_the_primal_path() {
        for options in all_engines() {
            let mut lp = LinearProgram::new(Sense::Maximize);
            let x = lp.add_variable(1.0);
            let y = lp.add_variable(2.0);
            lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Le, 3.0);
            let (_, state) = solve_with_warm_start(&lp, &options, None);
            lp.add_constraint(vec![(y, 1.0)], Relation::Eq, 1.0);
            let re = reoptimize_after_row_additions(&lp, &options, state);
            assert!(!re.used_dual_path, "Eq rows are not dual-eligible");
            assert_eq!(re.solution.status, LpStatus::Optimal);
            assert!((re.solution.objective - 4.0).abs() < 1e-7); // x=2, y=1
        }
    }

    #[test]
    fn foreign_warm_start_falls_back_and_still_solves() {
        // A basis from an unrelated LP (different coefficients): the dual
        // install's dual-feasibility check must reject it.
        for options in all_engines() {
            let mut donor = LinearProgram::new(Sense::Maximize);
            let d = donor.add_variable(0.1);
            donor.add_constraint(vec![(d, 1.0)], Relation::Le, 1.0);
            let (_, state) = solve_with_warm_start(&donor, &options, None);

            let mut lp = LinearProgram::new(Sense::Maximize);
            let x = lp.add_variable(5.0);
            lp.add_constraint(vec![(x, 2.0)], Relation::Le, 4.0);
            lp.add_constraint(vec![(x, 1.0)], Relation::Le, 3.0);
            let re = reoptimize_after_row_additions(&lp, &options, state);
            assert_eq!(re.solution.status, LpStatus::Optimal);
            assert!((re.solution.objective - 10.0).abs() < 1e-7);
        }
    }

    #[test]
    fn repaired_state_keeps_working_for_further_rounds() {
        // add rows twice, reoptimizing dually each time, then grow a column
        // and resume primally — the warm state must stay coherent across
        // both engines' paths.
        let options = SimplexOptions::default();
        let mut lp = random_packing_lp(5, 6, 4);
        let (first, state) = solve_with_warm_start(&lp, &options, None);
        assert_eq!(first.status, LpStatus::Optimal);
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], Relation::Le, 0.7);
        let re1 = reoptimize_after_row_additions(&lp, &options, state);
        assert!(re1.used_dual_path);
        lp.add_constraint(vec![(2, 1.0), (3, 1.0)], Relation::Le, 0.5);
        let re2 = reoptimize_after_row_additions(&lp, &options, re1.warm);
        assert!(re2.used_dual_path);
        let cold = solve(&lp, &options);
        assert!((re2.solution.objective - cold.objective).abs() < 1e-6);

        // column growth on top of the dually repaired basis
        let z = lp.add_variable(100.0);
        lp.add_constraint(vec![(z, 1.0)], Relation::Le, 0.25);
        // (new row referencing only the new column: the prior basis rows are
        // a prefix, so the dual path applies again)
        let re3 = reoptimize_after_row_additions(&lp, &options, re2.warm);
        let cold3 = solve(&lp, &options);
        assert_eq!(re3.solution.status, LpStatus::Optimal);
        assert!((re3.solution.objective - cold3.objective).abs() < 1e-6);
    }

    #[test]
    fn hyper_sparse_toggle_preserves_dual_reoptimization() {
        // The dual repair path shares the indexed FTRAN/BTRAN kernels with
        // the primal engine; disabling them must not change the repaired
        // optimum, and the sparsity counters it merges into the solution
        // stats must reflect the toggle (zero tracked solves when off).
        for seed in 0..4u64 {
            for base in all_engines() {
                let mut lp = random_packing_lp(300 + seed, 5, 4);
                let on_opts = base.with_hyper_sparse(true);
                let off_opts = base.with_hyper_sparse(false);
                let (_, state_on) = solve_with_warm_start(&lp, &on_opts, None);
                let (_, state_off) = solve_with_warm_start(&lp, &off_opts, None);
                // a tightening row (duplicated for degeneracy) forces dual pivots
                lp.add_constraint(vec![(0, 1.0), (1, 1.0)], Relation::Le, 0.4);
                lp.add_constraint(vec![(0, 1.0), (1, 1.0)], Relation::Le, 0.4);
                let on = reoptimize_after_row_additions(&lp, &on_opts, state_on);
                let off = reoptimize_after_row_additions(&lp, &off_opts, state_off);
                let label = format!(
                    "seed {seed} engine {}x{}",
                    base.pricing.name(),
                    base.basis.name()
                );
                assert_eq!(on.solution.status, off.solution.status, "{label}");
                if on.solution.status == LpStatus::Optimal {
                    assert!(
                        (on.solution.objective - off.solution.objective).abs() < 1e-7,
                        "{label}: sparse {} vs dense {}",
                        on.solution.objective,
                        off.solution.objective
                    );
                    assert!(lp.is_feasible(&on.solution.x, 1e-7), "{label}");
                }
                let off_tracked = off.solution.stats.ftran_sparse_hits
                    + off.solution.stats.ftran_dense_fallbacks
                    + off.solution.stats.btran_sparse_hits
                    + off.solution.stats.btran_dense_fallbacks;
                assert_eq!(off_tracked, 0, "{label}: disabled path tracked solves");
                use crate::basis::BasisKind;
                if on.used_dual_path
                    && on.solution.stats.dual_pivots > 0
                    && matches!(base.basis, BasisKind::SparseLu | BasisKind::ForrestTomlin)
                {
                    let on_tracked = on.solution.stats.ftran_sparse_hits
                        + on.solution.stats.ftran_dense_fallbacks
                        + on.solution.stats.btran_sparse_hits
                        + on.solution.stats.btran_dense_fallbacks;
                    assert!(on_tracked > 0, "{label}: dual pivots left no counter trace");
                }
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Random packing LP, then random extra `≤` rows (sometimes
        /// duplicated for degeneracy): dual reoptimization must match a
        /// dense cold solve of the grown LP on every engine.
        #[test]
        fn prop_dual_reopt_matches_dense_after_row_additions(
            seed in 0u64..10_000,
            n in 2usize..8,
            m in 1usize..6,
            extra in 1usize..5,
            dup in any::<bool>(),
            engine in 0usize..12,
        ) {
            let options = all_engines()[engine];
            let mut lp = random_packing_lp(seed, n, m);
            let (first, state) = solve_with_warm_start(&lp, &options, None);
            prop_assert_eq!(first.status, LpStatus::Optimal);

            let mut rng = StdRng::seed_from_u64(seed ^ 0xD00D);
            let mut last_coeffs: Vec<(usize, f64)> = Vec::new();
            let mut last_rhs = 1.0;
            for _ in 0..extra {
                let mut coeffs: Vec<(usize, f64)> = Vec::new();
                for j in 0..n {
                    if rng.random_range(0.0..1.0) < 0.7 {
                        coeffs.push((j, rng.random_range(0.1..3.0)));
                    }
                }
                let rhs = rng.random_range(0.2..3.0);
                lp.add_constraint(coeffs.clone(), Relation::Le, rhs);
                last_coeffs = coeffs;
                last_rhs = rhs;
            }
            if dup && !last_coeffs.is_empty() {
                // an exactly repeated row: the repaired basis is degenerate
                lp.add_constraint(last_coeffs, Relation::Le, last_rhs);
            }

            let re = reoptimize_after_row_additions(&lp, &options, state);
            let reference = dense::solve(&lp, &SimplexOptions::default());
            prop_assert_eq!(re.solution.status, reference.status);
            if re.solution.status == LpStatus::Optimal {
                prop_assert!(lp.is_feasible(&re.solution.x, 1e-6));
                prop_assert!(
                    (re.solution.objective - reference.objective).abs()
                        < 1e-6 * (1.0 + reference.objective.abs()),
                    "dual reopt {} vs dense {}",
                    re.solution.objective, reference.objective
                );
                // strong duality of the reported duals
                let priced: f64 = lp
                    .constraints()
                    .iter()
                    .zip(re.solution.duals.iter())
                    .map(|(c, &y)| c.rhs * y)
                    .sum();
                prop_assert!((priced - re.solution.objective).abs()
                    < 1e-5 * (1.0 + re.solution.objective.abs()));
            }
        }

        /// Forcing infeasibility with a demanding `≥` row: the dual path
        /// must agree with the dense oracle that no point exists.
        #[test]
        fn prop_dual_reopt_detects_infeasibility(
            seed in 0u64..10_000,
            n in 2usize..6,
            m in 1usize..5,
            engine in 0usize..12,
        ) {
            let options = all_engines()[engine];
            let mut lp = random_packing_lp(seed, n, m);
            let (first, state) = solve_with_warm_start(&lp, &options, None);
            prop_assert_eq!(first.status, LpStatus::Optimal);
            // every variable is bounded by its bound row, so demanding more
            // than the summed bounds is infeasible
            let total_bound: f64 = lp
                .constraints()
                .iter()
                .filter(|c| c.coeffs.len() == 1 && c.coeffs[0].1 == 1.0)
                .map(|c| c.rhs)
                .sum();
            let coeffs: Vec<(usize, f64)> = (0..n).map(|j| (j, 1.0)).collect();
            lp.add_constraint(coeffs, Relation::Ge, total_bound + 5.0);

            let re = reoptimize_after_row_additions(&lp, &options, state);
            let reference = dense::solve(&lp, &SimplexOptions::default());
            prop_assert_eq!(reference.status, LpStatus::Infeasible);
            prop_assert_eq!(re.solution.status, LpStatus::Infeasible);
        }
    }
}
