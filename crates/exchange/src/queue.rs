//! The per-shard pending-event queue and its coalescer.
//!
//! Between drains, a market's submitted [`MarketEvent`]s sit in a
//! [`PendingQueue`]. In coalescing mode the queue does not store the raw
//! stream — it simulates the roster the stream describes, using **virtual
//! bidder ids** (ids `0..base` are the session's bidders when the queue
//! opened; arrivals get fresh ids), and keeps only the *net* mutation:
//!
//! * a re-bid overwrites any earlier pending re-bid of the same bidder
//!   (last-writer-wins);
//! * a departure of a bidder that *arrived in the same queue* cancels both
//!   events outright;
//! * a re-bid of a pending arrival folds into the arrival's valuation;
//! * a departure drops any pending re-bid of the departing bidder.
//!
//! At drain time the net mutation is emitted as an equivalent event
//! sequence — re-bids first (their pre-departure indices are still valid),
//! then departures in descending index order (so earlier removals don't
//! shift later ones), then arrivals in arrival order with neighbor lists
//! filtered to bidders alive at the end and re-indexed to the
//! post-departure roster. Applying this sequence to the session yields the
//! same final instance as applying the raw stream in submission order:
//! the final roster is the surviving original bidders in their original
//! order followed by the surviving arrivals in arrival order, with exactly
//! the recorded conflicts among survivors — under both orders.
//!
//! The emitted arrivals are additionally split into **waves** capped below
//! the session's deep-batch wall (`LpFormulationOptions::deep_batch_rows`):
//! each arrival materializes `k + 1` master rows at the next resolve, so a
//! drain resolves between waves rather than letting one huge batch reroute
//! the session onto the warm-rebuild path.

use ssa_core::session::MarketEvent;
use ssa_core::Valuation;
use std::collections::HashMap;
use std::sync::Arc;

/// Why a submitted event was rejected (the queue validates indices against
/// the roster the pending stream implies).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InvalidEvent {
    /// The bidder index the event referenced.
    pub bidder: usize,
    /// Bidders present in the market (after the pending stream).
    pub present: usize,
}

/// Net coalescing effect of a drained queue.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub(crate) struct CoalesceCounters {
    /// Events pushed into the queue.
    pub submitted: usize,
    /// Events emitted at drain time (≤ submitted in coalescing mode).
    pub applied: usize,
    /// Re-bids absorbed: overwritten by a later re-bid of the same bidder,
    /// or dropped because the bidder departed in the same queue.
    pub rebids_collapsed: usize,
    /// Re-bids folded into a pending arrival's valuation.
    pub rebids_folded: usize,
    /// Arrival+departure pairs that cancelled outright.
    pub cancellations: usize,
}

/// A pending arrival, phrased in virtual ids.
struct ArrivalRec {
    valuation: Arc<dyn Valuation>,
    /// Virtual ids of the bidders present (and conflicting) when the
    /// arrival was submitted.
    neighbors: Vec<usize>,
}

/// Roster simulation of the pending stream (coalescing mode).
pub(crate) struct Coalescer {
    /// Session bidder count when the queue opened; virtual ids `0..base`
    /// are those bidders, id `i` at session index `i`.
    base: usize,
    /// The current roster, in session order, as virtual ids.
    roster: Vec<usize>,
    /// Pending re-bids of original bidders: id → last valuation.
    rebids: HashMap<usize, Arc<dyn Valuation>>,
    /// Original bidders departed (virtual id = original index).
    departed: Vec<usize>,
    /// Pending arrivals by `id - base`; `None` = cancelled by a departure.
    arrivals: Vec<Option<ArrivalRec>>,
    counters: CoalesceCounters,
}

impl Coalescer {
    fn new(base: usize) -> Self {
        Coalescer {
            base,
            roster: (0..base).collect(),
            rebids: HashMap::new(),
            departed: Vec::new(),
            arrivals: Vec::new(),
            counters: CoalesceCounters::default(),
        }
    }

    fn push(&mut self, event: MarketEvent) -> Result<(), InvalidEvent> {
        match event {
            MarketEvent::Arrival {
                valuation,
                neighbors,
            } => {
                let mut ids = Vec::with_capacity(neighbors.len());
                for &v in &neighbors {
                    let id = *self.roster.get(v).ok_or(InvalidEvent {
                        bidder: v,
                        present: self.roster.len(),
                    })?;
                    ids.push(id);
                }
                let id = self.base + self.arrivals.len();
                self.arrivals.push(Some(ArrivalRec {
                    valuation,
                    neighbors: ids,
                }));
                self.roster.push(id);
            }
            MarketEvent::Departure { bidder } => {
                if bidder >= self.roster.len() {
                    return Err(InvalidEvent {
                        bidder,
                        present: self.roster.len(),
                    });
                }
                let id = self.roster.remove(bidder);
                if id >= self.base {
                    // Arrived in this same queue: both events vanish.
                    self.arrivals[id - self.base] = None;
                    self.counters.cancellations += 1;
                } else {
                    if self.rebids.remove(&id).is_some() {
                        self.counters.rebids_collapsed += 1;
                    }
                    self.departed.push(id);
                }
            }
            MarketEvent::Rebid { bidder, valuation } => {
                let id = *self.roster.get(bidder).ok_or(InvalidEvent {
                    bidder,
                    present: self.roster.len(),
                })?;
                if id >= self.base {
                    let rec = self.arrivals[id - self.base]
                        .as_mut()
                        .expect("rostered arrival cannot be cancelled");
                    rec.valuation = valuation;
                    self.counters.rebids_folded += 1;
                } else if self.rebids.insert(id, valuation).is_some() {
                    self.counters.rebids_collapsed += 1;
                }
            }
        }
        self.counters.submitted += 1;
        Ok(())
    }

    /// Emits the net mutation: `(prelude, arrivals)` where the prelude is
    /// re-bids followed by descending departures, and arrivals are in
    /// arrival order with final-roster neighbor indices.
    fn emit(mut self) -> (Vec<MarketEvent>, Vec<MarketEvent>, CoalesceCounters) {
        let mut prelude = Vec::with_capacity(self.rebids.len() + self.departed.len());
        let mut rebid_ids: Vec<usize> = self.rebids.keys().copied().collect();
        rebid_ids.sort_unstable();
        for id in rebid_ids {
            let valuation = self.rebids.remove(&id).expect("key just listed");
            prelude.push(MarketEvent::Rebid {
                bidder: id,
                valuation,
            });
        }
        self.departed.sort_unstable();
        for &id in self.departed.iter().rev() {
            prelude.push(MarketEvent::Departure { bidder: id });
        }

        // Final index of every surviving virtual id: original bidders keep
        // their order (shifted down past departures), arrivals append.
        let mut final_index: HashMap<usize, usize> = HashMap::new();
        for id in 0..self.base {
            let departed_below = self.departed.partition_point(|&d| d < id);
            if self.departed.get(departed_below) != Some(&id) {
                final_index.insert(id, id - departed_below);
            }
        }
        let mut next = self.base - self.departed.len();
        for (j, rec) in self.arrivals.iter().enumerate() {
            if rec.is_some() {
                final_index.insert(self.base + j, next);
                next += 1;
            }
        }
        let arrivals = self
            .arrivals
            .into_iter()
            .flatten()
            .map(|rec| MarketEvent::Arrival {
                valuation: rec.valuation,
                neighbors: rec
                    .neighbors
                    .iter()
                    .filter_map(|id| final_index.get(id).copied())
                    .collect(),
            })
            .collect::<Vec<_>>();
        self.counters.applied = prelude.len() + arrivals.len();
        (prelude, arrivals, self.counters)
    }
}

/// The pending mutations of one market between drains.
pub(crate) enum PendingQueue {
    /// Coalescing off: the raw stream, replayed verbatim (still split into
    /// waves at the deep-batch wall).
    Raw {
        /// The stream in submission order.
        events: Vec<MarketEvent>,
        /// Present-bidder count implied by the stream (for validation).
        present: usize,
    },
    /// Coalescing on: the roster simulation.
    Coalesced(Coalescer),
}

impl PendingQueue {
    pub(crate) fn new(coalescing: bool, present: usize) -> Self {
        if coalescing {
            PendingQueue::Coalesced(Coalescer::new(present))
        } else {
            PendingQueue::Raw {
                events: Vec::new(),
                present,
            }
        }
    }

    pub(crate) fn is_empty(&self) -> bool {
        match self {
            PendingQueue::Raw { events, .. } => events.is_empty(),
            PendingQueue::Coalesced(c) => c.counters.submitted == 0,
        }
    }

    pub(crate) fn push(&mut self, event: MarketEvent) -> Result<(), InvalidEvent> {
        match self {
            PendingQueue::Raw { events, present } => {
                match &event {
                    MarketEvent::Arrival { neighbors, .. } => {
                        if let Some(&v) = neighbors.iter().find(|&&v| v >= *present) {
                            return Err(InvalidEvent {
                                bidder: v,
                                present: *present,
                            });
                        }
                        *present += 1;
                    }
                    MarketEvent::Departure { bidder } => {
                        if *bidder >= *present {
                            return Err(InvalidEvent {
                                bidder: *bidder,
                                present: *present,
                            });
                        }
                        *present -= 1;
                    }
                    MarketEvent::Rebid { bidder, .. } => {
                        if *bidder >= *present {
                            return Err(InvalidEvent {
                                bidder: *bidder,
                                present: *present,
                            });
                        }
                    }
                }
                events.push(event);
                Ok(())
            }
            PendingQueue::Coalesced(c) => c.push(event),
        }
    }

    /// Drains the queue into application **waves**: each wave is applied to
    /// the session and followed by a resolve, and no wave stages more than
    /// `max_arrivals` arrivals — keeping the appended-row count below the
    /// session's deep-batch reroute. The queue is left empty (re-armed at
    /// `present_after` bidders).
    pub(crate) fn take_waves(
        &mut self,
        max_arrivals: usize,
    ) -> (Vec<Vec<MarketEvent>>, CoalesceCounters) {
        let max_arrivals = max_arrivals.max(1);
        match self {
            PendingQueue::Raw { events, present } => {
                let events = std::mem::take(events);
                let mut counters = CoalesceCounters {
                    submitted: events.len(),
                    applied: events.len(),
                    ..CoalesceCounters::default()
                };
                let _ = present;
                let mut waves: Vec<Vec<MarketEvent>> = Vec::new();
                let mut wave: Vec<MarketEvent> = Vec::new();
                let mut wave_arrivals = 0usize;
                for event in events {
                    if matches!(event, MarketEvent::Arrival { .. }) {
                        if wave_arrivals == max_arrivals {
                            waves.push(std::mem::take(&mut wave));
                            wave_arrivals = 0;
                        }
                        wave_arrivals += 1;
                    }
                    wave.push(event);
                }
                if !wave.is_empty() {
                    waves.push(wave);
                }
                counters.applied = waves.iter().map(|w| w.len()).sum();
                (waves, counters)
            }
            PendingQueue::Coalesced(c) => {
                let present_after = c.roster.len();
                let coalescer = std::mem::replace(c, Coalescer::new(present_after));
                let (prelude, arrivals, counters) = coalescer.emit();
                let mut waves: Vec<Vec<MarketEvent>> = Vec::new();
                let mut first = prelude;
                let mut arrivals = arrivals.into_iter();
                first.extend(arrivals.by_ref().take(max_arrivals));
                if !first.is_empty() {
                    waves.push(first);
                }
                loop {
                    let wave: Vec<MarketEvent> = arrivals.by_ref().take(max_arrivals).collect();
                    if wave.is_empty() {
                        break;
                    }
                    waves.push(wave);
                }
                (waves, counters)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssa_core::channels::ChannelSet;
    use ssa_core::valuation::XorValuation;

    fn val(v: f64) -> Arc<dyn Valuation> {
        Arc::new(XorValuation::new(
            2,
            vec![(ChannelSet::from_channels(vec![0]), v)],
        ))
    }

    fn value_of(e: &MarketEvent) -> f64 {
        let v = match e {
            MarketEvent::Arrival { valuation, .. } => valuation,
            MarketEvent::Rebid { valuation, .. } => valuation,
            _ => panic!("no valuation"),
        };
        v.value(ChannelSet::from_channels(vec![0]))
    }

    #[test]
    fn rebids_collapse_last_writer_wins() {
        let mut q = PendingQueue::new(true, 4);
        q.push(MarketEvent::Rebid {
            bidder: 2,
            valuation: val(1.0),
        })
        .unwrap();
        q.push(MarketEvent::Rebid {
            bidder: 2,
            valuation: val(9.0),
        })
        .unwrap();
        let (waves, counters) = q.take_waves(64);
        assert_eq!(waves.len(), 1);
        assert_eq!(waves[0].len(), 1);
        match &waves[0][0] {
            MarketEvent::Rebid { bidder, .. } => assert_eq!(*bidder, 2),
            other => panic!("expected rebid, got {other:?}"),
        }
        assert!((value_of(&waves[0][0]) - 9.0).abs() < 1e-12);
        assert_eq!(counters.rebids_collapsed, 1);
        assert_eq!(counters.submitted, 2);
        assert_eq!(counters.applied, 1);
    }

    #[test]
    fn same_batch_arrival_departure_cancels() {
        let mut q = PendingQueue::new(true, 3);
        q.push(MarketEvent::Arrival {
            valuation: val(5.0),
            neighbors: vec![0, 2],
        })
        .unwrap();
        // the arrival sits at index 3; rebid it, then remove it
        q.push(MarketEvent::Rebid {
            bidder: 3,
            valuation: val(6.0),
        })
        .unwrap();
        q.push(MarketEvent::Departure { bidder: 3 }).unwrap();
        let (waves, counters) = q.take_waves(64);
        assert!(waves.is_empty(), "everything cancelled: {waves:?}");
        assert_eq!(counters.cancellations, 1);
        assert_eq!(counters.rebids_folded, 1);
        assert_eq!(counters.applied, 0);
        assert_eq!(counters.submitted, 3);
    }

    #[test]
    fn rebid_of_pending_arrival_folds_into_it() {
        let mut q = PendingQueue::new(true, 2);
        q.push(MarketEvent::Arrival {
            valuation: val(5.0),
            neighbors: vec![1],
        })
        .unwrap();
        q.push(MarketEvent::Rebid {
            bidder: 2,
            valuation: val(8.0),
        })
        .unwrap();
        let (waves, counters) = q.take_waves(64);
        assert_eq!(waves.len(), 1);
        assert_eq!(waves[0].len(), 1, "one arrival only: {:?}", waves[0]);
        assert!((value_of(&waves[0][0]) - 8.0).abs() < 1e-12);
        assert_eq!(counters.rebids_folded, 1);
    }

    #[test]
    fn departure_drops_pending_rebid_and_reindexes() {
        let mut q = PendingQueue::new(true, 4);
        q.push(MarketEvent::Rebid {
            bidder: 1,
            valuation: val(3.0),
        })
        .unwrap();
        q.push(MarketEvent::Departure { bidder: 1 }).unwrap();
        // after that departure, session index 1 refers to original bidder 2
        q.push(MarketEvent::Rebid {
            bidder: 1,
            valuation: val(4.0),
        })
        .unwrap();
        let (waves, counters) = q.take_waves(64);
        assert_eq!(waves.len(), 1);
        // emitted: rebid of original index 2 (pre-departure), then departure 1
        assert_eq!(waves[0].len(), 2);
        match &waves[0][0] {
            MarketEvent::Rebid { bidder, .. } => assert_eq!(*bidder, 2),
            other => panic!("expected rebid first, got {other:?}"),
        }
        match &waves[0][1] {
            MarketEvent::Departure { bidder } => assert_eq!(*bidder, 1),
            other => panic!("expected departure, got {other:?}"),
        }
        assert_eq!(counters.rebids_collapsed, 1);
    }

    #[test]
    fn arrival_neighbors_reindex_past_departures_and_cancellations() {
        let mut q = PendingQueue::new(true, 3);
        // arrival A conflicting with everyone present
        q.push(MarketEvent::Arrival {
            valuation: val(1.0),
            neighbors: vec![0, 1, 2],
        })
        .unwrap();
        // original bidder 1 departs → roster [0, 2, A]
        q.push(MarketEvent::Departure { bidder: 1 }).unwrap();
        // arrival B conflicting with 2 (index 1 now) and A (index 2 now)
        q.push(MarketEvent::Arrival {
            valuation: val(2.0),
            neighbors: vec![1, 2],
        })
        .unwrap();
        let (waves, _) = q.take_waves(64);
        assert_eq!(waves.len(), 1);
        let wave = &waves[0];
        // departure of 1, then A, then B
        assert_eq!(wave.len(), 3);
        match &wave[0] {
            MarketEvent::Departure { bidder } => assert_eq!(*bidder, 1),
            other => panic!("expected departure, got {other:?}"),
        }
        match &wave[1] {
            // A's neighbors 0,1,2 → 1 departed; 0 stays 0, 2 shifts to 1
            MarketEvent::Arrival { neighbors, .. } => assert_eq!(neighbors, &vec![0, 1]),
            other => panic!("expected arrival A, got {other:?}"),
        }
        match &wave[2] {
            // B's neighbors: original 2 → 1, A → 2
            MarketEvent::Arrival { neighbors, .. } => assert_eq!(neighbors, &vec![1, 2]),
            other => panic!("expected arrival B, got {other:?}"),
        }
    }

    #[test]
    fn deep_batches_split_into_waves() {
        let mut q = PendingQueue::new(true, 1);
        for _ in 0..10 {
            q.push(MarketEvent::Arrival {
                valuation: val(1.0),
                neighbors: vec![0],
            })
            .unwrap();
        }
        let (waves, counters) = q.take_waves(4);
        assert_eq!(waves.len(), 3, "10 arrivals at ≤4 per wave");
        assert_eq!(waves[0].len(), 4);
        assert_eq!(waves[1].len(), 4);
        assert_eq!(waves[2].len(), 2);
        assert_eq!(counters.applied, 10);

        // raw mode splits the same way
        let mut q = PendingQueue::new(false, 1);
        for _ in 0..10 {
            q.push(MarketEvent::Arrival {
                valuation: val(1.0),
                neighbors: vec![0],
            })
            .unwrap();
        }
        let (waves, _) = q.take_waves(4);
        assert_eq!(waves.len(), 3);
    }

    #[test]
    fn raw_mode_preserves_the_stream_verbatim() {
        let mut q = PendingQueue::new(false, 2);
        q.push(MarketEvent::Rebid {
            bidder: 0,
            valuation: val(1.0),
        })
        .unwrap();
        q.push(MarketEvent::Rebid {
            bidder: 0,
            valuation: val(2.0),
        })
        .unwrap();
        q.push(MarketEvent::Departure { bidder: 1 }).unwrap();
        let (waves, counters) = q.take_waves(64);
        assert_eq!(waves.len(), 1);
        assert_eq!(waves[0].len(), 3, "no coalescing in raw mode");
        assert_eq!(counters.submitted, 3);
        assert_eq!(counters.applied, 3);
        assert_eq!(counters.rebids_collapsed, 0);
    }

    #[test]
    fn queue_rejects_out_of_roster_indices() {
        let mut q = PendingQueue::new(true, 2);
        assert!(q.push(MarketEvent::Departure { bidder: 2 }).is_err());
        q.push(MarketEvent::Departure { bidder: 1 }).unwrap();
        q.push(MarketEvent::Departure { bidder: 0 }).unwrap();
        assert_eq!(
            q.push(MarketEvent::Departure { bidder: 0 }),
            Err(InvalidEvent {
                bidder: 0,
                present: 0
            })
        );
        let mut raw = PendingQueue::new(false, 1);
        assert!(raw
            .push(MarketEvent::Rebid {
                bidder: 3,
                valuation: val(1.0),
            })
            .is_err());
    }
}
