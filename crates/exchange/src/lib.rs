//! A sharded multi-market spectrum exchange.
//!
//! The paper's setting — secondary spectrum markets — is operationally a
//! *fleet* of regional auctions: thousands of independent markets with
//! continuous bid traffic, each one an instance of the paper's single
//! auction. [`SpectrumExchange`] is that fleet layer over
//! [`AuctionSession`]: a shard map of independent sessions keyed by
//! [`MarketId`], fed through an event-queue front-end and drained in
//! parallel.
//!
//! # Architecture
//!
//! ```text
//!  submit(market, event) ──▶ per-market PendingQueue (coalescing)
//!                                      │
//!  resolve_dirty() ──▶ dirty shards ──▶ waves of events ──▶ AuctionSession
//!                      (sequential or pooled par_iter)        warm resolve
//!                                      │
//!                            DrainReport + ExchangeStats rollup
//! ```
//!
//! * **Shard map** — each market owns an [`AuctionSession`] (instance +
//!   cached LP state). Markets are mutually independent, so shard drains
//!   parallelize without coordination beyond one lock per shard.
//! * **Coalescing front-end** — submitted [`MarketEvent`]s are not applied
//!   eagerly; they queue per market and collapse between drains: re-bids
//!   last-writer-win, same-batch arrival+departure pairs cancel, re-bids of
//!   pending arrivals fold into the arrival. Under bursty traffic the
//!   session sees the *net* mutation only (see the [`queue`](self) module
//!   docs for the emission-order equivalence argument). `coalescing(false)`
//!   replays raw streams verbatim for comparison.
//! * **Deep-batch chunking** — a drain splits pending arrival runs into
//!   waves below the session's deep-batch wall
//!   (`LpFormulationOptions::deep_batch_rows`), resolving between waves, so
//!   one huge batch does not reroute the session onto the slower
//!   warm-rebuild path.
//! * **Pooled drain** — [`DrainMode::Pooled`] fans dirty shards across the
//!   persistent work-stealing pool behind the `rayon` shim (`min_len 1`:
//!   every shard is one LP resolve, expensive enough to schedule
//!   individually). [`DrainMode::Sequential`] drains inline — the honest
//!   baseline the `e17_exchange` bench compares against.
//! * **Stats rollup** — [`ExchangeStats`] aggregates the per-session warm
//!   path counters ([`SessionStats`]), per-resolve LP engine activity, and
//!   the coalescing counters, so fleet-level behavior (how many resolves
//!   were re-priced vs rebuilt, how many events coalesced away) is visible
//!   without digging into individual sessions.
//!
//! # Quickstart
//!
//! ```no_run
//! use ssa_core::session::{MarketEvent, MarketId};
//! use ssa_exchange::SpectrumExchange;
//! # fn demo(instance: ssa_core::AuctionInstance,
//! #         newcomer: std::sync::Arc<dyn ssa_core::Valuation>) {
//! let mut exchange = SpectrumExchange::new();
//! exchange.open_market(MarketId(0), instance).unwrap();
//! exchange
//!     .submit(
//!         MarketId(0),
//!         MarketEvent::Arrival { valuation: newcomer, neighbors: vec![0] },
//!     )
//!     .unwrap();
//! let report = exchange.resolve_dirty().unwrap();
//! for resolve in &report.resolves {
//!     println!("{}: welfare {}", resolve.market, resolve.outcome.welfare);
//! }
//! # }
//! ```

#![warn(missing_docs)]

mod queue;
mod sealed;

use queue::{CoalesceCounters, PendingQueue};
use rayon::prelude::*;
use sealed::SealedRound;
use serde::{Deserialize, Serialize};
use ssa_core::session::{AuctionSession, MarketEvent, MarketId, SessionStats};
use ssa_core::solver::{AuctionOutcome, SolveError, SolverBuilder, SolverOptions};
use ssa_core::AuctionInstance;
use ssa_mechanism::sealed_bid::{Phase, SealedBidAuction, SealedBidError};
use std::collections::HashMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use queue::InvalidEvent;
pub use sealed::{SealedAck, SealedRoundConfig, SealedRoundReport, SealedSubmission};

/// How [`SpectrumExchange::resolve_dirty`] schedules dirty shards.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum DrainMode {
    /// Drain shards one after another on the calling thread.
    Sequential,
    /// Fan dirty shards across the persistent work-stealing pool (each
    /// shard is one chunk; the submitting thread participates).
    Pooled,
}

/// Errors of the exchange layer.
#[derive(Debug)]
pub enum ExchangeError {
    /// [`SpectrumExchange::open_market`] with an id already in use.
    DuplicateMarket(MarketId),
    /// An operation referenced a market id the exchange does not hold.
    UnknownMarket(MarketId),
    /// A submitted event referenced a bidder index outside the market's
    /// (pending-stream-implied) roster.
    InvalidEvent {
        /// The market the event targeted.
        market: MarketId,
        /// The rejected index and the roster size it was checked against.
        reason: InvalidEvent,
    },
    /// A shard resolve failed; the drain stopped at the first failure
    /// (other dirty shards may already have resolved — their queues are
    /// drained, their sessions consistent).
    Solve {
        /// The market whose resolve failed.
        market: MarketId,
        /// The underlying session error.
        source: SolveError,
    },
    /// The market is running a sealed round: ordinary event traffic (and
    /// closing) is rejected until the round resolves.
    MarketSealed(MarketId),
    /// [`SpectrumExchange::submit_sealed`] against a market with no live
    /// sealed round.
    NoSealedRound(MarketId),
    /// A sealed round cannot open over a market with pending events —
    /// drain first, so the round's baseline is the settled market.
    PendingEvents(MarketId),
    /// The sealed-bid protocol rejected a call (or the round's resolve
    /// failed).
    Sealed {
        /// The market whose round errored.
        market: MarketId,
        /// The underlying protocol error.
        source: SealedBidError,
    },
}

impl std::fmt::Display for ExchangeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExchangeError::DuplicateMarket(id) => write!(f, "{id} is already open"),
            ExchangeError::UnknownMarket(id) => write!(f, "{id} is not open on this exchange"),
            ExchangeError::InvalidEvent { market, reason } => write!(
                f,
                "{market}: event references bidder {} but only {} are present",
                reason.bidder, reason.present
            ),
            ExchangeError::Solve { market, source } => {
                write!(f, "{market}: resolve failed: {source}")
            }
            ExchangeError::MarketSealed(id) => {
                write!(f, "{id} is running a sealed round")
            }
            ExchangeError::NoSealedRound(id) => {
                write!(f, "{id} has no live sealed round")
            }
            ExchangeError::PendingEvents(id) => {
                write!(f, "{id} has pending events; drain before sealing")
            }
            ExchangeError::Sealed { market, source } => {
                write!(f, "{market}: sealed round: {source}")
            }
        }
    }
}

impl std::error::Error for ExchangeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExchangeError::Solve { source, .. } => Some(source),
            ExchangeError::Sealed { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Per-resolve LP engine activity summed across every shard resolve the
/// exchange ran (all waves included).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct LpActivity {
    /// Column-generation pricing rounds.
    pub rounds: usize,
    /// Oracle pricing rounds (passes where the demand oracles were
    /// actually asked for columns).
    pub pricing_rounds: usize,
    /// Columns adopted by the masters across every pricing round.
    pub columns_generated: usize,
    /// Stabilization mispricing events (smoothed/boxed duals priced
    /// nothing, the true-dual guard found work); 0 with stabilization off.
    pub stabilization_misprices: usize,
    /// Columns adopted from the sessions' managed column pools.
    pub pool_hits: usize,
    /// Pool entries evicted by the capacity bound.
    pub pool_evictions: usize,
    /// Master simplex pivots.
    pub simplex_iterations: usize,
    /// Basis refactorizations.
    pub refactorizations: usize,
    /// The stability-forced subset of `refactorizations`.
    pub forced_refactorizations: usize,
    /// Dual-simplex row-repair pivots (the arrival-absorption path).
    pub dual_pivots: usize,
    /// Dantzig–Wolfe pricing-subproblem pivots.
    pub subproblem_pivots: usize,
    /// Master rows deactivated in place (departure path); lifetime gauge
    /// deltas summed across shards.
    pub rows_deactivated: usize,
    /// Master compactions; lifetime gauge deltas summed across shards.
    pub compactions: usize,
    /// FTRANs answered on the LP engine's hyper-sparse path.
    pub ftran_sparse_hits: usize,
    /// FTRANs that fell back to the dense kernel.
    pub ftran_dense_fallbacks: usize,
    /// Pivot-row BTRANs answered on the hyper-sparse path.
    pub btran_sparse_hits: usize,
    /// Pivot-row BTRANs that fell back to the dense kernel.
    pub btran_dense_fallbacks: usize,
    /// Tracked-solve-weighted mean FTRAN/BTRAN result density across every
    /// resolve; **0.0 when no solves were tracked** (e.g. sparsity off).
    pub avg_result_density: f64,
}

impl LpActivity {
    /// Number of FTRAN/BTRAN solves the sparsity counters tracked.
    pub fn tracked_solves(&self) -> usize {
        self.ftran_sparse_hits
            + self.ftran_dense_fallbacks
            + self.btran_sparse_hits
            + self.btran_dense_fallbacks
    }

    /// Folds sparsity counters from another activity record into this one
    /// (tracked-solve-weighted density merge).
    fn absorb_sparsity(
        &mut self,
        ftran_sparse: usize,
        ftran_dense: usize,
        btran_sparse: usize,
        btran_dense: usize,
        density: f64,
    ) {
        let theirs = (ftran_sparse + ftran_dense + btran_sparse + btran_dense) as f64;
        if theirs > 0.0 {
            let mine = self.tracked_solves() as f64;
            self.avg_result_density =
                (self.avg_result_density * mine + density * theirs) / (mine + theirs);
        }
        self.ftran_sparse_hits += ftran_sparse;
        self.ftran_dense_fallbacks += ftran_dense;
        self.btran_sparse_hits += btran_sparse;
        self.btran_dense_fallbacks += btran_dense;
    }
}

/// Fleet-level rollup: coalescing effect, resolve/warm-path attribution
/// summed over every session, and LP engine activity. Returned by
/// [`SpectrumExchange::stats`].
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ExchangeStats {
    /// Markets currently open.
    pub markets: usize,
    /// [`SpectrumExchange::resolve_dirty`] calls that found dirty shards.
    pub drains: usize,
    /// Shard resolves across all drains (≥ shards drained; deep-batch
    /// chunking resolves once per wave).
    pub shard_resolves: usize,
    /// Events accepted by [`SpectrumExchange::submit`].
    pub events_submitted: usize,
    /// Events actually applied to sessions after coalescing.
    pub events_applied: usize,
    /// Re-bids absorbed by a later re-bid or departure of the same bidder.
    pub rebids_collapsed: usize,
    /// Re-bids folded into a pending arrival.
    pub rebids_folded: usize,
    /// Same-batch arrival+departure pairs cancelled.
    pub cancellations: usize,
    /// Extra waves forced by deep-batch chunking (0 when every drain fit
    /// under the wall).
    pub extra_waves: usize,
    /// Markets currently detached into live sealed rounds.
    pub sealed_markets: usize,
    /// Sealed rounds opened over the exchange's lifetime.
    pub sealed_rounds_opened: usize,
    /// Sealed rounds that reached resolution.
    pub sealed_rounds_resolved: usize,
    /// Collateral forfeited across every resolved sealed round.
    pub collateral_forfeited: f64,
    /// Warm-path attribution summed over every *open* session (sessions of
    /// closed markets leave the rollup).
    pub sessions: SessionStats,
    /// LP engine activity summed over every shard resolve.
    pub lp: LpActivity,
}

/// One market's result within a [`DrainReport`].
#[derive(Clone, Debug)]
pub struct MarketResolve {
    /// The market that resolved.
    pub market: MarketId,
    /// The outcome of the final resolve of the drain (after the last wave).
    pub outcome: AuctionOutcome,
    /// Wall-clock latency of each resolve of the drain, one entry per wave.
    pub latencies: Vec<Duration>,
}

/// What a [`SpectrumExchange::resolve_dirty`] call did.
#[derive(Clone, Debug, Default)]
pub struct DrainReport {
    /// One entry per drained shard, in dirty order (the order markets first
    /// received a pending event since the last drain).
    pub resolves: Vec<MarketResolve>,
    /// Sealed rounds whose reveal deadline passed on this drain, resolved
    /// and re-attached to the shard map (in market-id order).
    pub sealed: Vec<SealedRoundReport>,
}

impl DrainReport {
    /// All resolve latencies of the drain, sorted ascending — feed for
    /// percentile reporting.
    pub fn sorted_latencies(&self) -> Vec<Duration> {
        let mut all: Vec<Duration> = self
            .resolves
            .iter()
            .flat_map(|r| r.latencies.iter().copied())
            .collect();
        all.sort_unstable();
        all
    }
}

/// Configures a [`SpectrumExchange`]: solver options for the per-market
/// sessions, drain scheduling, and coalescing.
#[derive(Clone, Debug)]
pub struct ExchangeBuilder {
    options: SolverOptions,
    drain: DrainMode,
    coalescing: bool,
}

impl Default for ExchangeBuilder {
    fn default() -> Self {
        ExchangeBuilder {
            options: SolverBuilder::new().options(),
            drain: DrainMode::Pooled,
            coalescing: true,
        }
    }
}

impl ExchangeBuilder {
    /// Starts from the defaults: the default solver engine, pooled drains,
    /// coalescing on.
    pub fn new() -> Self {
        ExchangeBuilder::default()
    }

    /// Configures the per-market sessions through a [`SolverBuilder`]
    /// (engine, master mode, rounding, …).
    pub fn solver(mut self, builder: SolverBuilder) -> Self {
        self.options = builder.options();
        self
    }

    /// Configures the per-market sessions from assembled [`SolverOptions`]
    /// — the escape hatch for settings without a builder method (e.g.
    /// `lp.deep_batch_rows`, which also bounds the exchange's drain waves).
    pub fn solver_options(mut self, options: SolverOptions) -> Self {
        self.options = options;
        self
    }

    /// Selects how dirty shards are scheduled at drain time.
    pub fn drain_mode(mut self, mode: DrainMode) -> Self {
        self.drain = mode;
        self
    }

    /// Turns event coalescing on or off (on by default; off replays raw
    /// streams verbatim — the comparison baseline).
    pub fn coalescing(mut self, coalescing: bool) -> Self {
        self.coalescing = coalescing;
        self
    }

    /// Builds the exchange (no markets yet).
    pub fn build(self) -> SpectrumExchange {
        SpectrumExchange {
            options: self.options,
            drain: self.drain,
            coalescing: self.coalescing,
            shards: Vec::new(),
            index: HashMap::new(),
            dirty: Vec::new(),
            sealed: HashMap::new(),
            stats: ExchangeStats::default(),
        }
    }
}

/// One market's shard: its session plus the pending queue and the
/// last-seen values of the session's lifetime LP gauges (for delta
/// accounting in the rollup).
struct Shard {
    session: AuctionSession,
    pending: PendingQueue,
    seen_rows_deactivated: usize,
    seen_compactions: usize,
}

/// What one shard drain produced (internal; folded into the report and the
/// stats rollup on the submitting thread).
struct ShardDrain {
    market: MarketId,
    outcome: AuctionOutcome,
    latencies: Vec<Duration>,
    counters: CoalesceCounters,
    lp: LpActivity,
    resolves: usize,
}

struct ShardSlot {
    id: MarketId,
    cell: Mutex<Shard>,
}

/// The exchange: a shard map of [`AuctionSession`]s behind a coalescing
/// event front-end. See the [module docs](self) for the architecture.
pub struct SpectrumExchange {
    options: SolverOptions,
    drain: DrainMode,
    coalescing: bool,
    shards: Vec<ShardSlot>,
    index: HashMap<MarketId, usize>,
    /// Slots with a non-empty queue, in first-dirtied order.
    dirty: Vec<usize>,
    /// Markets detached into live sealed rounds.
    sealed: HashMap<MarketId, SealedRound>,
    stats: ExchangeStats,
}

impl Default for SpectrumExchange {
    fn default() -> Self {
        SpectrumExchange::new()
    }
}

impl SpectrumExchange {
    /// An exchange with the default configuration (default solver engine,
    /// pooled drains, coalescing on).
    pub fn new() -> Self {
        ExchangeBuilder::new().build()
    }

    /// Starts configuring an exchange.
    pub fn builder() -> ExchangeBuilder {
        ExchangeBuilder::new()
    }

    /// Opens a market: wraps `instance` in a fresh [`AuctionSession`] under
    /// this exchange's solver options.
    pub fn open_market(
        &mut self,
        id: MarketId,
        instance: AuctionInstance,
    ) -> Result<(), ExchangeError> {
        if self.index.contains_key(&id) || self.sealed.contains_key(&id) {
            return Err(ExchangeError::DuplicateMarket(id));
        }
        let present = instance.num_bidders();
        let session = AuctionSession::new(instance, self.options.clone());
        self.index.insert(id, self.shards.len());
        self.shards.push(ShardSlot {
            id,
            cell: Mutex::new(Shard {
                session,
                pending: PendingQueue::new(self.coalescing, present),
                seen_rows_deactivated: 0,
                seen_compactions: 0,
            }),
        });
        Ok(())
    }

    /// Closes a market, returning its session (with any still-pending
    /// events discarded). The session's counters leave the
    /// [`stats`](Self::stats) rollup with it.
    pub fn close_market(&mut self, id: MarketId) -> Result<AuctionSession, ExchangeError> {
        if self.sealed.contains_key(&id) {
            return Err(ExchangeError::MarketSealed(id));
        }
        let slot = self
            .index
            .remove(&id)
            .ok_or(ExchangeError::UnknownMarket(id))?;
        self.dirty.retain(|&i| i != slot);
        for i in self.dirty.iter_mut() {
            if *i > slot {
                *i -= 1;
            }
        }
        let removed = self.shards.remove(slot);
        for idx in self.index.values_mut() {
            if *idx > slot {
                *idx -= 1;
            }
        }
        Ok(removed.cell.into_inner().unwrap().session)
    }

    /// Markets currently open, in opening order.
    pub fn market_ids(&self) -> Vec<MarketId> {
        self.shards.iter().map(|s| s.id).collect()
    }

    /// Number of open markets.
    pub fn num_markets(&self) -> usize {
        self.shards.len()
    }

    /// Runs `f` over the market's session (read access for inspection —
    /// e.g. `session.instance()` or `session.stats()` in tests).
    pub fn with_session<R>(
        &self,
        id: MarketId,
        f: impl FnOnce(&AuctionSession) -> R,
    ) -> Result<R, ExchangeError> {
        let slot = *self
            .index
            .get(&id)
            .ok_or(ExchangeError::UnknownMarket(id))?;
        let shard = self.shards[slot].cell.lock().unwrap();
        Ok(f(&shard.session))
    }

    /// Queues one event against a market. Nothing is applied until the
    /// next [`resolve_dirty`](Self::resolve_dirty); in coalescing mode the
    /// event may collapse with other pending events of the same market.
    pub fn submit(&mut self, id: MarketId, event: MarketEvent) -> Result<(), ExchangeError> {
        if self.sealed.contains_key(&id) {
            return Err(ExchangeError::MarketSealed(id));
        }
        let slot = *self
            .index
            .get(&id)
            .ok_or(ExchangeError::UnknownMarket(id))?;
        let shard = self.shards[slot].cell.get_mut().unwrap();
        let was_empty = shard.pending.is_empty();
        shard
            .pending
            .push(event)
            .map_err(|reason| ExchangeError::InvalidEvent { market: id, reason })?;
        if was_empty {
            self.dirty.push(slot);
        }
        self.stats.events_submitted += 1;
        Ok(())
    }

    /// Queues a batch of events (stops at the first rejected event).
    pub fn submit_batch(
        &mut self,
        batch: impl IntoIterator<Item = (MarketId, MarketEvent)>,
    ) -> Result<(), ExchangeError> {
        for (id, event) in batch {
            self.submit(id, event)?;
        }
        Ok(())
    }

    /// Shards with pending events.
    pub fn num_dirty(&self) -> usize {
        self.dirty.len()
    }

    /// Drains every dirty shard: emits each market's pending events in
    /// deep-batch-safe waves, applies them to the session, and resolves
    /// (intermediate waves resolve the relaxation only; the final wave runs
    /// the full pipeline including rounding). Shards are scheduled per the
    /// configured [`DrainMode`]. Returns per-market outcomes and resolve
    /// latencies; stops at the first failed shard.
    pub fn resolve_dirty(&mut self) -> Result<DrainReport, ExchangeError> {
        let mut report = DrainReport::default();
        self.tick_sealed_rounds(&mut report)?;
        let dirty = std::mem::take(&mut self.dirty);
        if dirty.is_empty() {
            return Ok(report);
        }
        // An arrival stages k + 1 master rows; the session reroutes to a
        // rebuild strictly past deep_batch_rows pending rows.
        let max_rows = self.options.lp.deep_batch_rows;
        let shards = &self.shards;
        let run = |&slot: &usize| -> Result<ShardDrain, (MarketId, SolveError)> {
            let holder = &shards[slot];
            let mut shard = holder.cell.lock().unwrap();
            drain_shard(&mut shard, holder.id, max_rows)
        };
        let results: Vec<Result<ShardDrain, (MarketId, SolveError)>> = match self.drain {
            DrainMode::Sequential => dirty.iter().map(run).collect(),
            DrainMode::Pooled => dirty.par_iter().with_min_len(1).map(run).collect(),
        };

        self.stats.drains += 1;
        for result in results {
            let drain =
                result.map_err(|(market, source)| ExchangeError::Solve { market, source })?;
            self.stats.shard_resolves += drain.resolves;
            self.stats.events_applied += drain.counters.applied;
            self.stats.rebids_collapsed += drain.counters.rebids_collapsed;
            self.stats.rebids_folded += drain.counters.rebids_folded;
            self.stats.cancellations += drain.counters.cancellations;
            self.stats.extra_waves += drain.resolves.saturating_sub(1);
            accumulate_lp(&mut self.stats.lp, &drain.lp);
            report.resolves.push(MarketResolve {
                market: drain.market,
                outcome: drain.outcome,
                latencies: drain.latencies,
            });
        }
        Ok(report)
    }

    /// Opens a sealed-bid commit–reveal round over a market: the session
    /// detaches from the shard map (ordinary [`submit`](Self::submit)
    /// traffic is rejected with [`ExchangeError::MarketSealed`] until the
    /// round resolves) and phase deadlines start counting
    /// [`resolve_dirty`](Self::resolve_dirty) calls — the commit phase
    /// closes after `config.commit_drains` drains, and the round resolves
    /// `config.reveal_drains` drains later, landing its
    /// [`SealedRoundReport`] in that drain's report.
    ///
    /// The market must have no pending events (drain first), so the
    /// round's audit baseline is the settled market.
    pub fn open_sealed_round(
        &mut self,
        id: MarketId,
        config: SealedRoundConfig,
    ) -> Result<(), ExchangeError> {
        if self.sealed.contains_key(&id) {
            return Err(ExchangeError::MarketSealed(id));
        }
        let slot = *self
            .index
            .get(&id)
            .ok_or(ExchangeError::UnknownMarket(id))?;
        if !self.shards[slot].cell.get_mut().unwrap().pending.is_empty() {
            return Err(ExchangeError::PendingEvents(id));
        }
        let session = self.close_market(id)?;
        match SealedBidAuction::open(session, config.policy) {
            Ok(auction) => {
                self.sealed.insert(id, SealedRound::new(auction, &config));
                self.stats.sealed_rounds_opened += 1;
                Ok(())
            }
            Err(source) => Err(ExchangeError::Sealed { market: id, source }),
        }
    }

    /// Submits into a market's live sealed round: a commitment during the
    /// commit phase, an opening during the reveal phase.
    pub fn submit_sealed(
        &mut self,
        id: MarketId,
        submission: SealedSubmission,
    ) -> Result<SealedAck, ExchangeError> {
        let round = self
            .sealed
            .get_mut(&id)
            .ok_or(ExchangeError::NoSealedRound(id))?;
        let sealed = |source| ExchangeError::Sealed { market: id, source };
        match submission {
            SealedSubmission::Commitment {
                kind,
                commitment,
                declared_cap,
            } => {
                let participant = round
                    .auction
                    .submit_commitment(kind, commitment, declared_cap)
                    .map_err(sealed)?;
                let collateral = round.auction.ledger().held(participant);
                Ok(SealedAck::Committed {
                    participant,
                    collateral,
                })
            }
            SealedSubmission::Opening(opening) => {
                let status = round.auction.submit_opening(opening).map_err(sealed)?;
                Ok(SealedAck::Reveal(status))
            }
        }
    }

    /// The phase of a market's live sealed round (`None` when the market
    /// has no live round).
    pub fn sealed_phase(&self, id: MarketId) -> Option<Phase> {
        self.sealed.get(&id).map(|round| round.phase())
    }

    /// Markets currently detached into live sealed rounds, in id order.
    pub fn sealed_market_ids(&self) -> Vec<MarketId> {
        let mut ids: Vec<MarketId> = self.sealed.keys().copied().collect();
        ids.sort_unstable_by_key(|id| id.0);
        ids
    }

    /// Runs `f` over a market's live sealed auction — the escape hatch for
    /// protocol surfaces without an exchange method (notably the
    /// adversary surface, so tests can stage attacks at this layer).
    pub fn with_sealed_auction<R>(
        &mut self,
        id: MarketId,
        f: impl FnOnce(&mut SealedBidAuction) -> R,
    ) -> Result<R, ExchangeError> {
        let round = self
            .sealed
            .get_mut(&id)
            .ok_or(ExchangeError::NoSealedRound(id))?;
        Ok(f(&mut round.auction))
    }

    /// Advances every live sealed round by one drain cycle; rounds whose
    /// reveal deadline passed resolve and re-attach to the shard map.
    fn tick_sealed_rounds(&mut self, report: &mut DrainReport) -> Result<(), ExchangeError> {
        if self.sealed.is_empty() {
            return Ok(());
        }
        for id in self.sealed_market_ids() {
            let round = self.sealed.get_mut(&id).unwrap();
            let due = round
                .tick()
                .map_err(|source| ExchangeError::Sealed { market: id, source })?;
            if !due {
                continue;
            }
            let mut round = self.sealed.remove(&id).unwrap();
            let outcome = round
                .auction
                .resolve()
                .map_err(|source| ExchangeError::Sealed { market: id, source })?;
            self.stats.sealed_rounds_resolved += 1;
            self.stats.collateral_forfeited +=
                outcome.forfeitures.iter().map(|f| f.amount).sum::<f64>();
            self.reattach(id, round.auction.into_session(), &outcome.outcome);
            report.sealed.push(SealedRoundReport {
                market: id,
                outcome,
            });
        }
        Ok(())
    }

    /// Re-attaches a resolved sealed market's session as an ordinary shard
    /// (warm LP state intact, event recording off again).
    fn reattach(&mut self, id: MarketId, mut session: AuctionSession, outcome: &AuctionOutcome) {
        session.record_events(false);
        let present = session.instance().num_bidders();
        self.index.insert(id, self.shards.len());
        self.shards.push(ShardSlot {
            id,
            cell: Mutex::new(Shard {
                session,
                pending: PendingQueue::new(self.coalescing, present),
                // The sealed resolve already advanced the session's
                // lifetime LP gauges; seed the deltas from its info so the
                // next drain doesn't re-count them.
                seen_rows_deactivated: outcome.lp_info.rows_deactivated,
                seen_compactions: outcome.lp_info.compactions,
            }),
        });
    }

    /// The fleet-level rollup: exchange counters plus the warm-path
    /// attribution summed over every open session.
    pub fn stats(&self) -> ExchangeStats {
        let mut stats = self.stats.clone();
        stats.markets = self.shards.len();
        stats.sealed_markets = self.sealed.len();
        for slot in &self.shards {
            let shard = slot.cell.lock().unwrap();
            stats.sessions.accumulate(&shard.session.stats());
        }
        stats
    }
}

fn accumulate_lp(into: &mut LpActivity, from: &LpActivity) {
    into.rounds += from.rounds;
    into.pricing_rounds += from.pricing_rounds;
    into.columns_generated += from.columns_generated;
    into.stabilization_misprices += from.stabilization_misprices;
    into.pool_hits += from.pool_hits;
    into.pool_evictions += from.pool_evictions;
    into.simplex_iterations += from.simplex_iterations;
    into.refactorizations += from.refactorizations;
    into.forced_refactorizations += from.forced_refactorizations;
    into.dual_pivots += from.dual_pivots;
    into.subproblem_pivots += from.subproblem_pivots;
    into.rows_deactivated += from.rows_deactivated;
    into.compactions += from.compactions;
    into.absorb_sparsity(
        from.ftran_sparse_hits,
        from.ftran_dense_fallbacks,
        from.btran_sparse_hits,
        from.btran_dense_fallbacks,
        from.avg_result_density,
    );
}

/// Drains one shard: waves of pending events, a relaxation resolve after
/// each intermediate wave, and the full pipeline after the last.
fn drain_shard(
    shard: &mut Shard,
    market: MarketId,
    max_rows: usize,
) -> Result<ShardDrain, (MarketId, SolveError)> {
    let k = shard.session.instance().num_channels;
    // Stay *under* the wall (the session reroutes strictly past it).
    let max_arrivals = (max_rows / (k + 1)).max(1);
    let (mut waves, counters) = shard.pending.take_waves(max_arrivals);
    // A queue can coalesce to *nothing* (every pending event was part of a
    // cancelled arrival+departure pair). The market is dirty all the same,
    // so run one event-less wave: the session's resolve cache makes it
    // cheap and the drain still reports the market's current outcome.
    if waves.is_empty() {
        waves.push(Vec::new());
    }
    let mut latencies = Vec::with_capacity(waves.len());
    let mut lp = LpActivity::default();
    let num_waves = waves.len();
    let mut outcome: Option<AuctionOutcome> = None;
    for (w, wave) in waves.into_iter().enumerate() {
        for event in &wave {
            ssa_core::session::apply_event(&mut shard.session, event);
        }
        let start = Instant::now();
        if w + 1 < num_waves {
            let frac = shard
                .session
                .resolve_relaxation()
                .map_err(|e| (market, e))?;
            accumulate_info(&mut lp, shard, &frac.info);
        } else {
            let full = shard.session.resolve().map_err(|e| (market, e))?;
            accumulate_info(&mut lp, shard, &full.lp_info);
            outcome = Some(full);
        }
        latencies.push(start.elapsed());
    }
    let outcome = outcome.expect("a drained shard has at least one wave");
    Ok(ShardDrain {
        market,
        outcome,
        latencies,
        counters,
        lp,
        resolves: num_waves,
    })
}

/// Folds one resolve's [`RelaxationInfo`] into the drain's activity sum.
/// Pivot/round counters are per-resolve; `rows_deactivated` and
/// `compactions` are master-lifetime gauges, so only their growth since
/// the last observation counts.
fn accumulate_info(
    lp: &mut LpActivity,
    shard: &mut Shard,
    info: &ssa_core::lp_formulation::RelaxationInfo,
) {
    lp.rounds += info.rounds;
    lp.pricing_rounds += info.pricing_rounds;
    lp.columns_generated += info.columns_generated;
    lp.stabilization_misprices += info.stabilization_misprices;
    lp.pool_hits += info.pool_hits;
    lp.pool_evictions += info.pool_evictions;
    lp.simplex_iterations += info.simplex_iterations;
    lp.refactorizations += info.refactorizations;
    lp.forced_refactorizations += info.forced_refactorizations;
    lp.dual_pivots += info.dual_pivots;
    lp.subproblem_pivots += info.subproblem_pivots;
    lp.rows_deactivated += info
        .rows_deactivated
        .saturating_sub(shard.seen_rows_deactivated);
    lp.compactions += info.compactions.saturating_sub(shard.seen_compactions);
    shard.seen_rows_deactivated = info.rows_deactivated;
    shard.seen_compactions = info.compactions;
    lp.absorb_sparsity(
        info.ftran_sparse_hits,
        info.ftran_dense_fallbacks,
        info.btran_sparse_hits,
        info.btran_dense_fallbacks,
        info.avg_result_density,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssa_core::ChannelSet;
    use ssa_core::Valuation;
    use ssa_workloads::{protocol_scenario, ScenarioConfig};
    use std::sync::Arc;

    fn instance(n: usize, seed: u64) -> AuctionInstance {
        protocol_scenario(&ScenarioConfig::new(n, 2, seed), 1.0)
            .instance
            .clone()
    }

    fn val(v: f64) -> Arc<dyn Valuation> {
        Arc::new(ssa_core::valuation::XorValuation::new(
            2,
            vec![(ChannelSet::from_channels(vec![0]), v)],
        ))
    }

    #[test]
    fn open_submit_drain_roundtrip() {
        let mut ex = SpectrumExchange::new();
        ex.open_market(MarketId(1), instance(6, 3)).unwrap();
        ex.open_market(MarketId(2), instance(7, 5)).unwrap();
        assert_eq!(ex.num_markets(), 2);
        assert!(matches!(
            ex.open_market(MarketId(1), instance(4, 9)),
            Err(ExchangeError::DuplicateMarket(MarketId(1)))
        ));

        ex.submit(
            MarketId(1),
            MarketEvent::Rebid {
                bidder: 0,
                valuation: val(4.0),
            },
        )
        .unwrap();
        ex.submit(
            MarketId(1),
            MarketEvent::Rebid {
                bidder: 0,
                valuation: val(6.0),
            },
        )
        .unwrap();
        ex.submit(
            MarketId(2),
            MarketEvent::Arrival {
                valuation: val(2.0),
                neighbors: vec![0, 3],
            },
        )
        .unwrap();
        assert_eq!(ex.num_dirty(), 2);

        let report = ex.resolve_dirty().unwrap();
        assert_eq!(report.resolves.len(), 2);
        assert_eq!(report.resolves[0].market, MarketId(1));
        assert_eq!(report.resolves[1].market, MarketId(2));
        for resolve in &report.resolves {
            assert!(resolve.outcome.lp_converged);
            assert_eq!(resolve.latencies.len(), 1);
            let feasible = ex
                .with_session(resolve.market, |s| {
                    resolve.outcome.allocation.is_feasible(s.instance())
                })
                .unwrap();
            assert!(feasible);
        }
        assert_eq!(ex.num_dirty(), 0);
        assert!(ex.resolve_dirty().unwrap().resolves.is_empty());

        let stats = ex.stats();
        assert_eq!(stats.markets, 2);
        assert_eq!(stats.drains, 1);
        assert_eq!(stats.events_submitted, 3);
        assert_eq!(stats.events_applied, 2, "two rebids collapsed into one");
        assert_eq!(stats.rebids_collapsed, 1);
        assert_eq!(stats.shard_resolves, 2);
        assert_eq!(stats.sessions.resolves, 2);
        assert!(stats.lp.simplex_iterations > 0);
    }

    #[test]
    fn invalid_events_and_unknown_markets_are_rejected() {
        let mut ex = SpectrumExchange::new();
        ex.open_market(MarketId(0), instance(4, 1)).unwrap();
        assert!(matches!(
            ex.submit(MarketId(9), MarketEvent::Departure { bidder: 0 },),
            Err(ExchangeError::UnknownMarket(MarketId(9)))
        ));
        assert!(matches!(
            ex.submit(MarketId(0), MarketEvent::Departure { bidder: 4 },),
            Err(ExchangeError::InvalidEvent { .. })
        ));
        // a valid departure shrinks the implied roster, invalidating index 3
        ex.submit(MarketId(0), MarketEvent::Departure { bidder: 0 })
            .unwrap();
        assert!(ex
            .submit(MarketId(0), MarketEvent::Departure { bidder: 3 })
            .is_err());
    }

    #[test]
    fn sequential_and_pooled_drains_agree() {
        let build = |mode: DrainMode| {
            let mut ex = SpectrumExchange::builder()
                .solver(SolverBuilder::new().rounding(7, 4))
                .drain_mode(mode)
                .build();
            for m in 0..4u64 {
                ex.open_market(MarketId(m), instance(6 + m as usize, 10 + m))
                    .unwrap();
                ex.submit(
                    MarketId(m),
                    MarketEvent::Arrival {
                        valuation: val(3.0 + m as f64),
                        neighbors: vec![0],
                    },
                )
                .unwrap();
            }
            ex
        };
        let seq = build(DrainMode::Sequential).resolve_dirty().unwrap();
        let pooled = build(DrainMode::Pooled).resolve_dirty().unwrap();
        assert_eq!(seq.resolves.len(), pooled.resolves.len());
        for (a, b) in seq.resolves.iter().zip(&pooled.resolves) {
            assert_eq!(a.market, b.market);
            assert!((a.outcome.lp_objective - b.outcome.lp_objective).abs() < 1e-9);
            assert!((a.outcome.welfare - b.outcome.welfare).abs() < 1e-9);
        }
    }

    #[test]
    fn fully_cancelled_queue_still_reports_the_market() {
        let mut ex = SpectrumExchange::new();
        ex.open_market(MarketId(0), instance(5, 41)).unwrap();
        ex.submit(
            MarketId(0),
            MarketEvent::Arrival {
                valuation: val(9.0),
                neighbors: vec![0, 2],
            },
        )
        .unwrap();
        // the arrival sits at index 5; departing it cancels both events
        ex.submit(MarketId(0), MarketEvent::Departure { bidder: 5 })
            .unwrap();
        assert_eq!(ex.num_dirty(), 1);
        let report = ex.resolve_dirty().unwrap();
        assert_eq!(report.resolves.len(), 1, "dirty market must be reported");
        assert!(report.resolves[0].outcome.lp_converged);
        let stats = ex.stats();
        assert_eq!(stats.cancellations, 1);
        assert_eq!(stats.events_applied, 0);
        assert_eq!(
            ex.with_session(MarketId(0), |s| s.instance().num_bidders())
                .unwrap(),
            5,
            "net mutation is empty"
        );
    }

    #[test]
    fn close_market_remaps_shards() {
        let mut ex = SpectrumExchange::new();
        for m in 0..3u64 {
            ex.open_market(MarketId(m), instance(5, 20 + m)).unwrap();
        }
        let session = ex.close_market(MarketId(1)).unwrap();
        assert_eq!(session.instance().num_bidders(), 5);
        assert!(matches!(
            ex.close_market(MarketId(1)),
            Err(ExchangeError::UnknownMarket(MarketId(1)))
        ));
        assert_eq!(ex.market_ids(), vec![MarketId(0), MarketId(2)]);
        ex.submit(
            MarketId(2),
            MarketEvent::Rebid {
                bidder: 1,
                valuation: val(5.0),
            },
        )
        .unwrap();
        let report = ex.resolve_dirty().unwrap();
        assert_eq!(report.resolves.len(), 1);
        assert_eq!(report.resolves[0].market, MarketId(2));
    }

    #[test]
    fn sealed_round_runs_commit_reveal_resolve_on_the_drain_clock() {
        use ssa_core::session::BidderConflicts;
        use ssa_core::snapshot::ValuationSnapshot;
        use ssa_mechanism::sealed_bid::{
            audit, commit_to, nonce_from_seed, Opening, ParticipantKind, RevealStatus,
        };

        let mut ex = SpectrumExchange::builder()
            .solver(SolverBuilder::new().rounding(7, 8))
            .drain_mode(DrainMode::Sequential)
            .build();
        ex.open_market(MarketId(0), instance(6, 3)).unwrap();
        ex.open_sealed_round(MarketId(0), SealedRoundConfig::default())
            .unwrap();
        assert_eq!(ex.sealed_phase(MarketId(0)), Some(Phase::Commit));
        assert!(matches!(
            ex.submit(MarketId(0), MarketEvent::Departure { bidder: 0 }),
            Err(ExchangeError::MarketSealed(MarketId(0)))
        ));
        assert!(matches!(
            ex.open_sealed_round(MarketId(0), SealedRoundConfig::default()),
            Err(ExchangeError::MarketSealed(MarketId(0)))
        ));

        // incumbent 0 re-bids sealed; one entrant joins
        let incumbent_val = ValuationSnapshot::Additive {
            channel_values: vec![6.0, 2.0],
        };
        let entrant_val = ValuationSnapshot::Additive {
            channel_values: vec![3.0, 5.0],
        };
        let (nonce0, nonce1) = (nonce_from_seed(1), nonce_from_seed(2));
        let ack = ex
            .submit_sealed(
                MarketId(0),
                SealedSubmission::Commitment {
                    kind: ParticipantKind::Incumbent { bidder: 0 },
                    commitment: commit_to(0, &incumbent_val, &nonce0),
                    declared_cap: 8.0,
                },
            )
            .unwrap();
        assert!(matches!(ack, SealedAck::Committed { participant: 0, .. }));
        ex.submit_sealed(
            MarketId(0),
            SealedSubmission::Commitment {
                kind: ParticipantKind::Entrant {
                    conflicts: BidderConflicts::Binary(vec![0, 2]),
                },
                commitment: commit_to(1, &entrant_val, &nonce1),
                declared_cap: 8.0,
            },
        )
        .unwrap();

        // first drain closes the commit phase
        let report = ex.resolve_dirty().unwrap();
        assert!(report.sealed.is_empty());
        assert_eq!(ex.sealed_phase(MarketId(0)), Some(Phase::Reveal));

        for opening in [
            Opening {
                participant: 0,
                valuation: incumbent_val,
                nonce: nonce0,
            },
            Opening {
                participant: 1,
                valuation: entrant_val,
                nonce: nonce1,
            },
        ] {
            let ack = ex
                .submit_sealed(MarketId(0), SealedSubmission::Opening(opening))
                .unwrap();
            assert_eq!(ack, SealedAck::Reveal(RevealStatus::Accepted));
        }

        // second drain passes the reveal deadline: the round resolves
        let report = ex.resolve_dirty().unwrap();
        assert_eq!(report.sealed.len(), 1);
        let round = &report.sealed[0];
        assert_eq!(round.market, MarketId(0));
        assert!(round.outcome.forfeitures.is_empty());
        let verdict = audit(&round.outcome.transcript);
        assert!(verdict.clean(), "audit found: {:?}", verdict.findings);
        assert_eq!(ex.sealed_phase(MarketId(0)), None);

        // the market is an ordinary shard again (6 bidders + the entrant)
        assert_eq!(
            ex.with_session(MarketId(0), |s| s.instance().num_bidders())
                .unwrap(),
            7
        );
        ex.submit(
            MarketId(0),
            MarketEvent::Rebid {
                bidder: 0,
                valuation: val(2.0),
            },
        )
        .unwrap();
        assert_eq!(ex.resolve_dirty().unwrap().resolves.len(), 1);
        let stats = ex.stats();
        assert_eq!(stats.sealed_rounds_opened, 1);
        assert_eq!(stats.sealed_rounds_resolved, 1);
        assert_eq!(stats.sealed_markets, 0);
        assert_eq!(stats.collateral_forfeited, 0.0);
    }

    #[test]
    fn non_revealers_forfeit_at_the_exchange_layer() {
        use ssa_core::snapshot::ValuationSnapshot;
        use ssa_mechanism::sealed_bid::{commit_to, nonce_from_seed, ParticipantKind};

        let mut ex = SpectrumExchange::builder()
            .drain_mode(DrainMode::Sequential)
            .build();
        ex.open_market(MarketId(5), instance(6, 11)).unwrap();
        // a round over a market with pending traffic is rejected
        ex.submit(
            MarketId(5),
            MarketEvent::Rebid {
                bidder: 1,
                valuation: val(3.0),
            },
        )
        .unwrap();
        assert!(matches!(
            ex.open_sealed_round(MarketId(5), SealedRoundConfig::default()),
            Err(ExchangeError::PendingEvents(MarketId(5)))
        ));
        ex.resolve_dirty().unwrap();
        ex.open_sealed_round(MarketId(5), SealedRoundConfig::default())
            .unwrap();

        let sealed_val = ValuationSnapshot::Additive {
            channel_values: vec![4.0, 4.0],
        };
        ex.submit_sealed(
            MarketId(5),
            SealedSubmission::Commitment {
                kind: ParticipantKind::Incumbent { bidder: 2 },
                commitment: commit_to(0, &sealed_val, &nonce_from_seed(9)),
                declared_cap: 10.0,
            },
        )
        .unwrap();
        ex.resolve_dirty().unwrap(); // commit closes; never reveal
        let report = ex.resolve_dirty().unwrap();
        assert_eq!(report.sealed.len(), 1);
        let outcome = &report.sealed[0].outcome;
        assert_eq!(outcome.forfeitures.len(), 1);
        assert_eq!(outcome.forfeitures[0].participant, 0);
        // the non-revealing incumbent was excluded from the market
        assert_eq!(
            ex.with_session(MarketId(5), |s| s.instance().num_bidders())
                .unwrap(),
            5
        );
        let stats = ex.stats();
        assert!(stats.collateral_forfeited > 0.0);
    }

    #[test]
    fn deep_batches_chunk_into_waves_below_the_wall() {
        let mut options = SolverBuilder::new().rounding(3, 2).options();
        // k = 2 → 3 rows per arrival; 6-row wall → 2 arrivals per wave
        options.lp.deep_batch_rows = 6;
        let mut ex = SpectrumExchange::builder()
            .solver_options(options)
            .drain_mode(DrainMode::Sequential)
            .build();
        ex.open_market(MarketId(0), instance(4, 31)).unwrap();
        for i in 0..5 {
            ex.submit(
                MarketId(0),
                MarketEvent::Arrival {
                    valuation: val(1.0 + i as f64),
                    neighbors: vec![0],
                },
            )
            .unwrap();
        }
        let report = ex.resolve_dirty().unwrap();
        assert_eq!(report.resolves.len(), 1);
        assert_eq!(
            report.resolves[0].latencies.len(),
            3,
            "5 arrivals at ≤2 per wave → 3 resolves"
        );
        let stats = ex.stats();
        assert_eq!(stats.extra_waves, 2);
        assert_eq!(stats.shard_resolves, 3);
        assert_eq!(
            stats.sessions.deep_batch_rebuilds, 0,
            "chunking must keep every wave under the session's reroute wall"
        );
        assert_eq!(
            ex.with_session(MarketId(0), |s| s.instance().num_bidders())
                .unwrap(),
            9
        );
    }
}
