//! Sealed-bid rounds at the exchange layer.
//!
//! A [`SealedRound`] runs the mechanism crate's commit–reveal protocol
//! ([`SealedBidAuction`]) over one market of the exchange, with the phase
//! deadlines keyed to the exchange's own clock: **drain cycles**. Opening a
//! round detaches the market's session from the shard map (ordinary
//! [`submit`](crate::SpectrumExchange::submit) traffic is rejected while a
//! round is live — the whole point of sealing is that nothing else moves
//! the market); each [`resolve_dirty`](crate::SpectrumExchange::resolve_dirty)
//! call ticks the round's deadline counters, closing the commit phase after
//! `commit_drains` drains and resolving after `reveal_drains` more. The
//! resolved market re-enters the shard map with its warm LP state intact,
//! and the run's [`SealedBidOutcome`] — transcript included — lands in the
//! drain report for auditing.

use ssa_mechanism::sealed_bid::{
    CollateralPolicy, Commitment, Opening, ParticipantKind, Phase, RevealStatus, SealedBidAuction,
    SealedBidOutcome,
};

use crate::MarketId;

/// Deadlines (in drain cycles) and collateral terms for one sealed round.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SealedRoundConfig {
    /// How many [`resolve_dirty`](crate::SpectrumExchange::resolve_dirty)
    /// calls the commit phase stays open for (≥ 1).
    pub commit_drains: usize,
    /// How many further drains the reveal phase stays open for (≥ 1).
    pub reveal_drains: usize,
    /// Collateral terms for the round's commitments.
    pub policy: CollateralPolicy,
}

impl Default for SealedRoundConfig {
    fn default() -> Self {
        SealedRoundConfig {
            commit_drains: 1,
            reveal_drains: 1,
            policy: CollateralPolicy::default(),
        }
    }
}

/// One submission into a sealed round — the commit-phase and reveal-phase
/// payloads behind [`submit_sealed`](crate::SpectrumExchange::submit_sealed).
#[derive(Clone, Debug)]
pub enum SealedSubmission {
    /// Commit phase: post a commitment digest, the public part of the
    /// declaration, and the declared bid cap the collateral scales to.
    Commitment {
        /// Entrant (with public conflicts) or incumbent (with its index).
        kind: ParticipantKind,
        /// The hash commitment over `(participant id, valuation, nonce)`.
        commitment: Commitment,
        /// The declared maximum bid value.
        declared_cap: f64,
    },
    /// Reveal phase: publish an opening.
    Opening(Opening),
}

/// What a [`submit_sealed`](crate::SpectrumExchange::submit_sealed) call
/// did.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SealedAck {
    /// The commitment was accepted under this participant id, with this
    /// much collateral posted.
    Committed {
        /// The assigned participant id (openings must carry it).
        participant: u64,
        /// The collateral posted.
        collateral: f64,
    },
    /// The opening was processed (accepted, or rejected with forfeiture).
    Reveal(RevealStatus),
}

/// A resolved sealed round within a
/// [`DrainReport`](crate::DrainReport): the market it ran on plus the
/// full [`SealedBidOutcome`] (payments, forfeitures, and the auditable
/// transcript).
#[derive(Clone, Debug)]
pub struct SealedRoundReport {
    /// The market the round ran on.
    pub market: MarketId,
    /// The round's outcome and transcript.
    pub outcome: SealedBidOutcome,
}

/// A live sealed round: the detached auction plus its deadline counters.
pub(crate) struct SealedRound {
    pub(crate) auction: SealedBidAuction,
    /// Drains left before the current phase's deadline.
    pub(crate) drains_left: usize,
    pub(crate) reveal_drains: usize,
}

impl SealedRound {
    pub(crate) fn new(auction: SealedBidAuction, config: &SealedRoundConfig) -> Self {
        SealedRound {
            auction,
            drains_left: config.commit_drains.max(1),
            reveal_drains: config.reveal_drains.max(1),
        }
    }

    /// The phase the round is in.
    pub(crate) fn phase(&self) -> Phase {
        self.auction.phase()
    }

    /// Ticks one drain cycle. Returns `true` when the round's reveal
    /// deadline has passed and it must resolve now.
    pub(crate) fn tick(&mut self) -> Result<bool, ssa_mechanism::sealed_bid::SealedBidError> {
        self.drains_left -= 1;
        if self.drains_left > 0 {
            return Ok(false);
        }
        match self.auction.phase() {
            Phase::Commit => {
                self.auction.close_commits()?;
                self.drains_left = self.reveal_drains;
                Ok(false)
            }
            Phase::Reveal => Ok(true),
            Phase::Resolved => unreachable!("resolved rounds leave the exchange immediately"),
        }
    }
}
