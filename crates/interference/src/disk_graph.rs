//! Disk graphs for the transmitter scenario (Section 4.1, Proposition 9).
//!
//! Each bidder is a transmitter covering a disk; two transmitters conflict
//! iff their disks intersect. Ordering the vertices by **decreasing radius**
//! certifies an inductive independence number of at most 5: an independent
//! set of larger disks all touching a given disk occupies disjoint angular
//! sectors of more than 60° each.

use crate::model::BinaryInterferenceModel;
use ssa_conflict_graph::{BitSet, ConflictGraph, VertexOrdering};
use ssa_geometry::{Disk, SpatialGrid};

/// Builder for disk-graph conflict models.
#[derive(Clone, Debug)]
pub struct DiskGraphModel {
    disks: Vec<Disk>,
}

impl DiskGraphModel {
    /// Creates the model from the transmitters' disks.
    pub fn new(disks: Vec<Disk>) -> Self {
        DiskGraphModel { disks }
    }

    /// The transmitters' disks.
    pub fn disks(&self) -> &[Disk] {
        &self.disks
    }

    /// The paper's bound on ρ for disk graphs (Proposition 9).
    pub const RHO_BOUND: f64 = 5.0;

    /// Builds the communication/conflict graph: an edge wherever two disks
    /// intersect. A spatial grid keeps construction output-sensitive, and
    /// the adjacency rows are built in parallel (disk intersection is
    /// symmetric, so each row is independent of the others).
    pub fn conflict_graph(&self) -> ConflictGraph {
        let n = self.disks.len();
        if n == 0 {
            return ConflictGraph::new(0);
        }
        let centers: Vec<_> = self.disks.iter().map(|d| d.center).collect();
        let max_radius = self.disks.iter().map(|d| d.radius).fold(0.0f64, f64::max);
        let grid = SpatialGrid::new(&centers, (2.0 * max_radius).max(1e-9));
        ConflictGraph::from_symmetric_rows(n, |i| {
            // any disk intersecting disk i has its center within
            // radius_i + max_radius of center_i
            let mut row = BitSet::new(n);
            for j in grid.within_radius(&self.disks[i].center, self.disks[i].radius + max_radius) {
                if j != i && self.disks[i].intersects(&self.disks[j]) {
                    row.insert(j);
                }
            }
            row
        })
    }

    /// The radius-descending ordering of Proposition 9.
    pub fn ordering(&self) -> VertexOrdering {
        VertexOrdering::by_key_descending(self.disks.len(), |v| self.disks[v].radius)
    }

    /// Builds the full interference model (graph + ordering + certified ρ).
    pub fn build(&self) -> BinaryInterferenceModel {
        BinaryInterferenceModel::new(
            format!("disk-graph(n={})", self.disks.len()),
            self.conflict_graph(),
            self.ordering(),
            Some(Self::RHO_BOUND),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use ssa_geometry::Point2D;

    fn disk(x: f64, y: f64, r: f64) -> Disk {
        Disk::new(Point2D::new(x, y), r)
    }

    #[test]
    fn disjoint_disks_have_no_conflicts() {
        let m = DiskGraphModel::new(vec![
            disk(0.0, 0.0, 1.0),
            disk(10.0, 0.0, 1.0),
            disk(0.0, 10.0, 1.0),
        ]);
        let built = m.build();
        assert_eq!(built.graph.num_edges(), 0);
        assert_eq!(built.certified_rho.rho, 0.0);
    }

    #[test]
    fn overlapping_disks_conflict() {
        let m = DiskGraphModel::new(vec![
            disk(0.0, 0.0, 2.0),
            disk(1.0, 0.0, 2.0),
            disk(30.0, 0.0, 1.0),
        ]);
        let g = m.conflict_graph();
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(0, 2));
    }

    #[test]
    fn ordering_is_by_decreasing_radius() {
        let m = DiskGraphModel::new(vec![
            disk(0.0, 0.0, 1.0),
            disk(5.0, 0.0, 3.0),
            disk(9.0, 0.0, 2.0),
        ]);
        let o = m.ordering();
        assert_eq!(o.as_order(), &[1, 2, 0]);
    }

    #[test]
    fn daisy_configuration_respects_proposition_9() {
        // one small central disk surrounded by 8 large pairwise-intersecting
        // disks: the backward independent set at the central disk cannot
        // exceed 5 (Proposition 9)
        let mut disks = vec![disk(0.0, 0.0, 0.5)];
        for i in 0..8 {
            let angle = i as f64 * std::f64::consts::PI / 4.0;
            disks.push(disk(2.0 * angle.cos(), 2.0 * angle.sin(), 1.6));
        }
        let built = DiskGraphModel::new(disks).build();
        assert!(built.certified_rho.rho <= DiskGraphModel::RHO_BOUND);
        assert!(built.certified_rho.is_exact);
    }

    #[test]
    fn grid_construction_matches_brute_force() {
        let disks: Vec<Disk> = (0..20)
            .map(|i| {
                disk(
                    (i % 5) as f64 * 1.5,
                    (i / 5) as f64 * 1.5,
                    0.5 + 0.1 * (i % 3) as f64,
                )
            })
            .collect();
        let m = DiskGraphModel::new(disks.clone());
        let g = m.conflict_graph();
        for i in 0..disks.len() {
            for j in (i + 1)..disks.len() {
                assert_eq!(
                    g.has_edge(i, j),
                    disks[i].intersects(&disks[j]),
                    "pair ({i},{j})"
                );
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn prop_random_disk_graphs_have_rho_at_most_5(
            coords in prop::collection::vec((0.0f64..30.0, 0.0f64..30.0, 0.3f64..4.0), 1..40)
        ) {
            let disks: Vec<Disk> = coords.iter().map(|&(x, y, r)| disk(x, y, r)).collect();
            let built = DiskGraphModel::new(disks).build();
            // Proposition 9: with the radius-descending ordering, rho <= 5.
            prop_assert!(built.certified_rho.rho <= DiskGraphModel::RHO_BOUND + 1e-9,
                "rho = {} exceeds 5", built.certified_rho.rho);
        }
    }
}
