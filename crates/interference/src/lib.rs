//! Wireless interference models producing conflict graphs with certified
//! inductive independence numbers (Section 4 of the SPAA 2011 paper).
//!
//! Every model in this crate turns a geometric description of the wireless
//! network (transmitter disks or sender/receiver links) into either a
//! [`BinaryInterferenceModel`] (an unweighted conflict graph) or a
//! [`WeightedInterferenceModel`] (an edge-weighted conflict graph), together
//! with
//!
//! * a vertex ordering `π` with a **provable** bound on the inductive
//!   independence number ρ (e.g. ρ ≤ 5 for disk graphs, Prop. 9; the angular
//!   bound of Prop. 13 for the protocol model; `O(log n)` for the physical
//!   model, Prop. 15), and
//! * the **certified** ρ actually measured for that ordering, which the LP
//!   relaxation uses as its right-hand side.
//!
//! Models implemented:
//!
//! | module | paper reference | ρ bound |
//! |---|---|---|
//! | [`disk_graph`] | Proposition 9 | ≤ 5 |
//! | [`distance2`] (coloring, disk graphs) | Proposition 11 | O(1) |
//! | [`distance2`] (coloring, (r,s)-civilized) | Proposition 12 | ≤ (4r/s + 2)² |
//! | [`distance2`] (matching, disk graphs) | Corollary 14 | O(1) |
//! | [`protocol`] | Proposition 13 | ⌈π / arcsin(Δ/2(Δ+1))⌉ − 1 |
//! | [`ieee80211`] | Alicherry et al. / Wan | ≤ 23 |
//! | [`physical`] (fixed powers) | Proposition 15 | O(log n) |
//! | [`power_control`] | Theorem 17 | O(1) fading / O(log n) general |

#![warn(missing_docs)]

pub mod disk_graph;
pub mod distance2;
pub mod ieee80211;
pub mod model;
pub mod physical;
pub mod power_control;
pub mod protocol;

pub use disk_graph::DiskGraphModel;
pub use distance2::{CivilizedDistance2Model, Distance2ColoringModel, Distance2MatchingModel};
pub use ieee80211::Ieee80211Model;
pub use model::{BinaryInterferenceModel, WeightedInterferenceModel};
pub use physical::{PhysicalModel, PowerAssignment, SinrParameters};
pub use power_control::PowerControlModel;
pub use protocol::ProtocolModel;
