//! Distance-2 constraints (Section 4.1–4.2: Propositions 11 and 12,
//! Corollary 14).
//!
//! Three related models are implemented:
//!
//! * **Distance-2 coloring on disk graphs** ([`Distance2ColoringModel`]):
//!   transmitters conflict if they are adjacent in the disk graph *or* share
//!   a common neighbor (Proposition 11, ρ = O(1) with the radius-descending
//!   ordering).
//! * **Distance-2 coloring on (r,s)-civilized graphs**
//!   ([`CivilizedDistance2Model`]): same conflict rule on an explicitly
//!   given communication graph drawn with bounded edge length `r` and
//!   minimum node separation `s`; Proposition 12 certifies
//!   ρ ≤ (4r/s + 2)² for *any* ordering.
//! * **Distance-2 matching on disk graphs** ([`Distance2MatchingModel`]):
//!   the bidders are the *edges* of the disk graph (sender/receiver pairs);
//!   two edges conflict if they share an endpoint or some edge of the disk
//!   graph connects their endpoints (strong edge coloring). Corollary 14
//!   gives ρ = O(1) with the ordering by decreasing `r(e) = r(u) + r(v)`.

use crate::disk_graph::DiskGraphModel;
use crate::model::BinaryInterferenceModel;
use ssa_conflict_graph::{ConflictGraph, VertexOrdering};
use ssa_geometry::{CivilizedLayout, Disk};

fn distance2_conflicts(communication: &ConflictGraph) -> ConflictGraph {
    // Row u of the distance-2 graph is N(u) ∪ ⋃_{mid ∈ N(u)} N(mid) — a
    // word-level union of adjacency bit rows, computed in parallel per
    // vertex (the "within distance 2" relation is symmetric).
    let n = communication.num_vertices();
    ConflictGraph::from_symmetric_rows(n, |u| {
        let mut row = communication.adjacency_row(u).clone();
        for &mid in communication.neighbors(u) {
            row.union_with(communication.adjacency_row(mid));
        }
        row.remove(u);
        row
    })
}

/// Distance-2 coloring on disk graphs (Proposition 11).
#[derive(Clone, Debug)]
pub struct Distance2ColoringModel {
    disks: Vec<Disk>,
}

impl Distance2ColoringModel {
    /// Constant bound used for reporting; Proposition 11 only states
    /// ρ = O(1). The proof gives `5 + (2 + 2)² + 5·5 = 46` as a crude
    /// explicit constant (direct neighbors + small intermediate + large
    /// intermediate cases); the certified per-instance value is what the LP
    /// uses.
    pub const RHO_BOUND: f64 = 46.0;

    /// Creates the model from the transmitters' disks.
    pub fn new(disks: Vec<Disk>) -> Self {
        Distance2ColoringModel { disks }
    }

    /// Builds the distance-2 conflict graph of the disk graph.
    pub fn conflict_graph(&self) -> ConflictGraph {
        let disk_graph = DiskGraphModel::new(self.disks.clone()).conflict_graph();
        distance2_conflicts(&disk_graph)
    }

    /// Radius-descending ordering (as in Proposition 11).
    pub fn ordering(&self) -> VertexOrdering {
        VertexOrdering::by_key_descending(self.disks.len(), |v| self.disks[v].radius)
    }

    /// Builds the full interference model.
    pub fn build(&self) -> BinaryInterferenceModel {
        BinaryInterferenceModel::new(
            format!("distance2-coloring-disk(n={})", self.disks.len()),
            self.conflict_graph(),
            self.ordering(),
            Some(Self::RHO_BOUND),
        )
    }
}

/// Distance-2 coloring on (r,s)-civilized graphs (Proposition 12).
#[derive(Clone, Debug)]
pub struct CivilizedDistance2Model {
    layout: CivilizedLayout,
}

impl CivilizedDistance2Model {
    /// Creates the model from a civilized layout.
    pub fn new(layout: CivilizedLayout) -> Self {
        CivilizedDistance2Model { layout }
    }

    /// The layout.
    pub fn layout(&self) -> &CivilizedLayout {
        &self.layout
    }

    /// Builds the distance-2 conflict graph of the layout's communication
    /// graph.
    pub fn conflict_graph(&self) -> ConflictGraph {
        let n = self.layout.num_nodes();
        let mut comm = ConflictGraph::new(n);
        for &(u, v) in &self.layout.edges {
            comm.add_edge(u, v);
        }
        distance2_conflicts(&comm)
    }

    /// Proposition 12 holds for any ordering; the identity ordering is used.
    pub fn ordering(&self) -> VertexOrdering {
        VertexOrdering::identity(self.layout.num_nodes())
    }

    /// Builds the full interference model; the theoretical bound is the
    /// layout's `(4r/s + 2)²`.
    pub fn build(&self) -> BinaryInterferenceModel {
        BinaryInterferenceModel::new(
            format!(
                "distance2-civilized(r={},s={},n={})",
                self.layout.r,
                self.layout.s,
                self.layout.num_nodes()
            ),
            self.conflict_graph(),
            self.ordering(),
            Some(self.layout.rho_bound()),
        )
    }
}

/// Distance-2 matching (strong edge coloring) on disk graphs
/// (Corollary 14). Bidders are the edges of the disk graph.
#[derive(Clone, Debug)]
pub struct Distance2MatchingModel {
    disks: Vec<Disk>,
}

impl Distance2MatchingModel {
    /// Explicit constant used for reporting; Corollary 14 only states O(1).
    pub const RHO_BOUND: f64 = 64.0;

    /// Creates the model from the transmitters' disks.
    pub fn new(disks: Vec<Disk>) -> Self {
        Distance2MatchingModel { disks }
    }

    /// The edges of the underlying disk graph, i.e. the bidders of this
    /// model, as `(u, v)` pairs with `u < v`, sorted.
    pub fn communication_edges(&self) -> Vec<(usize, usize)> {
        let disk_graph = DiskGraphModel::new(self.disks.clone()).conflict_graph();
        let mut edges: Vec<(usize, usize)> = disk_graph.edges().collect();
        edges.sort_unstable();
        edges
    }

    /// Builds the strong-edge-coloring conflict graph: edges conflict if they
    /// share an endpoint or the disk graph contains an edge between their
    /// endpoints.
    pub fn conflict_graph(&self) -> ConflictGraph {
        let disk_graph = DiskGraphModel::new(self.disks.clone()).conflict_graph();
        let edges = self.communication_edges();
        let m = edges.len();
        let mut g = ConflictGraph::new(m);
        for i in 0..m {
            let (a, b) = edges[i];
            for (j, &(c, d)) in edges.iter().enumerate().skip(i + 1) {
                let share_endpoint = a == c || a == d || b == c || b == d;
                let adjacent_endpoints = disk_graph.has_edge(a, c)
                    || disk_graph.has_edge(a, d)
                    || disk_graph.has_edge(b, c)
                    || disk_graph.has_edge(b, d);
                if share_endpoint || adjacent_endpoints {
                    g.add_edge(i, j);
                }
            }
        }
        g
    }

    /// Ordering by decreasing `r(e) = r(u) + r(v)` (Barrett et al., as cited
    /// for Corollary 14).
    pub fn ordering(&self) -> VertexOrdering {
        let edges = self.communication_edges();
        VertexOrdering::by_key_descending(edges.len(), |e| {
            let (u, v) = edges[e];
            self.disks[u].radius + self.disks[v].radius
        })
    }

    /// Builds the full interference model over the disk-graph edges.
    pub fn build(&self) -> BinaryInterferenceModel {
        let graph = self.conflict_graph();
        let ordering = self.ordering();
        BinaryInterferenceModel::new(
            format!("distance2-matching-disk(links={})", graph.num_vertices()),
            graph,
            ordering,
            Some(Self::RHO_BOUND),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use ssa_geometry::Point2D;

    fn disk(x: f64, y: f64, r: f64) -> Disk {
        Disk::new(Point2D::new(x, y), r)
    }

    #[test]
    fn distance2_adds_two_hop_conflicts() {
        // chain of three disks: 0-1 and 1-2 intersect, 0 and 2 do not.
        let disks = vec![
            disk(0.0, 0.0, 1.0),
            disk(1.8, 0.0, 1.0),
            disk(3.6, 0.0, 1.0),
        ];
        let d1 = DiskGraphModel::new(disks.clone()).conflict_graph();
        assert!(!d1.has_edge(0, 2));
        let d2 = Distance2ColoringModel::new(disks).conflict_graph();
        assert!(d2.has_edge(0, 1));
        assert!(d2.has_edge(1, 2));
        assert!(
            d2.has_edge(0, 2),
            "two-hop neighbors conflict under distance-2 coloring"
        );
    }

    #[test]
    fn isolated_disks_have_no_distance2_conflicts() {
        let disks = vec![disk(0.0, 0.0, 1.0), disk(10.0, 0.0, 1.0)];
        let g = Distance2ColoringModel::new(disks).conflict_graph();
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn civilized_grid_rho_below_proposition_12_bound() {
        let mut pts = Vec::new();
        for x in 0..5 {
            for y in 0..5 {
                pts.push(Point2D::new(x as f64, y as f64));
            }
        }
        let layout = CivilizedLayout::with_all_short_edges(pts, 1.0, 1.0);
        assert!(layout.validate().is_ok());
        let model = CivilizedDistance2Model::new(layout);
        let built = model.build();
        assert!(built.certified_rho.rho <= built.theoretical_rho.unwrap() + 1e-9);
        assert!(built.certified_rho.rho >= 1.0, "grid has conflicts");
    }

    #[test]
    fn matching_model_bidders_are_communication_edges() {
        // triangle of mutually intersecting disks -> 3 communication edges,
        // all mutually conflicting (they share endpoints)
        let disks = vec![
            disk(0.0, 0.0, 1.0),
            disk(1.5, 0.0, 1.0),
            disk(0.75, 1.2, 1.0),
        ];
        let model = Distance2MatchingModel::new(disks);
        let edges = model.communication_edges();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2)]);
        let g = model.conflict_graph();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn matching_model_distant_edges_do_not_conflict() {
        // two intersecting pairs far apart -> 2 edges, no conflict
        let disks = vec![
            disk(0.0, 0.0, 1.0),
            disk(1.5, 0.0, 1.0),
            disk(100.0, 0.0, 1.0),
            disk(101.5, 0.0, 1.0),
        ];
        let model = Distance2MatchingModel::new(disks);
        let g = model.conflict_graph();
        assert_eq!(g.num_vertices(), 2);
        assert_eq!(g.num_edges(), 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(20))]

        #[test]
        fn prop_distance2_disk_rho_is_small(
            coords in prop::collection::vec((0.0f64..25.0, 0.0f64..25.0, 0.4f64..2.5), 1..25)
        ) {
            let disks: Vec<Disk> = coords.iter().map(|&(x, y, r)| disk(x, y, r)).collect();
            let built = Distance2ColoringModel::new(disks).build();
            prop_assert!(built.certified_rho.rho <= Distance2ColoringModel::RHO_BOUND);
        }

        #[test]
        fn prop_distance2_conflicts_contain_distance1_conflicts(
            coords in prop::collection::vec((0.0f64..25.0, 0.0f64..25.0, 0.4f64..2.5), 1..20)
        ) {
            let disks: Vec<Disk> = coords.iter().map(|&(x, y, r)| disk(x, y, r)).collect();
            let d1 = DiskGraphModel::new(disks.clone()).conflict_graph();
            let d2 = Distance2ColoringModel::new(disks).conflict_graph();
            for (u, v) in d1.edges() {
                prop_assert!(d2.has_edge(u, v));
            }
        }
    }
}
