//! The IEEE 802.11 bidirectional interference model (Alicherry et al.),
//! mentioned in Section 4.2 of the paper with the bound ρ ≤ 23 due to Wan.
//!
//! In this model both endpoints of a link transmit (data and ACK), so a link
//! blocks a disk around *both* endpoints whose radius is `(1 + Δ)` times its
//! own length. Two links conflict iff some endpoint of one lies within the
//! other's blocked region, i.e. iff the minimum distance between their
//! endpoint sets is smaller than `(1 + Δ) · max(len_i, len_j)`.

use crate::model::BinaryInterferenceModel;
use ssa_conflict_graph::{ConflictGraph, VertexOrdering};
use ssa_geometry::Link;

/// Builder for IEEE 802.11-style bidirectional conflict graphs.
#[derive(Clone, Debug)]
pub struct Ieee80211Model {
    links: Vec<Link>,
    delta: f64,
}

impl Ieee80211Model {
    /// Bound on ρ for the bidirectional model reported in the paper
    /// (Section 4.2, citing Wan).
    pub const RHO_BOUND: f64 = 23.0;

    /// Creates the model from the links and the guard parameter `Δ`.
    ///
    /// # Panics
    /// Panics if `delta` is not strictly positive.
    pub fn new(links: Vec<Link>, delta: f64) -> Self {
        assert!(
            delta > 0.0 && delta.is_finite(),
            "802.11 model requires Δ > 0"
        );
        Ieee80211Model { links, delta }
    }

    /// The links.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Returns `true` if links `i` and `j` conflict.
    pub fn conflicts(&self, i: usize, j: usize) -> bool {
        if i == j {
            return false;
        }
        let li = &self.links[i];
        let lj = &self.links[j];
        let blocking = (1.0 + self.delta) * li.length().max(lj.length());
        li.min_endpoint_distance(lj) < blocking
    }

    /// Builds the conflict graph (parallel per-row construction; the
    /// blocking predicate is symmetric in `i` and `j`).
    pub fn conflict_graph(&self) -> ConflictGraph {
        let n = self.links.len();
        ConflictGraph::from_symmetric_rows(n, |i| {
            ssa_conflict_graph::BitSet::from_indices(n, (0..n).filter(|&j| self.conflicts(i, j)))
        })
    }

    /// Length-descending ordering (longer links first), as for the protocol
    /// model.
    pub fn ordering(&self) -> VertexOrdering {
        VertexOrdering::by_key_descending(self.links.len(), |v| self.links[v].length())
    }

    /// Builds the full interference model.
    pub fn build(&self) -> BinaryInterferenceModel {
        BinaryInterferenceModel::new(
            format!("ieee802.11(delta={},n={})", self.delta, self.links.len()),
            self.conflict_graph(),
            self.ordering(),
            Some(Self::RHO_BOUND),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use ssa_geometry::Point2D;

    fn link(sx: f64, sy: f64, rx: f64, ry: f64) -> Link {
        Link::new(Point2D::new(sx, sy), Point2D::new(rx, ry))
    }

    #[test]
    fn bidirectional_model_is_more_conservative_than_protocol() {
        // two links whose receivers are close but whose senders are far: the
        // protocol model with small delta may allow them, the 802.11 model
        // (which also protects receivers against receivers) does not.
        let links = vec![link(0.0, 0.0, 5.0, 0.0), link(10.4, 0.0, 5.4, 0.0)];
        let m80211 = Ieee80211Model::new(links.clone(), 0.5);
        assert!(m80211.conflicts(0, 1));
        let g = m80211.conflict_graph();
        assert!(g.has_edge(0, 1));
    }

    #[test]
    fn far_links_do_not_conflict() {
        let links = vec![link(0.0, 0.0, 1.0, 0.0), link(50.0, 50.0, 51.0, 50.0)];
        let m = Ieee80211Model::new(links, 1.0);
        assert!(!m.conflicts(0, 1));
    }

    #[test]
    fn conflict_radius_uses_longer_link() {
        // link 0 is long (10), link 1 is short (1); they are 15 apart.
        // With delta = 1 the blocking radius is 20 > 15, so they conflict,
        // even though 15 > (1+1)*1 (the short link alone would not block).
        let links = vec![link(0.0, 0.0, 10.0, 0.0), link(25.0, 0.0, 26.0, 0.0)];
        let m = Ieee80211Model::new(links, 1.0);
        assert!(m.conflicts(0, 1));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(25))]

        #[test]
        fn prop_conflicts_symmetric_and_rho_bounded(
            coords in prop::collection::vec((0.0f64..60.0, 0.0f64..60.0, 0.3f64..4.0, 0.0f64..std::f64::consts::TAU), 1..30),
            delta in 0.3f64..2.0,
        ) {
            let links: Vec<Link> = coords
                .iter()
                .map(|&(x, y, len, ang)| link(x, y, x + len * ang.cos(), y + len * ang.sin()))
                .collect();
            let m = Ieee80211Model::new(links, delta);
            for i in 0..m.links().len() {
                for j in 0..m.links().len() {
                    prop_assert_eq!(m.conflicts(i, j), m.conflicts(j, i));
                }
            }
            let built = m.build();
            prop_assert!(built.certified_rho.rho <= Ieee80211Model::RHO_BOUND);
        }
    }
}
