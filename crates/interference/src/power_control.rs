//! The physical model with power control (Section 4.3, Theorem 17).
//!
//! When transmission powers are part of the optimization, the paper uses the
//! distance-based edge weights of Kesselheim (SODA 2011):
//!
//! ```text
//!   w(ℓ, ℓ') = (1/τ)·min{1, d(ℓ)^α / d(s_ℓ, r_ℓ')^α}
//!            + (1/τ)·min{1, d(ℓ)^α / d(s_ℓ', r_ℓ)^α}     if π(ℓ) < π(ℓ')
//!   w(ℓ, ℓ') = 0                                          otherwise
//!   τ = 1 / (2 · 3^α · (4β + 2))
//! ```
//!
//! with `π` ordering the links from long to short. Independent sets of this
//! weighted graph admit a feasible power assignment; the paper invokes
//! Kesselheim's power-control procedure as a black box for that step.
//!
//! **Substitution note (see DESIGN.md):** as the concrete power-control
//! procedure this crate implements the Foschini–Miljanic style fixed-point
//! iteration `p_i ← β·d_i^α·(Σ_{j≠i} p_j/d(s_j,r_i)^α + ν)`, which converges
//! to the (component-wise minimal) feasible power vector whenever any
//! feasible assignment exists. This preserves the property Theorem 17 needs
//! — "every independent set can be scheduled after choosing powers" — while
//! being directly checkable: the returned powers are validated against the
//! SINR constraints.

use crate::model::WeightedInterferenceModel;
use crate::physical::SinrParameters;
use serde::{Deserialize, Serialize};
use ssa_conflict_graph::{VertexOrdering, WeightedConflictGraph};
use ssa_geometry::LinkMetric;

/// Outcome of the power-control procedure for a set of links.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PowerControlResult {
    /// Per-link powers, indexed like the input set.
    pub powers: Vec<f64>,
    /// Number of fixed-point iterations performed.
    pub iterations: usize,
}

/// The physical model with power control.
#[derive(Clone, Debug)]
pub struct PowerControlModel {
    metric: LinkMetric,
    params: SinrParameters,
}

impl PowerControlModel {
    /// Creates the model.
    pub fn new(metric: LinkMetric, params: SinrParameters) -> Self {
        PowerControlModel { metric, params }
    }

    /// Number of links.
    pub fn num_links(&self) -> usize {
        self.metric.num_links()
    }

    /// The SINR parameters.
    pub fn params(&self) -> &SinrParameters {
        &self.params
    }

    /// The link metric.
    pub fn metric(&self) -> &LinkMetric {
        &self.metric
    }

    /// The scaling constant `τ = 1/(2·3^α·(4β+2))` of Theorem 17.
    pub fn tau(&self) -> f64 {
        1.0 / (2.0 * 3.0f64.powf(self.params.alpha) * (4.0 * self.params.beta + 2.0))
    }

    /// The length-descending ordering (long links first) of Theorem 17.
    pub fn ordering(&self) -> VertexOrdering {
        VertexOrdering::by_key_descending(self.num_links(), |v| self.metric.length(v))
    }

    /// The directed edge weight `w(ℓ_i, ℓ_j)` of Theorem 17 (non-zero only if
    /// `i` precedes `j`, i.e. `i` is the longer link).
    pub fn weight(&self, i: usize, j: usize, ordering: &VertexOrdering) -> f64 {
        if i == j || !ordering.precedes(i, j) {
            return 0.0;
        }
        let alpha = self.params.alpha;
        let d_i = self.metric.length(i).powf(alpha);
        let d_i_to_rj = self.metric.sender_to_receiver(i, j).powf(alpha);
        let d_j_to_ri = self.metric.sender_to_receiver(j, i).powf(alpha);
        let term1 = if d_i_to_rj > 0.0 {
            (d_i / d_i_to_rj).min(1.0)
        } else {
            1.0
        };
        let term2 = if d_j_to_ri > 0.0 {
            (d_i / d_j_to_ri).min(1.0)
        } else {
            1.0
        };
        (term1 + term2) / self.tau()
    }

    /// Builds the edge-weighted conflict graph of Theorem 17 (parallel
    /// per-receiver row construction).
    pub fn conflict_graph(&self) -> WeightedConflictGraph {
        let n = self.num_links();
        let ordering = self.ordering();
        WeightedConflictGraph::from_incoming_rows(n, |j| {
            (0..n)
                .filter(|&i| i != j)
                .map(|i| (i, self.weight(i, j, &ordering)))
                .filter(|&(_, w)| w > 0.0)
                .collect()
        })
    }

    /// Builds the full weighted interference model.
    pub fn build(&self) -> WeightedInterferenceModel {
        WeightedInterferenceModel::new(
            format!(
                "physical-power-control(alpha={},beta={},n={})",
                self.params.alpha,
                self.params.beta,
                self.num_links()
            ),
            self.conflict_graph(),
            self.ordering(),
            None,
        )
    }

    /// The power-control procedure: computes transmission powers under which
    /// every link of `set` satisfies its SINR constraint, or `None` if the
    /// fixed-point iteration does not converge to a feasible assignment.
    ///
    /// The iteration is `p_i ← margin · β · d_i^α · (Σ_{j≠i} p_j / d(s_j,
    /// r_i)^α + ν)`, started from the noise-only solution; `margin` is a
    /// small head-room factor so the returned powers satisfy the constraint
    /// strictly.
    pub fn power_control(&self, set: &[usize]) -> Option<PowerControlResult> {
        if set.is_empty() {
            return Some(PowerControlResult {
                powers: Vec::new(),
                iterations: 0,
            });
        }
        let alpha = self.params.alpha;
        let beta = self.params.beta;
        // With zero ambient noise the fixed point is the all-zero vector;
        // use a tiny virtual noise floor so powers have a well-defined scale.
        let noise = if self.params.noise > 0.0 {
            self.params.noise
        } else {
            1e-6
        };
        let margin = 1.0 + 1e-9;
        let m = set.len();
        let d_alpha: Vec<f64> = set
            .iter()
            .map(|&i| self.metric.length(i).powf(alpha))
            .collect();
        let mut powers: Vec<f64> = d_alpha
            .iter()
            .map(|&da| margin * beta * da * noise)
            .collect();
        let max_iterations = 10_000;
        for it in 0..max_iterations {
            let mut next = vec![0.0; m];
            let mut max_rel_change = 0.0f64;
            for (a, &i) in set.iter().enumerate() {
                let interference: f64 = set
                    .iter()
                    .enumerate()
                    .filter(|&(b, _)| b != a)
                    .map(|(b, &j)| powers[b] / self.metric.sender_to_receiver(j, i).powf(alpha))
                    .sum();
                next[a] = margin * beta * d_alpha[a] * (interference + noise);
                let rel = (next[a] - powers[a]).abs() / next[a].max(1e-300);
                max_rel_change = max_rel_change.max(rel);
                // diverging powers mean the set is not feasible under any
                // power assignment
                if !next[a].is_finite() || next[a] > 1e200 {
                    return None;
                }
            }
            powers = next;
            if max_rel_change < 1e-12 {
                return self
                    .validate_powers(set, &powers)
                    .then_some(PowerControlResult {
                        powers,
                        iterations: it + 1,
                    });
            }
        }
        // no convergence within the iteration budget: treat as infeasible
        None
    }

    /// Checks the SINR constraints for `set` under explicitly given powers
    /// (indexed like `set`).
    pub fn validate_powers(&self, set: &[usize], powers: &[f64]) -> bool {
        let alpha = self.params.alpha;
        let beta = self.params.beta;
        let noise = self.params.noise;
        set.iter().enumerate().all(|(a, &i)| {
            let signal = powers[a] / self.metric.length(i).powf(alpha);
            let interference: f64 = set
                .iter()
                .enumerate()
                .filter(|&(b, _)| b != a)
                .map(|(b, &j)| powers[b] / self.metric.sender_to_receiver(j, i).powf(alpha))
                .sum();
            signal >= beta * (interference + noise) - 1e-9 * signal.abs()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use ssa_geometry::{Link, Point2D};

    fn links_on_line(positions: &[(f64, f64)]) -> Vec<Link> {
        positions
            .iter()
            .map(|&(start, len)| {
                Link::new(Point2D::new(start, 0.0), Point2D::new(start + len, 0.0))
            })
            .collect()
    }

    fn pc(links: &[Link], alpha: f64, beta: f64, noise: f64) -> PowerControlModel {
        PowerControlModel::new(
            LinkMetric::from_links(links),
            SinrParameters::new(alpha, beta, noise),
        )
    }

    #[test]
    fn tau_formula() {
        let m = pc(&links_on_line(&[(0.0, 1.0)]), 3.0, 1.0, 0.0);
        // tau = 1 / (2 * 27 * 6) = 1/324
        assert!((m.tau() - 1.0 / 324.0).abs() < 1e-12);
    }

    #[test]
    fn single_link_gets_a_feasible_power() {
        let m = pc(&links_on_line(&[(0.0, 2.0)]), 3.0, 1.5, 0.3);
        let r = m
            .power_control(&[0])
            .expect("single link is always feasible");
        assert_eq!(r.powers.len(), 1);
        assert!(m.validate_powers(&[0], &r.powers));
    }

    #[test]
    fn well_separated_links_get_feasible_powers() {
        let m = pc(
            &links_on_line(&[(0.0, 1.0), (50.0, 2.0), (120.0, 1.5)]),
            3.0,
            1.0,
            0.1,
        );
        let set = [0, 1, 2];
        let r = m
            .power_control(&set)
            .expect("well separated links are feasible");
        assert!(m.validate_powers(&set, &r.powers));
        // all powers are positive and finite
        assert!(r.powers.iter().all(|&p| p > 0.0 && p.is_finite()));
    }

    #[test]
    fn colocated_identical_links_are_infeasible_under_any_powers() {
        // two identical links on top of each other: interference at each
        // receiver equals the other's signal scaled identically, so with
        // beta >= 1 no power assignment works. (d(s_j, r_i) equals the link
        // length for both cross terms.)
        let links = vec![
            Link::new(Point2D::new(0.0, 0.0), Point2D::new(1.0, 0.0)),
            Link::new(Point2D::new(0.0, 0.001), Point2D::new(1.0, 0.001)),
        ];
        let m = pc(&links, 3.0, 2.0, 0.1);
        assert!(m.power_control(&[0, 1]).is_none());
    }

    #[test]
    fn independent_sets_of_the_theorem_17_graph_are_schedulable() {
        // Theorem 17 / Theorem 3 of Kesselheim (SODA'11): independence in the
        // weighted graph implies a feasible power assignment exists. Our
        // power-control procedure must find one.
        let links = links_on_line(&[(0.0, 1.0), (30.0, 2.0), (75.0, 1.2), (140.0, 3.0)]);
        let m = pc(&links, 3.0, 1.0, 0.05);
        let g = m.conflict_graph();
        let n = links.len();
        for mask in 0u32..(1 << n) {
            let set: Vec<usize> = (0..n).filter(|&i| mask & (1 << i) != 0).collect();
            if g.is_independent(&set) {
                let r = m.power_control(&set);
                assert!(
                    r.is_some(),
                    "independent set {set:?} should admit a feasible power assignment"
                );
            }
        }
    }

    #[test]
    fn weights_are_zero_from_shorter_to_longer() {
        let links = links_on_line(&[(0.0, 3.0), (10.0, 1.0)]);
        let m = pc(&links, 3.0, 1.0, 0.0);
        let ordering = m.ordering();
        // link 0 is longer -> precedes link 1 -> only w(0, 1) may be non-zero
        assert!(m.weight(0, 1, &ordering) > 0.0);
        assert_eq!(m.weight(1, 0, &ordering), 0.0);
    }

    #[test]
    fn empty_set_power_control_is_trivial() {
        let m = pc(&links_on_line(&[(0.0, 1.0)]), 3.0, 1.0, 0.1);
        let r = m.power_control(&[]).unwrap();
        assert!(r.powers.is_empty());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(15))]

        #[test]
        fn prop_power_control_output_is_always_validated(
            coords in prop::collection::vec((0.0f64..200.0, 0.5f64..3.0), 1..8),
        ) {
            let links = links_on_line(&coords);
            let m = pc(&links, 3.0, 1.0, 0.1);
            let set: Vec<usize> = (0..links.len()).collect();
            if let Some(r) = m.power_control(&set) {
                prop_assert!(m.validate_powers(&set, &r.powers));
            }
        }

        #[test]
        fn prop_theorem17_rho_is_moderate(
            coords in prop::collection::vec((0.0f64..300.0, 0.0f64..300.0, 0.5f64..4.0, 0.0f64..std::f64::consts::TAU), 2..25),
        ) {
            let links: Vec<Link> = coords
                .iter()
                .map(|&(x, y, len, ang)| {
                    Link::new(Point2D::new(x, y), Point2D::new(x + len * ang.cos(), y + len * ang.sin()))
                })
                .collect();
            let m = PowerControlModel::new(LinkMetric::from_links(&links), SinrParameters::new(3.0, 1.0, 0.0));
            let built = m.build();
            // Theorem 1/7 of Kesselheim (SODA'11): rho = O(1) in fading
            // metrics (the plane), O(log n) in general. The weights carry a
            // 1/tau factor, so the envelope is expressed in units of 1/tau;
            // the precise scaling is measured by experiment E8, this test
            // only guards against unbounded growth.
            let envelope = (4.0 / m.tau()) * ((links.len() as f64).log2() + 1.0);
            prop_assert!(built.certified_rho.rho <= envelope,
                "rho {} above envelope {}", built.certified_rho.rho, envelope);
        }
    }
}
