//! The protocol model (Section 4.2, Proposition 13).
//!
//! Bidders are sender/receiver links. A link `ℓ = (s, r)` can share a
//! channel with other links only if every other sender `s'` on the channel
//! satisfies `d(s', r) ≥ (1 + Δ) · d(s, r)` for a guard parameter `Δ > 0`.
//! Two links conflict iff one of them violates the other's guard zone.
//!
//! Ordering the links by **decreasing length** certifies the angular bound
//! of Proposition 13 (due to Wan):
//! `ρ ≤ ⌈π / arcsin(Δ / (2(Δ+1)))⌉ − 1`.

use crate::model::BinaryInterferenceModel;
use ssa_conflict_graph::{ConflictGraph, VertexOrdering};
use ssa_geometry::Link;

/// Builder for protocol-model conflict graphs.
#[derive(Clone, Debug)]
pub struct ProtocolModel {
    links: Vec<Link>,
    delta: f64,
}

impl ProtocolModel {
    /// Creates the model from the links and the guard parameter `Δ`.
    ///
    /// # Panics
    /// Panics if `delta` is not strictly positive.
    pub fn new(links: Vec<Link>, delta: f64) -> Self {
        assert!(
            delta > 0.0 && delta.is_finite(),
            "protocol model requires Δ > 0"
        );
        ProtocolModel { links, delta }
    }

    /// The links.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// The guard parameter Δ.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// The bound of Proposition 13: `⌈π / arcsin(Δ/(2(Δ+1)))⌉ − 1`.
    pub fn rho_bound(&self) -> f64 {
        let x = self.delta / (2.0 * (self.delta + 1.0));
        ((std::f64::consts::PI / x.asin()).ceil() - 1.0).max(1.0)
    }

    /// Returns `true` if links `i` and `j` conflict: sender `j` lies inside
    /// the guard zone of link `i`'s receiver or vice versa.
    pub fn conflicts(&self, i: usize, j: usize) -> bool {
        if i == j {
            return false;
        }
        let li = &self.links[i];
        let lj = &self.links[j];
        let guard_i = (1.0 + self.delta) * li.length();
        let guard_j = (1.0 + self.delta) * lj.length();
        lj.sender_to_receiver_of(li) < guard_i || li.sender_to_receiver_of(lj) < guard_j
    }

    /// Builds the conflict graph: one adjacency row per link, evaluated in
    /// parallel (the guard-zone predicate is symmetric by construction).
    pub fn conflict_graph(&self) -> ConflictGraph {
        let n = self.links.len();
        ConflictGraph::from_symmetric_rows(n, |i| {
            ssa_conflict_graph::BitSet::from_indices(n, (0..n).filter(|&j| self.conflicts(i, j)))
        })
    }

    /// The length-descending ordering used by Proposition 13.
    pub fn ordering(&self) -> VertexOrdering {
        VertexOrdering::by_key_descending(self.links.len(), |v| self.links[v].length())
    }

    /// Builds the full interference model (graph + ordering + certified ρ).
    pub fn build(&self) -> BinaryInterferenceModel {
        BinaryInterferenceModel::new(
            format!("protocol(delta={},n={})", self.delta, self.links.len()),
            self.conflict_graph(),
            self.ordering(),
            Some(self.rho_bound()),
        )
    }

    /// Checks directly (without going through the conflict graph) whether a
    /// set of links can share one channel under the protocol constraint.
    pub fn is_feasible_set(&self, set: &[usize]) -> bool {
        for (a, &i) in set.iter().enumerate() {
            for &j in &set[a + 1..] {
                if self.conflicts(i, j) {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use ssa_geometry::Point2D;

    fn link(sx: f64, sy: f64, rx: f64, ry: f64) -> Link {
        Link::new(Point2D::new(sx, sy), Point2D::new(rx, ry))
    }

    #[test]
    fn far_apart_links_do_not_conflict() {
        let m = ProtocolModel::new(
            vec![link(0.0, 0.0, 1.0, 0.0), link(100.0, 0.0, 101.0, 0.0)],
            1.0,
        );
        assert!(!m.conflicts(0, 1));
        assert_eq!(m.conflict_graph().num_edges(), 0);
    }

    #[test]
    fn overlapping_links_conflict() {
        // sender of link 1 sits right next to receiver of link 0
        let m = ProtocolModel::new(
            vec![link(0.0, 0.0, 1.0, 0.0), link(1.1, 0.0, 2.5, 0.0)],
            1.0,
        );
        assert!(m.conflicts(0, 1));
        assert!(m.conflicts(1, 0), "conflict relation is symmetric");
    }

    #[test]
    fn guard_zone_scales_with_delta() {
        // distance between s' and r is 1.8, link length 1.0:
        // conflict iff 1.8 < (1 + delta) -> delta > 0.8
        let links = vec![link(0.0, 0.0, 1.0, 0.0), link(2.8, 0.0, 3.8, 0.0)];
        let tight = ProtocolModel::new(links.clone(), 0.5);
        let loose = ProtocolModel::new(links, 1.0);
        assert!(!tight.conflicts(0, 1));
        assert!(loose.conflicts(0, 1));
    }

    #[test]
    fn rho_bound_formula() {
        let m = ProtocolModel::new(vec![], 1.0);
        // delta = 1: arcsin(1/4) ≈ 0.2527, pi / it ≈ 12.43 -> ceil 13 - 1 = 12
        assert_eq!(m.rho_bound(), 12.0);
        let m2 = ProtocolModel::new(vec![], 2.0);
        // delta = 2: arcsin(1/3) ≈ 0.3398, pi / it ≈ 9.24 -> ceil 10 - 1 = 9
        assert_eq!(m2.rho_bound(), 9.0);
        // larger delta -> smaller bound
        assert!(m2.rho_bound() <= m.rho_bound());
    }

    #[test]
    fn feasible_set_matches_conflict_graph_independence() {
        let links = vec![
            link(0.0, 0.0, 1.0, 0.0),
            link(3.0, 0.0, 4.0, 0.0),
            link(3.5, 0.5, 4.5, 0.5),
            link(10.0, 0.0, 11.0, 0.0),
        ];
        let m = ProtocolModel::new(links, 1.0);
        let g = m.conflict_graph();
        let sets: Vec<Vec<usize>> = vec![vec![0, 1], vec![1, 2], vec![0, 3], vec![0, 1, 2, 3]];
        for s in sets {
            assert_eq!(m.is_feasible_set(&s), g.is_independent(&s), "set {s:?}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(30))]

        #[test]
        fn prop_random_instances_respect_proposition_13(
            coords in prop::collection::vec((0.0f64..50.0, 0.0f64..50.0, 0.2f64..5.0, 0.0f64..std::f64::consts::TAU), 1..35),
            delta in 0.3f64..3.0,
        ) {
            let links: Vec<Link> = coords
                .iter()
                .map(|&(x, y, len, ang)| {
                    link(x, y, x + len * ang.cos(), y + len * ang.sin())
                })
                .collect();
            let m = ProtocolModel::new(links, delta);
            let built = m.build();
            prop_assert!(
                built.certified_rho.rho <= m.rho_bound() + 1e-9,
                "certified rho {} exceeds Proposition 13 bound {}",
                built.certified_rho.rho,
                m.rho_bound()
            );
        }

        #[test]
        fn prop_conflict_relation_is_symmetric(
            coords in prop::collection::vec((0.0f64..20.0, 0.0f64..20.0, 0.2f64..3.0, 0.0f64..std::f64::consts::TAU), 2..20),
            delta in 0.3f64..3.0,
        ) {
            let links: Vec<Link> = coords
                .iter()
                .map(|&(x, y, len, ang)| link(x, y, x + len * ang.cos(), y + len * ang.sin()))
                .collect();
            let m = ProtocolModel::new(links, delta);
            for i in 0..m.links().len() {
                for j in 0..m.links().len() {
                    prop_assert_eq!(m.conflicts(i, j), m.conflicts(j, i));
                }
            }
        }
    }
}
