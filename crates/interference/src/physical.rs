//! The physical (SINR) model with fixed transmission powers
//! (Section 4.3, Proposition 15).
//!
//! Links are embedded in a metric space (here: a [`LinkMetric`], i.e. the
//! matrix of sender-to-receiver distances). A set `M` of links can share a
//! channel iff every link's signal-to-interference-plus-noise ratio clears
//! the threshold `β`:
//!
//! ```text
//!   p_i / d(s_i, r_i)^α  ≥  β · ( Σ_{j ∈ M, j ≠ i} p_j / d(s_j, r_i)^α  +  ν )
//! ```
//!
//! Proposition 15 shows these constraints can be represented by an
//! edge-weighted conflict graph whose weights are (up to a `1/(1+ε)`
//! technicality) the *affectance* values of Kesselheim–Vöcking, and that for
//! monotone power assignments (uniform, linear, and everything in between)
//! the length-descending ordering certifies ρ = O(log n).

use crate::model::WeightedInterferenceModel;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use ssa_conflict_graph::{VertexOrdering, WeightedConflictGraph};
use ssa_geometry::LinkMetric;

/// Parameters of the SINR constraint.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SinrParameters {
    /// Path-loss exponent α (typically between 2 and 6).
    pub alpha: f64,
    /// SINR threshold β > 0.
    pub beta: f64,
    /// Ambient noise ν ≥ 0.
    pub noise: f64,
}

impl Default for SinrParameters {
    fn default() -> Self {
        SinrParameters {
            alpha: 3.0,
            beta: 1.0,
            noise: 0.0,
        }
    }
}

impl SinrParameters {
    /// Creates a parameter set.
    ///
    /// # Panics
    /// Panics if `alpha <= 0`, `beta <= 0` or `noise < 0`.
    pub fn new(alpha: f64, beta: f64, noise: f64) -> Self {
        assert!(alpha > 0.0, "alpha must be positive");
        assert!(beta > 0.0, "beta must be positive");
        assert!(noise >= 0.0, "noise must be non-negative");
        SinrParameters { alpha, beta, noise }
    }
}

/// Power assignment schemes for the fixed-power physical model.
///
/// The first three are *monotone* in the sense of Section 4.3 (longer links
/// get at least as much power, but at most proportionally to `d^α`), which
/// is the condition under which Proposition 15 certifies ρ = O(log n).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum PowerAssignment {
    /// Every sender transmits at power 1.
    Uniform,
    /// `p(ℓ) = d(ℓ)^α` — the received signal strength is the same for every
    /// link.
    Linear,
    /// `p(ℓ) = d(ℓ)^(α/2)` — the "mean"/square-root scheme, also monotone.
    Mean,
    /// Explicit per-link powers (not necessarily monotone; Proposition 15's
    /// bound is then not guaranteed).
    Custom(Vec<f64>),
}

impl PowerAssignment {
    /// Resolves the scheme into per-link powers for the given metric.
    ///
    /// # Panics
    /// Panics if a custom vector has the wrong length or non-positive
    /// entries.
    pub fn powers(&self, metric: &LinkMetric, params: &SinrParameters) -> Vec<f64> {
        let n = metric.num_links();
        match self {
            PowerAssignment::Uniform => vec![1.0; n],
            PowerAssignment::Linear => (0..n)
                .map(|i| metric.length(i).powf(params.alpha))
                .collect(),
            PowerAssignment::Mean => (0..n)
                .map(|i| metric.length(i).powf(params.alpha / 2.0))
                .collect(),
            PowerAssignment::Custom(p) => {
                assert_eq!(p.len(), n, "custom power vector has wrong length");
                assert!(p.iter().all(|&x| x > 0.0), "powers must be positive");
                p.clone()
            }
        }
    }

    /// Short human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            PowerAssignment::Uniform => "uniform",
            PowerAssignment::Linear => "linear",
            PowerAssignment::Mean => "mean",
            PowerAssignment::Custom(_) => "custom",
        }
    }
}

/// The physical model with fixed transmission powers.
#[derive(Clone, Debug)]
pub struct PhysicalModel {
    metric: LinkMetric,
    params: SinrParameters,
    powers: Vec<f64>,
    power_name: &'static str,
}

impl PhysicalModel {
    /// Creates the model from a link metric, SINR parameters and a power
    /// scheme.
    pub fn new(metric: LinkMetric, params: SinrParameters, assignment: &PowerAssignment) -> Self {
        let powers = assignment.powers(&metric, &params);
        PhysicalModel {
            metric,
            params,
            powers,
            power_name: assignment.name(),
        }
    }

    /// Number of links (bidders).
    pub fn num_links(&self) -> usize {
        self.metric.num_links()
    }

    /// The SINR parameters.
    pub fn params(&self) -> &SinrParameters {
        &self.params
    }

    /// The resolved per-link powers.
    pub fn powers(&self) -> &[f64] {
        &self.powers
    }

    /// The link metric.
    pub fn metric(&self) -> &LinkMetric {
        &self.metric
    }

    /// Received signal strength of link `i` at its own receiver.
    pub fn signal(&self, i: usize) -> f64 {
        self.powers[i] / self.metric.length(i).powf(self.params.alpha)
    }

    /// Interference that link `j`'s sender creates at link `i`'s receiver.
    pub fn interference(&self, j: usize, i: usize) -> f64 {
        self.powers[j] / self.metric.sender_to_receiver(j, i).powf(self.params.alpha)
    }

    /// Checks the SINR constraint for every member of `set` when all members
    /// transmit simultaneously on one channel.
    pub fn is_feasible_set(&self, set: &[usize]) -> bool {
        set.iter().all(|&i| {
            let interference: f64 = set
                .iter()
                .filter(|&&j| j != i)
                .map(|&j| self.interference(j, i))
                .sum();
            self.signal(i) >= self.params.beta * (interference + self.params.noise)
        })
    }

    /// The slack constant ε of Proposition 15 for this instance.
    ///
    /// The paper chooses `ε = (β/2) · min_{ℓ,ℓ'} d(ℓ)^α / d(s_{ℓ'}, r_ℓ)^α`,
    /// which only serves to turn the non-strict SINR inequality into the
    /// strict inequality of the weighted independent-set definition.
    pub fn epsilon(&self) -> f64 {
        let n = self.num_links();
        let alpha = self.params.alpha;
        // min-reduce over all ordered pairs, one receiver row per parallel
        // task
        let row_minima: Vec<f64> = (0..n)
            .into_par_iter()
            .map(|i| {
                let signal_dist = self.metric.length(i).powf(alpha);
                let mut row_min = f64::INFINITY;
                for j in 0..n {
                    if i == j {
                        continue;
                    }
                    let ratio = signal_dist / self.metric.sender_to_receiver(j, i).powf(alpha);
                    if ratio > 0.0 && ratio.is_finite() {
                        row_min = row_min.min(ratio);
                    }
                }
                row_min
            })
            .collect();
        let mut min_ratio = row_minima.into_iter().fold(f64::INFINITY, f64::min);
        if !min_ratio.is_finite() {
            min_ratio = 1.0;
        }
        (self.params.beta / 2.0 * min_ratio).max(1e-12)
    }

    /// The conflict-graph edge weight `w(ℓ_j → ℓ_i)` of Proposition 15.
    pub fn weight(&self, j: usize, i: usize, epsilon: f64) -> f64 {
        if i == j {
            return 0.0;
        }
        let beta_eff = self.params.beta / (1.0 + epsilon);
        let denominator = self.signal(i) - beta_eff * self.params.noise;
        if denominator <= 0.0 {
            // the link cannot even overcome noise: it conflicts with everyone
            return 1.0;
        }
        (beta_eff * self.interference(j, i) / denominator).min(1.0)
    }

    /// Builds the edge-weighted conflict graph of Proposition 15.
    ///
    /// The affectance matrix is constructed one *receiver* row at a time in
    /// parallel: row `i` holds the weights `w(ℓ_j → ℓ_i)` of every
    /// interfering sender `j`, which depend only on immutable model data.
    pub fn conflict_graph(&self) -> WeightedConflictGraph {
        let n = self.num_links();
        let eps = self.epsilon();
        WeightedConflictGraph::from_incoming_rows(n, |i| {
            (0..n)
                .filter(|&j| j != i)
                .map(|j| (j, self.weight(j, i, eps)))
                .filter(|&(_, w)| w > 0.0)
                .collect()
        })
    }

    /// The length-descending ordering of Proposition 15 / Theorem 17
    /// (longest links first).
    pub fn ordering(&self) -> VertexOrdering {
        VertexOrdering::by_key_descending(self.num_links(), |v| self.metric.length(v))
    }

    /// Builds the full weighted interference model.
    pub fn build(&self) -> WeightedInterferenceModel {
        WeightedInterferenceModel::new(
            format!(
                "physical(alpha={},beta={},power={},n={})",
                self.params.alpha,
                self.params.beta,
                self.power_name,
                self.num_links()
            ),
            self.conflict_graph(),
            self.ordering(),
            None,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use ssa_geometry::{Link, Point2D};

    fn chain_links(n: usize, length: f64, gap: f64) -> Vec<Link> {
        (0..n)
            .map(|i| {
                let base = i as f64 * (length + gap);
                Link::new(Point2D::new(base, 0.0), Point2D::new(base + length, 0.0))
            })
            .collect()
    }

    fn model(links: &[Link], params: SinrParameters, power: PowerAssignment) -> PhysicalModel {
        PhysicalModel::new(LinkMetric::from_links(links), params, &power)
    }

    #[test]
    fn single_link_is_feasible_without_noise() {
        let m = model(
            &chain_links(1, 1.0, 0.0),
            SinrParameters::new(3.0, 1.0, 0.0),
            PowerAssignment::Uniform,
        );
        assert!(m.is_feasible_set(&[0]));
    }

    #[test]
    fn single_link_can_be_drowned_by_noise() {
        // signal = 1 / 1^3 = 1; beta * noise = 2 -> infeasible
        let m = model(
            &chain_links(1, 1.0, 0.0),
            SinrParameters::new(3.0, 1.0, 2.0),
            PowerAssignment::Uniform,
        );
        assert!(!m.is_feasible_set(&[0]));
        // the conflict-graph weight machinery marks such a link as
        // conflicting with everything
        let m2 = model(
            &chain_links(2, 1.0, 100.0),
            SinrParameters::new(3.0, 1.0, 2.0),
            PowerAssignment::Uniform,
        );
        let eps = m2.epsilon();
        assert_eq!(m2.weight(1, 0, eps), 1.0);
    }

    #[test]
    fn nearby_identical_links_interfere() {
        // two unit links right next to each other: interference ~ signal,
        // with beta = 1 the pair is infeasible
        let links = chain_links(2, 1.0, 0.2);
        let m = model(
            &links,
            SinrParameters::new(3.0, 1.0, 0.0),
            PowerAssignment::Uniform,
        );
        assert!(m.is_feasible_set(&[0]));
        assert!(m.is_feasible_set(&[1]));
        assert!(!m.is_feasible_set(&[0, 1]));
    }

    #[test]
    fn far_apart_links_coexist() {
        let links = chain_links(3, 1.0, 50.0);
        let m = model(
            &links,
            SinrParameters::new(3.0, 1.0, 0.0),
            PowerAssignment::Uniform,
        );
        assert!(m.is_feasible_set(&[0, 1, 2]));
        // and they form an independent set of the weighted conflict graph
        let g = m.conflict_graph();
        assert!(g.is_independent(&[0, 1, 2]));
    }

    #[test]
    fn sinr_feasible_sets_are_independent_in_the_weighted_graph() {
        // Proposition 15 (one direction): every SINR-feasible set maps to an
        // independent set of the conflict graph.
        let links = vec![
            Link::new(Point2D::new(0.0, 0.0), Point2D::new(1.0, 0.0)),
            Link::new(Point2D::new(8.0, 1.0), Point2D::new(9.5, 1.0)),
            Link::new(Point2D::new(3.0, 7.0), Point2D::new(3.0, 8.0)),
            Link::new(Point2D::new(20.0, 0.0), Point2D::new(22.0, 0.0)),
        ];
        for power in [
            PowerAssignment::Uniform,
            PowerAssignment::Linear,
            PowerAssignment::Mean,
        ] {
            let m = model(&links, SinrParameters::new(3.0, 1.5, 0.1), power);
            let g = m.conflict_graph();
            for mask in 0u32..16 {
                let set: Vec<usize> = (0..4).filter(|&i| mask & (1 << i) != 0).collect();
                if m.is_feasible_set(&set) {
                    assert!(
                        g.is_independent(&set),
                        "SINR-feasible set {set:?} must be independent (power {})",
                        m.power_name
                    );
                }
            }
        }
    }

    #[test]
    fn independent_sets_satisfy_relaxed_sinr() {
        // The converse direction with the 1/(1+eps) slack: an independent set
        // satisfies the SINR constraint with threshold beta/(1+eps).
        let links = vec![
            Link::new(Point2D::new(0.0, 0.0), Point2D::new(1.0, 0.0)),
            Link::new(Point2D::new(6.0, 0.0), Point2D::new(7.2, 0.0)),
            Link::new(Point2D::new(0.0, 9.0), Point2D::new(0.0, 10.5)),
        ];
        let params = SinrParameters::new(3.0, 1.0, 0.05);
        let m = model(&links, params, PowerAssignment::Uniform);
        let g = m.conflict_graph();
        let eps = m.epsilon();
        let beta_relaxed = params.beta / (1.0 + eps);
        for mask in 0u32..8 {
            let set: Vec<usize> = (0..3).filter(|&i| mask & (1 << i) != 0).collect();
            if g.is_independent(&set) {
                for &i in &set {
                    let interference: f64 = set
                        .iter()
                        .filter(|&&j| j != i)
                        .map(|&j| m.interference(j, i))
                        .sum();
                    assert!(
                        m.signal(i) >= beta_relaxed * (interference + params.noise) - 1e-9,
                        "independent set {set:?} violates even the relaxed SINR at link {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn linear_powers_equalize_received_signal() {
        let links = chain_links(3, 2.0, 10.0);
        let m = model(
            &links,
            SinrParameters::new(3.0, 1.0, 0.0),
            PowerAssignment::Linear,
        );
        let s0 = m.signal(0);
        for i in 1..3 {
            assert!((m.signal(i) - s0).abs() < 1e-9);
        }
    }

    #[test]
    fn ordering_puts_longest_link_first() {
        let links = vec![
            Link::new(Point2D::new(0.0, 0.0), Point2D::new(1.0, 0.0)),
            Link::new(Point2D::new(10.0, 0.0), Point2D::new(14.0, 0.0)),
            Link::new(Point2D::new(20.0, 0.0), Point2D::new(22.0, 0.0)),
        ];
        let m = model(&links, SinrParameters::default(), PowerAssignment::Uniform);
        assert_eq!(m.ordering().as_order(), &[1, 2, 0]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(20))]

        #[test]
        fn prop_rho_stays_moderate_for_monotone_powers(
            coords in prop::collection::vec((0.0f64..80.0, 0.0f64..80.0, 0.5f64..4.0, 0.0f64..std::f64::consts::TAU), 2..30),
            uniform in prop::bool::ANY,
        ) {
            let links: Vec<Link> = coords
                .iter()
                .map(|&(x, y, len, ang)| {
                    Link::new(Point2D::new(x, y), Point2D::new(x + len * ang.cos(), y + len * ang.sin()))
                })
                .collect();
            let power = if uniform { PowerAssignment::Uniform } else { PowerAssignment::Linear };
            let m = model(&links, SinrParameters::new(3.0, 1.0, 0.0), power);
            let built = m.build();
            // Proposition 15: rho = O(log n). The hidden constant depends on
            // alpha and beta; we assert a generous envelope that still
            // distinguishes O(log n) from linear growth.
            let n = links.len() as f64;
            let envelope = 8.0 * (n.log2() + 2.0);
            prop_assert!(
                built.certified_rho.rho <= envelope,
                "rho {} above O(log n) envelope {} for n = {}",
                built.certified_rho.rho,
                envelope,
                n
            );
        }

        #[test]
        fn prop_feasible_implies_independent(
            coords in prop::collection::vec((0.0f64..40.0, 0.0f64..40.0, 0.5f64..3.0, 0.0f64..std::f64::consts::TAU), 2..10),
        ) {
            let links: Vec<Link> = coords
                .iter()
                .map(|&(x, y, len, ang)| {
                    Link::new(Point2D::new(x, y), Point2D::new(x + len * ang.cos(), y + len * ang.sin()))
                })
                .collect();
            let m = model(&links, SinrParameters::new(3.0, 1.0, 0.01), PowerAssignment::Uniform);
            let g = m.conflict_graph();
            let n = links.len();
            for mask in 0u32..(1u32 << n.min(8)) {
                let set: Vec<usize> = (0..n.min(8)).filter(|&i| mask & (1 << i) != 0).collect();
                if m.is_feasible_set(&set) {
                    prop_assert!(g.is_independent(&set));
                }
            }
        }
    }
}
