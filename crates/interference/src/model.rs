//! Common output types of the interference models.
//!
//! The auction algorithms in `ssa-core` are model-agnostic: they consume a
//! conflict graph, a vertex ordering and a value of ρ. The structs in this
//! module bundle exactly those three pieces (plus provenance information
//! useful for the experiment reports).

use serde::{Deserialize, Serialize};
use ssa_conflict_graph::{
    certified_rho, certified_rho_weighted, ConflictGraph, InductiveBound, VertexOrdering,
    WeightedConflictGraph,
};

/// A binary (unweighted) interference model instantiated on a concrete set
/// of bidders.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BinaryInterferenceModel {
    /// Human-readable model name (e.g. `"protocol(delta=1)"`).
    pub name: String,
    /// The conflict graph over the bidders.
    pub graph: ConflictGraph,
    /// The ordering that certifies the inductive independence number.
    pub ordering: VertexOrdering,
    /// The closed-form bound on ρ the model guarantees (e.g. 5 for disk
    /// graphs); `None` if the model offers no closed form.
    pub theoretical_rho: Option<f64>,
    /// The ρ certified for `ordering` on this concrete instance.
    pub certified_rho: InductiveBound,
}

impl BinaryInterferenceModel {
    /// Builds a model from its parts, certifying ρ for the given ordering.
    pub fn new(
        name: impl Into<String>,
        graph: ConflictGraph,
        ordering: VertexOrdering,
        theoretical_rho: Option<f64>,
    ) -> Self {
        let certified = certified_rho(&graph, &ordering);
        BinaryInterferenceModel {
            name: name.into(),
            graph,
            ordering,
            theoretical_rho,
            certified_rho: certified,
        }
    }

    /// Number of bidders.
    pub fn num_bidders(&self) -> usize {
        self.graph.num_vertices()
    }

    /// The value of ρ the LP should use: the certified value, clamped to at
    /// least 1 so the relaxation never becomes tighter than the paper's.
    pub fn rho_for_lp(&self) -> f64 {
        self.certified_rho.rho_ceil()
    }
}

/// An edge-weighted interference model instantiated on a concrete set of
/// bidders (the physical model and its power-control variant).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WeightedInterferenceModel {
    /// Human-readable model name (e.g. `"physical(alpha=3,uniform)"`).
    pub name: String,
    /// The edge-weighted conflict graph over the bidders.
    pub graph: WeightedConflictGraph,
    /// The ordering that certifies the inductive independence number.
    pub ordering: VertexOrdering,
    /// The asymptotic bound on ρ the model guarantees (evaluated for this
    /// instance size), if any.
    pub theoretical_rho: Option<f64>,
    /// The ρ certified for `ordering` on this concrete instance.
    pub certified_rho: InductiveBound,
}

impl WeightedInterferenceModel {
    /// Builds a model from its parts, certifying ρ for the given ordering.
    pub fn new(
        name: impl Into<String>,
        graph: WeightedConflictGraph,
        ordering: VertexOrdering,
        theoretical_rho: Option<f64>,
    ) -> Self {
        let certified = certified_rho_weighted(&graph, &ordering);
        WeightedInterferenceModel {
            name: name.into(),
            graph,
            ordering,
            theoretical_rho,
            certified_rho: certified,
        }
    }

    /// Number of bidders.
    pub fn num_bidders(&self) -> usize {
        self.graph.num_vertices()
    }

    /// The value of ρ the LP should use (certified value clamped to ≥ 1).
    pub fn rho_for_lp(&self) -> f64 {
        self.certified_rho.rho_ceil()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_model_certifies_rho_on_construction() {
        let g = ConflictGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let m = BinaryInterferenceModel::new("path", g, VertexOrdering::identity(4), Some(2.0));
        assert_eq!(m.num_bidders(), 4);
        assert_eq!(m.certified_rho.rho, 1.0);
        assert_eq!(m.rho_for_lp(), 1.0);
    }

    #[test]
    fn weighted_model_certifies_rho_on_construction() {
        let mut g = WeightedConflictGraph::new(3);
        g.set_weight(0, 2, 0.4);
        g.set_weight(1, 2, 0.4);
        let m = WeightedInterferenceModel::new("toy", g, VertexOrdering::identity(3), None);
        assert!((m.certified_rho.rho - 0.8).abs() < 1e-9);
        assert_eq!(m.rho_for_lp(), 1.0, "clamped to 1 for the LP");
    }
}
