//! Total vertex orderings `π` and backward neighborhoods `Γπ(v)`.
//!
//! The inductive independence number (Definitions 1 and 2 of the paper) is a
//! property of the graph *together with* an ordering: it bounds the size (or
//! weight) of any independent set inside the backward neighborhood of each
//! vertex. The LP relaxation and the rounding algorithms only ever need the
//! ordering and the backward neighborhoods, which is what this module
//! provides.

use crate::unweighted::ConflictGraph;
use crate::weighted::WeightedConflictGraph;
use crate::VertexId;
use serde::{Deserialize, Serialize};

/// A total ordering `π` over the vertices `0..n`.
///
/// `π(v)` is the *position* of vertex `v`; position 0 comes first. The
/// interference-model crates construct orderings with provable ρ bounds
/// (e.g. by decreasing disk radius or decreasing link length); generic
/// heuristics live in [`crate::inductive`].
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct VertexOrdering {
    /// position[v] = π(v)
    position: Vec<usize>,
    /// order[i] = the vertex at position i (inverse of `position`)
    order: Vec<VertexId>,
}

impl VertexOrdering {
    /// The identity ordering `π(v) = v`.
    pub fn identity(n: usize) -> Self {
        VertexOrdering {
            position: (0..n).collect(),
            order: (0..n).collect(),
        }
    }

    /// Builds an ordering from the sequence of vertices listed first to last.
    ///
    /// # Panics
    /// Panics if `order` is not a permutation of `0..order.len()`.
    pub fn from_order(order: Vec<VertexId>) -> Self {
        let n = order.len();
        let mut position = vec![usize::MAX; n];
        for (pos, &v) in order.iter().enumerate() {
            assert!(v < n, "vertex {v} out of range in ordering of length {n}");
            assert_eq!(
                position[v],
                usize::MAX,
                "vertex {v} appears twice in ordering"
            );
            position[v] = pos;
        }
        VertexOrdering { position, order }
    }

    /// Builds an ordering by sorting vertices by a key, smallest key first.
    ///
    /// Ties are broken by vertex id, making the result deterministic.
    pub fn by_key_ascending<K: PartialOrd>(n: usize, key: impl Fn(VertexId) -> K) -> Self {
        let mut order: Vec<VertexId> = (0..n).collect();
        order.sort_by(|&a, &b| {
            key(a)
                .partial_cmp(&key(b))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        Self::from_order(order)
    }

    /// Builds an ordering by sorting vertices by a key, largest key first.
    pub fn by_key_descending<K: PartialOrd>(n: usize, key: impl Fn(VertexId) -> K) -> Self {
        let mut order: Vec<VertexId> = (0..n).collect();
        order.sort_by(|&a, &b| {
            key(b)
                .partial_cmp(&key(a))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        Self::from_order(order)
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Returns `true` for the empty ordering.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Position `π(v)` of vertex `v`.
    pub fn position(&self, v: VertexId) -> usize {
        self.position[v]
    }

    /// The vertex at position `pos`.
    pub fn vertex_at(&self, pos: usize) -> VertexId {
        self.order[pos]
    }

    /// Vertices in order, first to last.
    pub fn as_order(&self) -> &[VertexId] {
        &self.order
    }

    /// Positions indexed by vertex.
    pub fn as_positions(&self) -> &[usize] {
        &self.position
    }

    /// Returns `true` if `u` precedes `v` in the ordering.
    pub fn precedes(&self, u: VertexId, v: VertexId) -> bool {
        self.position[u] < self.position[v]
    }

    /// Backward neighborhood `Γπ(v)` in an unweighted conflict graph: the
    /// neighbors of `v` that precede `v`.
    pub fn backward_neighborhood(&self, g: &ConflictGraph, v: VertexId) -> Vec<VertexId> {
        g.neighbors(v)
            .iter()
            .copied()
            .filter(|&u| self.precedes(u, v))
            .collect()
    }

    /// Weighted backward neighborhood of `v`: all vertices `u` preceding `v`
    /// with `w̄(u, v) > 0`, together with that symmetrized weight.
    pub fn weighted_backward_neighborhood(
        &self,
        g: &WeightedConflictGraph,
        v: VertexId,
    ) -> Vec<(VertexId, f64)> {
        g.interacting_neighbors(v)
            .into_iter()
            .filter(|&u| self.precedes(u, v))
            .map(|u| (u, g.symmetric_weight(u, v)))
            .collect()
    }

    /// Returns the reversed ordering.
    pub fn reversed(&self) -> Self {
        let order: Vec<VertexId> = self.order.iter().rev().copied().collect();
        Self::from_order(order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identity_ordering() {
        let o = VertexOrdering::identity(4);
        assert_eq!(o.len(), 4);
        for v in 0..4 {
            assert_eq!(o.position(v), v);
            assert_eq!(o.vertex_at(v), v);
        }
        assert!(o.precedes(0, 3));
        assert!(!o.precedes(3, 0));
    }

    #[test]
    fn from_order_roundtrip() {
        let o = VertexOrdering::from_order(vec![2, 0, 3, 1]);
        assert_eq!(o.position(2), 0);
        assert_eq!(o.position(0), 1);
        assert_eq!(o.position(3), 2);
        assert_eq!(o.position(1), 3);
        assert_eq!(o.vertex_at(0), 2);
        assert!(o.precedes(2, 1));
    }

    #[test]
    #[should_panic]
    fn duplicate_vertex_panics() {
        VertexOrdering::from_order(vec![0, 0, 1]);
    }

    #[test]
    fn by_key_orderings() {
        let radii = [3.0, 1.0, 2.0, 5.0];
        let asc = VertexOrdering::by_key_ascending(4, |v| radii[v]);
        assert_eq!(asc.as_order(), &[1, 2, 0, 3]);
        let desc = VertexOrdering::by_key_descending(4, |v| radii[v]);
        assert_eq!(desc.as_order(), &[3, 0, 2, 1]);
    }

    #[test]
    fn ties_broken_by_vertex_id() {
        let keys = [1.0, 1.0, 0.5];
        let asc = VertexOrdering::by_key_ascending(3, |v| keys[v]);
        assert_eq!(asc.as_order(), &[2, 0, 1]);
        let desc = VertexOrdering::by_key_descending(3, |v| keys[v]);
        assert_eq!(desc.as_order(), &[0, 1, 2]);
    }

    #[test]
    fn backward_neighborhood_in_path() {
        let g = ConflictGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let o = VertexOrdering::identity(4);
        assert_eq!(o.backward_neighborhood(&g, 0), Vec::<usize>::new());
        assert_eq!(o.backward_neighborhood(&g, 2), vec![1]);
        let rev = o.reversed();
        assert_eq!(rev.backward_neighborhood(&g, 2), vec![3]);
    }

    #[test]
    fn weighted_backward_neighborhood_uses_symmetric_weights() {
        let mut g = WeightedConflictGraph::new(3);
        g.set_weight(0, 2, 0.4);
        g.set_weight(2, 0, 0.1);
        g.set_weight(1, 2, 0.2);
        let o = VertexOrdering::identity(3);
        let bn = o.weighted_backward_neighborhood(&g, 2);
        assert_eq!(bn.len(), 2);
        let w0 = bn.iter().find(|&&(u, _)| u == 0).unwrap().1;
        assert!((w0 - 0.5).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn prop_position_and_order_are_inverse(perm in prop::collection::vec(0usize..20, 1..20)) {
            // turn an arbitrary vector into a permutation by ranking
            let n = perm.len();
            let mut idx: Vec<usize> = (0..n).collect();
            idx.sort_by_key(|&i| (perm[i], i));
            let o = VertexOrdering::from_order(idx);
            for v in 0..n {
                prop_assert_eq!(o.vertex_at(o.position(v)), v);
            }
            for p in 0..n {
                prop_assert_eq!(o.position(o.vertex_at(p)), p);
            }
        }

        #[test]
        fn prop_reversed_flips_precedence(perm in prop::collection::vec(0usize..20, 2..20)) {
            let n = perm.len();
            let mut idx: Vec<usize> = (0..n).collect();
            idx.sort_by_key(|&i| (perm[i], i));
            let o = VertexOrdering::from_order(idx);
            let r = o.reversed();
            for u in 0..n {
                for v in 0..n {
                    if u != v {
                        prop_assert_eq!(o.precedes(u, v), r.precedes(v, u));
                    }
                }
            }
        }
    }
}
