//! Edge-weighted conflict graphs (Section 3 of the paper).
//!
//! Between every ordered pair of vertices `(u, v)` there is a non-negative
//! weight `w(u, v)` describing how much interference `u` inflicts on `v`.
//! A set `M` is **independent** iff for every `v ∈ M` the total incoming
//! weight `Σ_{u ∈ M, u ≠ v} w(u, v)` is strictly below 1.
//!
//! The rounding analysis of the paper works with the *symmetrized* weights
//! `w̄(u, v) = w(u, v) + w(v, u)`, which this module exposes as
//! [`WeightedConflictGraph::symmetric_weight`].

use crate::unweighted::ConflictGraph;
use crate::VertexId;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// An edge-weighted conflict graph over vertices `0..n` with directed,
/// non-negative weights.
///
/// Weights are stored sparsely as per-source adjacency lists `(target,
/// weight)`; a missing entry means weight 0. Entries with weight 0 are never
/// stored.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WeightedConflictGraph {
    n: usize,
    /// out[u] = list of (v, w(u, v)) with w > 0, sorted by v.
    out: Vec<Vec<(VertexId, f64)>>,
    /// incoming[v] = list of (u, w(u, v)) with w > 0, sorted by u.
    incoming: Vec<Vec<(VertexId, f64)>>,
}

impl WeightedConflictGraph {
    /// Creates a weighted conflict graph with `n` vertices and all weights 0.
    pub fn new(n: usize) -> Self {
        WeightedConflictGraph {
            n,
            out: vec![Vec::new(); n],
            incoming: vec![Vec::new(); n],
        }
    }

    /// Builds a weighted graph by evaluating an incoming-weight-row function
    /// for every vertex **in parallel**.
    ///
    /// `row(v)` returns the list of `(u, w(u, v))` pairs with positive
    /// weight (self-pairs and non-positive weights are dropped; rows need
    /// not be sorted). This replaces per-entry [`set_weight`] calls — each
    /// of which binary-searches and shifts two sorted vectors — with one
    /// parallel row computation plus an `O(nnz)` transpose, and is the bulk
    /// path used by the physical (SINR) affectance matrix.
    ///
    /// [`set_weight`]: WeightedConflictGraph::set_weight
    ///
    /// # Panics
    /// Panics if a row references a vertex `>= n` or contains a NaN weight.
    pub fn from_incoming_rows(
        n: usize,
        row: impl Fn(VertexId) -> Vec<(VertexId, f64)> + Sync,
    ) -> Self {
        let mut incoming: Vec<Vec<(VertexId, f64)>> = (0..n)
            .into_par_iter()
            .map(|v| {
                let mut entries: Vec<(VertexId, f64)> = row(v)
                    .into_iter()
                    .filter(|&(u, w)| {
                        assert!(!w.is_nan(), "weight must not be NaN");
                        u != v && w > 0.0
                    })
                    .collect();
                entries.sort_unstable_by_key(|&(u, _)| u);
                entries.dedup_by(|a, b| {
                    if a.0 == b.0 {
                        b.1 += a.1;
                        true
                    } else {
                        false
                    }
                });
                entries
            })
            .collect();
        for entries in &incoming {
            for &(u, _) in entries {
                assert!(
                    u < n,
                    "incoming row references vertex {u} out of bounds (n={n})"
                );
            }
        }
        // Transpose: iterating v in ascending order keeps each out-list
        // sorted by target without a second sort.
        let mut out: Vec<Vec<(VertexId, f64)>> = vec![Vec::new(); n];
        for (v, entries) in incoming.iter_mut().enumerate() {
            for &mut (u, w) in entries {
                out[u].push((v, w));
            }
        }
        WeightedConflictGraph { n, out, incoming }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of stored (non-zero, directed) weight entries.
    pub fn num_weighted_pairs(&self) -> usize {
        self.out.iter().map(Vec::len).sum()
    }

    /// Sets the directed weight `w(u, v)`.
    ///
    /// Weights are clamped below at 0; setting a weight to 0 removes the
    /// entry. Self-weights (`u == v`) are ignored.
    ///
    /// # Panics
    /// Panics if `u >= n`, `v >= n`, or the weight is NaN.
    pub fn set_weight(&mut self, u: VertexId, v: VertexId, w: f64) {
        assert!(
            u < self.n && v < self.n,
            "weight ({u},{v}) out of bounds (n={})",
            self.n
        );
        assert!(!w.is_nan(), "weight must not be NaN");
        if u == v {
            return;
        }
        let w = w.max(0.0);
        Self::upsert(&mut self.out[u], v, w);
        Self::upsert(&mut self.incoming[v], u, w);
    }

    fn upsert(list: &mut Vec<(VertexId, f64)>, key: VertexId, w: f64) {
        match list.binary_search_by_key(&key, |&(k, _)| k) {
            Ok(pos) => {
                if w == 0.0 {
                    list.remove(pos);
                } else {
                    list[pos].1 = w;
                }
            }
            Err(pos) => {
                if w > 0.0 {
                    list.insert(pos, (key, w));
                }
            }
        }
    }

    /// Returns the directed weight `w(u, v)` (0 if unset).
    pub fn weight(&self, u: VertexId, v: VertexId) -> f64 {
        if u >= self.n || v >= self.n || u == v {
            return 0.0;
        }
        match self.out[u].binary_search_by_key(&v, |&(k, _)| k) {
            Ok(pos) => self.out[u][pos].1,
            Err(_) => 0.0,
        }
    }

    /// Returns the symmetrized weight `w̄(u, v) = w(u, v) + w(v, u)` used by
    /// Definition 2 and the rounding algorithms.
    pub fn symmetric_weight(&self, u: VertexId, v: VertexId) -> f64 {
        self.weight(u, v) + self.weight(v, u)
    }

    /// Outgoing weighted neighbors of `u`: pairs `(v, w(u, v))` with positive
    /// weight, sorted by `v`.
    pub fn out_neighbors(&self, u: VertexId) -> &[(VertexId, f64)] {
        &self.out[u]
    }

    /// Incoming weighted neighbors of `v`: pairs `(u, w(u, v))` with positive
    /// weight, sorted by `u`.
    pub fn in_neighbors(&self, v: VertexId) -> &[(VertexId, f64)] {
        &self.incoming[v]
    }

    /// All vertices `u` with `w̄(u, v) > 0`, i.e. that interact with `v` in
    /// either direction. Sorted and deduplicated.
    pub fn interacting_neighbors(&self, v: VertexId) -> Vec<VertexId> {
        let mut ns: Vec<VertexId> = self.out[v]
            .iter()
            .map(|&(u, _)| u)
            .chain(self.incoming[v].iter().map(|&(u, _)| u))
            .collect();
        ns.sort_unstable();
        ns.dedup();
        ns
    }

    /// Total incoming weight into `v` from the members of `set` (excluding
    /// `v` itself).
    pub fn incoming_weight_from(&self, v: VertexId, set: &[VertexId]) -> f64 {
        set.iter()
            .filter(|&&u| u != v)
            .map(|&u| self.weight(u, v))
            .sum()
    }

    /// Returns `true` if `set` is independent: every member receives total
    /// incoming weight strictly below 1 from the other members.
    pub fn is_independent(&self, set: &[VertexId]) -> bool {
        set.iter().all(|&v| self.incoming_weight_from(v, set) < 1.0)
    }

    /// Converts an unweighted conflict graph to a weighted one in which each
    /// edge `{u, v}` gets weight 1 in both directions.
    ///
    /// With these weights a set is independent in the weighted sense iff it
    /// is independent in the unweighted sense, so the weighted machinery
    /// strictly generalizes the unweighted one.
    pub fn from_unweighted(g: &ConflictGraph) -> Self {
        let mut w = WeightedConflictGraph::new(g.num_vertices());
        for (u, v) in g.edges() {
            w.set_weight(u, v, 1.0);
            w.set_weight(v, u, 1.0);
        }
        w
    }

    /// Returns a copy of the graph with one additional vertex (id `n`) and
    /// the given directed weights to/from existing vertices — a bidder
    /// arriving in a dynamic market.
    ///
    /// # Panics
    /// Panics if a listed endpoint is not an existing vertex or a weight is
    /// NaN.
    pub fn with_appended_vertex(
        &self,
        outgoing: &[(VertexId, f64)],
        incoming: &[(VertexId, f64)],
    ) -> WeightedConflictGraph {
        let n = self.n;
        let mut g = WeightedConflictGraph::new(n + 1);
        for u in 0..n {
            for &(v, w) in &self.out[u] {
                g.set_weight(u, v, w);
            }
        }
        for &(v, w) in outgoing {
            assert!(v < n, "new vertex's neighbor {v} out of bounds (n={n})");
            g.set_weight(n, v, w);
        }
        for &(u, w) in incoming {
            assert!(u < n, "new vertex's neighbor {u} out of bounds (n={n})");
            g.set_weight(u, n, w);
        }
        g
    }

    /// Returns a copy of the graph with vertex `v` removed; vertices above
    /// `v` shift down by one (a bidder leaving a dynamic market).
    ///
    /// # Panics
    /// Panics if `v` is not a vertex.
    pub fn without_vertex(&self, v: VertexId) -> WeightedConflictGraph {
        assert!(v < self.n, "vertex {v} out of bounds (n={})", self.n);
        let map = |u: VertexId| if u > v { u - 1 } else { u };
        let mut g = WeightedConflictGraph::new(self.n - 1);
        for u in 0..self.n {
            if u == v {
                continue;
            }
            for &(t, w) in &self.out[u] {
                if t != v {
                    g.set_weight(map(u), map(t), w);
                }
            }
        }
        g
    }

    /// Thresholds the weighted graph into an unweighted conflict graph that
    /// contains an edge wherever the symmetrized weight reaches `threshold`.
    ///
    /// This is a lossy view; it is used by baselines that only understand
    /// binary conflicts.
    pub fn threshold_graph(&self, threshold: f64) -> ConflictGraph {
        let mut g = ConflictGraph::new(self.n);
        for u in 0..self.n {
            for &(v, _) in &self.out[u] {
                if self.symmetric_weight(u, v) >= threshold {
                    g.add_edge(u, v);
                }
            }
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn weights_default_to_zero() {
        let g = WeightedConflictGraph::new(4);
        assert_eq!(g.weight(0, 1), 0.0);
        assert_eq!(g.symmetric_weight(2, 3), 0.0);
        assert!(g.is_independent(&[0, 1, 2, 3]));
    }

    #[test]
    fn from_incoming_rows_matches_set_weight_construction() {
        let n = 5;
        let weight_of = |u: usize, v: usize| -> f64 {
            if u == v {
                0.0
            } else {
                ((u * 7 + v * 3) % 4) as f64 * 0.2
            }
        };
        let mut reference = WeightedConflictGraph::new(n);
        for u in 0..n {
            for v in 0..n {
                let w = weight_of(u, v);
                if u != v && w > 0.0 {
                    reference.set_weight(u, v, w);
                }
            }
        }
        let bulk = WeightedConflictGraph::from_incoming_rows(n, |v| {
            (0..n).map(|u| (u, weight_of(u, v))).collect()
        });
        assert_eq!(bulk.num_weighted_pairs(), reference.num_weighted_pairs());
        for u in 0..n {
            assert_eq!(
                bulk.out_neighbors(u),
                reference.out_neighbors(u),
                "out row {u}"
            );
            assert_eq!(
                bulk.in_neighbors(u),
                reference.in_neighbors(u),
                "in row {u}"
            );
            for v in 0..n {
                assert_eq!(bulk.weight(u, v), reference.weight(u, v));
            }
        }
    }

    #[test]
    fn from_incoming_rows_drops_self_and_nonpositive_and_merges_duplicates() {
        let g = WeightedConflictGraph::from_incoming_rows(3, |v| match v {
            0 => vec![(0, 5.0), (1, 0.0), (2, -1.0)], // all dropped
            1 => vec![(0, 0.3), (0, 0.2)],            // merged to 0.5
            _ => vec![(1, 0.7)],
        });
        assert_eq!(g.num_weighted_pairs(), 2);
        assert_eq!(g.weight(0, 1), 0.5);
        assert_eq!(g.weight(1, 2), 0.7);
        assert_eq!(g.weight(0, 0), 0.0);
        assert_eq!(g.in_neighbors(0), &[]);
    }

    #[test]
    fn set_and_get_directed_weights() {
        let mut g = WeightedConflictGraph::new(3);
        g.set_weight(0, 1, 0.4);
        g.set_weight(1, 0, 0.3);
        assert_eq!(g.weight(0, 1), 0.4);
        assert_eq!(g.weight(1, 0), 0.3);
        assert!((g.symmetric_weight(0, 1) - 0.7).abs() < 1e-12);
        assert!((g.symmetric_weight(1, 0) - 0.7).abs() < 1e-12);
        // overwrite
        g.set_weight(0, 1, 0.9);
        assert_eq!(g.weight(0, 1), 0.9);
        // remove by setting zero
        g.set_weight(0, 1, 0.0);
        assert_eq!(g.weight(0, 1), 0.0);
        assert_eq!(g.num_weighted_pairs(), 1);
    }

    #[test]
    fn self_weights_ignored() {
        let mut g = WeightedConflictGraph::new(2);
        g.set_weight(1, 1, 5.0);
        assert_eq!(g.weight(1, 1), 0.0);
        assert_eq!(g.num_weighted_pairs(), 0);
    }

    #[test]
    fn independence_threshold_is_strict() {
        let mut g = WeightedConflictGraph::new(3);
        // 0 and 1 together put exactly 1.0 onto 2 -> not independent
        g.set_weight(0, 2, 0.5);
        g.set_weight(1, 2, 0.5);
        assert!(!g.is_independent(&[0, 1, 2]));
        assert!(g.is_independent(&[0, 2]));
        assert!(g.is_independent(&[1, 2]));
        assert!(g.is_independent(&[0, 1]));
    }

    #[test]
    fn aggregation_of_many_weak_interferers() {
        // The motivating example of Section 3: many far-away devices, each
        // individually harmless, jointly exceed the interference budget.
        let mut g = WeightedConflictGraph::new(6);
        for u in 0..5 {
            g.set_weight(u, 5, 0.21);
        }
        assert!(g.is_independent(&[0, 1, 2, 3, 5])); // 4 * 0.21 = 0.84 < 1
        assert!(!g.is_independent(&[0, 1, 2, 3, 4, 5])); // 5 * 0.21 = 1.05 >= 1
    }

    #[test]
    fn from_unweighted_preserves_independence() {
        let g = ConflictGraph::from_edges(5, &[(0, 1), (1, 2), (3, 4)]);
        let w = WeightedConflictGraph::from_unweighted(&g);
        let sets: Vec<Vec<usize>> = vec![vec![0, 2, 3], vec![0, 1], vec![2, 4], vec![1, 3]];
        for s in sets {
            assert_eq!(g.is_independent(&s), w.is_independent(&s), "set {s:?}");
        }
    }

    #[test]
    fn threshold_graph_extracts_strong_conflicts() {
        let mut g = WeightedConflictGraph::new(3);
        g.set_weight(0, 1, 0.6);
        g.set_weight(1, 0, 0.6);
        g.set_weight(1, 2, 0.1);
        let t = g.threshold_graph(1.0);
        assert!(t.has_edge(0, 1));
        assert!(!t.has_edge(1, 2));
    }

    #[test]
    fn interacting_neighbors_covers_both_directions() {
        let mut g = WeightedConflictGraph::new(4);
        g.set_weight(0, 2, 0.3);
        g.set_weight(3, 0, 0.2);
        assert_eq!(g.interacting_neighbors(0), vec![2, 3]);
        assert_eq!(g.interacting_neighbors(1), Vec::<usize>::new());
    }

    proptest! {
        #[test]
        fn prop_symmetric_weight_is_symmetric(
            n in 2usize..15,
            entries in prop::collection::vec((0usize..15, 0usize..15, 0.0f64..2.0), 0..40)
        ) {
            let mut g = WeightedConflictGraph::new(n);
            for (u, v, w) in entries {
                if u < n && v < n {
                    g.set_weight(u, v, w);
                }
            }
            for u in 0..n {
                for v in 0..n {
                    prop_assert!((g.symmetric_weight(u, v) - g.symmetric_weight(v, u)).abs() < 1e-12);
                }
            }
        }

        #[test]
        fn prop_subsets_of_independent_sets_are_independent(
            n in 2usize..12,
            entries in prop::collection::vec((0usize..12, 0usize..12, 0.0f64..0.5), 0..40),
            mask in prop::collection::vec(prop::bool::ANY, 12)
        ) {
            let mut g = WeightedConflictGraph::new(n);
            for (u, v, w) in entries {
                if u < n && v < n {
                    g.set_weight(u, v, w);
                }
            }
            let full: Vec<usize> = (0..n).collect();
            if g.is_independent(&full) {
                let sub: Vec<usize> = (0..n).filter(|&v| mask[v]).collect();
                prop_assert!(g.is_independent(&sub));
            }
        }
    }
}
