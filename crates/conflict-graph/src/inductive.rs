//! The inductive independence number ρ (Definitions 1 and 2 of the paper).
//!
//! For an ordering `π`, the inductive independence number is the largest
//! size (unweighted case) or `w̄`-weight (weighted case) of an independent
//! set inside a backward neighborhood `Γπ(v)`. The LP relaxations (1b)/(4b)
//! are parameterized by this quantity, so the reproduction needs to
//! *certify* it for the orderings the interference models produce:
//!
//! * [`certified_rho_for_ordering`] / [`certified_rho_for_ordering_weighted`]
//!   compute the exact value of ρ for a **given** ordering whenever the
//!   backward neighborhoods are small enough to search exhaustively, and a
//!   safe upper bound otherwise,
//! * [`greedy_ordering_search`] / [`greedy_ordering_search_weighted`] build
//!   an ordering bottom-up (analogous to the degeneracy ordering) when no
//!   model-specific ordering is available,
//! * [`exact_inductive_independence_number`] brute-forces all orderings on
//!   tiny graphs and is used to validate the heuristics in tests.

use crate::independent_set::{
    exact_max_weight_independent_set, exact_max_weight_independent_set_weighted,
    greedy_max_weight_independent_set,
};
use crate::ordering::VertexOrdering;
use crate::unweighted::ConflictGraph;
use crate::weighted::WeightedConflictGraph;
use crate::VertexId;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Default maximum backward-neighborhood size for which ρ is certified by an
/// exhaustive independent-set search.
pub const DEFAULT_EXACT_LIMIT: usize = 28;

/// A (possibly certified) bound on the inductive independence number for a
/// specific ordering.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct InductiveBound {
    /// The value of ρ for the ordering (exact if `is_exact`, otherwise an
    /// upper bound).
    pub rho: f64,
    /// Whether every backward neighborhood was searched exhaustively.
    pub is_exact: bool,
    /// A vertex whose backward neighborhood attains (or forces) the bound.
    pub worst_vertex: Option<VertexId>,
}

impl InductiveBound {
    /// ρ rounded up to an integer, never below 1. The LP constraints use ρ as
    /// a right-hand side, so a value below 1 would only make the relaxation
    /// tighter than the paper's; clamping keeps the guarantees comparable.
    pub fn rho_ceil(&self) -> f64 {
        self.rho.max(1.0)
    }
}

/// Computes ρ for `ordering` on an unweighted conflict graph.
///
/// For every vertex `v`, the maximum independent set inside the backward
/// neighborhood `Γπ(v)` is computed exactly when `|Γπ(v)| <= exact_limit`;
/// larger neighborhoods fall back to the trivial upper bound `|Γπ(v)|`
/// (reported as non-exact).
pub fn certified_rho_for_ordering(
    g: &ConflictGraph,
    ordering: &VertexOrdering,
    exact_limit: usize,
) -> InductiveBound {
    assert_eq!(ordering.len(), g.num_vertices());
    // Every vertex's backward-neighborhood search is independent, so the
    // sweep — the hot loop of every interference-model build — runs one
    // row per task in parallel and max-reduces the per-vertex values.
    let per_vertex: Vec<(usize, bool)> = (0..g.num_vertices())
        .into_par_iter()
        .map(|v| {
            let backward = ordering.backward_neighborhood(g, v);
            if backward.len() <= exact_limit {
                let (sub, _) = g.induced_subgraph(&backward);
                let value =
                    exact_max_weight_independent_set(&sub, &vec![1.0; sub.num_vertices()]).len();
                (value, true)
            } else {
                // too large to search exhaustively: a greedy clique cover of
                // the backward neighborhood still upper-bounds its
                // independence number (and is much tighter than the
                // neighborhood size on the geometric graphs of Section 4)
                let (sub, _) = g.induced_subgraph(&backward);
                let value =
                    crate::independent_set::clique_cover_upper_bound(&sub).min(backward.len());
                (value, false)
            }
        })
        .collect();
    let mut rho = 0usize;
    let mut worst = None;
    let mut exact = true;
    for (v, &(value, was_exact)) in per_vertex.iter().enumerate() {
        exact &= was_exact;
        if value > rho {
            rho = value;
            worst = Some(v);
        }
    }
    InductiveBound {
        rho: rho as f64,
        is_exact: exact,
        worst_vertex: worst,
    }
}

/// Convenience wrapper using [`DEFAULT_EXACT_LIMIT`].
pub fn certified_rho(g: &ConflictGraph, ordering: &VertexOrdering) -> InductiveBound {
    certified_rho_for_ordering(g, ordering, DEFAULT_EXACT_LIMIT)
}

fn induced_weighted_subgraph(
    g: &WeightedConflictGraph,
    vertices: &[VertexId],
) -> WeightedConflictGraph {
    let mut sub = WeightedConflictGraph::new(vertices.len());
    for (i, &u) in vertices.iter().enumerate() {
        for (j, &v) in vertices.iter().enumerate() {
            if i != j {
                let w = g.weight(u, v);
                if w > 0.0 {
                    sub.set_weight(i, j, w);
                }
            }
        }
    }
    sub
}

/// Computes ρ for `ordering` on an edge-weighted conflict graph
/// (Definition 2).
///
/// For every vertex `v` we maximize `Σ_{u ∈ M} w̄(u, v)` over independent
/// sets `M` of predecessors of `v`. The maximization is exact when the
/// number of interacting predecessors is at most `exact_limit`; otherwise the
/// trivial bound `Σ_u w̄(u, v)` over all interacting predecessors is used
/// (reported as non-exact).
pub fn certified_rho_for_ordering_weighted(
    g: &WeightedConflictGraph,
    ordering: &VertexOrdering,
    exact_limit: usize,
) -> InductiveBound {
    assert_eq!(ordering.len(), g.num_vertices());
    // Parallel per-vertex sweep, mirroring `certified_rho_for_ordering`.
    let per_vertex: Vec<(f64, bool)> = (0..g.num_vertices())
        .into_par_iter()
        .map(|v| {
            let backward = ordering.weighted_backward_neighborhood(g, v);
            if backward.is_empty() {
                (0.0, true)
            } else if backward.len() <= exact_limit {
                let vertices: Vec<VertexId> = backward.iter().map(|&(u, _)| u).collect();
                let weights: Vec<f64> = backward.iter().map(|&(_, w)| w).collect();
                let sub = induced_weighted_subgraph(g, &vertices);
                (
                    exact_max_weight_independent_set_weighted(&sub, &weights).total_weight,
                    true,
                )
            } else {
                (backward.iter().map(|&(_, w)| w).sum(), false)
            }
        })
        .collect();
    let mut rho = 0.0f64;
    let mut worst = None;
    let mut exact = true;
    for (v, &(value, was_exact)) in per_vertex.iter().enumerate() {
        exact &= was_exact;
        if value > rho {
            rho = value;
            worst = Some(v);
        }
    }
    InductiveBound {
        rho,
        is_exact: exact,
        worst_vertex: worst,
    }
}

/// Convenience wrapper using [`DEFAULT_EXACT_LIMIT`].
pub fn certified_rho_weighted(
    g: &WeightedConflictGraph,
    ordering: &VertexOrdering,
) -> InductiveBound {
    certified_rho_for_ordering_weighted(g, ordering, DEFAULT_EXACT_LIMIT)
}

/// Builds an ordering for an unweighted conflict graph by a greedy
/// elimination analogous to the degeneracy ordering: repeatedly place the
/// vertex whose neighborhood within the remaining vertices contains the
/// smallest (greedily estimated) independent set at the *last* free
/// position.
///
/// Returns the ordering together with its certified ρ.
pub fn greedy_ordering_search(g: &ConflictGraph) -> (VertexOrdering, InductiveBound) {
    let n = g.num_vertices();
    let mut remaining: Vec<bool> = vec![true; n];
    let mut reverse_order: Vec<VertexId> = Vec::with_capacity(n);
    for _ in 0..n {
        // score(v) = greedy independent set size inside N(v) ∩ remaining
        let mut best: Option<(usize, VertexId)> = None;
        for v in 0..n {
            if !remaining[v] {
                continue;
            }
            let nbrs: Vec<VertexId> = g
                .neighbors(v)
                .iter()
                .copied()
                .filter(|&u| remaining[u])
                .collect();
            let (sub, _) = g.induced_subgraph(&nbrs);
            let score =
                greedy_max_weight_independent_set(&sub, &vec![1.0; sub.num_vertices()]).len();
            match best {
                None => best = Some((score, v)),
                Some((s, b)) => {
                    if score < s || (score == s && v < b) {
                        best = Some((score, v));
                    }
                }
            }
        }
        let (_, v) = best.expect("there is always a remaining vertex");
        remaining[v] = false;
        reverse_order.push(v);
    }
    reverse_order.reverse();
    let ordering = VertexOrdering::from_order(reverse_order);
    let bound = certified_rho(g, &ordering);
    (ordering, bound)
}

/// Weighted analogue of [`greedy_ordering_search`]: repeatedly place the
/// vertex with the smallest total interacting weight from the remaining
/// vertices at the last free position.
pub fn greedy_ordering_search_weighted(
    g: &WeightedConflictGraph,
) -> (VertexOrdering, InductiveBound) {
    let n = g.num_vertices();
    let mut remaining: Vec<bool> = vec![true; n];
    let mut reverse_order: Vec<VertexId> = Vec::with_capacity(n);
    for _ in 0..n {
        let mut best: Option<(f64, VertexId)> = None;
        for v in 0..n {
            if !remaining[v] {
                continue;
            }
            let score: f64 = g
                .interacting_neighbors(v)
                .into_iter()
                .filter(|&u| remaining[u])
                .map(|u| g.symmetric_weight(u, v))
                .sum();
            match best {
                None => best = Some((score, v)),
                Some((s, b)) => {
                    if score < s || (score == s && v < b) {
                        best = Some((score, v));
                    }
                }
            }
        }
        let (_, v) = best.expect("there is always a remaining vertex");
        remaining[v] = false;
        reverse_order.push(v);
    }
    reverse_order.reverse();
    let ordering = VertexOrdering::from_order(reverse_order);
    let bound = certified_rho_weighted(g, &ordering);
    (ordering, bound)
}

/// Exact inductive independence number of a *small* unweighted graph,
/// obtained by brute force over all orderings.
///
/// Returns an optimal ordering and its ρ. Cost is `O(n! · poly)`, so this is
/// only intended for `n ≤ 9` (validation of heuristics in tests and in the
/// hardness experiments).
///
/// # Panics
/// Panics if `g.num_vertices() > 10`.
pub fn exact_inductive_independence_number(g: &ConflictGraph) -> (VertexOrdering, usize) {
    let n = g.num_vertices();
    assert!(
        n <= 10,
        "exact search over orderings is factorial; n = {n} is too large"
    );
    let mut best: Option<(usize, Vec<VertexId>)> = None;
    let mut perm: Vec<VertexId> = (0..n).collect();
    permute(&mut perm, 0, &mut |p: &[VertexId]| {
        let ordering = VertexOrdering::from_order(p.to_vec());
        let bound = certified_rho_for_ordering(g, &ordering, usize::MAX);
        let rho = bound.rho as usize;
        match &best {
            None => best = Some((rho, p.to_vec())),
            Some((b, _)) => {
                if rho < *b {
                    best = Some((rho, p.to_vec()));
                }
            }
        }
    });
    let (rho, order) = best.unwrap_or((0, Vec::new()));
    (VertexOrdering::from_order(order), rho)
}

fn permute(items: &mut Vec<VertexId>, start: usize, visit: &mut impl FnMut(&[VertexId])) {
    if start == items.len() {
        visit(items);
        return;
    }
    for i in start..items.len() {
        items.swap(start, i);
        permute(items, start + 1, visit);
        items.swap(start, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_graph_has_rho_zero() {
        let g = ConflictGraph::new(5);
        let b = certified_rho(&g, &VertexOrdering::identity(5));
        assert_eq!(b.rho, 0.0);
        assert!(b.is_exact);
        assert_eq!(b.rho_ceil(), 1.0, "LP always uses at least 1");
    }

    #[test]
    fn clique_has_rho_one_for_any_ordering() {
        let g = ConflictGraph::clique(6);
        let b = certified_rho(&g, &VertexOrdering::identity(6));
        assert_eq!(b.rho, 1.0);
        assert!(b.is_exact);
        let b2 = certified_rho(&g, &VertexOrdering::identity(6).reversed());
        assert_eq!(b2.rho, 1.0);
    }

    #[test]
    fn star_rho_depends_on_ordering() {
        // star with center 0: if the center comes last, its backward
        // neighborhood is all leaves (an independent set of size n-1); if the
        // center comes first, every leaf sees only the center (rho = 1).
        let g = ConflictGraph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let center_last = VertexOrdering::from_order(vec![1, 2, 3, 4, 0]);
        let b_bad = certified_rho(&g, &center_last);
        assert_eq!(b_bad.rho, 4.0);
        assert_eq!(b_bad.worst_vertex, Some(0));
        let center_first = VertexOrdering::from_order(vec![0, 1, 2, 3, 4]);
        let b_good = certified_rho(&g, &center_first);
        assert_eq!(b_good.rho, 1.0);
    }

    #[test]
    fn greedy_ordering_finds_good_star_ordering() {
        let g = ConflictGraph::from_edges(7, &[(0, 1), (0, 2), (0, 3), (0, 4), (0, 5), (0, 6)]);
        let (_, bound) = greedy_ordering_search(&g);
        assert_eq!(
            bound.rho, 1.0,
            "star graphs have inductive independence number 1"
        );
    }

    #[test]
    fn exact_search_on_path() {
        // A path has inductive independence number 1 (order along the path).
        let g = ConflictGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let (ordering, rho) = exact_inductive_independence_number(&g);
        assert_eq!(rho, 1);
        let check = certified_rho(&g, &ordering);
        assert_eq!(check.rho, 1.0);
    }

    #[test]
    fn exact_search_on_cycle() {
        // C5: ordering the cycle along the circle yields rho <= 2; no ordering
        // achieves rho < 1 (there are edges). The last vertex of any ordering
        // of C5 has two neighbors which are non-adjacent, hence rho = 2.
        let g = ConflictGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let (_, rho) = exact_inductive_independence_number(&g);
        assert_eq!(rho, 2);
    }

    #[test]
    fn weighted_rho_on_unit_weights_matches_unweighted() {
        let g =
            ConflictGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (0, 3)]);
        let wg = WeightedConflictGraph::from_unweighted(&g);
        let ordering = VertexOrdering::identity(6);
        let bu = certified_rho(&g, &ordering);
        let bw = certified_rho_weighted(&wg, &ordering);
        // With unit edge weights w̄ = 2 on every edge, each backward neighbor
        // contributes 2, and weighted independence only allows singletons
        // among mutually adjacent predecessors. The weighted rho is therefore
        // exactly twice the unweighted one whenever the maximizing set is a
        // single-channel independent set. We only assert the ratio bound.
        assert!(bw.rho <= 2.0 * bu.rho + 1e-9);
        assert!(bw.rho >= bu.rho - 1e-9);
    }

    #[test]
    fn weighted_rho_simple_instance() {
        let mut g = WeightedConflictGraph::new(3);
        g.set_weight(0, 2, 0.3);
        g.set_weight(1, 2, 0.4);
        // 0 and 1 do not interact, so M = {0, 1} is independent and
        // contributes w̄(0,2) + w̄(1,2) = 0.7 at vertex 2.
        let b = certified_rho_weighted(&g, &VertexOrdering::identity(3));
        assert!((b.rho - 0.7).abs() < 1e-9);
        assert_eq!(b.worst_vertex, Some(2));
        assert!(b.is_exact);
    }

    #[test]
    fn greedy_weighted_ordering_is_no_worse_than_identity_on_star() {
        let mut g = WeightedConflictGraph::new(5);
        for leaf in 1..5 {
            g.set_weight(leaf, 0, 0.9);
            g.set_weight(0, leaf, 0.9);
        }
        let id_bound = certified_rho_weighted(&g, &VertexOrdering::from_order(vec![1, 2, 3, 4, 0]));
        let (_, greedy_bound) = greedy_ordering_search_weighted(&g);
        assert!(greedy_bound.rho <= id_bound.rho + 1e-9);
    }

    prop_compose! {
        fn arb_graph()(n in 2usize..7)
                      (n in Just(n),
                       edges in prop::collection::vec((0..n, 0..n), 0..20)) -> ConflictGraph {
            ConflictGraph::from_edges(n, &edges)
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn prop_greedy_ordering_at_least_exact_optimum(g in arb_graph()) {
            let (_, greedy_bound) = greedy_ordering_search(&g);
            let (_, exact_rho) = exact_inductive_independence_number(&g);
            // the heuristic can only overestimate the optimal rho
            prop_assert!(greedy_bound.rho as usize >= exact_rho);
        }

        #[test]
        fn prop_certified_rho_bounds_backward_independent_sets(g in arb_graph()) {
            let ordering = VertexOrdering::identity(g.num_vertices());
            let bound = certified_rho(&g, &ordering);
            // Definition 1: for every vertex and every independent set in its
            // backward neighborhood, the intersection size is at most rho.
            for v in 0..g.num_vertices() {
                let backward = ordering.backward_neighborhood(&g, v);
                let (sub, _) = g.induced_subgraph(&backward);
                let best = exact_max_weight_independent_set(&sub, &vec![1.0; sub.num_vertices()]);
                prop_assert!(best.len() as f64 <= bound.rho + 1e-9);
            }
        }

        #[test]
        fn prop_weighted_rho_never_below_unweighted_rho_on_unit_conversion(g in arb_graph()) {
            let ordering = VertexOrdering::identity(g.num_vertices());
            let wg = WeightedConflictGraph::from_unweighted(&g);
            let bu = certified_rho(&g, &ordering);
            let bw = certified_rho_weighted(&wg, &ordering);
            prop_assert!(bw.rho >= bu.rho - 1e-9);
        }
    }
}
