//! A small fixed-capacity bit set used for adjacency rows and vertex subsets.
//!
//! The workspace deals with graphs of at most a few thousand vertices, so a
//! dense `u64`-word bit set is both the simplest and the fastest choice for
//! membership tests, intersections and popcounts that the independent-set
//! routines perform in their inner loops.

use serde::{Deserialize, Serialize};

/// Dense bit set over the universe `0..len`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// Creates an empty bit set over the universe `0..len`.
    pub fn new(len: usize) -> Self {
        BitSet {
            words: vec![0u64; len.div_ceil(64)],
            len,
        }
    }

    /// Creates a bit set containing every element of the universe `0..len`.
    ///
    /// Fills whole `u64` words and masks the tail — `O(len/64)` instead of
    /// the per-bit insert loop this used to be.
    pub fn full(len: usize) -> Self {
        let mut words = vec![!0u64; len.div_ceil(64)];
        let tail_bits = len % 64;
        if tail_bits != 0 {
            if let Some(last) = words.last_mut() {
                *last = (1u64 << tail_bits) - 1;
            }
        }
        BitSet { words, len }
    }

    /// Creates a bit set from an iterator of indices.
    ///
    /// # Panics
    /// Panics if any index is `>= len`.
    pub fn from_indices<I: IntoIterator<Item = usize>>(len: usize, iter: I) -> Self {
        let mut s = Self::new(len);
        for i in iter {
            assert!(i < len, "index {i} out of bounds for BitSet of len {len}");
            s.words[i / 64] |= 1u64 << (i % 64);
        }
        s
    }

    /// Size of the universe (not the number of set bits).
    pub fn universe_len(&self) -> usize {
        self.len
    }

    /// Inserts `idx` into the set. Returns `true` if it was newly inserted.
    ///
    /// # Panics
    /// Panics if `idx >= universe_len()`.
    pub fn insert(&mut self, idx: usize) -> bool {
        assert!(
            idx < self.len,
            "index {idx} out of bounds for BitSet of len {}",
            self.len
        );
        let w = idx / 64;
        let b = idx % 64;
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        !had
    }

    /// Removes `idx` from the set. Returns `true` if it was present.
    pub fn remove(&mut self, idx: usize) -> bool {
        assert!(idx < self.len);
        let w = idx / 64;
        let b = idx % 64;
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        had
    }

    /// Membership test.
    pub fn contains(&self, idx: usize) -> bool {
        if idx >= self.len {
            return false;
        }
        self.words[idx / 64] & (1 << (idx % 64)) != 0
    }

    /// Number of elements in the set (word-level popcount).
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Alias of [`BitSet::count`] matching the `u64::count_ones` naming.
    pub fn count_ones(&self) -> usize {
        self.count()
    }

    /// The backing `u64` words (low bit of word 0 is element 0).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Returns `true` if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        for w in &mut self.words {
            *w = 0;
        }
    }

    /// Iterates over the indices contained in the set in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(move |(wi, &word)| {
            let mut w = word;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }

    /// Returns the number of elements present in both `self` and `other`
    /// (word-level `and` + popcount, no per-bit work).
    pub fn intersection_count(&self, other: &BitSet) -> usize {
        self.words
            .iter()
            .zip(other.words.iter())
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Alias of [`BitSet::intersection_count`].
    pub fn intersect_count(&self, other: &BitSet) -> usize {
        self.intersection_count(other)
    }

    /// Returns `true` if `self` and `other` share at least one element.
    pub fn intersects(&self, other: &BitSet) -> bool {
        self.words
            .iter()
            .zip(other.words.iter())
            .any(|(a, b)| a & b != 0)
    }

    /// In-place union with `other`.
    ///
    /// # Panics
    /// Panics if the universes differ in size.
    pub fn union_with(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a |= b;
        }
    }

    /// In-place intersection with `other`.
    pub fn intersect_with(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a &= b;
        }
    }

    /// In-place difference: removes all elements of `other` from `self`.
    pub fn difference_with(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a &= !b;
        }
    }

    /// Returns `true` if every element of `self` is contained in `other`.
    pub fn is_subset_of(&self, other: &BitSet) -> bool {
        self.words
            .iter()
            .zip(other.words.iter())
            .all(|(a, b)| a & !b == 0)
    }

    /// Alias of [`BitSet::iter`]: walks set bits word by word with
    /// `trailing_zeros`, never visiting empty words bit-by-bit.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.iter()
    }

    /// Collects the contents into a `Vec<usize>`.
    pub fn to_vec(&self) -> Vec<usize> {
        self.iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(130);
        assert!(s.is_empty());
        assert!(s.insert(0));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(129), "double insert reports not-new");
        assert!(s.contains(0));
        assert!(s.contains(64));
        assert!(s.contains(129));
        assert!(!s.contains(1));
        assert_eq!(s.count(), 3);
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert_eq!(s.count(), 2);
    }

    #[test]
    fn iteration_is_sorted_and_complete() {
        let idx = [3usize, 7, 64, 65, 127, 128, 199];
        let s = BitSet::from_indices(200, idx.iter().copied());
        assert_eq!(s.to_vec(), idx.to_vec());
    }

    #[test]
    fn full_contains_everything() {
        let s = BitSet::full(77);
        assert_eq!(s.count(), 77);
        assert!((0..77).all(|i| s.contains(i)));
        assert!(!s.contains(77));
    }

    #[test]
    fn full_masks_the_tail_word_exactly() {
        // word-boundary universes: the tail mask must not leak ghost bits
        for len in [0usize, 1, 63, 64, 65, 127, 128, 129, 192] {
            let s = BitSet::full(len);
            assert_eq!(s.count(), len, "len {len}");
            assert_eq!(s.count_ones(), len);
            assert!(!s.contains(len));
            assert_eq!(s.to_vec(), (0..len).collect::<Vec<_>>());
            // complement through difference must be empty
            let mut d = s.clone();
            d.difference_with(&BitSet::full(len));
            assert!(d.is_empty());
        }
    }

    #[test]
    fn word_level_count_aliases_agree() {
        let a = BitSet::from_indices(200, [0, 63, 64, 127, 128, 199]);
        let b = BitSet::from_indices(200, [63, 64, 150]);
        assert_eq!(a.intersect_count(&b), a.intersection_count(&b));
        assert_eq!(a.intersect_count(&b), 2);
        assert_eq!(a.iter_ones().collect::<Vec<_>>(), a.to_vec());
        assert_eq!(a.words().len(), 200usize.div_ceil(64));
    }

    #[test]
    fn set_algebra() {
        let a = BitSet::from_indices(100, [1, 2, 3, 50, 99]);
        let b = BitSet::from_indices(100, [2, 3, 4, 99]);
        assert_eq!(a.intersection_count(&b), 3);
        assert!(a.intersects(&b));

        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.to_vec(), vec![1, 2, 3, 4, 50, 99]);

        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.to_vec(), vec![2, 3, 99]);

        let mut d = a.clone();
        d.difference_with(&b);
        assert_eq!(d.to_vec(), vec![1, 50]);

        assert!(i.is_subset_of(&a));
        assert!(i.is_subset_of(&b));
        assert!(!a.is_subset_of(&b));
    }

    #[test]
    fn out_of_universe_contains_is_false() {
        let s = BitSet::from_indices(10, [0, 9]);
        assert!(!s.contains(10));
        assert!(!s.contains(1000));
    }

    #[test]
    #[should_panic]
    fn out_of_universe_insert_panics() {
        let mut s = BitSet::new(10);
        s.insert(10);
    }

    #[test]
    fn clear_empties() {
        let mut s = BitSet::from_indices(64, 0..64);
        assert_eq!(s.count(), 64);
        s.clear();
        assert!(s.is_empty());
    }

    proptest! {
        #[test]
        fn prop_roundtrip_through_indices(len in 1usize..300, picks in prop::collection::vec(0usize..300, 0..80)) {
            let picks: Vec<usize> = picks.into_iter().filter(|&p| p < len).collect();
            let s = BitSet::from_indices(len, picks.iter().copied());
            let mut sorted: Vec<usize> = picks.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(s.to_vec(), sorted.clone());
            prop_assert_eq!(s.count(), sorted.len());
        }

        #[test]
        fn prop_union_intersection_counts(len in 1usize..200,
                                          a in prop::collection::vec(0usize..200, 0..60),
                                          b in prop::collection::vec(0usize..200, 0..60)) {
            let a: Vec<usize> = a.into_iter().filter(|&p| p < len).collect();
            let b: Vec<usize> = b.into_iter().filter(|&p| p < len).collect();
            let sa = BitSet::from_indices(len, a.iter().copied());
            let sb = BitSet::from_indices(len, b.iter().copied());
            let mut un = sa.clone();
            un.union_with(&sb);
            // |A ∪ B| = |A| + |B| - |A ∩ B|
            prop_assert_eq!(un.count() + sa.intersection_count(&sb), sa.count() + sb.count());
        }
    }
}
