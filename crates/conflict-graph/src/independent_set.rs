//! Maximum-weight independent set primitives.
//!
//! These routines serve three purposes in the reproduction:
//!
//! 1. the **exact** solvers certify the inductive independence number on
//!    backward neighborhoods (Definitions 1 and 2) and provide ground truth
//!    for the single-channel case `k = 1`,
//! 2. the **greedy** solvers are the classical baselines the paper contrasts
//!    its LP approach against (Section 1.2), and
//! 3. both are reused by the hardness experiments to measure how far the
//!    heuristics degrade on adversarial instances.

use crate::bitset::BitSet;
use crate::unweighted::ConflictGraph;
use crate::weighted::WeightedConflictGraph;
use crate::VertexId;
use serde::{Deserialize, Serialize};

/// Result of an independent-set computation: the chosen vertices (sorted)
/// and their total weight.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct IndependentSetResult {
    /// Chosen vertices in increasing order.
    pub vertices: Vec<VertexId>,
    /// Sum of the vertex weights of the chosen vertices.
    pub total_weight: f64,
}

impl IndependentSetResult {
    fn from_vertices(mut vertices: Vec<VertexId>, weights: &[f64]) -> Self {
        vertices.sort_unstable();
        let total_weight = vertices.iter().map(|&v| weights[v]).sum();
        IndependentSetResult {
            vertices,
            total_weight,
        }
    }

    /// Number of chosen vertices.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// Returns `true` if no vertex was chosen.
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }
}

/// Greedy maximum-weight independent set on an unweighted conflict graph.
///
/// Vertices are considered by decreasing `weight / (degree + 1)` — the
/// classical greedy rule that guarantees a `(d̄+1)`-approximation — and added
/// whenever they do not conflict with previously chosen vertices.
///
/// # Panics
/// Panics if `weights.len() != g.num_vertices()`.
pub fn greedy_max_weight_independent_set(
    g: &ConflictGraph,
    weights: &[f64],
) -> IndependentSetResult {
    assert_eq!(weights.len(), g.num_vertices());
    let n = g.num_vertices();
    let mut order: Vec<VertexId> = (0..n).collect();
    order.sort_by(|&a, &b| {
        let ka = weights[a] / (g.degree(a) as f64 + 1.0);
        let kb = weights[b] / (g.degree(b) as f64 + 1.0);
        kb.partial_cmp(&ka)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    let mut chosen = BitSet::new(n);
    let mut blocked = BitSet::new(n);
    let mut picked = Vec::new();
    for v in order {
        if weights[v] <= 0.0 || blocked.contains(v) {
            continue;
        }
        chosen.insert(v);
        picked.push(v);
        blocked.union_with(g.adjacency_row(v));
    }
    IndependentSetResult::from_vertices(picked, weights)
}

/// Greedy maximum-weight independent set on an edge-weighted conflict graph.
///
/// Vertices are considered by decreasing weight and added whenever doing so
/// keeps the partial set independent in the weighted sense (every member's
/// incoming weight stays strictly below 1).
pub fn greedy_max_weight_independent_set_weighted(
    g: &WeightedConflictGraph,
    weights: &[f64],
) -> IndependentSetResult {
    assert_eq!(weights.len(), g.num_vertices());
    let n = g.num_vertices();
    let mut order: Vec<VertexId> = (0..n).collect();
    order.sort_by(|&a, &b| {
        weights[b]
            .partial_cmp(&weights[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    // incoming[v] = interference already accumulated at v from chosen vertices
    let mut incoming = vec![0.0f64; n];
    let mut chosen: Vec<VertexId> = Vec::new();
    for v in order {
        if weights[v] <= 0.0 {
            continue;
        }
        // adding v must keep v itself and every chosen vertex under budget
        if incoming[v] >= 1.0 {
            continue;
        }
        let breaks_existing = chosen.iter().any(|&u| incoming[u] + g.weight(v, u) >= 1.0);
        if breaks_existing {
            continue;
        }
        for &u in &chosen {
            incoming[u] += g.weight(v, u);
            incoming[v] += g.weight(u, v);
        }
        chosen.push(v);
    }
    IndependentSetResult::from_vertices(chosen, weights)
}

/// A greedy clique cover of the graph: repeatedly grows a clique from the
/// lowest-index uncovered vertex and removes it. The number of cliques is an
/// **upper bound on the independence number** (every independent set picks at
/// most one vertex per clique), which the ρ certification uses on backward
/// neighborhoods too large for exhaustive search — for the geometric conflict
/// graphs of Section 4 this bound stays close to the paper's constants even
/// on dense instances.
pub fn clique_cover_upper_bound(g: &ConflictGraph) -> usize {
    let n = g.num_vertices();
    let mut covered = BitSet::new(n.max(1));
    let mut cliques = 0usize;
    for start in 0..n {
        if covered.contains(start) {
            continue;
        }
        cliques += 1;
        covered.insert(start);
        // `common` = vertices adjacent to every clique member so far; a
        // word-level running intersection replaces the per-member
        // `has_edge` scan of the previous implementation.
        let mut common = g.adjacency_row(start).clone();
        for v in (start + 1)..n {
            if !covered.contains(v) && common.contains(v) {
                covered.insert(v);
                common.intersect_with(g.adjacency_row(v));
            }
        }
    }
    cliques
}

/// Exact maximum-weight independent set by branch and bound.
///
/// Intended for graphs with at most a few dozen vertices (backward
/// neighborhoods, ground-truth on small instances). The bound prunes with
/// the total remaining weight, and vertices are explored in decreasing-weight
/// order so good incumbents are found early.
///
/// # Panics
/// Panics if `weights.len() != g.num_vertices()`.
pub fn exact_max_weight_independent_set(
    g: &ConflictGraph,
    weights: &[f64],
) -> IndependentSetResult {
    assert_eq!(weights.len(), g.num_vertices());
    let n = g.num_vertices();
    let mut order: Vec<VertexId> = (0..n).filter(|&v| weights[v] > 0.0).collect();
    order.sort_by(|&a, &b| {
        weights[b]
            .partial_cmp(&weights[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    // suffix_weight[i] = total weight of order[i..]
    let mut suffix_weight = vec![0.0f64; order.len() + 1];
    for i in (0..order.len()).rev() {
        suffix_weight[i] = suffix_weight[i + 1] + weights[order[i]];
    }

    struct Ctx<'a> {
        g: &'a ConflictGraph,
        weights: &'a [f64],
        order: &'a [VertexId],
        suffix_weight: &'a [f64],
        best_weight: f64,
        best_set: Vec<VertexId>,
    }

    fn recurse(
        ctx: &mut Ctx<'_>,
        idx: usize,
        current: &mut Vec<VertexId>,
        blocked: &BitSet,
        weight: f64,
    ) {
        if weight > ctx.best_weight {
            ctx.best_weight = weight;
            ctx.best_set = current.clone();
        }
        if idx >= ctx.order.len() {
            return;
        }
        if weight + ctx.suffix_weight[idx] <= ctx.best_weight {
            return; // even taking everything left cannot beat the incumbent
        }
        let v = ctx.order[idx];
        // Branch 1: take v if allowed.
        if !blocked.contains(v) {
            let mut blocked2 = blocked.clone();
            blocked2.union_with(ctx.g.adjacency_row(v));
            current.push(v);
            recurse(ctx, idx + 1, current, &blocked2, weight + ctx.weights[v]);
            current.pop();
        }
        // Branch 2: skip v.
        recurse(ctx, idx + 1, current, blocked, weight);
    }

    let mut ctx = Ctx {
        g,
        weights,
        order: &order,
        suffix_weight: &suffix_weight,
        best_weight: 0.0,
        best_set: Vec::new(),
    };
    let blocked = BitSet::new(n);
    let mut current = Vec::new();
    recurse(&mut ctx, 0, &mut current, &blocked, 0.0);
    IndependentSetResult::from_vertices(ctx.best_set, weights)
}

/// Exact maximum-weight independent set on an edge-weighted conflict graph.
///
/// Exhaustive branch and bound with remaining-weight pruning; independence is
/// re-checked incrementally through accumulated incoming interference. Only
/// suitable for small graphs (≈ 25 vertices or fewer).
pub fn exact_max_weight_independent_set_weighted(
    g: &WeightedConflictGraph,
    weights: &[f64],
) -> IndependentSetResult {
    assert_eq!(weights.len(), g.num_vertices());
    let n = g.num_vertices();
    let mut order: Vec<VertexId> = (0..n).filter(|&v| weights[v] > 0.0).collect();
    order.sort_by(|&a, &b| {
        weights[b]
            .partial_cmp(&weights[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    let mut suffix_weight = vec![0.0f64; order.len() + 1];
    for i in (0..order.len()).rev() {
        suffix_weight[i] = suffix_weight[i + 1] + weights[order[i]];
    }

    struct Ctx<'a> {
        g: &'a WeightedConflictGraph,
        weights: &'a [f64],
        order: &'a [VertexId],
        suffix_weight: &'a [f64],
        best_weight: f64,
        best_set: Vec<VertexId>,
    }

    fn recurse(
        ctx: &mut Ctx<'_>,
        idx: usize,
        current: &mut Vec<VertexId>,
        incoming: &mut Vec<f64>,
        weight: f64,
    ) {
        if weight > ctx.best_weight {
            ctx.best_weight = weight;
            ctx.best_set = current.clone();
        }
        if idx >= ctx.order.len() {
            return;
        }
        if weight + ctx.suffix_weight[idx] <= ctx.best_weight {
            return;
        }
        let v = ctx.order[idx];
        // Branch 1: take v if it keeps everyone strictly under budget.
        let v_incoming: f64 = current.iter().map(|&u| ctx.g.weight(u, v)).sum();
        let fits = v_incoming < 1.0
            && current
                .iter()
                .all(|&u| incoming[u] + ctx.g.weight(v, u) < 1.0);
        if fits {
            for &u in current.iter() {
                incoming[u] += ctx.g.weight(v, u);
            }
            incoming[v] = v_incoming;
            current.push(v);
            recurse(ctx, idx + 1, current, incoming, weight + ctx.weights[v]);
            current.pop();
            incoming[v] = 0.0;
            for &u in current.iter() {
                incoming[u] -= ctx.g.weight(v, u);
            }
        }
        // Branch 2: skip v.
        recurse(ctx, idx + 1, current, incoming, weight);
    }

    let mut ctx = Ctx {
        g,
        weights,
        order: &order,
        suffix_weight: &suffix_weight,
        best_weight: 0.0,
        best_set: Vec::new(),
    };
    let mut incoming = vec![0.0f64; n];
    let mut current = Vec::new();
    recurse(&mut ctx, 0, &mut current, &mut incoming, 0.0);
    IndependentSetResult::from_vertices(ctx.best_set, weights)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn uniform_weights(n: usize) -> Vec<f64> {
        vec![1.0; n]
    }

    #[test]
    fn clique_cover_bounds_independence_number() {
        // path of 5: independence number 3, clique cover uses 3 cliques (edges + singleton)
        let g = ConflictGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let cover = clique_cover_upper_bound(&g);
        let alpha = exact_max_weight_independent_set(&g, &uniform_weights(5)).len();
        assert!(cover >= alpha);
        // clique: one clique covers everything
        assert_eq!(clique_cover_upper_bound(&ConflictGraph::clique(7)), 1);
        // empty graph: every vertex is its own clique
        assert_eq!(clique_cover_upper_bound(&ConflictGraph::new(4)), 4);
    }

    #[test]
    fn exact_on_path_picks_alternating_vertices() {
        let g = ConflictGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let r = exact_max_weight_independent_set(&g, &uniform_weights(5));
        assert_eq!(r.vertices, vec![0, 2, 4]);
        assert_eq!(r.total_weight, 3.0);
    }

    #[test]
    fn exact_respects_weights_over_cardinality() {
        // star: center has huge weight, leaves small -> pick center alone
        let g = ConflictGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        let r = exact_max_weight_independent_set(&g, &[10.0, 1.0, 1.0, 1.0]);
        assert_eq!(r.vertices, vec![0]);
        assert_eq!(r.total_weight, 10.0);
        // now leaves dominate
        let r2 = exact_max_weight_independent_set(&g, &[2.0, 1.0, 1.0, 1.0]);
        assert_eq!(r2.vertices, vec![1, 2, 3]);
        assert_eq!(r2.total_weight, 3.0);
    }

    #[test]
    fn exact_on_clique_picks_heaviest_vertex() {
        let g = ConflictGraph::clique(6);
        let w = [1.0, 4.0, 2.0, 8.0, 3.0, 5.0];
        let r = exact_max_weight_independent_set(&g, &w);
        assert_eq!(r.vertices, vec![3]);
        assert_eq!(r.total_weight, 8.0);
    }

    #[test]
    fn greedy_result_is_always_independent() {
        let g = ConflictGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let r = greedy_max_weight_independent_set(&g, &[3.0, 1.0, 3.0, 1.0, 3.0, 1.0]);
        assert!(g.is_independent(&r.vertices));
        assert!(r.total_weight >= 3.0);
    }

    #[test]
    fn zero_weight_vertices_never_chosen() {
        let g = ConflictGraph::new(4);
        let r = greedy_max_weight_independent_set(&g, &[0.0, 1.0, 0.0, 2.0]);
        assert_eq!(r.vertices, vec![1, 3]);
        let e = exact_max_weight_independent_set(&g, &[0.0, 1.0, 0.0, 2.0]);
        assert_eq!(e.vertices, vec![1, 3]);
    }

    #[test]
    fn weighted_graph_exact_respects_aggregate_interference() {
        // three vertices each putting 0.5 onto vertex 3: any two of them plus
        // 3 is infeasible, so the optimum with unit weights has size 3.
        let mut g = WeightedConflictGraph::new(4);
        for u in 0..3 {
            g.set_weight(u, 3, 0.5);
        }
        let r = exact_max_weight_independent_set_weighted(&g, &uniform_weights(4));
        assert_eq!(r.len(), 3);
        assert!(g.is_independent(&r.vertices));
    }

    #[test]
    fn weighted_greedy_is_feasible_and_nonempty() {
        let mut g = WeightedConflictGraph::new(5);
        g.set_weight(0, 1, 0.9);
        g.set_weight(1, 0, 0.9);
        g.set_weight(2, 3, 0.6);
        g.set_weight(3, 2, 0.6);
        let w = [5.0, 4.0, 3.0, 2.0, 1.0];
        let r = greedy_max_weight_independent_set_weighted(&g, &w);
        assert!(g.is_independent(&r.vertices));
        assert!(r.total_weight >= 5.0);
    }

    #[test]
    fn exact_weighted_matches_unweighted_on_unit_edge_weights() {
        let g = ConflictGraph::from_edges(6, &[(0, 1), (1, 2), (3, 4), (4, 5), (0, 5)]);
        let wg = WeightedConflictGraph::from_unweighted(&g);
        let weights = [2.0, 3.0, 1.0, 5.0, 2.0, 2.0];
        let a = exact_max_weight_independent_set(&g, &weights);
        let b = exact_max_weight_independent_set_weighted(&wg, &weights);
        assert!((a.total_weight - b.total_weight).abs() < 1e-9);
    }

    prop_compose! {
        fn arb_instance()(n in 1usize..14)
                         (n in Just(n),
                          edges in prop::collection::vec((0..n, 0..n), 0..40),
                          weights in prop::collection::vec(0.0f64..10.0, 14)) -> (ConflictGraph, Vec<f64>) {
            (ConflictGraph::from_edges(n, &edges), weights[..n].to_vec())
        }
    }

    proptest! {
        #[test]
        fn prop_exact_at_least_greedy_and_both_independent((g, w) in arb_instance()) {
            let greedy = greedy_max_weight_independent_set(&g, &w);
            let exact = exact_max_weight_independent_set(&g, &w);
            prop_assert!(g.is_independent(&greedy.vertices));
            prop_assert!(g.is_independent(&exact.vertices));
            prop_assert!(exact.total_weight >= greedy.total_weight - 1e-9);
        }

        #[test]
        fn prop_clique_cover_upper_bounds_alpha((g, w) in arb_instance()) {
            let _ = &w;
            let alpha = exact_max_weight_independent_set(&g, &vec![1.0; g.num_vertices()]).len();
            prop_assert!(clique_cover_upper_bound(&g) >= alpha);
        }

        #[test]
        fn prop_exact_weighted_feasible((g, w) in arb_instance()) {
            let wg = WeightedConflictGraph::from_unweighted(&g);
            let r = exact_max_weight_independent_set_weighted(&wg, &w);
            prop_assert!(wg.is_independent(&r.vertices));
            // and it must coincide with the unweighted optimum
            let e = exact_max_weight_independent_set(&g, &w);
            prop_assert!((r.total_weight - e.total_weight).abs() < 1e-6);
        }
    }
}
