//! Conflict graphs for secondary spectrum auctions.
//!
//! This crate provides the combinatorial substrate of the SPAA 2011 paper
//! *"Approximation Algorithms for Secondary Spectrum Auctions"* (Hoefer,
//! Kesselheim, Vöcking):
//!
//! * [`ConflictGraph`] — unweighted conflict graphs whose independent sets
//!   are the feasible per-channel allocations (Problem 1 of the paper),
//! * [`WeightedConflictGraph`] — edge-weighted conflict graphs (Section 3)
//!   in which a set `M` is independent iff the incoming weight into every
//!   member is strictly below 1,
//! * [`VertexOrdering`] — total orderings `π` of the vertices together with
//!   backward neighborhoods `Γπ(v)`,
//! * the **inductive independence number** `ρ` (Definitions 1 and 2 of the
//!   paper), both as an exactly computed quantity on small graphs and as a
//!   certified upper bound for a given ordering (module [`inductive`]),
//! * independent-set primitives (greedy, exact branch-and-bound, weighted
//!   variants) used by the LP relaxation, the rounding algorithms and the
//!   baselines (module [`independent_set`]).
//!
//! The crate is deliberately free of any geometry or wireless-model code —
//! those live in `ssa-geometry` and `ssa-interference` and merely *produce*
//! conflict graphs consumed here.

#![warn(missing_docs)]

pub mod bitset;
pub mod independent_set;
pub mod inductive;
pub mod ordering;
pub mod unweighted;
pub mod weighted;

pub use bitset::BitSet;
pub use independent_set::{
    clique_cover_upper_bound, exact_max_weight_independent_set,
    exact_max_weight_independent_set_weighted, greedy_max_weight_independent_set,
    greedy_max_weight_independent_set_weighted, IndependentSetResult,
};
pub use inductive::{
    certified_rho, certified_rho_for_ordering, certified_rho_for_ordering_weighted,
    certified_rho_weighted, exact_inductive_independence_number, greedy_ordering_search,
    greedy_ordering_search_weighted, InductiveBound,
};
pub use ordering::VertexOrdering;
pub use unweighted::ConflictGraph;
pub use weighted::WeightedConflictGraph;

/// Identifier of a vertex (bidder) in a conflict graph.
///
/// Vertices are always densely numbered `0..n`, which lets every data
/// structure in the workspace use plain `Vec` indexing.
pub type VertexId = usize;
