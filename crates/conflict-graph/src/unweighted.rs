//! Unweighted conflict graphs (Problem 1, Section 2 of the paper).
//!
//! Vertices are bidders; an edge `{u, v}` means `u` and `v` may never share a
//! channel. The feasible per-channel allocations are exactly the independent
//! sets of the graph.

use crate::bitset::BitSet;
use crate::VertexId;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// An undirected, unweighted conflict graph over vertices `0..n`.
///
/// Internally stores both an adjacency bit matrix (for `O(1)` edge queries
/// and fast intersection with vertex subsets) and sorted neighbor lists (for
/// cache-friendly iteration over sparse neighborhoods).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ConflictGraph {
    n: usize,
    adj_rows: Vec<BitSet>,
    neighbors: Vec<Vec<VertexId>>,
    num_edges: usize,
}

impl ConflictGraph {
    /// Creates a graph with `n` vertices and no edges.
    pub fn new(n: usize) -> Self {
        ConflictGraph {
            n,
            adj_rows: (0..n).map(|_| BitSet::new(n)).collect(),
            neighbors: vec![Vec::new(); n],
            num_edges: 0,
        }
    }

    /// Creates a graph with `n` vertices from an edge list.
    ///
    /// Self-loops are ignored; duplicate edges are inserted once.
    ///
    /// # Panics
    /// Panics if an endpoint is `>= n`.
    pub fn from_edges(n: usize, edges: &[(VertexId, VertexId)]) -> Self {
        let mut g = Self::new(n);
        for &(u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }

    /// Builds a graph by evaluating an adjacency-row function for every
    /// vertex **in parallel**.
    ///
    /// `row(v)` returns the bit set of neighbors of `v` (self-bits are
    /// ignored). The relation is expected to be symmetric — geometric
    /// conflict predicates (disk intersection, guard zones, distance-2) all
    /// are — but a serial `O(nnz)` symmetrization pass repairs any stray
    /// one-directional bits rather than producing a corrupt graph.
    ///
    /// This is the bulk path the interference models use: each row is an
    /// independent computation, so construction scales with cores instead
    /// of running the serial double loop of `add_edge`.
    ///
    /// # Panics
    /// Panics if some row's universe size is not `n`.
    pub fn from_symmetric_rows(n: usize, row: impl Fn(VertexId) -> BitSet + Sync) -> Self {
        let rows: Vec<BitSet> = (0..n).into_par_iter().map(row).collect();
        Self::from_bitset_rows(rows)
    }

    /// Builds a graph from precomputed adjacency rows (see
    /// [`ConflictGraph::from_symmetric_rows`]).
    ///
    /// # Panics
    /// Panics if some row's universe size differs from the number of rows.
    pub fn from_bitset_rows(mut rows: Vec<BitSet>) -> Self {
        let n = rows.len();
        for (v, row) in rows.iter_mut().enumerate() {
            assert_eq!(
                row.universe_len(),
                n,
                "adjacency row {v} has universe {} but the graph has {n} vertices",
                row.universe_len()
            );
            row.remove(v);
        }
        // Symmetrization: u ∈ rows[v] must imply v ∈ rows[u]. Collect the
        // missing transposed bits first (cannot mutate rows while iterating
        // them), then patch — both passes are O(nnz).
        let mut missing: Vec<(VertexId, VertexId)> = Vec::new();
        for (v, row) in rows.iter().enumerate() {
            for u in row.iter() {
                if !rows[u].contains(v) {
                    missing.push((u, v));
                }
            }
        }
        for (u, v) in missing {
            rows[u].insert(v);
        }
        let neighbors: Vec<Vec<VertexId>> = rows.par_iter().map(|row| row.to_vec()).collect();
        let degree_sum: usize = neighbors.iter().map(Vec::len).sum();
        ConflictGraph {
            n,
            adj_rows: rows,
            neighbors,
            num_edges: degree_sum / 2,
        }
    }

    /// Creates the complete graph (clique) on `n` vertices.
    ///
    /// With a clique conflict graph the auction degenerates to an ordinary
    /// combinatorial auction: each channel can be won by at most one bidder.
    pub fn clique(n: usize) -> Self {
        let mut g = Self::new(n);
        for u in 0..n {
            for v in (u + 1)..n {
                g.add_edge(u, v);
            }
        }
        g
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of (undirected) edges.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Adds the undirected edge `{u, v}`. Ignores self-loops and duplicates.
    ///
    /// # Panics
    /// Panics if `u >= n` or `v >= n`.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) {
        assert!(
            u < self.n && v < self.n,
            "edge ({u},{v}) out of bounds (n={})",
            self.n
        );
        if u == v || self.adj_rows[u].contains(v) {
            return;
        }
        self.adj_rows[u].insert(v);
        self.adj_rows[v].insert(u);
        self.neighbors[u].push(v);
        self.neighbors[v].push(u);
        self.num_edges += 1;
    }

    /// Returns `true` if `{u, v}` is an edge.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        u < self.n && self.adj_rows[u].contains(v)
    }

    /// Neighbors of `v` (unsorted, in insertion order).
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.neighbors[v]
    }

    /// Adjacency row of `v` as a bit set.
    pub fn adjacency_row(&self, v: VertexId) -> &BitSet {
        &self.adj_rows[v]
    }

    /// Degree of `v`.
    pub fn degree(&self, v: VertexId) -> usize {
        self.neighbors[v].len()
    }

    /// Maximum degree over all vertices, or 0 for the empty graph.
    pub fn max_degree(&self) -> usize {
        (0..self.n).map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Average degree `d̄ = 2|E|/n`, the quantity appearing in the classical
    /// `(d̄+1)/2` bound for the edge-based LP relaxation (Section 2.1).
    pub fn average_degree(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            2.0 * self.num_edges as f64 / self.n as f64
        }
    }

    /// Iterator over all edges `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        (0..self.n).flat_map(move |u| {
            self.neighbors[u]
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Returns `true` if `set` is an independent set: no two members share an
    /// edge.
    pub fn is_independent(&self, set: &[VertexId]) -> bool {
        for (i, &u) in set.iter().enumerate() {
            for &v in &set[i + 1..] {
                if self.has_edge(u, v) {
                    return false;
                }
            }
        }
        true
    }

    /// Returns `true` if the members of the bit set form an independent set.
    ///
    /// Adjacency rows never contain the vertex itself, so it suffices to test
    /// that no member's row intersects the set.
    pub fn is_independent_bitset(&self, set: &BitSet) -> bool {
        set.iter().all(|v| !self.adj_rows[v].intersects(set))
    }

    /// Builds the subgraph induced by `vertices`.
    ///
    /// Returns the induced [`ConflictGraph`] together with the mapping from
    /// new vertex ids (positions in `vertices`) to original vertex ids.
    pub fn induced_subgraph(&self, vertices: &[VertexId]) -> (ConflictGraph, Vec<VertexId>) {
        let mapping: Vec<VertexId> = vertices.to_vec();
        let mut g = ConflictGraph::new(vertices.len());
        for (i, &u) in vertices.iter().enumerate() {
            for (j, &v) in vertices.iter().enumerate().skip(i + 1) {
                if self.has_edge(u, v) {
                    g.add_edge(i, j);
                }
            }
        }
        (g, mapping)
    }

    /// Returns a copy of the graph with one additional vertex (id `n`, the
    /// new largest id) connected to the given existing vertices — a bidder
    /// arriving in a dynamic market.
    ///
    /// # Panics
    /// Panics if a listed neighbor is not an existing vertex.
    pub fn with_appended_vertex(&self, neighbors: &[VertexId]) -> ConflictGraph {
        let n = self.n;
        let mut g = ConflictGraph::new(n + 1);
        for (u, v) in self.edges() {
            g.add_edge(u, v);
        }
        for &u in neighbors {
            assert!(u < n, "new vertex's neighbor {u} out of bounds (n={n})");
            g.add_edge(u, n);
        }
        g
    }

    /// Returns a copy of the graph with vertex `v` removed; vertices above
    /// `v` shift down by one (a bidder leaving a dynamic market).
    ///
    /// # Panics
    /// Panics if `v` is not a vertex.
    pub fn without_vertex(&self, v: VertexId) -> ConflictGraph {
        assert!(v < self.n, "vertex {v} out of bounds (n={})", self.n);
        let keep: Vec<VertexId> = (0..self.n).filter(|&u| u != v).collect();
        self.induced_subgraph(&keep).0
    }

    /// Restricts the members of `set` that are neighbors of `v` and precede
    /// `v` in the ordering `order_pos` (i.e. lie in the backward neighborhood
    /// `Γπ(v)`), returning how many there are.
    pub fn backward_neighbors_in(&self, v: VertexId, order_pos: &[usize], set: &BitSet) -> usize {
        self.neighbors[v]
            .iter()
            .filter(|&&u| order_pos[u] < order_pos[v] && set.contains(u))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn path(n: usize) -> ConflictGraph {
        let edges: Vec<_> = (0..n.saturating_sub(1)).map(|i| (i, i + 1)).collect();
        ConflictGraph::from_edges(n, &edges)
    }

    #[test]
    fn empty_graph_everything_independent() {
        let g = ConflictGraph::new(5);
        assert_eq!(g.num_edges(), 0);
        assert!(g.is_independent(&[0, 1, 2, 3, 4]));
        assert_eq!(g.average_degree(), 0.0);
    }

    #[test]
    fn clique_only_singletons_independent() {
        let g = ConflictGraph::clique(6);
        assert_eq!(g.num_edges(), 15);
        assert_eq!(g.max_degree(), 5);
        for v in 0..6 {
            assert!(g.is_independent(&[v]));
        }
        assert!(!g.is_independent(&[0, 1]));
        assert!(!g.is_independent(&[2, 5]));
    }

    #[test]
    fn duplicate_edges_and_self_loops_ignored() {
        let g = ConflictGraph::from_edges(4, &[(0, 1), (1, 0), (0, 1), (2, 2)]);
        assert_eq!(g.num_edges(), 1);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(2, 2));
    }

    #[test]
    fn path_graph_independence() {
        let g = path(5);
        assert!(g.is_independent(&[0, 2, 4]));
        assert!(!g.is_independent(&[0, 1]));
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 2);
        assert_eq!(g.average_degree(), 2.0 * 4.0 / 5.0);
    }

    #[test]
    fn edges_iterator_consistent_with_count() {
        let g = ConflictGraph::from_edges(6, &[(0, 3), (1, 2), (4, 5), (0, 5)]);
        let mut es: Vec<_> = g.edges().collect();
        es.sort_unstable();
        assert_eq!(es, vec![(0, 3), (0, 5), (1, 2), (4, 5)]);
        assert_eq!(es.len(), g.num_edges());
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges_only() {
        let g = ConflictGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let (sub, map) = g.induced_subgraph(&[1, 2, 4]);
        assert_eq!(sub.num_vertices(), 3);
        assert_eq!(map, vec![1, 2, 4]);
        assert!(sub.has_edge(0, 1)); // 1-2
        assert!(!sub.has_edge(1, 2)); // 2-4 not an edge in g
        assert_eq!(sub.num_edges(), 1);
    }

    #[test]
    fn bitset_independence_matches_slice_independence() {
        let g = ConflictGraph::from_edges(5, &[(0, 1), (2, 3)]);
        let ind = BitSet::from_indices(5, [0, 2, 4]);
        let dep = BitSet::from_indices(5, [0, 1]);
        assert!(g.is_independent_bitset(&ind));
        assert!(!g.is_independent_bitset(&dep));
    }

    #[test]
    fn from_symmetric_rows_matches_edge_construction() {
        let edges = [(0usize, 3usize), (1, 2), (4, 5), (0, 5), (2, 4)];
        let reference = ConflictGraph::from_edges(6, &edges);
        let parallel = ConflictGraph::from_symmetric_rows(6, |v| {
            BitSet::from_indices(
                6,
                edges.iter().flat_map(|&(a, b)| {
                    [(a, b), (b, a)]
                        .into_iter()
                        .filter(move |&(x, _)| x == v)
                        .map(|(_, y)| y)
                }),
            )
        });
        assert_eq!(parallel.num_edges(), reference.num_edges());
        for u in 0..6 {
            for v in 0..6 {
                assert_eq!(
                    parallel.has_edge(u, v),
                    reference.has_edge(u, v),
                    "edge ({u},{v})"
                );
            }
            let mut a = parallel.neighbors(u).to_vec();
            let mut b = reference.neighbors(u).to_vec();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn from_symmetric_rows_repairs_asymmetric_input_and_drops_self_loops() {
        // row 0 claims the edge {0,1}; row 1 omits it; row 2 has a self-loop
        let g = ConflictGraph::from_bitset_rows(vec![
            BitSet::from_indices(3, [1]),
            BitSet::new(3),
            BitSet::from_indices(3, [2]),
        ]);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(2, 2));
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(1), 1);
    }

    #[test]
    fn from_symmetric_rows_scales_to_larger_graphs() {
        // ring of 500 vertices built in parallel, verified against add_edge
        let n = 500;
        let parallel = ConflictGraph::from_symmetric_rows(n, |v| {
            BitSet::from_indices(n, [(v + 1) % n, (v + n - 1) % n])
        });
        let edges: Vec<(usize, usize)> = (0..n).map(|v| (v, (v + 1) % n)).collect();
        let reference = ConflictGraph::from_edges(n, &edges);
        assert_eq!(parallel.num_edges(), reference.num_edges());
        for v in 0..n {
            assert_eq!(parallel.degree(v), 2);
        }
    }

    prop_compose! {
        fn arb_graph()(n in 1usize..30)
                     (n in Just(n),
                      edges in prop::collection::vec((0..n, 0..n), 0..60)) -> ConflictGraph {
            ConflictGraph::from_edges(n, &edges)
        }
    }

    proptest! {
        #[test]
        fn prop_edge_symmetry(g in arb_graph()) {
            for u in 0..g.num_vertices() {
                for v in 0..g.num_vertices() {
                    prop_assert_eq!(g.has_edge(u, v), g.has_edge(v, u));
                }
            }
        }

        #[test]
        fn prop_degree_sum_is_twice_edges(g in arb_graph()) {
            let sum: usize = (0..g.num_vertices()).map(|v| g.degree(v)).sum();
            prop_assert_eq!(sum, 2 * g.num_edges());
        }

        #[test]
        fn prop_singletons_and_empty_always_independent(g in arb_graph()) {
            prop_assert!(g.is_independent(&[]));
            for v in 0..g.num_vertices() {
                prop_assert!(g.is_independent(&[v]));
            }
        }

        #[test]
        fn prop_bitset_and_slice_independence_agree(g in arb_graph(), picks in prop::collection::vec(0usize..30, 0..10)) {
            let n = g.num_vertices();
            let picks: Vec<usize> = picks.into_iter().filter(|&p| p < n).collect();
            let mut dedup = picks.clone();
            dedup.sort_unstable();
            dedup.dedup();
            let bs = BitSet::from_indices(n, dedup.iter().copied());
            prop_assert_eq!(g.is_independent(&dedup), g.is_independent_bitset(&bs));
        }
    }
}
