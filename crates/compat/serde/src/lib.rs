//! Offline stand-in for the `serde` facade.
//!
//! The container cannot reach a crate registry, so this workspace-local
//! crate satisfies the seed code's `use serde::{Deserialize, Serialize}` and
//! `#[derive(Serialize, Deserialize)]` without pulling the real dependency.
//! The traits are markers with blanket impls: nothing in the workspace
//! drives serialization through serde (the experiment harness writes JSON by
//! hand), so derive expansion is a no-op (see `crates/compat/serde_derive`).
//!
//! If the real `serde` becomes available, deleting the two compat crates and
//! pointing the workspace dependency at the registry restores full behavior
//! with no source changes.

pub use serde_derive::{Deserialize, Serialize};

mod markers {
    /// Marker trait mirroring `serde::Serialize`; blanket-implemented.
    pub trait Serialize {}
    impl<T: ?Sized> Serialize for T {}

    /// Marker trait mirroring `serde::Deserialize`; blanket-implemented.
    pub trait Deserialize<'de> {}
    impl<'de, T: ?Sized> Deserialize<'de> for T {}

    /// Marker trait mirroring `serde::de::DeserializeOwned`.
    pub trait DeserializeOwned {}
    impl<T: ?Sized> DeserializeOwned for T {}
}

/// Mirror of `serde::de` exposing the owned-deserialization marker.
pub mod de {
    pub use super::markers::{Deserialize, DeserializeOwned};
}

/// Mirror of `serde::ser`.
pub mod ser {
    pub use super::markers::Serialize;
}
