//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no crate-registry access, so this workspace-local
//! crate implements the subset of proptest the test suites use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(...)]`),
//! * the [`prop_compose!`] macro (single and two-stage forms),
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`],
//! * strategies: numeric ranges, tuples (arity 2–6), [`strategy::Just`],
//!   `prop::collection::vec`, `prop::array::uniform4`, `prop::bool::ANY`,
//!   and [`arbitrary::any`] for a few primitive types.
//!
//! Semantics: each test runs `cases` deterministic random samples (seeded
//! per case index, so failures are reproducible run-to-run). There is **no
//! shrinking** — a failing case reports its inputs via the panic message of
//! the underlying assertion instead. That is a weaker debugging experience
//! than real proptest but identical pass/fail power.

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Per-test configuration (subset of proptest's).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases to run.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Configuration running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // The real default is 256; 64 keeps the no-shrinking runner fast
            // while retaining useful coverage.
            ProptestConfig { cases: 64 }
        }
    }

    /// Error type carried by `prop_assert*` failures.
    #[derive(Clone, Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// Creates a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// The deterministic RNG driving strategy sampling.
    #[derive(Clone, Debug)]
    pub struct TestRng(pub StdRng);

    impl TestRng {
        /// RNG for case number `case`; the fixed stream constant keeps runs
        /// reproducible across processes.
        pub fn deterministic(case: u64) -> Self {
            TestRng(StdRng::seed_from_u64(
                0x5EED_5EED ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ))
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// A value generator. Unlike real proptest there is no value tree /
    /// shrinking: `sample` draws one concrete value.
    pub trait Strategy {
        /// Type of generated values.
        type Value;
        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// Blanket impl so strategies can be passed by reference.
    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    /// Constant strategy: always yields a clone of the value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy backed by a sampling closure (used by `prop_compose!`).
    pub struct SampleFn<F> {
        f: F,
    }

    impl<F> SampleFn<F> {
        /// Wraps a closure drawing values from the RNG.
        pub fn new(f: F) -> Self {
            SampleFn { f }
        }
    }

    impl<T, F: Fn(&mut TestRng) -> T> Strategy for SampleFn<F> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (self.f)(rng)
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.0.random_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(usize, u8, u16, u32, u64, i8, i16, i32, i64, f64);

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.0.random::<bool>()
        }
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> u64 {
            rng.0.random::<u64>()
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> u32 {
            rng.0.random::<u32>()
        }
    }

    impl Arbitrary for usize {
        fn arbitrary(rng: &mut TestRng) -> usize {
            rng.0.random::<u64>() as usize
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.0.random::<f64>()
        }
    }

    /// Strategy returned by [`any`].
    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

/// The `prop::` strategy-combinator namespace.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        use rand::Rng;
        use std::ops::Range;

        /// Length specification for [`vec()`]: a fixed size or a half-open
        /// range of sizes.
        #[derive(Clone, Debug)]
        pub enum SizeRange {
            /// Exactly this many elements.
            Fixed(usize),
            /// Uniformly between `.0` (inclusive) and `.1` (exclusive).
            Between(usize, usize),
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange::Fixed(n)
            }
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                SizeRange::Between(r.start, r.end)
            }
        }

        /// Strategy for `Vec<S::Value>` with length drawn from a
        /// [`SizeRange`].
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let len = match self.size {
                    SizeRange::Fixed(n) => n,
                    SizeRange::Between(lo, hi) => {
                        if lo >= hi {
                            lo
                        } else {
                            rng.0.random_range(lo..hi)
                        }
                    }
                };
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }

        /// `prop::collection::vec(element, size)`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }
    }

    /// Fixed-size array strategies.
    pub mod array {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Strategy for `[S::Value; 4]`.
        pub struct UniformArray4<S>(S);

        impl<S: Strategy> Strategy for UniformArray4<S> {
            type Value = [S::Value; 4];
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                [
                    self.0.sample(rng),
                    self.0.sample(rng),
                    self.0.sample(rng),
                    self.0.sample(rng),
                ]
            }
        }

        /// `prop::array::uniform4(element)`.
        pub fn uniform4<S: Strategy>(element: S) -> UniformArray4<S> {
            UniformArray4(element)
        }
    }

    /// Boolean strategies.
    pub mod bool {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        use rand::Rng;

        /// Strategy yielding fair coin flips.
        #[derive(Clone, Copy, Debug)]
        pub struct BoolAny;

        impl Strategy for BoolAny {
            type Value = core::primitive::bool;
            fn sample(&self, rng: &mut TestRng) -> core::primitive::bool {
                rng.0.random::<core::primitive::bool>()
            }
        }

        /// `prop::bool::ANY`.
        pub const ANY: BoolAny = BoolAny;
    }
}

/// Everything test modules import via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, proptest};
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current case unless both sides compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)*);
    }};
}

/// Fails the current case if both sides compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `left != right`\n  both: `{:?}`",
            left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left != *right, $($fmt)*);
    }};
}

/// Declares property tests: each `fn name(bindings) { body }` becomes a
/// `#[test]`-style function running `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $config;
            for case in 0..config.cases {
                let mut __rng = $crate::test_runner::TestRng::deterministic(case as u64);
                $(let $pat = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(e) = outcome {
                    panic!("property failed on case {case}: {e}");
                }
            }
        }
    )*};
}

/// Declares a named strategy built by sampling sub-strategies and mapping
/// the results through a body (supports the one- and two-stage forms).
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])* $vis:vis fn $name:ident($($args:tt)*)
        ($($pat1:pat_param in $strat1:expr),+ $(,)?)
        ($($pat2:pat_param in $strat2:expr),+ $(,)?)
        -> $ret:ty $body:block
    ) => {
        $(#[$meta])* $vis fn $name($($args)*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::SampleFn::new(move |__rng: &mut $crate::test_runner::TestRng| {
                $(let $pat1 = $crate::strategy::Strategy::sample(&($strat1), __rng);)+
                $(let $pat2 = $crate::strategy::Strategy::sample(&($strat2), __rng);)+
                $body
            })
        }
    };
    (
        $(#[$meta:meta])* $vis:vis fn $name:ident($($args:tt)*)
        ($($pat1:pat_param in $strat1:expr),+ $(,)?)
        -> $ret:ty $body:block
    ) => {
        $(#[$meta])* $vis fn $name($($args)*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::SampleFn::new(move |__rng: &mut $crate::test_runner::TestRng| {
                $(let $pat1 = $crate::strategy::Strategy::sample(&($strat1), __rng);)+
                $body
            })
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    prop_compose! {
        fn pair()(n in 1usize..10)
                 (n in Just(n), v in prop::collection::vec(0usize..100, 0..20)) -> (usize, Vec<usize>) {
            (n, v)
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 0usize..10, y in -1.0f64..1.0, b in prop::bool::ANY) {
            prop_assert!(x < 10);
            prop_assert!((-1.0..1.0).contains(&y));
            let _ = b;
        }

        #[test]
        fn composed_strategy_works((n, v) in pair()) {
            prop_assert!((1..10).contains(&n));
            prop_assert!(v.len() < 20);
        }

        #[test]
        fn tuples_and_vec(pts in prop::collection::vec((0.0f64..5.0, 0u8..3), 4)) {
            prop_assert_eq!(pts.len(), 4);
            for &(x, r) in &pts {
                prop_assert!(x < 5.0 && r < 3);
            }
        }

        #[test]
        fn any_values(seed in any::<u64>(), flag in any::<bool>()) {
            let _ = (seed, flag);
            prop_assert_ne!(1usize, 2usize);
        }
    }

    #[test]
    fn assertion_failure_panics() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(1))]
                #[allow(unused)]
                fn always_fails(x in 0usize..2) {
                    prop_assert!(x > 100, "x was {}", x);
                }
            }
            always_fails();
        });
        assert!(result.is_err());
    }
}
