//! Offline stand-in for `rayon`.
//!
//! The container has no registry access, so this crate provides the small
//! `par_iter` surface the workspace uses:
//!
//! * `(a..b).into_par_iter().map(f).collect::<Vec<_>>()` / `.for_each(f)`
//! * `slice.par_iter().map(f).collect::<Vec<_>>()` / `.for_each(f)`
//! * [`join`] for two-way fork-join
//! * [`with_min_len`](ParRange::with_min_len) to override the sequential
//!   cutoff for call sites whose per-item work is known to be heavy
//!
//! Unlike the earlier revisions of this shim — which spawned fresh
//! `std::thread::scope` workers on **every** call — parallel work now runs
//! on a persistent work-stealing pool (the `pool` module): long-lived workers with
//! per-worker chunk deques, spawned lazily once and reused by every call
//! site. Each call still splits its index range into ~4 chunks per worker
//! (claimed dynamically, so uneven workloads — the k per-channel
//! Dantzig–Wolfe pricing subproblems, whose channel sizes can differ wildly
//! — don't serialize behind the largest item) and always collects results
//! in input order, preserving determinism.
//!
//! **Sequential fast path:** inputs shorter than twice the minimum chunk
//! length (32 items by default) run inline on the calling thread without
//! touching the pool — below that, fork-join bookkeeping costs more than
//! the work. Call sites with few but expensive items (e.g. a multi-market
//! exchange draining a handful of dirty shards) opt out with
//! `.with_min_len(1)`. Single-threaded hosts always run inline.
//!
//! Pool size is `available_parallelism`, overridable once via the
//! `SSA_POOL_THREADS` environment variable (see the `pool` module).

mod pool;

use std::mem::{ManuallyDrop, MaybeUninit};

/// The number of worker threads parallel calls may use (the configured pool
/// size; the pool itself spawns lazily on first parallel use). Mirrors
/// `rayon::current_num_threads`.
pub fn current_num_threads() -> usize {
    pool::configured_workers()
}

/// Default minimum items per chunk; inputs below twice this length run
/// serially to keep fork-join overhead off tiny workloads.
const MIN_CHUNK: usize = 16;

/// Shareable raw pointer to the output buffer: every chunk writes a disjoint
/// index range, so concurrent use is sound.
struct SendPtr<T>(*mut T);
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

fn run_indexed_min<T, F>(len: usize, min_len: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let min_len = min_len.max(1);
    let workers = pool::configured_workers();
    // Sequential fast path: tiny inputs and single-core hosts never engage
    // the pool (no locks, no wakeups, no chunk bookkeeping).
    if workers < 2 || len < min_len.saturating_mul(2) {
        return (0..len).map(f).collect();
    }
    // Oversubscribe ~4 chunks per participating thread (the submitter works
    // too) and let threads claim chunks dynamically: a thread that drew a
    // cheap chunk immediately claims the next one, so an expensive item
    // delays only its own chunk instead of everything dealt behind it.
    let threads = (workers + 1).min(len / min_len).max(1);
    let num_chunks = (threads * 4).min(len.div_ceil(min_len)).max(1);
    let chunk = len.div_ceil(num_chunks);

    let mut out: Vec<MaybeUninit<T>> = Vec::with_capacity(len);
    // SAFETY: MaybeUninit needs no initialization; every slot is written
    // exactly once below before the buffer is read.
    unsafe { out.set_len(len) };
    let out_ptr = SendPtr(out.as_mut_ptr());
    let body = |lo: usize, hi: usize| {
        let p = out_ptr;
        for i in lo..hi {
            let v = f(i);
            // SAFETY: chunks cover disjoint ranges of 0..len.
            unsafe { p.0.add(i).write(MaybeUninit::new(v)) };
        }
    };
    pool::global().run(len, chunk, &body);
    // SAFETY: pool.run returned without re-throwing a panic, so every index
    // in 0..len was written exactly once. (On the panic path `out` is
    // dropped as MaybeUninit, leaking any initialized elements — safe.)
    let mut out = ManuallyDrop::new(out);
    unsafe { Vec::from_raw_parts(out.as_mut_ptr() as *mut T, len, out.capacity()) }
}

/// Two-way fork-join: runs both closures, the second on a scoped thread.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let mut rb = None;
    let ra = std::thread::scope(|scope| {
        let hb = scope.spawn(b);
        let ra = a();
        rb = Some(hb.join().expect("parallel worker panicked"));
        ra
    });
    (ra, rb.unwrap())
}

/// Conversion into a parallel iterator (ranges, vectors).
pub trait IntoParallelIterator {
    /// Item type.
    type Item;
    /// Parallel-iterator type.
    type Iter;
    /// Converts self.
    fn into_par_iter(self) -> Self::Iter;
}

/// `.par_iter()` on borrowed slices/vectors.
pub trait IntoParallelRefIterator<'a> {
    /// Item type (a reference).
    type Item: 'a;
    /// Parallel-iterator type.
    type Iter;
    /// Borrowing parallel iterator.
    fn par_iter(&'a self) -> Self::Iter;
}

/// Parallel iterator over `usize` indices `start..end`.
pub struct ParRange {
    start: usize,
    end: usize,
    min_len: usize,
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    type Iter = ParRange;
    fn into_par_iter(self) -> ParRange {
        ParRange {
            start: self.start,
            end: self.end.max(self.start),
            min_len: MIN_CHUNK,
        }
    }
}

impl ParRange {
    /// Overrides the minimum chunk length (and with it the sequential
    /// cutoff, which sits at twice this value). Use `with_min_len(1)` when
    /// every item is expensive — e.g. one LP resolve per index — so even a
    /// handful of items fans out across the pool.
    pub fn with_min_len(mut self, min_len: usize) -> Self {
        self.min_len = min_len.max(1);
        self
    }

    /// Maps each index through `f` (evaluated on collect/for_each).
    pub fn map<T, F: Fn(usize) -> T + Sync>(self, f: F) -> ParRangeMap<F> {
        ParRangeMap { range: self, f }
    }

    /// Runs `f` for every index in parallel.
    pub fn for_each<F: Fn(usize) + Sync>(self, f: F) {
        run_indexed_min(self.end - self.start, self.min_len, |i| f(self.start + i));
    }
}

/// Mapped parallel range.
pub struct ParRangeMap<F> {
    range: ParRange,
    f: F,
}

impl<T: Send, F: Fn(usize) -> T + Sync> ParRangeMap<F> {
    /// See [`ParRange::with_min_len`].
    pub fn with_min_len(mut self, min_len: usize) -> Self {
        self.range.min_len = min_len.max(1);
        self
    }

    /// Executes the map in parallel, collecting results in index order.
    pub fn collect<C: From<Vec<T>>>(self) -> C {
        let start = self.range.start;
        let f = self.f;
        C::from(run_indexed_min(
            self.range.end - start,
            self.range.min_len,
            |i| f(start + i),
        ))
    }

    /// Executes the map for its side effects.
    pub fn for_each(self) {
        let start = self.range.start;
        let f = self.f;
        run_indexed_min(self.range.end - start, self.range.min_len, |i| {
            f(start + i);
        });
    }

    /// Sums the mapped values.
    pub fn sum<S: std::iter::Sum<T> + Send>(self) -> S {
        let start = self.range.start;
        let f = self.f;
        run_indexed_min(self.range.end - start, self.range.min_len, |i| f(start + i))
            .into_iter()
            .sum()
    }
}

/// Borrowing parallel iterator over a slice.
pub struct ParSlice<'a, T> {
    slice: &'a [T],
    min_len: usize,
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = ParSlice<'a, T>;
    fn par_iter(&'a self) -> ParSlice<'a, T> {
        ParSlice {
            slice: self,
            min_len: MIN_CHUNK,
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = ParSlice<'a, T>;
    fn par_iter(&'a self) -> ParSlice<'a, T> {
        ParSlice {
            slice: self,
            min_len: MIN_CHUNK,
        }
    }
}

impl<'a, T: Sync> ParSlice<'a, T> {
    /// See [`ParRange::with_min_len`].
    pub fn with_min_len(mut self, min_len: usize) -> Self {
        self.min_len = min_len.max(1);
        self
    }

    /// Maps each element reference through `f`.
    pub fn map<U, F: Fn(&'a T) -> U + Sync>(self, f: F) -> ParSliceMap<'a, T, F> {
        ParSliceMap {
            slice: self.slice,
            min_len: self.min_len,
            f,
        }
    }

    /// Runs `f` on every element in parallel.
    pub fn for_each<F: Fn(&'a T) + Sync>(self, f: F) {
        run_indexed_min(self.slice.len(), self.min_len, |i| f(&self.slice[i]));
    }

    /// Enumerated variant yielding `(index, &item)`.
    pub fn enumerate(self) -> ParSliceEnumerate<'a, T> {
        ParSliceEnumerate {
            slice: self.slice,
            min_len: self.min_len,
        }
    }
}

/// Mapped borrowing parallel iterator.
pub struct ParSliceMap<'a, T, F> {
    slice: &'a [T],
    min_len: usize,
    f: F,
}

impl<'a, T: Sync, U: Send, F: Fn(&'a T) -> U + Sync> ParSliceMap<'a, T, F> {
    /// See [`ParRange::with_min_len`].
    pub fn with_min_len(mut self, min_len: usize) -> Self {
        self.min_len = min_len.max(1);
        self
    }

    /// Executes in parallel, collecting in input order.
    pub fn collect<C: From<Vec<U>>>(self) -> C {
        let (slice, f) = (self.slice, self.f);
        C::from(run_indexed_min(slice.len(), self.min_len, |i| f(&slice[i])))
    }

    /// Sums the mapped values.
    pub fn sum<S: std::iter::Sum<U> + Send>(self) -> S {
        let (slice, f) = (self.slice, self.f);
        run_indexed_min(slice.len(), self.min_len, |i| f(&slice[i]))
            .into_iter()
            .sum()
    }
}

/// Enumerated borrowing parallel iterator.
pub struct ParSliceEnumerate<'a, T> {
    slice: &'a [T],
    min_len: usize,
}

impl<'a, T: Sync> ParSliceEnumerate<'a, T> {
    /// Maps each `(index, &item)` pair through `f`.
    pub fn map<U, F: Fn((usize, &'a T)) -> U + Sync>(self, f: F) -> ParSliceEnumerateMap<'a, T, F> {
        ParSliceEnumerateMap {
            slice: self.slice,
            min_len: self.min_len,
            f,
        }
    }

    /// Runs `f` on every `(index, &item)` pair in parallel.
    pub fn for_each<F: Fn((usize, &'a T)) + Sync>(self, f: F) {
        run_indexed_min(self.slice.len(), self.min_len, |i| f((i, &self.slice[i])));
    }
}

/// Mapped enumerated borrowing parallel iterator.
pub struct ParSliceEnumerateMap<'a, T, F> {
    slice: &'a [T],
    min_len: usize,
    f: F,
}

impl<'a, T: Sync, U: Send, F: Fn((usize, &'a T)) -> U + Sync> ParSliceEnumerateMap<'a, T, F> {
    /// Executes in parallel, collecting in input order.
    pub fn collect<C: From<Vec<U>>>(self) -> C {
        let (slice, f) = (self.slice, self.f);
        C::from(run_indexed_min(slice.len(), self.min_len, |i| {
            f((i, &slice[i]))
        }))
    }
}

/// The glob import module mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{join, IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn range_map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v.len(), 1000);
        assert!(v.iter().enumerate().all(|(i, &x)| x == 2 * i));
    }

    #[test]
    fn slice_par_iter_sums() {
        let data: Vec<u64> = (0..500).collect();
        let s: u64 = data.par_iter().map(|&x| x).sum();
        assert_eq!(s, 499 * 500 / 2);
    }

    #[test]
    fn join_runs_both() {
        let (a, b) = super::join(|| 1 + 1, || "x".repeat(3));
        assert_eq!(a, 2);
        assert_eq!(b, "xxx");
    }

    #[test]
    fn small_inputs_run_serially_and_correctly() {
        let v: Vec<usize> = (0..3).into_par_iter().map(|i| i).collect();
        assert_eq!(v, vec![0, 1, 2]);
    }

    #[test]
    fn with_min_len_one_fans_out_small_inputs() {
        // 6 items is below the default sequential cutoff but must still be
        // correct (and, on multi-worker pools, parallel) with min_len 1.
        let v: Vec<usize> = (0..6)
            .into_par_iter()
            .with_min_len(1)
            .map(|i| i * 3)
            .collect();
        assert_eq!(v, vec![0, 3, 6, 9, 12, 15]);
        let data: Vec<u64> = (0..5).collect();
        let s: u64 = data.par_iter().with_min_len(1).map(|&x| x * 2).sum();
        assert_eq!(s, 20);
    }

    #[test]
    fn repeated_calls_reuse_the_persistent_pool() {
        // Exercises pool reuse across many fork-joins (the exchange's drain
        // pattern): correctness must hold on every call, not just the one
        // that lazily spawned the workers.
        for round in 0..32usize {
            let v: Vec<usize> = (0..128).into_par_iter().map(|i| i + round).collect();
            assert!(v.iter().enumerate().all(|(i, &x)| x == i + round));
        }
    }

    #[test]
    fn nested_par_iter_completes() {
        // A parallel body that itself goes parallel (sessions resolved on
        // the pool call par_iter internally): must not deadlock.
        let totals: Vec<u64> = (0..8)
            .into_par_iter()
            .with_min_len(1)
            .map(|i| {
                let inner: Vec<u64> = (0..64).into_par_iter().map(|j| (i + j) as u64).collect();
                inner.into_iter().sum()
            })
            .collect();
        for (i, t) in totals.iter().enumerate() {
            let expected: u64 = (0..64).map(|j| (i + j) as u64).sum();
            assert_eq!(*t, expected);
        }
    }

    #[test]
    fn uneven_workloads_keep_input_order() {
        // One early item is ~100x more expensive than the rest: dynamic
        // chunk claiming must still produce results in input order.
        let v: Vec<u64> = (0..4096)
            .into_par_iter()
            .map(|i| {
                let spins = if i == 7 { 200_000 } else { 2_000 };
                let mut acc = i as u64;
                for s in 0..spins {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(s);
                }
                // keep the expensive part observable so it cannot be
                // optimized away; the checked value is just the index
                std::hint::black_box(acc);
                i as u64
            })
            .collect();
        assert!(v.iter().enumerate().all(|(i, &x)| x == i as u64));
    }
}
