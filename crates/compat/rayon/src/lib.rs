//! Offline stand-in for `rayon`.
//!
//! The container has no registry access, so this crate provides the small
//! `par_iter` surface the workspace uses, executed with plain
//! `std::thread::scope` fork-join over contiguous index chunks:
//!
//! * `(a..b).into_par_iter().map(f).collect::<Vec<_>>()` / `.for_each(f)`
//! * `slice.par_iter().map(f).collect::<Vec<_>>()` / `.for_each(f)`
//! * [`join`] for two-way fork-join
//!
//! Unlike real rayon there is no work-stealing pool: each call spawns up to
//! `available_parallelism` scoped threads which **dynamically claim chunks**
//! of roughly `len / (threads · 4)` items from a shared atomic cursor. The
//! oversubscription (4 chunks per worker) is what keeps *uneven* workloads —
//! the k per-channel Dantzig–Wolfe pricing subproblems, whose channel sizes
//! can differ wildly — from serializing behind the largest item, which the
//! previous one-equal-chunk-per-thread split did; for regular per-row
//! workloads it measures within a few percent of work stealing. Results are
//! always collected in input order, preserving determinism.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

fn num_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Minimum items per spawned thread; below this the call runs serially to
/// avoid thread-spawn overhead dominating tiny workloads.
const MIN_CHUNK: usize = 16;

fn run_indexed<T, F>(len: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = num_threads().min(len / MIN_CHUNK.max(1)).max(1);
    if threads <= 1 || len == 0 {
        return (0..len).map(f).collect();
    }
    // Oversubscribe ~4 chunks per worker (chunk size ≈ len / (threads · 4),
    // never below 1) and let workers claim chunks from a shared cursor: a
    // worker that drew a cheap chunk immediately claims the next one, so an
    // expensive item delays only its own chunk instead of everything that
    // was statically co-scheduled behind it.
    let num_chunks = (threads * 4).min(len);
    let chunk = len.div_ceil(num_chunks);
    let num_chunks = len.div_ceil(chunk);
    // never spawn more workers than there are chunks to claim (k-block
    // pricing hands this function len = k, far below the core count)
    let threads = threads.min(num_chunks);
    let next = AtomicUsize::new(0);
    // every chunk is produced exactly once; merged in chunk order below so
    // the output stays deterministic regardless of claim order
    let mut claimed: Vec<Vec<(usize, Vec<T>)>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            let f = &f;
            let next = &next;
            handles.push(scope.spawn(move || {
                let mut mine: Vec<(usize, Vec<T>)> = Vec::new();
                loop {
                    let c = next.fetch_add(1, Ordering::Relaxed);
                    if c >= num_chunks {
                        break;
                    }
                    let lo = c * chunk;
                    let hi = ((c + 1) * chunk).min(len);
                    mine.push((c, (lo..hi).map(f).collect()));
                }
                mine
            }));
        }
        for h in handles {
            claimed.push(h.join().expect("parallel worker panicked"));
        }
    });
    let mut parts: Vec<Option<Vec<T>>> = (0..num_chunks).map(|_| None).collect();
    for (c, part) in claimed.into_iter().flatten() {
        parts[c] = Some(part);
    }
    let mut out = Vec::with_capacity(len);
    for p in parts {
        out.extend(p.expect("every chunk is claimed exactly once"));
    }
    out
}

/// Two-way fork-join: runs both closures, the second on a scoped thread.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let mut rb = None;
    let ra = std::thread::scope(|scope| {
        let hb = scope.spawn(b);
        let ra = a();
        rb = Some(hb.join().expect("parallel worker panicked"));
        ra
    });
    (ra, rb.unwrap())
}

/// Conversion into a parallel iterator (ranges, vectors).
pub trait IntoParallelIterator {
    /// Item type.
    type Item;
    /// Parallel-iterator type.
    type Iter;
    /// Converts self.
    fn into_par_iter(self) -> Self::Iter;
}

/// `.par_iter()` on borrowed slices/vectors.
pub trait IntoParallelRefIterator<'a> {
    /// Item type (a reference).
    type Item: 'a;
    /// Parallel-iterator type.
    type Iter;
    /// Borrowing parallel iterator.
    fn par_iter(&'a self) -> Self::Iter;
}

/// Parallel iterator over `usize` indices `start..end`.
pub struct ParRange {
    start: usize,
    end: usize,
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    type Iter = ParRange;
    fn into_par_iter(self) -> ParRange {
        ParRange {
            start: self.start,
            end: self.end.max(self.start),
        }
    }
}

impl ParRange {
    /// Maps each index through `f` (evaluated on collect/for_each).
    pub fn map<T, F: Fn(usize) -> T + Sync>(self, f: F) -> ParRangeMap<F> {
        ParRangeMap { range: self, f }
    }

    /// Runs `f` for every index in parallel.
    pub fn for_each<F: Fn(usize) + Sync>(self, f: F) {
        run_indexed(self.end - self.start, |i| f(self.start + i));
    }
}

/// Mapped parallel range.
pub struct ParRangeMap<F> {
    range: ParRange,
    f: F,
}

impl<T: Send, F: Fn(usize) -> T + Sync> ParRangeMap<F> {
    /// Executes the map in parallel, collecting results in index order.
    pub fn collect<C: From<Vec<T>>>(self) -> C {
        let start = self.range.start;
        let f = self.f;
        C::from(run_indexed(self.range.end - start, |i| f(start + i)))
    }

    /// Executes the map for its side effects.
    pub fn for_each(self) {
        let start = self.range.start;
        let f = self.f;
        run_indexed(self.range.end - start, |i| {
            f(start + i);
        });
    }

    /// Sums the mapped values.
    pub fn sum<S: std::iter::Sum<T> + Send>(self) -> S {
        let start = self.range.start;
        let f = self.f;
        run_indexed(self.range.end - start, |i| f(start + i))
            .into_iter()
            .sum()
    }
}

/// Borrowing parallel iterator over a slice.
pub struct ParSlice<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = ParSlice<'a, T>;
    fn par_iter(&'a self) -> ParSlice<'a, T> {
        ParSlice { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = ParSlice<'a, T>;
    fn par_iter(&'a self) -> ParSlice<'a, T> {
        ParSlice { slice: self }
    }
}

impl<'a, T: Sync> ParSlice<'a, T> {
    /// Maps each element reference through `f`.
    pub fn map<U, F: Fn(&'a T) -> U + Sync>(self, f: F) -> ParSliceMap<'a, T, F> {
        ParSliceMap {
            slice: self.slice,
            f,
        }
    }

    /// Runs `f` on every element in parallel.
    pub fn for_each<F: Fn(&'a T) + Sync>(self, f: F) {
        run_indexed(self.slice.len(), |i| f(&self.slice[i]));
    }

    /// Enumerated variant yielding `(index, &item)`.
    pub fn enumerate(self) -> ParSliceEnumerate<'a, T> {
        ParSliceEnumerate { slice: self.slice }
    }
}

/// Mapped borrowing parallel iterator.
pub struct ParSliceMap<'a, T, F> {
    slice: &'a [T],
    f: F,
}

impl<'a, T: Sync, U: Send, F: Fn(&'a T) -> U + Sync> ParSliceMap<'a, T, F> {
    /// Executes in parallel, collecting in input order.
    pub fn collect<C: From<Vec<U>>>(self) -> C {
        let (slice, f) = (self.slice, self.f);
        C::from(run_indexed(slice.len(), |i| f(&slice[i])))
    }

    /// Sums the mapped values.
    pub fn sum<S: std::iter::Sum<U> + Send>(self) -> S {
        let (slice, f) = (self.slice, self.f);
        run_indexed(slice.len(), |i| f(&slice[i])).into_iter().sum()
    }
}

/// Enumerated borrowing parallel iterator.
pub struct ParSliceEnumerate<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParSliceEnumerate<'a, T> {
    /// Maps each `(index, &item)` pair through `f`.
    pub fn map<U, F: Fn((usize, &'a T)) -> U + Sync>(self, f: F) -> ParSliceEnumerateMap<'a, T, F> {
        ParSliceEnumerateMap {
            slice: self.slice,
            f,
        }
    }

    /// Runs `f` on every `(index, &item)` pair in parallel.
    pub fn for_each<F: Fn((usize, &'a T)) + Sync>(self, f: F) {
        run_indexed(self.slice.len(), |i| f((i, &self.slice[i])));
    }
}

/// Mapped enumerated borrowing parallel iterator.
pub struct ParSliceEnumerateMap<'a, T, F> {
    slice: &'a [T],
    f: F,
}

impl<'a, T: Sync, U: Send, F: Fn((usize, &'a T)) -> U + Sync> ParSliceEnumerateMap<'a, T, F> {
    /// Executes in parallel, collecting in input order.
    pub fn collect<C: From<Vec<U>>>(self) -> C {
        let (slice, f) = (self.slice, self.f);
        C::from(run_indexed(slice.len(), |i| f((i, &slice[i]))))
    }
}

/// The glob import module mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{join, IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn range_map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v.len(), 1000);
        assert!(v.iter().enumerate().all(|(i, &x)| x == 2 * i));
    }

    #[test]
    fn slice_par_iter_sums() {
        let data: Vec<u64> = (0..500).collect();
        let s: u64 = data.par_iter().map(|&x| x).sum();
        assert_eq!(s, 499 * 500 / 2);
    }

    #[test]
    fn join_runs_both() {
        let (a, b) = super::join(|| 1 + 1, || "x".repeat(3));
        assert_eq!(a, 2);
        assert_eq!(b, "xxx");
    }

    #[test]
    fn small_inputs_run_serially_and_correctly() {
        let v: Vec<usize> = (0..3).into_par_iter().map(|i| i).collect();
        assert_eq!(v, vec![0, 1, 2]);
    }

    #[test]
    fn uneven_workloads_keep_input_order() {
        // One early item is ~100x more expensive than the rest: dynamic
        // chunk claiming must still produce results in input order.
        let v: Vec<u64> = (0..4096)
            .into_par_iter()
            .map(|i| {
                let spins = if i == 7 { 200_000 } else { 2_000 };
                let mut acc = i as u64;
                for s in 0..spins {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(s);
                }
                // keep the expensive part observable so it cannot be
                // optimized away; the checked value is just the index
                std::hint::black_box(acc);
                i as u64
            })
            .collect();
        assert!(v.iter().enumerate().all(|(i, &x)| x == i as u64));
    }
}
